//! Multi-hop chain throughput (extension).
//!
//! The paper's introduction: multi-hop ad hoc networking extends the
//! range of 802.11 "beyond the transmission radium of the source
//! station" — and its refs [2,3] (Xu & Saadawi) showed the MAC handles
//! that poorly. This example composes the reproduced single-hop system
//! into static forwarding chains and shows the classic collapse:
//! end-to-end throughput drops to ~1/2 at two hops and ~1/3 beyond,
//! because every relay contends with its own neighbours for one channel.
//!
//! Run with `cargo run --release --example multihop_chain`.

use desim::SimDuration;
use dot11_adhoc::experiments::multihop::chain_throughput;
use dot11_adhoc::experiments::ExpConfig;
use dot11_phy::PhyRate;

fn main() {
    let cfg = ExpConfig {
        seed: 3,
        duration: SimDuration::from_secs(10),
        warmup: SimDuration::from_secs(1),
        threads: 1,
    };
    for (rate, spacing) in [(PhyRate::R2, 80.0), (PhyRate::R11, 25.0)] {
        println!("\nChain at {rate}, {spacing:.0} m per hop (still channel):");
        println!(
            "{:>5} | {:>10} | {:>10} | {:>14}",
            "hops", "UDP kb/s", "TCP kb/s", "UDP vs 1 hop"
        );
        let rows = chain_throughput(cfg, rate, spacing, 4);
        let one_hop = rows[0].udp_kbps;
        for r in &rows {
            println!(
                "{:>5} | {:>10.0} | {:>10.0} | {:>13.0}%",
                r.hops,
                r.udp_kbps,
                r.tcp_kbps,
                100.0 * r.udp_kbps / one_hop
            );
        }
    }
}
