//! Quickstart: two stations, one saturated UDP flow, 11 Mb/s.
//!
//! Builds the smallest possible scenario — the paper's two-node maximum
//! throughput experiment — and compares the measured application-level
//! throughput against the analytical bound of Table 2.
//!
//! Run with `cargo run --release --example quickstart`.

use desim::SimDuration;
use dot11_adhoc::analytic::{max_throughput_paper, AccessScheme};
use dot11_adhoc::{ScenarioBuilder, Traffic};
use dot11_net::FlowId;
use dot11_phy::PhyRate;

fn main() {
    let rate = PhyRate::R11;
    let payload = 512;

    for (label, rts) in [("basic access", false), ("RTS/CTS", true)] {
        let report = ScenarioBuilder::new(rate)
            .line(&[0.0, 10.0]) // two stations 10 m apart
            .rts(rts)
            .duration(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(1))
            .seed(7)
            .flow(
                0,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: payload,
                    backlog: 10,
                },
            )
            .run();

        let flow = report.flow(FlowId(0));
        let scheme = if rts {
            AccessScheme::RtsCts
        } else {
            AccessScheme::Basic
        };
        let ideal = max_throughput_paper(payload, rate, scheme);
        println!(
            "{rate}, {label:13}: measured {:7.3} Mb/s | analytic max {:5.3} Mb/s | \
             {} datagrams delivered, loss {:.1}%",
            flow.throughput_kbps / 1000.0,
            ideal,
            flow.delivered_packets,
            flow.loss_rate * 100.0,
        );
    }
}
