//! Rate-vs-range sweep: the paper's Figure 3 / Table 3 in one run, plus
//! the ns-2 comparison the paper closes with.
//!
//! Sweeps distance for each of the four 802.11b rates, prints the loss
//! curves and the estimated transmission ranges, and contrasts them with
//! the 250 m TX_range the 2002-era simulators assumed (two-ray ground
//! model): "the values of the transmission range used in the simulative
//! tools are 2-3 times higher than the values measured in practice."
//!
//! Run with `cargo run --release --example rate_vs_range`.

use desim::SimDuration;
use dot11_adhoc::experiments::figure3::{loss_curve, DISTANCES_M};
use dot11_adhoc::experiments::ExpConfig;
use dot11_adhoc::{calibrated_path_loss, estimate_crossing};
use dot11_phy::{DayProfile, Db, Dbm, PathLoss, PhyRate, RadioConfig, TwoRayGround};

fn main() {
    let cfg = ExpConfig {
        seed: 3,
        duration: SimDuration::from_secs(8),
        warmup: SimDuration::ZERO,
        threads: 1,
    };

    println!("Datagram loss vs distance (512-byte CBR probes, clear day):\n");
    print!("{:>7} |", "d (m)");
    for rate in PhyRate::ALL {
        print!(" {:>8}", rate.to_string());
    }
    println!();
    let curves: Vec<_> = PhyRate::ALL
        .iter()
        .map(|&rate| loss_curve(cfg, rate, DayProfile::clear(), &DISTANCES_M))
        .collect();
    for (i, &d) in DISTANCES_M.iter().enumerate() {
        print!("{d:>7.0} |");
        for c in &curves {
            print!(" {:>8.2}", c.points()[i].1);
        }
        println!();
    }

    println!("\nEstimated transmission ranges (50% datagram loss):");
    for (rate, curve) in PhyRate::ALL.iter().zip(&curves) {
        match estimate_crossing(curve, 0.5) {
            Some(r) => println!("  {rate:>8}: ~{r:3.0} m"),
            None => println!("  {rate:>8}: beyond the 150 m sweep"),
        }
    }

    // The ns-2 contrast. The simulators of the era hard-coded
    // TX_range = 250 m at 2 Mb/s; the paper's point is that real ranges
    // are 2-3x shorter.
    let radio = RadioConfig::dwl650();
    let decode_2mbps = Dbm(radio.noise_floor.0 + 0.7); // ~2 Mb/s datagram threshold
    let budget = radio.tx_power - decode_2mbps;
    let ours = calibrated_path_loss()
        .distance_for_loss(Db(budget.0))
        .expect("within sweep");
    println!(
        "\n2 Mb/s range, calibrated outdoor model:   ~{:.0} m",
        ours.0
    );
    println!("2 Mb/s range assumed by ns-2 / GloMoSim:   250 m");
    println!(
        "ratio: {:.1}x — the paper: \"2-3 times higher than the values measured in practice\"",
        250.0 / ours.0
    );
    // And the root of the optimism: under the era's two-ray ground model
    // the same link budget would carry for most of a kilometer.
    let ns2 = TwoRayGround::ns2_default();
    let two_ray = ns2.distance_for_loss(Db(budget.0)).expect("within sweep");
    println!(
        "(the two-ray ground model would let this very radio reach ~{:.0} m)",
        two_ray.0
    );
}
