//! The paper's four-station experiment (Figures 5–7), instrumented.
//!
//! Two saturated sessions S1→S2 and S3→S4 on a line, 11 Mb/s, with the
//! asymmetric spacing of Figure 6. Prints per-session throughput plus the
//! MAC/PHY counters that explain *why* the sessions diverge: EIFS
//! deferrals (frames sensed but not decoded), retries, and drops.
//!
//! Run with `cargo run --release --example four_station [-- tcp] [-- rts]`.
//!
//! The run is traced through an [`IntervalMetricsSink`], so alongside the
//! window averages it prints the paper's actual deliverable: the per-second
//! throughput-vs-time series of both sessions (Figure 7's curves).

use desim::SimDuration;
use dot11_adhoc::trace::{IntervalMetricsSink, SharedSink};
use dot11_adhoc::{ScenarioBuilder, Traffic};
use dot11_phy::PhyRate;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tcp = args.iter().any(|a| a == "tcp");
    let rts = args.iter().any(|a| a == "rts");
    let traffic = if tcp {
        Traffic::BulkTcp { mss: 512 }
    } else {
        Traffic::SaturatedUdp {
            payload_bytes: 512,
            backlog: 10,
        }
    };

    let sink = SharedSink::new(IntervalMetricsSink::new(SimDuration::from_secs(1)));
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 25.0, 107.5, 132.5]) // Figure 6 geometry
        .rts(rts)
        .seed(1)
        .duration(SimDuration::from_secs(20))
        .warmup(SimDuration::from_secs(2))
        .flow(0, 1, traffic)
        .flow(2, 3, traffic)
        .build()
        .run_with(sink.clone());

    println!(
        "four stations, 11 Mb/s, {} / {}",
        if tcp { "TCP" } else { "UDP" },
        if rts { "RTS/CTS" } else { "basic access" }
    );
    for f in &report.flows {
        println!(
            "  session {} ({} -> {}): {:7.0} kb/s  ({} packets delivered, loss {:4.1}%)",
            f.flow,
            f.src,
            f.dst,
            f.throughput_kbps,
            f.delivered_packets,
            f.loss_rate * 100.0
        );
    }
    println!("\n  station | data_tx |   acks |  eifs | retries | drops | hdr/body err | tx/rx/busy/idle %");
    for n in &report.nodes {
        let a = n.airtime;
        let pct = |ns: u64| 100.0 * ns as f64 / a.total_ns().max(1) as f64;
        println!(
            "  {:>7} | {:>7} | {:>6} | {:>5} | {:>7} | {:>5} | {:>4}/{:<5} | {:2.0}/{:2.0}/{:2.0}/{:2.0}",
            n.node.to_string(),
            n.mac.data_tx,
            n.mac.ack_tx,
            n.mac.eifs_defers,
            n.mac.retries,
            n.mac.tx_dropped,
            n.phy.header_errors,
            n.phy.body_errors,
            pct(a.tx_ns),
            pct(a.rx_ns),
            pct(a.busy_ns),
            pct(a.idle_ns),
        );
    }
    // The idle share decomposed by *why* the station was silent — the
    // ledger's MAC-refined states (they sum to the idle column above).
    println!("\n  station |  nav |  difs | backoff | frozen | quiet  (% of run)");
    for n in &report.nodes {
        let a = n.airtime;
        let pct = |ns: u64| 100.0 * ns as f64 / a.total_ns().max(1) as f64;
        println!(
            "  {:>7} | {:>4.1} | {:>5.1} | {:>7.1} | {:>6.1} | {:>5.1}",
            n.node.to_string(),
            pct(a.nav_ns),
            pct(a.difs_ns),
            pct(a.backoff_ns),
            pct(a.frozen_ns),
            pct(a.quiet_ns),
        );
    }
    // The paper plots throughput versus *time*, not just window averages:
    // the traced interval series reproduces those curves. A bar is ~250 kb/s.
    let rows = sink.take().into_rows();
    println!("\n  throughput vs time (1 s windows; #: session 1, =: session 2)");
    for row in &rows {
        let kbps = |flow: u32| {
            row.flows
                .iter()
                .find(|f| f.flow == flow)
                .map_or(0.0, |f| f.kbps)
        };
        let (s1, s2) = (kbps(0), kbps(1));
        let bar = |k: f64, c: char| c.to_string().repeat((k / 250.0).round() as usize);
        println!(
            "  {:>4} s | {:6.0} {:<14} | {:6.0} {:<14}",
            row.index + 1,
            s1,
            bar(s1, '#'),
            s2,
            bar(s2, '='),
        );
    }

    // The paper's exposed-station story in one number: the share of time
    // S2 (the session-1 receiver) spends locked on frames it cannot use.
    let s2 = &report.nodes[1];
    println!(
        "\n  S1 (receiver of session 1) spends {:.0}% of airtime locked in reception —",
        100.0 * s2.airtime.rx_fraction()
    );
    println!("  mostly on session 2's frames it cannot decode (the exposed-station effect).");
}
