//! ARF dynamic rate switching vs the fixed rates (extension).
//!
//! The paper's §2: real 802.11b cards "may implement a dynamic rate
//! switching with the objective of improving performance" — the test-bed
//! pinned the rate instead. This example sweeps distance and shows
//! classic ARF (Kamerman & Monteban) riding the envelope of the four
//! fixed-rate curves: 11 Mb/s near the transmitter, stepping down to
//! 1 Mb/s where the paper's Figure 3 waterfalls kill the fast rates.
//!
//! Run with `cargo run --release --example arf_rate_switching`.

use desim::SimDuration;
use dot11_adhoc::experiments::arf::{arf_sweep, DISTANCES_M};
use dot11_adhoc::experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig {
        seed: 3,
        duration: SimDuration::from_secs(8),
        warmup: SimDuration::from_secs(1),
        threads: 1,
    };
    println!("ARF (starting at 2 Mb/s) vs the best fixed rate, saturated UDP:\n");
    println!(
        "{:>7} | {:>12} | {:>10} | {:>15} | {:>10}",
        "d (m)", "ARF kb/s", "ARF ends at", "best fixed kb/s", "best rate"
    );
    for row in arf_sweep(cfg, &DISTANCES_M) {
        println!(
            "{:>7.0} | {:>12.0} | {:>11} | {:>15.0} | {:>10}",
            row.distance_m,
            row.arf_kbps,
            row.arf_final_rate.to_string(),
            row.best_fixed_kbps,
            row.best_fixed_rate.to_string(),
        );
    }
    println!("\nARF climbs where the channel allows and falls back where it doesn't —");
    println!("the behaviour the paper's fixed-rate methodology deliberately disabled.");
}
