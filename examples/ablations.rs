//! Ablations of the design decisions called out in DESIGN.md §5.
//!
//! Reruns the asymmetric four-station experiment (Figure 7 geometry,
//! 11 Mb/s) with individual mechanisms disabled, to show which one each
//! observed effect rests on:
//!
//! * **D1** `--no-pcs`   — carrier sense no more sensitive than decoding
//!   (the naive `TX_range = PCS_range` simulation assumption);
//! * **D3** `--no-eifs`  — EIFS disabled after undecodable frames;
//! * **D4** `--still`    — no shadowing (knife-edge ranges);
//! * **D5** `--no-capture` — preamble capture disabled.
//!
//! Run with `cargo run --release --example ablations [-- tcp]`.

use desim::SimDuration;
use dot11_adhoc::{ScenarioBuilder, Traffic};
use dot11_mac::MacConfig;
use dot11_net::FlowId;
use dot11_phy::{DayProfile, PhyRate, RadioConfig};

#[derive(Clone, Copy)]
struct Knobs {
    eifs: bool,
    pcs: bool,
    capture: bool,
    still_channel: bool,
    /// D2: force control frames (RTS/CTS/ACK) to the data rate instead of
    /// the basic rate — removing the "control frames reserve 3x the data
    /// range" effect the paper highlights.
    control_at_data_rate: bool,
}

fn run(label: &str, knobs: Knobs, tcp: bool) {
    let traffic = if tcp {
        Traffic::BulkTcp { mss: 512 }
    } else {
        Traffic::SaturatedUdp {
            payload_bytes: 512,
            backlog: 10,
        }
    };
    let mut mac = MacConfig::new(PhyRate::R11);
    mac.eifs_enabled = knobs.eifs;
    if knobs.control_at_data_rate {
        mac.control_rate = mac.data_rate;
    }
    let mut radio = RadioConfig::dwl650();
    if !knobs.pcs {
        radio = radio.without_pcs_advantage();
    }
    radio.capture_enabled = knobs.capture;
    let day = if knobs.still_channel {
        DayProfile::still()
    } else {
        DayProfile::clear()
    };

    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 25.0, 107.5, 132.5])
        .mac_config(mac)
        .radio(radio)
        .day(day)
        .seed(1)
        .duration(SimDuration::from_secs(20))
        .warmup(SimDuration::from_secs(2))
        .flow(0, 1, traffic)
        .flow(2, 3, traffic)
        .run();

    let s1 = report.flow(FlowId(0)).throughput_kbps;
    let s2 = report.flow(FlowId(1)).throughput_kbps;
    println!(
        "{label:24} | S1->S2 {s1:7.0} kb/s | S3->S4 {s2:7.0} kb/s | imbalance {:6.2}x",
        if s1 > 0.0 { s2 / s1 } else { f64::INFINITY }
    );
}

fn main() {
    let tcp = std::env::args().any(|a| a == "tcp");
    let base = Knobs {
        eifs: true,
        pcs: true,
        capture: true,
        still_channel: false,
        control_at_data_rate: false,
    };
    println!(
        "Ablations on the Figure 7 scenario ({})\n",
        if tcp { "TCP" } else { "UDP" }
    );
    run("baseline", base, tcp);
    run("D1: PCS = TX range", Knobs { pcs: false, ..base }, tcp);
    run(
        "D2: control at data rate",
        Knobs {
            control_at_data_rate: true,
            ..base
        },
        tcp,
    );
    run(
        "D3: EIFS off",
        Knobs {
            eifs: false,
            ..base
        },
        tcp,
    );
    run(
        "D4: still channel",
        Knobs {
            still_channel: true,
            ..base
        },
        tcp,
    );
    run(
        "D5: capture off",
        Knobs {
            capture: false,
            ..base
        },
        tcp,
    );
}
