//! Integration: two-station scenarios against the analytic model.
//!
//! The simulator and the paper's equations were developed independently
//! (state machine vs closed form); agreement between them validates both.

use desim::SimDuration;
use dot11_testbed::adhoc::analytic::{max_throughput_eq, AccessScheme};
use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
use dot11_testbed::net::FlowId;
use dot11_testbed::phy::{DayProfile, PhyRate};

fn measure_udp(rate: PhyRate, rts: bool, payload: u32, seed: u64) -> f64 {
    let report = ScenarioBuilder::new(rate)
        .line(&[0.0, 5.0])
        .day(DayProfile::still()) // isolate MAC arithmetic from the channel
        .rts(rts)
        .seed(seed)
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: payload,
                backlog: 10,
            },
        )
        .run();
    report.flow(FlowId(0)).throughput_kbps / 1000.0
}

/// Saturated UDP matches Eq. (1)/(2) within a few percent at every rate,
/// packet size and access scheme — 16 cells, like Table 2.
#[test]
fn saturated_udp_matches_equations_at_all_rates() {
    for &rate in &PhyRate::ALL {
        for &payload in &[512u32, 1024] {
            for (rts, scheme) in [(false, AccessScheme::Basic), (true, AccessScheme::RtsCts)] {
                let sim = measure_udp(rate, rts, payload, 7);
                let model = max_throughput_eq(payload, rate, scheme);
                let rel = (sim - model).abs() / model;
                assert!(
                    rel < 0.06,
                    "{rate} m={payload} rts={rts}: sim {sim:.3} vs model {model:.3} ({rel:.3})"
                );
            }
        }
    }
}

/// The bandwidth-utilization headline: even at m=1024 less than half of
/// the 11 Mb/s nominal bandwidth is usable. (The paper's Table 2
/// arithmetic puts the bound at 43.5% — pinned by the analytic unit
/// tests; the simulated DCF, whose MAC header travels at the data rate,
/// lands slightly higher at ~46%.)
#[test]
fn utilization_headline_holds_in_simulation() {
    let sim = measure_udp(PhyRate::R11, false, 1024, 11);
    assert!(sim / 11.0 < 0.50, "utilization {:.3}", sim / 11.0);
    assert!(
        sim / 11.0 > 0.35,
        "sanity: simulator should still move data"
    );
}

/// TCP throughput sits below UDP at every rate (the Figure 2 effect), but
/// within a factor ~2 — the TCP-ACK cost is bounded.
#[test]
fn tcp_sits_below_udp_at_every_rate() {
    for &rate in &PhyRate::ALL {
        let udp = measure_udp(rate, false, 512, 3);
        let report = ScenarioBuilder::new(rate)
            .line(&[0.0, 5.0])
            .day(DayProfile::still())
            .seed(3)
            .duration(SimDuration::from_secs(6))
            .warmup(SimDuration::from_secs(1))
            .flow(0, 1, Traffic::BulkTcp { mss: 512 })
            .run();
        let tcp = report.flow(FlowId(0)).throughput_kbps / 1000.0;
        assert!(
            tcp < udp,
            "{rate}: TCP {tcp:.3} should be below UDP {udp:.3}"
        );
        assert!(
            tcp > udp * 0.5,
            "{rate}: TCP {tcp:.3} collapsed vs UDP {udp:.3}"
        );
    }
}

/// Same seed ⇒ bit-identical reports; different seed ⇒ different run.
#[test]
fn runs_are_deterministic_in_the_seed() {
    let run = |seed: u64| {
        ScenarioBuilder::new(PhyRate::R11)
            .line(&[0.0, 28.0]) // near the range edge: plenty of randomness
            .seed(seed)
            .duration(SimDuration::from_secs(3))
            .flow(
                0,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .run()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(
        a.flow(FlowId(0)).delivered_bytes,
        b.flow(FlowId(0)).delivered_bytes
    );
    assert_eq!(
        a.flow(FlowId(0)).offered_packets,
        b.flow(FlowId(0)).offered_packets
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.nodes[0].mac, b.nodes[0].mac);
    assert_eq!(a.nodes[1].phy, b.nodes[1].phy);
    let c = run(43);
    assert_ne!(
        (a.events, a.flow(FlowId(0)).delivered_bytes),
        (c.events, c.flow(FlowId(0)).delivered_bytes),
        "different seeds should diverge"
    );
}

/// Larger packets use the channel more efficiently (Table 2's m-trend),
/// in simulation.
#[test]
fn bigger_packets_are_more_efficient() {
    let small = measure_udp(PhyRate::R11, false, 512, 5);
    let large = measure_udp(PhyRate::R11, false, 1024, 5);
    assert!(large > small * 1.3, "1024 B {large:.3} vs 512 B {small:.3}");
}

/// Out of range there is silence, not errors: a 300 m link at 11 Mb/s
/// delivers nothing while the MAC drops everything at the retry limit.
#[test]
fn out_of_range_link_delivers_nothing() {
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 300.0])
        .seed(1)
        .duration(SimDuration::from_secs(3))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 5,
            },
        )
        .run();
    let f = report.flow(FlowId(0));
    assert_eq!(f.delivered_packets, 0);
    assert!(f.loss_rate > 0.99);
    assert!(
        report.nodes[0].mac.tx_dropped > 0,
        "retry-limit drops expected"
    );
    assert_eq!(report.nodes[1].mac.delivered, 0);
}

/// MAC-level duplicate filtering keeps UDP exactly-once on a clean link:
/// datagrams delivered == datagrams sent - queue residue, never more.
#[test]
fn udp_is_exactly_once_on_clean_link() {
    let report = ScenarioBuilder::new(PhyRate::R2)
        .line(&[0.0, 10.0])
        .day(DayProfile::still())
        .seed(9)
        .duration(SimDuration::from_secs(4))
        .flow(
            0,
            1,
            Traffic::CbrUdp {
                payload_bytes: 256,
                interval: SimDuration::from_millis(10),
                limit: Some(200),
            },
        )
        .run();
    let f = report.flow(FlowId(0));
    assert_eq!(f.offered_packets, 200);
    assert_eq!(
        f.delivered_packets, 200,
        "clean link: every datagram exactly once"
    );
    assert_eq!(f.delivered_bytes, 200 * 256);
}

/// Bianchi's multi-station saturation model against the simulator:
/// n saturated senders in one collision domain, n = 1..4. The simulated
/// aggregate throughput tracks the model's collision-degraded curve.
#[test]
fn bianchi_matches_simulation() {
    use dot11_testbed::adhoc::analytic::bianchi;
    for n in 1u32..=4 {
        // n senders clustered at x≈0, one common sink at 5 m: everyone
        // hears everyone (one collision domain, as the model assumes).
        let mut xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        xs.push(5.0);
        let mut b = ScenarioBuilder::new(PhyRate::R11)
            .line(&xs)
            .day(DayProfile::still())
            .seed(n as u64)
            .duration(SimDuration::from_secs(6))
            .warmup(SimDuration::from_secs(1));
        for i in 0..n {
            b = b.flow(
                i,
                n,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            );
        }
        let report = b.run();
        let sim_total = report.total_throughput_kbps() / 1000.0;
        let model = bianchi(n, 512, PhyRate::R11).throughput_mbps;
        let rel = (sim_total - model).abs() / model;
        assert!(
            rel < 0.12,
            "n={n}: sim {sim_total:.3} vs Bianchi {model:.3} Mb/s ({rel:.3})"
        );
    }
}
