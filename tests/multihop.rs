//! Integration: multi-hop forwarding over static routes.

use desim::SimDuration;
use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
use dot11_testbed::net::{FlowId, StaticRoutes};
use dot11_testbed::phy::{DayProfile, NodeId, PhyRate};

/// A 2-hop chain out of single-hop range: packets only arrive because
/// the relay forwards them, and the relay's counters prove it.
#[test]
fn relay_forwards_out_of_range_traffic() {
    // 0 —80m— 1 —80m— 2 at 2 Mb/s: 160 m end-to-end is far outside the
    // ~105 m single-hop range.
    let run = |routed: bool| {
        let mut b = ScenarioBuilder::new(PhyRate::R2)
            .line(&[0.0, 80.0, 160.0])
            .day(DayProfile::still())
            .seed(1)
            .duration(SimDuration::from_secs(4))
            .warmup(SimDuration::from_millis(500))
            .flow(
                0,
                2,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            );
        if routed {
            b = b.chain_routes();
        }
        b.run()
    };
    let direct = run(false);
    assert_eq!(
        direct.flow(FlowId(0)).delivered_packets,
        0,
        "160 m direct at 2 Mb/s must fail"
    );
    let routed = run(true);
    let f = routed.flow(FlowId(0));
    assert!(
        f.delivered_packets > 500,
        "forwarding should work: {}",
        f.delivered_packets
    );
    // The relay transmitted roughly as many data frames as it received.
    let relay = &routed.nodes[1];
    assert!(
        relay.mac.data_tx > 500,
        "relay transmitted {}",
        relay.mac.data_tx
    );
    assert!(
        relay.mac.delivered > 500,
        "relay received {}",
        relay.mac.delivered
    );
    // The sink saw data only from the relay (MAC-level src), while the
    // flow-level payload is from station 0 — checked implicitly by the
    // sink's flow accounting above.
}

/// TCP runs end-to-end over a 3-hop chain: data one way, pure ACKs the
/// other, both forwarded.
#[test]
fn tcp_works_over_three_hops() {
    let report = ScenarioBuilder::new(PhyRate::R2)
        .line(&[0.0, 80.0, 160.0, 240.0])
        .day(DayProfile::still())
        .chain_routes()
        .seed(2)
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .flow(0, 3, Traffic::BulkTcp { mss: 512 })
        .run();
    let f = report.flow(FlowId(0));
    assert!(
        f.throughput_kbps > 100.0,
        "3-hop TCP should make progress: {:.0} kb/s",
        f.throughput_kbps
    );
    // Both relays forwarded in both directions (data + TCP ACKs).
    for relay in [1usize, 2] {
        assert!(
            report.nodes[relay].mac.data_tx > 100,
            "relay {relay} tx {}",
            report.nodes[relay].mac.data_tx
        );
    }
}

/// Manual (non-chain) routes steer around a dead station.
#[test]
fn manual_routes_can_detour() {
    // Square-ish layout: 0 and 2 are 150 m apart (marginal at 2 Mb/s),
    // but 1 sits between them slightly off-axis. Route 0→2 via 1.
    let mut routes = StaticRoutes::new();
    routes.add(NodeId(0), NodeId(2), NodeId(1));
    let report = ScenarioBuilder::new(PhyRate::R2)
        .line(&[0.0, 75.0, 150.0])
        .day(DayProfile::still())
        .routes(routes)
        .seed(3)
        .duration(SimDuration::from_secs(4))
        .warmup(SimDuration::from_millis(500))
        .flow(
            0,
            2,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .run();
    let f = report.flow(FlowId(0));
    assert!(
        f.delivered_packets > 500,
        "detour should carry: {}",
        f.delivered_packets
    );
    assert!(
        report.nodes[1].mac.data_tx > 500,
        "relay must be on the path"
    );
}

/// The relay's interface queue is the chain's bottleneck: with a tiny
/// queue, end-to-end loss appears even though both links are clean.
#[test]
fn relay_queue_is_the_bottleneck() {
    use dot11_testbed::mac::MacConfig;
    let mut mac = MacConfig::new(PhyRate::R2);
    mac.queue_capacity = 2;
    let report = ScenarioBuilder::new(PhyRate::R2)
        .line(&[0.0, 80.0, 160.0])
        .day(DayProfile::still())
        .mac_config(mac)
        .chain_routes()
        .seed(4)
        .duration(SimDuration::from_secs(4))
        .warmup(SimDuration::from_millis(500))
        .flow(
            0,
            2,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 2,
            },
        )
        .run();
    let relay = &report.nodes[1];
    let f = report.flow(FlowId(0));
    // End-to-end still flows…
    assert!(f.delivered_packets > 200);
    // …but the relay dropped at its queue whenever the source burst
    // outpaced the second hop.
    assert!(
        relay.mac.queue_drops > 0 || f.loss_rate < 0.5,
        "tiny relay queue should drop or the chain self-clock: drops {}, loss {:.2}",
        relay.mac.queue_drops,
        f.loss_rate
    );
}
