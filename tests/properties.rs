//! Property-based tests over randomized full-stack scenarios.
//!
//! Each case builds a small random topology and traffic mix, runs it to
//! completion, and checks the invariants that must hold whatever the
//! draw: conservation (nothing delivered that was not sent), bounded
//! rates, loss within [0,1], and counter consistency.

use desim::SimDuration;
use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
use dot11_testbed::phy::PhyRate;
use proptest::prelude::*;

fn rate_strategy() -> impl Strategy<Value = PhyRate> {
    prop_oneof![
        Just(PhyRate::R1),
        Just(PhyRate::R2),
        Just(PhyRate::R5_5),
        Just(PhyRate::R11),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random 2-4 station lines with 1-2 UDP flows: conservation and
    /// bounds hold; reports are internally consistent.
    #[test]
    fn random_udp_scenarios_respect_invariants(
        rate in rate_strategy(),
        seed in 0u64..1000,
        rts in any::<bool>(),
        spacing in 5.0f64..120.0,
        stations in 2usize..5,
        two_flows in any::<bool>(),
    ) {
        let xs: Vec<f64> = (0..stations).map(|i| i as f64 * spacing).collect();
        let mut b = ScenarioBuilder::new(rate)
            .line(&xs)
            .rts(rts)
            .seed(seed)
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(100))
            .flow(0, (stations - 1) as u32, Traffic::SaturatedUdp { payload_bytes: 512, backlog: 5 });
        let flows = if two_flows && stations >= 3 {
            b = b.flow(1, 0, Traffic::SaturatedUdp { payload_bytes: 256, backlog: 5 });
            2
        } else {
            1
        };
        let report = b.run();
        prop_assert_eq!(report.flows.len(), flows);
        for f in &report.flows {
            // Conservation: delivery never exceeds what the source emitted.
            prop_assert!(f.delivered_packets <= f.offered_packets,
                "flow {} delivered {} > offered {}", f.flow, f.delivered_packets, f.offered_packets);
            prop_assert!(f.measured_bytes <= f.delivered_bytes);
            prop_assert!((0.0..=1.0).contains(&f.loss_rate));
            // Application throughput can never exceed the PHY rate.
            prop_assert!(f.throughput_kbps <= rate.bits_per_sec() / 1000.0,
                "flow {} at {:.0} kb/s exceeds {}", f.flow, f.throughput_kbps, rate);
        }
        // MAC counter consistency at every station. Every completion was
        // preceded by at least one transmission — a data frame, or (when
        // the exchange dies at the RTS stage) an RTS.
        for n in &report.nodes {
            prop_assert!(n.mac.tx_success <= n.mac.data_tx);
            prop_assert!(n.mac.tx_success + n.mac.tx_dropped <= n.mac.data_tx + n.mac.rts_tx);
            prop_assert!(n.phy.decoded + n.phy.body_errors + n.phy.header_errors <= n.phy.locks);
        }
        // Every delivered MSDU was delivered by some MAC.
        let delivered_mac: u64 = report.nodes.iter().map(|n| n.mac.delivered).sum();
        let delivered_flows: u64 = report.flows.iter().map(|f| f.delivered_packets).sum();
        prop_assert!(delivered_flows <= delivered_mac);
    }

    /// TCP flows never deliver out of thin air and never exceed the line
    /// rate; senders account for every segment.
    #[test]
    fn random_tcp_scenarios_respect_invariants(
        rate in rate_strategy(),
        seed in 0u64..1000,
        distance in 5.0f64..100.0,
    ) {
        let report = ScenarioBuilder::new(rate)
            .line(&[0.0, distance])
            .seed(seed)
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(100))
            .flow(0, 1, Traffic::BulkTcp { mss: 512 })
            .run();
        let f = &report.flows[0];
        prop_assert!(f.delivered_bytes <= f.offered_packets * 512,
            "delivered {} bytes from {} segments", f.delivered_bytes, f.offered_packets);
        prop_assert!(f.throughput_kbps <= rate.bits_per_sec() / 1000.0);
        prop_assert_eq!(f.loss_rate, 0.0, "TCP reports no datagram loss");
    }

    /// Determinism as a property: any scenario re-run with its own seed
    /// reproduces its event count and deliveries exactly.
    #[test]
    fn any_scenario_is_deterministic(
        rate in rate_strategy(),
        seed in 0u64..200,
        distance in 10.0f64..140.0,
    ) {
        let run = || ScenarioBuilder::new(rate)
            .line(&[0.0, distance])
            .seed(seed)
            .duration(SimDuration::from_millis(700))
            .warmup(SimDuration::from_millis(100))
            .flow(0, 1, Traffic::SaturatedUdp { payload_bytes: 512, backlog: 5 })
            .run();
        let a = run();
        let b = run();
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
        prop_assert_eq!(a.nodes[0].mac, b.nodes[0].mac);
        prop_assert_eq!(a.nodes[1].phy, b.nodes[1].phy);
    }
}
