//! Randomized full-stack scenario tests.
//!
//! Each case builds a small random topology and traffic mix, runs it to
//! completion, and checks the invariants that must hold whatever the
//! draw: conservation (nothing delivered that was not sent), bounded
//! rates, loss within [0,1], and counter consistency.
//!
//! Formerly proptest-based; the container build has no network access to
//! fetch crates, so cases are now generated from `desim::SimRng` — a fixed
//! pseudo-random sample, deterministic across runs.

use desim::{SimDuration, SimRng};
use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
use dot11_testbed::phy::PhyRate;

const RATES: [PhyRate; 4] = [PhyRate::R1, PhyRate::R2, PhyRate::R5_5, PhyRate::R11];

fn pick_rate(rng: &mut SimRng) -> PhyRate {
    RATES[rng.gen_range_u32(0, RATES.len() as u32) as usize]
}

/// Random 2-4 station lines with 1-2 UDP flows: conservation and
/// bounds hold; reports are internally consistent.
#[test]
fn random_udp_scenarios_respect_invariants() {
    let mut rng = SimRng::from_seed(0x801_1001);
    for case in 0..24u32 {
        let rate = pick_rate(&mut rng);
        let seed = rng.gen_range_u32(0, 1000) as u64;
        let rts = rng.gen_bool(0.5);
        let spacing = 5.0 + rng.gen_f64() * 115.0;
        let stations = rng.gen_range_u32(2, 5) as usize;
        let two_flows = rng.gen_bool(0.5);

        let xs: Vec<f64> = (0..stations).map(|i| i as f64 * spacing).collect();
        let mut b = ScenarioBuilder::new(rate)
            .line(&xs)
            .rts(rts)
            .seed(seed)
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(100))
            .flow(
                0,
                (stations - 1) as u32,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 5,
                },
            );
        let flows = if two_flows && stations >= 3 {
            b = b.flow(
                1,
                0,
                Traffic::SaturatedUdp {
                    payload_bytes: 256,
                    backlog: 5,
                },
            );
            2
        } else {
            1
        };
        let report = b.run();
        assert_eq!(report.flows.len(), flows);
        for f in &report.flows {
            // Conservation: delivery never exceeds what the source emitted.
            assert!(
                f.delivered_packets <= f.offered_packets,
                "case {case}: flow {} delivered {} > offered {}",
                f.flow,
                f.delivered_packets,
                f.offered_packets
            );
            assert!(f.measured_bytes <= f.delivered_bytes, "case {case}");
            assert!((0.0..=1.0).contains(&f.loss_rate), "case {case}");
            // Application throughput can never exceed the PHY rate.
            assert!(
                f.throughput_kbps <= rate.bits_per_sec() / 1000.0,
                "case {case}: flow {} at {:.0} kb/s exceeds {}",
                f.flow,
                f.throughput_kbps,
                rate
            );
        }
        // MAC counter consistency at every station. Every completion was
        // preceded by at least one transmission — a data frame, or (when
        // the exchange dies at the RTS stage) an RTS.
        for n in &report.nodes {
            assert!(n.mac.tx_success <= n.mac.data_tx, "case {case}");
            assert!(
                n.mac.tx_success + n.mac.tx_dropped <= n.mac.data_tx + n.mac.rts_tx,
                "case {case}"
            );
            assert!(
                n.phy.decoded + n.phy.body_errors + n.phy.header_errors <= n.phy.locks,
                "case {case}"
            );
        }
        // Every delivered MSDU was delivered by some MAC.
        let delivered_mac: u64 = report.nodes.iter().map(|n| n.mac.delivered).sum();
        let delivered_flows: u64 = report.flows.iter().map(|f| f.delivered_packets).sum();
        assert!(delivered_flows <= delivered_mac, "case {case}");
    }
}

/// TCP flows never deliver out of thin air and never exceed the line
/// rate; senders account for every segment.
#[test]
fn random_tcp_scenarios_respect_invariants() {
    let mut rng = SimRng::from_seed(0x801_1002);
    for case in 0..24u32 {
        let rate = pick_rate(&mut rng);
        let seed = rng.gen_range_u32(0, 1000) as u64;
        let distance = 5.0 + rng.gen_f64() * 95.0;
        let report = ScenarioBuilder::new(rate)
            .line(&[0.0, distance])
            .seed(seed)
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(100))
            .flow(0, 1, Traffic::BulkTcp { mss: 512 })
            .run();
        let f = &report.flows[0];
        assert!(
            f.delivered_bytes <= f.offered_packets * 512,
            "case {case}: delivered {} bytes from {} segments",
            f.delivered_bytes,
            f.offered_packets
        );
        assert!(
            f.throughput_kbps <= rate.bits_per_sec() / 1000.0,
            "case {case}"
        );
        assert_eq!(
            f.loss_rate, 0.0,
            "case {case}: TCP reports no datagram loss"
        );
    }
}

/// Determinism as a property: any scenario re-run with its own seed
/// reproduces its event count and deliveries exactly.
#[test]
fn any_scenario_is_deterministic() {
    let mut rng = SimRng::from_seed(0x801_1003);
    for case in 0..12u32 {
        let rate = pick_rate(&mut rng);
        let seed = rng.gen_range_u32(0, 200) as u64;
        let distance = 10.0 + rng.gen_f64() * 130.0;
        let run = || {
            ScenarioBuilder::new(rate)
                .line(&[0.0, distance])
                .seed(seed)
                .duration(SimDuration::from_millis(700))
                .warmup(SimDuration::from_millis(100))
                .flow(
                    0,
                    1,
                    Traffic::SaturatedUdp {
                        payload_bytes: 512,
                        backlog: 5,
                    },
                )
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.events, b.events, "case {case}");
        assert_eq!(
            a.flows[0].delivered_bytes, b.flows[0].delivered_bytes,
            "case {case}"
        );
        assert_eq!(a.nodes[0].mac, b.nodes[0].mac, "case {case}");
        assert_eq!(a.nodes[1].phy, b.nodes[1].phy, "case {case}");
    }
}
