//! Randomized full-stack scenario tests.
//!
//! Each case builds a small random topology and traffic mix, runs it to
//! completion, and checks the invariants that must hold whatever the
//! draw: conservation (nothing delivered that was not sent), bounded
//! rates, loss within [0,1], and counter consistency.
//!
//! Formerly proptest-based; the container build has no network access to
//! fetch crates, so cases are now generated from `desim::SimRng` — a fixed
//! pseudo-random sample, deterministic across runs.

use desim::{SimDuration, SimRng};
use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
use dot11_testbed::phy::PhyRate;

const RATES: [PhyRate; 4] = [PhyRate::R1, PhyRate::R2, PhyRate::R5_5, PhyRate::R11];

fn pick_rate(rng: &mut SimRng) -> PhyRate {
    RATES[rng.gen_range_u32(0, RATES.len() as u32) as usize]
}

/// Random 2-4 station lines with 1-2 UDP flows: conservation and
/// bounds hold; reports are internally consistent.
#[test]
fn random_udp_scenarios_respect_invariants() {
    let mut rng = SimRng::from_seed(0x801_1001);
    for case in 0..24u32 {
        let rate = pick_rate(&mut rng);
        let seed = rng.gen_range_u32(0, 1000) as u64;
        let rts = rng.gen_bool(0.5);
        let spacing = 5.0 + rng.gen_f64() * 115.0;
        let stations = rng.gen_range_u32(2, 5) as usize;
        let two_flows = rng.gen_bool(0.5);

        let xs: Vec<f64> = (0..stations).map(|i| i as f64 * spacing).collect();
        let mut b = ScenarioBuilder::new(rate)
            .line(&xs)
            .rts(rts)
            .seed(seed)
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(100))
            .flow(
                0,
                (stations - 1) as u32,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 5,
                },
            );
        let flows = if two_flows && stations >= 3 {
            b = b.flow(
                1,
                0,
                Traffic::SaturatedUdp {
                    payload_bytes: 256,
                    backlog: 5,
                },
            );
            2
        } else {
            1
        };
        let report = b.run();
        assert_eq!(report.flows.len(), flows);
        for f in &report.flows {
            // Conservation: delivery never exceeds what the source emitted.
            assert!(
                f.delivered_packets <= f.offered_packets,
                "case {case}: flow {} delivered {} > offered {}",
                f.flow,
                f.delivered_packets,
                f.offered_packets
            );
            assert!(f.measured_bytes <= f.delivered_bytes, "case {case}");
            assert!((0.0..=1.0).contains(&f.loss_rate), "case {case}");
            // Application throughput can never exceed the PHY rate.
            assert!(
                f.throughput_kbps <= rate.bits_per_sec() / 1000.0,
                "case {case}: flow {} at {:.0} kb/s exceeds {}",
                f.flow,
                f.throughput_kbps,
                rate
            );
        }
        // MAC counter consistency at every station. Every completion was
        // preceded by at least one transmission — a data frame, or (when
        // the exchange dies at the RTS stage) an RTS.
        for n in &report.nodes {
            assert!(n.mac.tx_success <= n.mac.data_tx, "case {case}");
            assert!(
                n.mac.tx_success + n.mac.tx_dropped <= n.mac.data_tx + n.mac.rts_tx,
                "case {case}"
            );
            assert!(
                n.phy.decoded + n.phy.body_errors + n.phy.header_errors <= n.phy.locks,
                "case {case}"
            );
        }
        // Every delivered MSDU was delivered by some MAC.
        let delivered_mac: u64 = report.nodes.iter().map(|n| n.mac.delivered).sum();
        let delivered_flows: u64 = report.flows.iter().map(|f| f.delivered_packets).sum();
        assert!(delivered_flows <= delivered_mac, "case {case}");
    }
}

/// TCP flows never deliver out of thin air and never exceed the line
/// rate; senders account for every segment.
#[test]
fn random_tcp_scenarios_respect_invariants() {
    let mut rng = SimRng::from_seed(0x801_1002);
    for case in 0..24u32 {
        let rate = pick_rate(&mut rng);
        let seed = rng.gen_range_u32(0, 1000) as u64;
        let distance = 5.0 + rng.gen_f64() * 95.0;
        let report = ScenarioBuilder::new(rate)
            .line(&[0.0, distance])
            .seed(seed)
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(100))
            .flow(0, 1, Traffic::BulkTcp { mss: 512 })
            .run();
        let f = &report.flows[0];
        assert!(
            f.delivered_bytes <= f.offered_packets * 512,
            "case {case}: delivered {} bytes from {} segments",
            f.delivered_bytes,
            f.offered_packets
        );
        assert!(
            f.throughput_kbps <= rate.bits_per_sec() / 1000.0,
            "case {case}"
        );
        assert_eq!(
            f.loss_rate, 0.0,
            "case {case}: TCP reports no datagram loss"
        );
    }
}

/// Determinism as a property: any scenario re-run with its own seed
/// reproduces its event count and deliveries exactly.
#[test]
fn any_scenario_is_deterministic() {
    let mut rng = SimRng::from_seed(0x801_1003);
    for case in 0..12u32 {
        let rate = pick_rate(&mut rng);
        let seed = rng.gen_range_u32(0, 200) as u64;
        let distance = 10.0 + rng.gen_f64() * 130.0;
        let run = || {
            ScenarioBuilder::new(rate)
                .line(&[0.0, distance])
                .seed(seed)
                .duration(SimDuration::from_millis(700))
                .warmup(SimDuration::from_millis(100))
                .flow(
                    0,
                    1,
                    Traffic::SaturatedUdp {
                        payload_bytes: 512,
                        backlog: 5,
                    },
                )
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.events, b.events, "case {case}");
        assert_eq!(
            a.flows[0].delivered_bytes, b.flows[0].delivered_bytes,
            "case {case}"
        );
        assert_eq!(a.nodes[0].mac, b.nodes[0].mac, "case {case}");
        assert_eq!(a.nodes[1].phy, b.nodes[1].phy, "case {case}");
    }
}

/// Lookahead-horizon soundness on randomized disk fields: under any
/// station partition, no cross-shard delivery can arrive before
/// `now + horizon`, where `horizon` is what
/// [`Medium::frontier_links`](dot11_testbed::phy::Medium) reports for
/// the partition's frontier. This is the invariant the sharded executor
/// leans on — a transmission committed "now" cannot influence another
/// shard until at least one horizon later — checked here directly
/// against the delivery schedule the medium actually produces.
#[test]
fn cross_shard_deliveries_respect_the_lookahead_horizon() {
    use desim::SimTime;
    use dot11_testbed::adhoc::ShardMap;
    use dot11_testbed::phy::{
        CullPolicy, DayProfile, DualSlope, LogDistance, Medium, MediumConfig, Meters, NodeId,
        Position, Preamble, Shadowing,
    };

    let mut rng = SimRng::from_seed(0x801_1004);
    for case in 0..10u32 {
        let n = 16 + rng.gen_range_u32(0, 80);
        let radius = 200.0 + rng.gen_f64() * 1800.0;
        let shards = 2 + rng.gen_range_u32(0, 7) as usize;
        let positions: Vec<Position> = (0..n)
            .map(|_| {
                let r = radius * rng.gen_f64().sqrt();
                let theta = 2.0 * std::f64::consts::PI * rng.gen_f64();
                Position {
                    x: r * theta.cos(),
                    y: r * theta.sin(),
                }
            })
            .collect();
        let day = DayProfile::clear();
        let delay = SimDuration::from_micros(1);
        let mut medium = Medium::new(
            positions,
            Shadowing::new(
                day.clone(),
                SimRng::from_seed(case as u64).substream(b"shadow"),
            ),
            MediumConfig {
                path_loss: DualSlope {
                    near: LogDistance::anchored_at_free_space_1m(3.0),
                    breakpoint: Meters(500.0),
                    far_exponent: 4.0,
                }
                .into(),
                day,
                propagation_delay: delay,
                cull: CullPolicy::Full,
            },
        );

        let map = ShardMap::spatial(&medium, shards);
        let frontier = medium.frontier_links(map.assignment());
        // Propagation delay is uniform, so the conservative horizon is
        // exactly it — and counting is consistent with the CSR.
        assert_eq!(frontier.horizon, delay, "case {case}");
        assert!(frontier.cross_links <= frontier.total_links, "case {case}");
        let csr_total: usize = (0..n).map(|i| medium.audible_count(NodeId(i))).sum();
        assert_eq!(frontier.total_links, csr_total, "case {case}");
        // Brute-force recount of the frontier from the audible sets.
        let mut cross = 0usize;
        for tx in 0..n {
            cross += medium
                .audible_set(NodeId(tx))
                .iter()
                .filter(|rx| map.shard_of(NodeId(tx)) != map.shard_of(**rx))
                .count();
        }
        assert_eq!(frontier.cross_links, cross, "case {case}");

        // The soundness property itself: transmit from a handful of
        // random stations at random times and verify every cross-shard
        // delivery in the schedule lands at or after now + horizon.
        for _ in 0..8 {
            let tx = NodeId(rng.gen_range_u32(0, n));
            let now = SimTime::ZERO + SimDuration::from_nanos(rng.gen_range_u32(0, 1 << 30) as u64);
            let (_, _, deliveries) = medium.transmit(
                tx,
                dot11_testbed::phy::Dbm(15.0),
                PhyRate::R2,
                512,
                Preamble::Long,
                now,
            );
            for (rx, sig) in deliveries.iter() {
                if map.shard_of(tx) != map.shard_of(*rx) {
                    assert!(
                        sig.starts_at >= now + frontier.horizon,
                        "case {case}: cross-shard delivery {tx:?}->{rx:?} at {} < horizon {}",
                        sig.starts_at,
                        now + frontier.horizon,
                    );
                }
            }
        }
    }
}
