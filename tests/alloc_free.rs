//! Counting-allocator proof that the frame pipeline is allocation-free.
//!
//! PR 3's contract: once a world is warmed up (buffer pools filled, event
//! slab and hash maps at their high-water sizes), dispatching events —
//! including every transmitted frame's scatter across receivers — touches
//! the heap zero times. This binary swaps in a counting global allocator
//! and drives a four-station saturated-UDP run in two segments: a warm-up
//! segment that is allowed to allocate, and a measured steady-state
//! segment that must not.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use desim::{SimDuration, SimTime};
use dot11_phy::PhyRate;
use dot11_testbed::adhoc::analytic::AccessScheme;
use dot11_testbed::adhoc::experiments::four_station::{
    scenario, FourStationLayout, SessionTransport,
};
use dot11_testbed::adhoc::experiments::ExpConfig;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` verbatim; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_frame_pipeline_does_not_allocate() {
    let cfg = ExpConfig {
        seed: 3,
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_millis(250),
        threads: 1,
    };
    let mut world = scenario(
        cfg,
        PhyRate::R11,
        FourStationLayout::AsymmetricAt11,
        SessionTransport::Udp,
        AccessScheme::Basic,
    )
    .into_world();

    // Warm-up: pools, the event slab, and the in-flight map grow to their
    // steady-state footprint here.
    world.step_until(SimTime::ZERO + SimDuration::from_millis(500));

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    world.step_until(SimTime::ZERO + SimDuration::from_millis(1500));
    let during = ALLOC_CALLS.load(Ordering::Relaxed) - before;

    assert_eq!(
        during, 0,
        "steady-state second of four-station traffic hit the allocator \
         {during} times — the frame pipeline is supposed to reuse buffers"
    );
}
