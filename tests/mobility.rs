//! Mobility equivalence: the incremental epoch path must be
//! **byte-identical** to rebuilding the medium from scratch at every
//! epoch — the same discipline as the cull-invisibility and
//! sharded-vs-serial proofs.
//!
//! `MobilityConfig::rebuild_epochs` selects the reference mode: identical
//! movement model, identical schedule, but every `TopologyUpdate` tears
//! the medium down and reconstructs it at the new positions (transplanting
//! the unmoved links' cached state and RNG substreams). These tests run
//! every mobile scenario both ways and compare the full deterministic
//! report — flow observables, per-node counters, event-kind histogram,
//! queue high-water, and the link-churn totals themselves.

use desim::SimDuration;
use dot11_testbed::adhoc::mobility::parse_trace;
use dot11_testbed::adhoc::stats::MobilityStats;
use dot11_testbed::adhoc::{MobilityConfig, RunReport, Scenario, ScenarioBuilder, Traffic};
use dot11_testbed::phy::PhyRate;

const SATURATED: Traffic = Traffic::SaturatedUdp {
    payload_bytes: 512,
    backlog: 10,
};

/// Serializes every deterministic field of a report (everything except
/// the wall clock and profile) so equal bits produce equal bytes.
fn report_json(r: &RunReport) -> String {
    let flows: Vec<String> = r
        .flows
        .iter()
        .map(|f| {
            format!(
                "{{\"flow\":{},\"delivered_bytes\":{},\"delivered_packets\":{},\
                 \"offered_packets\":{},\"throughput_kbps\":{},\"loss_rate\":{},\
                 \"mean_delay_ms\":{},\"max_delay_ms\":{}}}",
                f.flow.0,
                f.delivered_bytes,
                f.delivered_packets,
                f.offered_packets,
                f.throughput_kbps,
                f.loss_rate,
                f.mean_delay_ms,
                f.max_delay_ms
            )
        })
        .collect();
    let nodes: Vec<String> = r
        .nodes
        .iter()
        .map(|n| format!("\"{}\"", format!("{n:?}").replace('"', "'")))
        .collect();
    let kinds: Vec<String> = r
        .engine
        .kinds
        .iter_named()
        .iter()
        .map(|(name, v)| format!("\"{name}\":{v}"))
        .collect();
    format!(
        "{{\"flows\":[{}],\"nodes\":[{}],\"events\":{},\"queue_high_water\":{},\
         \"kinds\":{{{}}},\"mobility\":\"{:?}\"}}",
        flows.join(","),
        nodes.join(","),
        r.events,
        r.engine.queue_high_water,
        kinds.join(","),
        r.engine.mobility,
    )
}

/// Runs `mk`'s scenario with incremental epoch commits and with
/// rebuild-per-epoch commits and asserts byte-identical reports; returns
/// the incremental run's report for further assertions.
fn assert_commit_mode_invariant(
    label: &str,
    mk: impl Fn(MobilityConfig) -> Scenario,
    mobility: MobilityConfig,
) -> RunReport {
    let incremental = mk(mobility.clone().with_rebuild_epochs(false)).run();
    let rebuilt = mk(mobility.with_rebuild_epochs(true)).run();
    assert_eq!(
        report_json(&incremental),
        report_json(&rebuilt),
        "{label}: incremental epochs diverged from the rebuild reference"
    );
    assert!(
        incremental.engine.mobility.epochs > 0,
        "{label}: the run never committed an epoch"
    );
    incremental
}

/// Random waypoint on the disk — the headline mobile scenario family.
/// Fast walkers and a short epoch give every commit a real moved set.
#[test]
fn waypoint_disk_incremental_matches_rebuild() {
    let mobility = MobilityConfig::waypoint(50.0).with_epoch(SimDuration::from_millis(100));
    let report = assert_commit_mode_invariant(
        "waypoint disk24",
        |m| {
            ScenarioBuilder::new(PhyRate::R2)
                .random_disk(24, 2_000.0, 7)
                .seed(42)
                .duration(SimDuration::from_secs(1))
                .warmup(SimDuration::from_millis(200))
                .flow(0, 1, SATURATED)
                .flow(2, 3, SATURATED)
                .mobility(m)
                .build()
        },
        mobility,
    );
    assert_eq!(report.engine.mobility.epochs, 10);
    assert_eq!(report.engine.kinds.topology_update, 10);
    assert!(report.engine.mobility.stations_moved >= 10 * 24);
}

/// Trace playback: one station of a five-station chain walks away and
/// back on an explicit piecewise-linear track.
#[test]
fn trace_playback_incremental_matches_rebuild() {
    let trace = parse_trace(
        "# station 2 wanders north and returns; station 4 drifts east\n\
         0.0 2 400 0\n\
         0.4 2 400 600\n\
         0.9 2 400 0\n\
         0.0 4 800 0\n\
         1.0 4 2400 0\n",
    )
    .expect("trace parses");
    let mobility = MobilityConfig::trace(trace).with_epoch(SimDuration::from_millis(50));
    let report = assert_commit_mode_invariant(
        "trace chain5",
        |m| {
            ScenarioBuilder::new(PhyRate::R2)
                .chain(5, 200.0)
                .seed(9)
                .duration(SimDuration::from_millis(900))
                .warmup(SimDuration::from_millis(100))
                .flow(0, 4, SATURATED)
                .mobility(m)
                .build()
        },
        mobility,
    );
    // Two stations move every epoch (the tracks never pause inside the
    // run), the other three never do.
    assert_eq!(report.engine.mobility.epochs, 18);
    assert_eq!(report.engine.mobility.stations_moved, 2 * 18);
}

/// The moved-chain case: a 16-station relay chain whose middle block is
/// dragged far off the line and back by a trace — audible sets churn
/// hard, the relay flow keeps running throughout.
#[test]
fn moved_chain_incremental_matches_rebuild() {
    let mut trace = String::new();
    for (i, node) in (6..10u32).enumerate() {
        let x = node as f64 * 140.0;
        // Staggered excursions: each block member leaves at a different
        // epoch and travels a different distance.
        let peak = 900.0 + 350.0 * i as f64;
        trace.push_str(&format!("0.0 {node} {x} 0\n"));
        trace.push_str(&format!("{} {node} {x} {peak}\n", 0.3 + 0.05 * i as f64));
        trace.push_str(&format!("0.8 {node} {x} 0\n"));
    }
    let mobility = MobilityConfig::trace(parse_trace(&trace).expect("trace parses"))
        .with_epoch(SimDuration::from_millis(100));
    assert_commit_mode_invariant(
        "moved chain16",
        |m| {
            ScenarioBuilder::new(PhyRate::R2)
                .chain(16, 140.0)
                .seed(5)
                .duration(SimDuration::from_millis(800))
                .warmup(SimDuration::from_millis(100))
                .flow(0, 15, SATURATED)
                .mobility(m)
                .build()
        },
        mobility,
    );
}

/// A mobile run sharded across worker threads must equal the serial
/// schedule byte for byte — the epoch handler re-bins the spatial shard
/// map, and that re-bin must only move prework between lanes, never
/// change results.
#[test]
fn mobile_disk_is_thread_invariant() {
    let mk = |threads: usize| {
        ScenarioBuilder::new(PhyRate::R2)
            .random_disk(48, 3_000.0, 7)
            .seed(11)
            .duration(SimDuration::from_millis(600))
            .warmup(SimDuration::from_millis(100))
            .flow(0, 1, SATURATED)
            .flow(2, 3, SATURATED)
            .mobility(MobilityConfig::waypoint(40.0).with_epoch(SimDuration::from_millis(100)))
            .threads(threads)
            .build()
    };
    let serial = report_json(&mk(1).run());
    for threads in [2, 8] {
        assert_eq!(
            serial,
            report_json(&mk(threads).run()),
            "threads={threads} diverged on the mobile disk"
        );
    }
}

/// The churn counters are part of the deterministic contract: for a given
/// scenario and seed they are pinned values, not statistics. (The update
/// that breaks this either changed the movement model, the epoch
/// schedule, or the incremental path's dirty-set computation — all of
/// which the goldens and the rebuild-identity tests triangulate.)
#[test]
fn churn_counters_are_pinned_per_seed() {
    let run = |seed: u64| {
        ScenarioBuilder::new(PhyRate::R2)
            .chain(12, 1_500.0)
            .seed(seed)
            .duration(SimDuration::from_secs(2))
            .warmup(SimDuration::from_millis(100))
            .flow(0, 11, SATURATED)
            .mobility(MobilityConfig::waypoint(600.0).with_epoch(SimDuration::from_millis(250)))
            .build()
            .run()
            .engine
            .mobility
    };
    // Same seed, same counters — and exactly these, pinned like the
    // golden digests. The movement model draws from `mobility/<i>`
    // substreams of the run seed, so seed 2's walk differs.
    let pinned = MobilityStats {
        epochs: 8,
        stations_moved: 96,
        slices_recomputed: 96,
        links_dirtied: 170,
        links_recomputed: 166,
        audible_added: 4,
        audible_removed: 8,
    };
    assert_eq!(run(2), pinned);
    assert_eq!(run(2), pinned, "same-seed churn must be reproducible");
    let other = run(3);
    assert_ne!(other, pinned, "the run seed must reach the movement model");
    assert_eq!(other.epochs, 8, "the epoch schedule is seed-independent");
}

/// Mobility off (the default) stays inert: no topology events, zeroed
/// churn block — static scenarios are untouched by the mobility engine.
#[test]
fn static_scenarios_report_zero_mobility() {
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 10.0])
        .duration(SimDuration::from_millis(300))
        .warmup(SimDuration::from_millis(50))
        .flow(0, 1, SATURATED)
        .run();
    assert_eq!(report.engine.mobility, MobilityStats::default());
    assert_eq!(report.engine.kinds.topology_update, 0);
}
