//! Integration: the paper's experiments hold their qualitative shape.
//!
//! These are the claims EXPERIMENTS.md records; each test pins one of
//! them at quick settings (the `repro` binary runs the full versions).

use desim::SimDuration;
use dot11_testbed::adhoc::analytic::AccessScheme;
use dot11_testbed::adhoc::experiments::four_station::{
    cell, figure12, figure7, figure9, SessionTransport,
};
use dot11_testbed::adhoc::experiments::ExpConfig;

fn cfg() -> ExpConfig {
    ExpConfig {
        duration: SimDuration::from_secs(8),
        warmup: SimDuration::from_secs(1),
        ..ExpConfig::quick()
    }
}

/// Figure 7: at 11 Mb/s the two sessions interact strongly and session 2
/// wins, under both access schemes — even though S1 and S3 are far
/// outside each other's transmission range.
#[test]
fn figure7_session2_wins_at_11mbps() {
    let cells = figure7(cfg());
    for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
        let udp = cell(&cells, SessionTransport::Udp, scheme);
        assert!(
            udp.imbalance() > 1.4,
            "{scheme}: UDP session 2 should win, got {:.0}/{:.0}",
            udp.session1_kbps,
            udp.session2_kbps
        );
        assert!(
            udp.session1_kbps > 50.0,
            "{scheme}: session 1 should not be silent"
        );
    }
}

/// Figure 7 (TCP): the unfairness persists under TCP but the *relative*
/// difference shrinks versus UDP (the paper: "still exist but are
/// reduced").
#[test]
fn figure7_tcp_reduces_the_difference() {
    let cells = figure7(cfg());
    let udp = cell(&cells, SessionTransport::Udp, AccessScheme::Basic);
    let tcp = cell(&cells, SessionTransport::Tcp, AccessScheme::Basic);
    assert!(
        tcp.imbalance() > 1.2,
        "TCP imbalance should persist: {:.2}",
        tcp.imbalance()
    );
    assert!(
        tcp.imbalance() < udp.imbalance() * 1.15,
        "TCP should not be more unfair than UDP: {:.2} vs {:.2}",
        tcp.imbalance(),
        udp.imbalance()
    );
    assert!(
        tcp.session1_kbps > 100.0,
        "TCP session 1 moves data: {:.0}",
        tcp.session1_kbps
    );
}

/// Figure 9: at 2 Mb/s every station shares a more uniform channel view
/// and the system is visibly more balanced than at 11 Mb/s.
#[test]
fn figure9_balances_at_2mbps() {
    let c = cfg();
    let at11 = figure7(c);
    let at2 = figure9(c);
    for transport in [SessionTransport::Udp, SessionTransport::Tcp] {
        let fast = cell(&at11, transport, AccessScheme::Basic).imbalance();
        let slow = cell(&at2, transport, AccessScheme::Basic).imbalance();
        assert!(
            slow < fast,
            "{transport}: 2 Mb/s should be more balanced: {slow:.2} vs {fast:.2} at 11 Mb/s"
        );
    }
    let udp2 = cell(&at2, SessionTransport::Udp, AccessScheme::Basic);
    assert!(
        udp2.imbalance() < 2.6,
        "2 Mb/s UDP imbalance {:.2}",
        udp2.imbalance()
    );
    assert!(udp2.session1_kbps > 200.0 && udp2.session2_kbps > 200.0);
}

/// Figure 12: the symmetric scenario at 2 Mb/s is near-fair for both
/// transports and both schemes.
#[test]
fn figure12_symmetric_2mbps_is_fair() {
    let cells = figure12(cfg());
    for c in &cells {
        let imb = c.imbalance();
        assert!(
            (0.6..1.7).contains(&imb),
            "{} {} should be near-fair, got {:.2} ({:.0}/{:.0} kb/s)",
            c.transport,
            c.scheme,
            imb,
            c.session1_kbps,
            c.session2_kbps
        );
    }
}

/// Both sessions always lose versus an uncontended link: the sessions
/// share capacity even when out of transmission range (the paper's
/// "interdependencies extend beyond the transmission range").
#[test]
fn sessions_share_capacity_beyond_tx_range() {
    use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
    use dot11_testbed::net::FlowId;
    use dot11_testbed::phy::PhyRate;

    let c = cfg();
    // Uncontended session-1-like link (same 25 m geometry, no session 2).
    let alone = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 25.0])
        .seed(c.seed)
        .duration(c.duration)
        .warmup(c.warmup)
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .run()
        .flow(FlowId(0))
        .throughput_kbps;
    let cells = figure7(c);
    let udp = cell(&cells, SessionTransport::Udp, AccessScheme::Basic);
    // Session 1 pays heavily for session 2's presence even though S1 and
    // S3 cannot decode each other at all; the combined goodput also stays
    // below twice the single-link capacity (no free spatial reuse here).
    assert!(
        udp.session1_kbps < alone * 0.6,
        "session 1 should pay for session 2's presence: {:.0} vs alone {alone:.0}",
        udp.session1_kbps
    );
    assert!(
        udp.session1_kbps + udp.session2_kbps < alone * 1.6,
        "capacity is shared: {:.0}+{:.0} vs alone {alone:.0}",
        udp.session1_kbps,
        udp.session2_kbps
    );
}
