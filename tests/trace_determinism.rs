//! End-to-end tracing guarantees: same-seed runs produce byte-identical
//! JSONL traces, the interval series tiles the run, and engine stats are
//! populated.

use desim::SimDuration;
use dot11_testbed::adhoc::{Scenario, ScenarioBuilder, Traffic};
use dot11_testbed::net::FlowId;
use dot11_testbed::phy::PhyRate;
use dot11_testbed::trace::{IntervalMetricsSink, JsonlSink, RingBufferSink, SharedSink};

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 10.0])
        .seed(seed)
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(100))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .build()
}

fn trace_bytes(seed: u64) -> Vec<u8> {
    let sink = SharedSink::new(JsonlSink::new(Vec::new()));
    let _ = scenario(seed).run_with(sink.clone());
    sink.take()
        .into_inner()
        .expect("writing to a Vec cannot fail")
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = trace_bytes(7);
    let b = trace_bytes(7);
    assert!(!a.is_empty(), "a saturated run must emit trace events");
    assert_eq!(a, b, "same seed, same scenario => identical JSONL bytes");
}

#[test]
fn different_seeds_diverge() {
    assert_ne!(trace_bytes(7), trace_bytes(8));
}

#[test]
fn every_trace_line_is_a_json_object() {
    let bytes = trace_bytes(7);
    let text = std::str::from_utf8(&bytes).expect("trace is UTF-8");
    let mut lines = 0;
    for line in text.lines() {
        assert!(line.starts_with("{\"t\":"), "line {lines}: {line}");
        assert!(line.ends_with('}'), "line {lines}: {line}");
        lines += 1;
    }
    assert!(lines > 100, "expected a dense trace, got {lines} lines");
}

#[test]
fn interval_series_tiles_the_run_and_conserves_bytes() {
    let sink = SharedSink::new(IntervalMetricsSink::new(SimDuration::from_millis(250)));
    let report = scenario(7).run_with(sink.clone());
    let rows = sink.take().into_rows();
    assert_eq!(rows.len(), 4, "1 s run in 250 ms windows");
    for (k, row) in rows.iter().enumerate() {
        assert_eq!(row.index, k as u64);
        assert_eq!(row.start.as_nanos(), k as u64 * 250_000_000);
        assert_eq!(
            row.flows.len(),
            1,
            "one flow per window (rectangular series)"
        );
    }
    assert_eq!(rows.last().expect("rows").end.as_nanos(), 1_000_000_000);
    let windowed: u64 = rows.iter().map(|r| r.flows[0].bytes).sum();
    assert_eq!(
        windowed,
        report.flow(FlowId(0)).delivered_bytes,
        "per-window deliveries must sum to the run total"
    );
}

#[test]
fn engine_stats_are_populated() {
    let report = scenario(7).run();
    assert!(
        report.engine.events > 1_000,
        "saturated second dispatches many events"
    );
    assert_eq!(report.engine.events, report.events);
    assert!(report.engine.queue_high_water >= 2);
    // The clock stops on the last event at or before the configured end.
    let elapsed = report.engine.sim_elapsed.as_nanos();
    assert!(
        (900_000_000..=1_000_000_000).contains(&elapsed),
        "elapsed {elapsed} ns"
    );
}

#[test]
fn ring_buffer_bounds_memory_over_a_real_run() {
    let sink = SharedSink::new(RingBufferSink::new(64));
    let _ = scenario(7).run_with(sink.clone());
    let ring = sink.take();
    assert_eq!(ring.len(), 64, "full ring");
    assert!(ring.total_seen() > 64, "evicted the overflow");
    // What remains is the most recent history, in time order.
    let times: Vec<u64> = ring.records().map(|(t, _)| t.as_nanos()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}
