//! Integration: the engine profiler is faithful and physics-invisible.

use std::sync::Mutex;

use desim::{SimDuration, WallProbe};
use dot11_testbed::adhoc::world::PROBE_SCOPES;
use dot11_testbed::adhoc::{Scenario, ScenarioBuilder, Traffic};
use dot11_testbed::phy::{DayProfile, PhyRate};
use dot11_testbed::trace::NullSink;

/// Wall-clock attribution is only meaningful on a quiet machine: the
/// test harness runs this binary's tests on parallel threads, and a
/// sibling test descheduling us *between* probe scopes counts against
/// attribution. Timing-sensitive tests serialize on this lock.
static TIMING: Mutex<()> = Mutex::new(());

fn quiet() -> std::sync::MutexGuard<'static, ()> {
    TIMING.lock().unwrap_or_else(|e| e.into_inner())
}

fn contended_cell() -> Scenario {
    ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 25.0, 107.5, 132.5])
        .day(DayProfile::still())
        .seed(3)
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(200))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .flow(
            2,
            3,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .build()
}

/// Every dispatched event lands in exactly one kind scope: the per-scope
/// visit counts reproduce the event-kind histogram, and their sum is the
/// engine's total event count. (Referenced from `World::kind_scope`.)
#[test]
fn probe_scope_counts_match_kind_histogram() {
    let _quiet = quiet();
    let report = contended_cell().run_probed(NullSink, WallProbe::new(&PROBE_SCOPES));
    let profile = report.engine.profile.as_ref().expect("armed probe reports");
    assert_eq!(profile.scopes.len(), PROBE_SCOPES.len());
    let mut scoped_total = 0u64;
    for (name, count) in report.engine.kinds.iter_named() {
        let scope = profile.scope(name).expect("every kind has a scope");
        assert_eq!(
            scope.count, count,
            "scope {name} visited {} times but the engine dispatched {count}",
            scope.count
        );
        scoped_total += scope.count;
    }
    assert_eq!(scoped_total, report.engine.events, "kind scopes partition");
}

/// The phase scopes cover the hot paths: a contended four-station cell
/// visits every one of them, and the kind scopes attribute the bulk of
/// the run's wall time.
#[test]
fn phase_scopes_fire_and_attribution_is_high() {
    let _quiet = quiet();
    let report = contended_cell().run_probed(NullSink, WallProbe::new(&PROBE_SCOPES));
    let profile = report.engine.profile.as_ref().expect("profile");
    for phase in [
        "phase_scatter",
        "phase_arrival_scan",
        "phase_ber_eval",
        "phase_mac_actions",
        "phase_response_build",
    ] {
        let s = profile.scope(phase).expect("phase scope exists");
        assert!(s.count > 0, "{phase} never fired");
        assert!(s.max_ns >= s.min_ns);
    }
    // The ≥ 95% attribution target is asserted by the serial `profile`
    // bench; here the test binary runs four simulations concurrently, so
    // descheduling between scopes can eat a visible slice of the short
    // wall time. Assert the order of magnitude, not the benched figure.
    let frac = report
        .engine
        .attributed_fraction()
        .expect("armed probe attributes");
    assert!(
        frac > 0.5,
        "kind scopes attribute only {:.0}% of wall time",
        100.0 * frac
    );
}

/// The profiler has no large-N blind spot: a probed kilo-station chain
/// still attributes ≥ 95% of its wall time to named kind scopes (the
/// same bar the serial `profile` bench holds chain256 to), and the
/// precomputed-response fast path stays visible through its dedicated
/// `phase_response_build` scope.
#[test]
fn chain1024_attribution_is_high_and_response_path_visible() {
    let _quiet = quiet();
    let chain1024 = || {
        ScenarioBuilder::new(PhyRate::R2)
            .chain(1024, 80.0)
            .seed(3)
            .duration(SimDuration::from_millis(500))
            .warmup(SimDuration::from_millis(100))
            .flow(
                0,
                1023,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .build()
    };
    // Wall-clock attribution on a single short run can still lose a
    // scheduler hiccup's worth of time; take the best of three attempts
    // before declaring a blind spot.
    let mut best = 0.0f64;
    for _ in 0..3 {
        let report = chain1024().run_probed(NullSink, WallProbe::new(&PROBE_SCOPES));
        let profile = report.engine.profile.as_ref().expect("profile");
        let rb = profile
            .scope("phase_response_build")
            .expect("response-build phase scope exists");
        assert!(
            rb.count > 0,
            "SIFS responses never timed on a saturated chain"
        );
        let frac = report
            .engine
            .attributed_fraction()
            .expect("armed probe attributes");
        best = best.max(frac);
        if best >= 0.95 {
            break;
        }
    }
    assert!(
        best >= 0.95,
        "kind scopes attribute only {:.1}% of chain1024 wall time",
        100.0 * best
    );
}

/// Arming the profiler changes nothing physical: flows, per-station
/// counters and airtime are bit-identical to the unprobed run.
#[test]
fn armed_probe_is_physics_invisible() {
    let _quiet = quiet();
    let plain = contended_cell().run();
    let probed = contended_cell().run_probed(NullSink, WallProbe::new(&PROBE_SCOPES));
    for (a, b) in plain.flows.iter().zip(&probed.flows) {
        assert_eq!(a.throughput_kbps.to_bits(), b.throughput_kbps.to_bits());
        assert_eq!(a.loss_rate.to_bits(), b.loss_rate.to_bits());
    }
    for (a, b) in plain.nodes.iter().zip(&probed.nodes) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "node state diverged");
        assert_eq!(a.airtime, b.airtime);
    }
    assert_eq!(plain.engine.events, probed.engine.events);
    assert_eq!(plain.engine.kinds, probed.engine.kinds);
}

/// Probe states: compiled-out (default run) and disarmed (`WallProbe::off`)
/// both report no profile; only an armed probe produces one.
#[test]
fn only_an_armed_probe_reports() {
    let _quiet = quiet();
    assert!(contended_cell().run().engine.profile.is_none());
    let disarmed = contended_cell().run_probed(NullSink, WallProbe::off(&PROBE_SCOPES));
    assert!(disarmed.engine.profile.is_none());
    assert!(disarmed.engine.attributed_fraction().is_none());
    let armed = contended_cell().run_probed(NullSink, WallProbe::new(&PROBE_SCOPES));
    assert!(armed.engine.profile.is_some());
}

/// Sharded runs keep the profiler honest: a probed kilo-station chain on
/// 4 workers still attributes ≥ 95% of coordinator wall time to kind
/// scopes (workers' phase records merge into the same report, and the
/// coordinator's kind scopes span the fork-join waits, so attribution
/// holds structurally), and the physics stays bit-identical to the
/// serial probed run.
#[test]
fn sharded_chain1024_attribution_stays_high() {
    let _quiet = quiet();
    let chain1024 = || {
        ScenarioBuilder::new(PhyRate::R2)
            .chain(1024, 80.0)
            .seed(3)
            .duration(SimDuration::from_millis(500))
            .warmup(SimDuration::from_millis(100))
            .flow(
                0,
                1023,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .build()
    };
    let serial = chain1024().run_probed(NullSink, WallProbe::new(&PROBE_SCOPES));
    let mut best = 0.0f64;
    for _ in 0..3 {
        let report = chain1024()
            .into_world_probed(NullSink, WallProbe::new(&PROBE_SCOPES))
            .run_sharded(4);
        // Physics and engine counters: byte-identical to the serial
        // probed run.
        assert_eq!(report.engine.events, serial.engine.events);
        assert_eq!(report.engine.kinds, serial.engine.kinds);
        for (a, b) in serial.nodes.iter().zip(&report.nodes) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "node state diverged");
        }
        let profile = report.engine.profile.as_ref().expect("profile");
        // Workers' phase scopes merged into the one report: the scatter
        // phase fires on the pool in this fan-out regime, and per-scope
        // stats stay well-formed after the merge.
        for phase in ["phase_scatter", "phase_arrival_scan", "phase_ber_eval"] {
            let s = profile.scope(phase).expect("phase scope exists");
            assert!(s.count > 0, "{phase} never fired on the sharded run");
            assert!(s.max_ns >= s.min_ns, "{phase} stats corrupted by merge");
        }
        let frac = report
            .engine
            .attributed_fraction()
            .expect("armed probe attributes");
        best = best.max(frac);
        if best >= 0.95 {
            break;
        }
    }
    assert!(
        best >= 0.95,
        "kind scopes attribute only {:.1}% of sharded chain1024 wall time",
        100.0 * best
    );
}
