//! Sharded-executor equivalence: `run_sharded(N)` must be
//! **byte-identical** to the serial executor, not statistically close.
//!
//! The sharded run keeps the event loop serial and fans only the
//! independent per-receiver physics of each event across workers (see
//! ARCHITECTURE.md, "Sharded execution"). That argument is structural —
//! these tests are its teeth:
//!
//! * every deterministic field of the report (flow observables, per-node
//!   MAC/PHY/ARF counters, dispatched-event counts, queue high-water) is
//!   serialized to JSON and compared as bytes between thread counts;
//! * topologies cover both sides of the `PAR_MIN_ITEMS` threshold: the
//!   four-station cells (fan-out 3, parallel sections idle but the pool
//!   is live) against the committed golden files, and chains/disks
//!   (fan-out 31–97, every parallel section hot) against a fresh serial
//!   run;
//! * thread counts deliberately exceed this machine's cores — worker
//!   count must never leak into results, only into wall clock.

use desim::SimDuration;
use dot11_testbed::adhoc::analytic::AccessScheme;
use dot11_testbed::adhoc::experiments::four_station::{
    scenario, FourStationLayout, SessionTransport,
};
use dot11_testbed::adhoc::experiments::ExpConfig;
use dot11_testbed::adhoc::{RunReport, Scenario, ScenarioBuilder, Traffic};
use dot11_testbed::phy::PhyRate;

const SATURATED: Traffic = Traffic::SaturatedUdp {
    payload_bytes: 512,
    backlog: 10,
};

/// Serializes the deterministic layer of a report — everything except
/// the wall clock — with the same float formatting as the golden suite,
/// so equal bits produce equal bytes.
fn report_json(r: &RunReport) -> String {
    let flows: Vec<String> = r
        .flows
        .iter()
        .map(|f| {
            format!(
                "{{\"flow\":{},\"delivered_bytes\":{},\"delivered_packets\":{},\
                 \"offered_packets\":{},\"throughput_kbps\":{},\"loss_rate\":{},\
                 \"mean_delay_ms\":{},\"max_delay_ms\":{}}}",
                f.flow.0,
                f.delivered_bytes,
                f.delivered_packets,
                f.offered_packets,
                f.throughput_kbps,
                f.loss_rate,
                f.mean_delay_ms,
                f.max_delay_ms
            )
        })
        .collect();
    let nodes: Vec<String> = r
        .nodes
        .iter()
        .map(|n| format!("\"{}\"", format!("{n:?}").replace('"', "'")))
        .collect();
    format!(
        "{{\"flows\":[{}],\"nodes\":[{}],\"events\":{},\"queue_high_water\":{}}}",
        flows.join(","),
        nodes.join(","),
        r.events,
        r.engine.queue_high_water,
    )
}

fn assert_thread_invariant(label: &str, mk: impl Fn() -> Scenario, threads: &[usize]) {
    let serial = report_json(&mk().with_threads(1).run());
    for &t in threads {
        let sharded = report_json(&mk().with_threads(t).run());
        assert_eq!(
            serial, sharded,
            "{label}: threads={t} diverged from the serial schedule"
        );
    }
}

/// A 64-station saturated chain: signal fan-out ~31–50 receivers, so the
/// scatter, arrival and decode sections all run parallel. Eleven seeds —
/// the golden suite's 100–110 — at a thread count far above this
/// machine's cores.
#[test]
fn chain64_is_thread_invariant_across_golden_seeds() {
    for seed in 100..=110u64 {
        assert_thread_invariant(
            &format!("chain64 seed {seed}"),
            || {
                ScenarioBuilder::new(PhyRate::R2)
                    .chain(64, 80.0)
                    .seed(seed)
                    .duration(SimDuration::from_millis(300))
                    .warmup(SimDuration::from_millis(50))
                    .flow(0, 63, SATURATED)
                    .build()
            },
            &[8],
        );
    }
}

/// The 1024-station chain — the scale where many shards per worker and
/// deep audible slices stress the strided shard→worker assignment.
#[test]
fn chain1024_is_thread_invariant() {
    assert_thread_invariant(
        "chain1024 seed 3",
        || {
            ScenarioBuilder::new(PhyRate::R2)
                .chain(1024, 80.0)
                .seed(3)
                .duration(SimDuration::from_millis(200))
                .warmup(SimDuration::from_millis(50))
                .flow(0, 1023, SATURATED)
                .build()
        },
        &[2, 4, 8],
    );
}

/// The production-scale random disk (fan-out ~97): an irregular field
/// where spatial shards have uneven populations, plus three concurrent
/// flows to interleave independent transmissions.
#[test]
fn disk4096_is_thread_invariant() {
    assert_thread_invariant(
        "disk4096 seed 3",
        || {
            let mut b = ScenarioBuilder::new(PhyRate::R2)
                .random_disk(4096, 12_000.0, 7)
                .seed(3)
                .duration(SimDuration::from_millis(150))
                .warmup(SimDuration::from_millis(50));
            for (src, dst) in [(0, 1), (2, 3), (4, 5)] {
                b = b.flow(src, dst, SATURATED);
            }
            b.build()
        },
        &[2, 4, 8],
    );
}

// --- sharded runs against the committed goldens ---------------------------

const ENGINE_MARKER: &str = ",\"engine\":";

/// Reproduces the golden suite's serialization (tests/golden_equivalence.rs)
/// so a sharded run can be checked against the committed files directly.
fn golden_report_json(r: &RunReport) -> String {
    let flows: Vec<String> = r
        .flows
        .iter()
        .map(|f| {
            format!(
                "{{\"flow\":{},\"src\":{},\"dst\":{},\"offered_packets\":{},\
                 \"delivered_bytes\":{},\"delivered_packets\":{},\
                 \"measured_bytes\":{},\"throughput_kbps\":{},\"loss_rate\":{},\
                 \"mean_delay_ms\":{},\"max_delay_ms\":{}}}",
                f.flow.0,
                f.src.0,
                f.dst.0,
                f.offered_packets,
                f.delivered_bytes,
                f.delivered_packets,
                f.measured_bytes,
                f.throughput_kbps,
                f.loss_rate,
                f.mean_delay_ms,
                f.max_delay_ms
            )
        })
        .collect();
    let nodes: Vec<String> = r
        .nodes
        .iter()
        .map(|n| format!("\"{}\"", format!("{n:?}").replace('"', "'")))
        .collect();
    format!(
        "{{\"duration_ns\":{},\"warmup_ns\":{},\"flows\":[{}],\"nodes\":[{}]\
         {ENGINE_MARKER}{{\"events\":{},\"queue_high_water\":{}}}}}\n",
        r.duration.as_nanos(),
        r.warmup.as_nanos(),
        flows.join(","),
        nodes.join(","),
        r.events,
        r.engine.queue_high_water,
    )
}

/// The Figure 7 four-station cells run **sharded** must still match the
/// committed golden files byte for byte, seeds 100–110. (Fan-out 3 keeps
/// the parallel sections below `PAR_MIN_ITEMS` here — what this pins is
/// that merely *enabling* the pool, with its shard map and fresh probes,
/// perturbs nothing.)
#[test]
fn sharded_fig7_matches_committed_goldens() {
    for seed in 100..=110u64 {
        let cfg = ExpConfig {
            seed,
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(250),
            threads: 8,
        };
        let mut actual = String::new();
        for transport in [SessionTransport::Udp, SessionTransport::Tcp] {
            for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
                let report = scenario(
                    cfg,
                    PhyRate::R11,
                    FourStationLayout::AsymmetricAt11,
                    transport,
                    scheme,
                )
                .run();
                actual.push_str(&golden_report_json(&report));
            }
        }
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(format!("tests/golden/four_station_seed{seed}.json"));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("golden {} missing: {e}", path.display()));
        assert_eq!(
            actual, expected,
            "sharded fig7 seed {seed} diverged from the committed golden"
        );
    }
}

// --- sharded sweep ---------------------------------------------------------

/// A sweep whose cells run sharded produces the identical report to the
/// serial sweep — same cell keys (the thread count is excluded from the
/// cache key by design) and same metrics JSON.
#[test]
fn sharded_sweep_matches_serial_sweep() {
    use dot11_sweep::{run_sweep, RunParams, SweepOptions, SweepScenario, SweepSpec};

    let spec_at = |threads: usize| {
        SweepSpec::new(RunParams {
            duration: SimDuration::from_millis(300),
            warmup: SimDuration::from_millis(100),
            threads,
        })
        .scenario(SweepScenario::Chain {
            n: 64,
            spacing_m: 80.0,
            rate: PhyRate::R2,
        })
        .scenarios(SweepScenario::figure(7))
        .seeds(1..=3)
    };

    let serial = spec_at(1);
    let sharded = spec_at(4);
    // Thread count must not shift cache identity: a warm serial cache
    // serves a sharded sweep and vice versa.
    for (a, b) in serial.cells().iter().zip(sharded.cells().iter()) {
        assert_eq!(a.key(), b.key(), "cell key moved with the thread count");
    }

    let a = run_sweep(&serial, &SweepOptions::serial()).expect("serial sweep");
    let b = run_sweep(&sharded, &SweepOptions::with_jobs(2)).expect("sharded sweep");
    // `deterministic_json` excludes only the engine block (wall clock,
    // worker telemetry) — every cell metric and group statistic must
    // agree byte for byte.
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "sharded sweep cells diverged from serial"
    );
}
