//! Hot-path refactor equivalence goldens.
//!
//! The PR-3 fast path (link-gain caching in `Medium`, incremental
//! interference in `PhyState`, the slab event queue, allocation-free
//! scatter) must be *behaviour-preserving*: same seed, same world,
//! byte-identical reports. The files under `tests/golden/` were generated
//! from the pre-refactor tree (commit `5e088cb`) with the ignored
//! `regenerate_goldens` test below; the active test re-runs the same
//! four-station cells on the current tree and compares byte-for-byte.
//!
//! If a deliberate behaviour change ever moves these bytes, regenerate
//! with `cargo test --release --test golden_equivalence -- --ignored`
//! and document the delta in EXPERIMENTS.md.

use desim::SimDuration;
use dot11_testbed::adhoc::analytic::AccessScheme;
use dot11_testbed::adhoc::experiments::four_station::{
    scenario, FourStationLayout, SessionTransport,
};
use dot11_testbed::adhoc::experiments::ExpConfig;
use dot11_testbed::adhoc::RunReport;

/// The seeds the issue pins: 100–110 inclusive.
const SEEDS: std::ops::RangeInclusive<u64> = 100..=110;

fn config(seed: u64) -> ExpConfig {
    ExpConfig {
        seed,
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_millis(250),
    }
}

/// Serializes the deterministic layer of a [`RunReport`] (everything but
/// the wall clock) as JSON. Floats use Rust's shortest-round-trip
/// `Display`, so equal bits produce equal bytes; node counters are pinned
/// through their `Debug` form, which covers every MAC/PHY/ARF field.
fn report_json(r: &RunReport) -> String {
    let flows: Vec<String> = r
        .flows
        .iter()
        .map(|f| {
            format!(
                "{{\"flow\":{},\"src\":{},\"dst\":{},\"offered_packets\":{},\
                 \"delivered_bytes\":{},\"delivered_packets\":{},\
                 \"measured_bytes\":{},\"throughput_kbps\":{},\"loss_rate\":{},\
                 \"mean_delay_ms\":{},\"max_delay_ms\":{}}}",
                f.flow.0,
                f.src.0,
                f.dst.0,
                f.offered_packets,
                f.delivered_bytes,
                f.delivered_packets,
                f.measured_bytes,
                f.throughput_kbps,
                f.loss_rate,
                f.mean_delay_ms,
                f.max_delay_ms
            )
        })
        .collect();
    let nodes: Vec<String> = r
        .nodes
        .iter()
        .map(|n| format!("\"{}\"", format!("{n:?}").replace('"', "'")))
        .collect();
    format!(
        "{{\"duration_ns\":{},\"warmup_ns\":{},\"events\":{},\
         \"queue_high_water\":{},\"flows\":[{}],\"nodes\":[{}]}}\n",
        r.duration.as_nanos(),
        r.warmup.as_nanos(),
        r.events,
        r.engine.queue_high_water,
        flows.join(","),
        nodes.join(",")
    )
}

/// All four cells (UDP/TCP × basic/RTS) of the Figure 7 asymmetric
/// four-station scenario for one seed, concatenated.
fn four_station_json(seed: u64) -> String {
    let cfg = config(seed);
    let mut out = String::new();
    for transport in [SessionTransport::Udp, SessionTransport::Tcp] {
        for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
            let report = scenario(
                cfg,
                dot11_testbed::phy::PhyRate::R11,
                FourStationLayout::AsymmetricAt11,
                transport,
                scheme,
            )
            .run();
            out.push_str(&report_json(&report));
        }
    }
    out
}

fn golden_path(seed: u64) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("four_station_seed{seed}.json"))
}

/// The refactored pipeline reproduces the pre-refactor tree's
/// four-station reports byte-for-byte for seeds 100–110.
#[test]
fn four_station_reports_match_seed_commit_goldens() {
    for seed in SEEDS {
        let expected = std::fs::read_to_string(golden_path(seed))
            .unwrap_or_else(|e| panic!("golden for seed {seed} missing: {e}"));
        let actual = four_station_json(seed);
        assert_eq!(
            actual, expected,
            "seed {seed}: four-station RunReport JSON moved vs. the seed commit"
        );
    }
}

/// Regenerates the goldens. Run only when a behaviour change is
/// deliberate: `cargo test --release --test golden_equivalence -- --ignored`.
#[test]
#[ignore = "writes tests/golden/*.json; run only to regenerate"]
fn regenerate_goldens() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for seed in SEEDS {
        std::fs::write(golden_path(seed), four_station_json(seed)).expect("write golden");
    }
}
