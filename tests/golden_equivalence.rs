//! Hot-path refactor equivalence goldens, split into physics vs engine.
//!
//! Every golden line is one run's deterministic report, laid out as
//! **physics prefix + engine suffix**:
//!
//! * *physics* — `duration_ns`, `warmup_ns`, every flow field
//!   (throughput, delivered bytes, loss, delay) and every node field
//!   (MAC/PHY/ARF counters, airtime). These pin the simulation's
//!   *behaviour* and must never move: same seed, same world,
//!   byte-identical observables. A diff here is a physics change, no
//!   matter how innocent the refactor looked.
//! * *engine* — the trailing `"engine":{"events":…,"queue_high_water":…}`
//!   object. These pin how hard the simulator worked, and a perf PR may
//!   deliberately move them (PR 4's timer coalescing + signal batching
//!   cut dispatched events ~3× with the physics prefix untouched — the
//!   goldens were re-pinned then, physics bytes verified identical
//!   against the pre-change files).
//!
//! The active tests compare the two layers separately so a physics drift
//! is never masked by an expected engine re-pin. Files under
//! `tests/golden/` regenerate with the ignored `regenerate_goldens` test;
//! when you do that deliberately, diff the files and confirm only the
//! engine suffix moved (unless the PR is an acknowledged behaviour
//! change — then document the delta in EXPERIMENTS.md).
//!
//! Coverage: the Figure 7 (asymmetric, 11 Mb/s) four-station scenario,
//! UDP and TCP × basic/RTS, seeds 100–110; plus the Figure 12
//! (symmetric, 2 Mb/s) TCP cells for seeds 100–102, so transport-layer
//! timing (RTO, delayed ACK) is pinned on a second topology and rate.

use desim::SimDuration;
use dot11_testbed::adhoc::analytic::AccessScheme;
use dot11_testbed::adhoc::experiments::four_station::{
    scenario, FourStationLayout, SessionTransport,
};
use dot11_testbed::adhoc::experiments::ExpConfig;
use dot11_testbed::adhoc::RunReport;
use dot11_testbed::phy::PhyRate;

/// The seeds the issue pins: 100–110 inclusive.
const SEEDS: std::ops::RangeInclusive<u64> = 100..=110;

/// Seeds of the Figure 12 TCP goldens.
const TCP_SEEDS: std::ops::RangeInclusive<u64> = 100..=102;

/// The marker splitting a golden line into physics prefix and engine
/// suffix.
const ENGINE_MARKER: &str = ",\"engine\":";

fn config(seed: u64) -> ExpConfig {
    ExpConfig {
        seed,
        duration: SimDuration::from_secs(2),
        warmup: SimDuration::from_millis(250),
        threads: 1,
    }
}

/// Serializes the deterministic layer of a [`RunReport`] (everything but
/// the wall clock) as JSON: physics fields first, engine fields in a
/// trailing `"engine"` object (see module docs for the split). Floats use
/// Rust's shortest-round-trip `Display`, so equal bits produce equal
/// bytes; node counters are pinned through their `Debug` form, which
/// covers every MAC/PHY/ARF field.
fn report_json(r: &RunReport) -> String {
    let flows: Vec<String> = r
        .flows
        .iter()
        .map(|f| {
            format!(
                "{{\"flow\":{},\"src\":{},\"dst\":{},\"offered_packets\":{},\
                 \"delivered_bytes\":{},\"delivered_packets\":{},\
                 \"measured_bytes\":{},\"throughput_kbps\":{},\"loss_rate\":{},\
                 \"mean_delay_ms\":{},\"max_delay_ms\":{}}}",
                f.flow.0,
                f.src.0,
                f.dst.0,
                f.offered_packets,
                f.delivered_bytes,
                f.delivered_packets,
                f.measured_bytes,
                f.throughput_kbps,
                f.loss_rate,
                f.mean_delay_ms,
                f.max_delay_ms
            )
        })
        .collect();
    let nodes: Vec<String> = r
        .nodes
        .iter()
        .map(|n| format!("\"{}\"", format!("{n:?}").replace('"', "'")))
        .collect();
    format!(
        "{{\"duration_ns\":{},\"warmup_ns\":{},\"flows\":[{}],\"nodes\":[{}]\
         {ENGINE_MARKER}{{\"events\":{},\"queue_high_water\":{}}}}}\n",
        r.duration.as_nanos(),
        r.warmup.as_nanos(),
        flows.join(","),
        nodes.join(","),
        r.events,
        r.engine.queue_high_water,
    )
}

/// Splits one golden line into `(physics, engine)` at the engine marker.
fn split_line(line: &str) -> (&str, &str) {
    let at = line
        .find(ENGINE_MARKER)
        .expect("golden line carries an engine suffix");
    line.split_at(at)
}

/// All four cells (UDP/TCP × basic/RTS) of the Figure 7 asymmetric
/// four-station scenario for one seed, concatenated.
fn four_station_json(seed: u64) -> String {
    let cfg = config(seed);
    let mut out = String::new();
    for transport in [SessionTransport::Udp, SessionTransport::Tcp] {
        for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
            let report = scenario(
                cfg,
                PhyRate::R11,
                FourStationLayout::AsymmetricAt11,
                transport,
                scheme,
            )
            .run();
            out.push_str(&report_json(&report));
        }
    }
    out
}

/// Both TCP cells (basic/RTS) of the Figure 12 symmetric 2 Mb/s scenario
/// for one seed, concatenated.
fn fig12_tcp_json(seed: u64) -> String {
    let cfg = config(seed);
    let mut out = String::new();
    for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
        let report = scenario(
            cfg,
            PhyRate::R2,
            FourStationLayout::Symmetric,
            SessionTransport::Tcp,
            scheme,
        )
        .run();
        out.push_str(&report_json(&report));
    }
    out
}

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_path(seed: u64) -> std::path::PathBuf {
    golden_dir().join(format!("four_station_seed{seed}.json"))
}

fn fig12_golden_path(seed: u64) -> std::path::PathBuf {
    golden_dir().join(format!("fig12_tcp_seed{seed}.json"))
}

/// Compares a freshly generated report set against its golden file,
/// physics first (the unforgivable diff), then engine (the re-pin diff).
fn assert_matches_golden(label: &str, actual: &str, path: &std::path::Path) {
    let expected = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("golden {} missing: {e}", path.display()));
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        let (a_phys, a_eng) = split_line(a);
        let (e_phys, e_eng) = split_line(e);
        assert_eq!(
            a_phys, e_phys,
            "{label} line {i}: PHYSICS fields moved — flow/node observables \
             must be byte-identical regardless of engine refactors"
        );
        assert_eq!(
            a_eng, e_eng,
            "{label} line {i}: engine fields moved — if the event-count \
             change is deliberate, regenerate the goldens and re-pin"
        );
    }
    assert_eq!(
        actual.lines().count(),
        expected.lines().count(),
        "{label}: cell count moved"
    );
}

/// The per-kind event histogram is a complete partition of the dispatch
/// count: every event the engine pops is classified exactly once, so the
/// `repro --json` breakdown can be trusted to attribute budget
/// regressions.
#[test]
fn kind_histogram_sums_to_dispatched_events() {
    let report = scenario(
        config(100),
        PhyRate::R11,
        FourStationLayout::AsymmetricAt11,
        SessionTransport::Tcp,
        AccessScheme::RtsCts,
    )
    .run();
    assert_eq!(report.engine.kinds.total(), report.engine.events);
    assert!(report.engine.kinds.signal_start > 0);
    // Every signal batch that starts also ends, except a transmission the
    // run horizon cut off mid-air (its SignalEnd is still queued when the
    // loop stops) — at most one, since the medium serializes heavily.
    let cut_off = report.engine.kinds.signal_start - report.engine.kinds.signal_end;
    assert!(cut_off <= 1, "{cut_off} signal batches never ended");
}

/// The current tree reproduces the pinned four-station reports for seeds
/// 100–110, physics and engine layers compared separately.
#[test]
fn four_station_reports_match_seed_commit_goldens() {
    for seed in SEEDS {
        assert_matches_golden(
            &format!("fig7 seed {seed}"),
            &four_station_json(seed),
            &golden_path(seed),
        );
    }
}

/// The current tree reproduces the pinned Figure 12 TCP reports for
/// seeds 100–102 — transport-layer timing pinned on a second topology.
#[test]
fn fig12_tcp_reports_match_goldens() {
    for seed in TCP_SEEDS {
        assert_matches_golden(
            &format!("fig12 seed {seed}"),
            &fig12_tcp_json(seed),
            &fig12_golden_path(seed),
        );
    }
}

/// Regenerates the goldens. Run only when a behaviour change is
/// deliberate: `cargo test --release --test golden_equivalence -- --ignored`.
#[test]
#[ignore = "writes tests/golden/*.json; run only to regenerate"]
fn regenerate_goldens() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for seed in SEEDS {
        std::fs::write(golden_path(seed), four_station_json(seed)).expect("write golden");
    }
    for seed in TCP_SEEDS {
        std::fs::write(fig12_golden_path(seed), fig12_tcp_json(seed)).expect("write golden");
    }
}
