//! Integration: airtime accounting across full scenarios.

use desim::SimDuration;
use dot11_testbed::adhoc::{RunReport, ScenarioBuilder, Traffic};
use dot11_testbed::phy::{DayProfile, PhyRate};

/// The ledger conservation property, asserted bit-exactly:
///
/// 1. the four coarse states partition the horizon
///    (`tx + rx + busy + idle == horizon`);
/// 2. the MAC's idle refinement partitions the idle share
///    (`nav + difs + backoff + frozen + quiet == idle`).
///
/// Together they mean every nanosecond of every station's run is in
/// exactly one of the nine channel states.
fn assert_ledger_conserves(report: &RunReport, horizon_ns: u64, what: &str) {
    for n in &report.nodes {
        let a = &n.airtime;
        assert_eq!(
            a.total_ns(),
            horizon_ns,
            "{what}/{}: coarse states miss the horizon",
            n.node
        );
        assert_eq!(
            a.nav_ns + a.difs_ns + a.backoff_ns + a.frozen_ns + a.quiet_ns,
            a.idle_ns,
            "{what}/{}: idle refinement does not partition idle time \
             (nav {} + difs {} + backoff {} + frozen {} + quiet {} != idle {})",
            n.node,
            a.nav_ns,
            a.difs_ns,
            a.backoff_ns,
            a.frozen_ns,
            a.quiet_ns,
            a.idle_ns
        );
        assert_eq!(a.idle_refined_ns(), a.idle_ns, "{what}/{}", n.node);
    }
}

/// The ledger is conservative: every station accounts the full run, and
/// the categories partition it.
#[test]
fn airtime_partitions_the_run() {
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 10.0])
        .day(DayProfile::still())
        .seed(1)
        .duration(SimDuration::from_secs(3))
        .warmup(SimDuration::from_millis(500))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .run();
    for n in &report.nodes {
        let total = n.airtime.total_ns();
        assert_eq!(total, 3_000_000_000, "{}: accounted {total} ns", n.node);
    }
}

/// On a saturated two-station link the airtime roles are sharp: the
/// sender transmits ~half the air (data frames), the receiver receives
/// them; ACKs are the minor mirror share.
#[test]
fn saturated_link_airtime_roles() {
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 10.0])
        .day(DayProfile::still())
        .seed(1)
        .duration(SimDuration::from_secs(3))
        .warmup(SimDuration::from_millis(500))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .run();
    let tx = &report.nodes[0].airtime;
    let rx = &report.nodes[1].airtime;
    // Data frame 609 µs vs cycle ~1230 µs: sender transmits ~49%.
    assert!(
        (0.40..0.60).contains(&tx.tx_fraction()),
        "sender tx fraction {:.2}",
        tx.tx_fraction()
    );
    // The receiver spends the mirror share receiving, plus ACK tx ~20%.
    assert!(
        (0.40..0.60).contains(&rx.rx_fraction()),
        "receiver rx fraction {:.2}",
        rx.rx_fraction()
    );
    assert!(
        rx.tx_fraction() > 0.10,
        "ACKs cost air: {:.2}",
        rx.tx_fraction()
    );
    // Sender's rx share ≈ receiver's ACK share.
    assert!((tx.rx_fraction() - rx.tx_fraction()).abs() < 0.05);
}

/// Conservation on every Figure 7 and Figure 12 cell (UDP/TCP ×
/// basic/RTS): the nine-state ledger accounts the horizon bit-exactly
/// for every station, and the contended cells actually exercise the
/// deferral states (nonzero DIFS + backoff time).
#[test]
fn ledger_conserves_on_figure7_and_figure12_cells() {
    use dot11_sweep::{RunParams, SweepScenario};
    let params = RunParams {
        duration: SimDuration::from_millis(700),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    };
    for fig in [7, 12] {
        for cell in SweepScenario::figure(fig) {
            let report = cell.build(params, 5).run();
            let label = cell.name();
            assert_ledger_conserves(&report, 700_000_000, &label);
            let defer: u64 = report
                .nodes
                .iter()
                .map(|n| n.airtime.difs_ns + n.airtime.backoff_ns)
                .sum();
            assert!(defer > 0, "{label}: no station ever deferred");
        }
    }
}

/// Conservation on an irregular topology: 20 stations scattered on a
/// disk, where hidden/exposed relationships (and therefore NAV, frozen
/// and EIFS paths) occur in combinations the line layouts never hit.
#[test]
fn ledger_conserves_on_a_random_disk() {
    use dot11_sweep::{RunParams, SweepScenario};
    let cell = SweepScenario::RandomDisk {
        n: 20,
        radius_m: 120.0,
        topo_seed: 7,
        rate: PhyRate::R2,
    };
    let params = RunParams {
        duration: SimDuration::from_millis(500),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    };
    for seed in [1, 2, 3] {
        let report = cell.build(params, seed).run();
        assert_ledger_conserves(&report, 500_000_000, &format!("disk20 seed {seed}"));
    }
}

/// The paper's exposed-station effect as a number: in the Figure 7
/// geometry, the session-1 receiver spends most of its air locked on
/// session 2's frames — time during which it is deaf to its own sender.
#[test]
fn figure7_receiver_is_mostly_deaf() {
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 25.0, 107.5, 132.5])
        .day(DayProfile::still())
        .seed(3)
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .flow(
            2,
            3,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .run();
    let s1_rx = report.nodes[1].airtime.rx_fraction();
    // Locked more than half the time although its own session only
    // delivers a fraction of the channel.
    assert!(s1_rx > 0.5, "session-1 receiver rx fraction {s1_rx:.2}");
    // Its useful reception (delivered MSDUs × frame airtime) accounts for
    // well under half of that locked time.
    let delivered = report.nodes[1].mac.delivered as f64;
    let frame_ns = 609_000.0; // 574 B at 11 Mb/s + long PLCP
    let useful = delivered * frame_ns / report.nodes[1].airtime.total_ns() as f64;
    assert!(
        useful < s1_rx * 0.75,
        "useful rx {useful:.2} should be well below locked share {s1_rx:.2}"
    );
}
