//! Audible-set culling: exactness on the paper scenarios, equivalence on
//! randomized large topologies.
//!
//! PR 5's culling is only allowed to be a *performance* change. Two
//! properties pin that:
//!
//! 1. **Cull-exactness on paper cells** — every four-station figure
//!    (7/9/11/12) and the two-station probe distances fit comfortably
//!    inside the audible horizon, so the policy culls *zero* links there
//!    and the physics path is literally the same code over the same list.
//!    (The byte-identity of the golden reports, `repro --quick`, and the
//!    sweep cache rows is asserted by `tests/golden_equivalence.rs` and
//!    `crates/sweep/tests/determinism.rs` as before.)
//! 2. **Full-vs-culled equivalence on random disks** — on topologies
//!    where links *are* culled (a dense cluster plus a far-flung shell),
//!    the physics layer of the report is byte-identical with culling on
//!    and off: a culled receiver sits ≥ 25 dB below the noise floor, so
//!    its absence can't flip any carrier-sense or SINR decision. Engine
//!    event counts legitimately differ (isolated transmitters skip their
//!    signal events), which is exactly the physics/engine split the
//!    golden format encodes.

use desim::SimDuration;
use dot11_testbed::adhoc::analytic::AccessScheme;
use dot11_testbed::adhoc::experiments::four_station::{
    scenario, FourStationLayout, SessionTransport,
};
use dot11_testbed::adhoc::experiments::ExpConfig;
use dot11_testbed::adhoc::{RunReport, ScenarioBuilder, Traffic};
use dot11_testbed::phy::PhyRate;

/// The marker splitting a report line into physics prefix and engine
/// suffix (same layout as `tests/golden_equivalence.rs`).
const ENGINE_MARKER: &str = ",\"engine\":";

/// Serializes the deterministic layer of a [`RunReport`] — identical
/// format to the golden files, so the same physics/engine split applies.
fn report_json(r: &RunReport) -> String {
    let flows: Vec<String> = r
        .flows
        .iter()
        .map(|f| {
            format!(
                "{{\"flow\":{},\"src\":{},\"dst\":{},\"offered_packets\":{},\
                 \"delivered_bytes\":{},\"delivered_packets\":{},\
                 \"measured_bytes\":{},\"throughput_kbps\":{},\"loss_rate\":{},\
                 \"mean_delay_ms\":{},\"max_delay_ms\":{}}}",
                f.flow.0,
                f.src.0,
                f.dst.0,
                f.offered_packets,
                f.delivered_bytes,
                f.delivered_packets,
                f.measured_bytes,
                f.throughput_kbps,
                f.loss_rate,
                f.mean_delay_ms,
                f.max_delay_ms
            )
        })
        .collect();
    let nodes: Vec<String> = r
        .nodes
        .iter()
        .map(|n| format!("\"{}\"", format!("{n:?}").replace('"', "'")))
        .collect();
    format!(
        "{{\"duration_ns\":{},\"warmup_ns\":{},\"flows\":[{}],\"nodes\":[{}]\
         {ENGINE_MARKER}{{\"events\":{},\"queue_high_water\":{}}}}}\n",
        r.duration.as_nanos(),
        r.warmup.as_nanos(),
        flows.join(","),
        nodes.join(","),
        r.events,
        r.engine.queue_high_water,
    )
}

fn physics_of(line: &str) -> &str {
    let at = line
        .find(ENGINE_MARKER)
        .expect("report line carries an engine suffix");
    &line[..at]
}

/// Every paper four-station cell keeps all 12 directed links: the
/// stations sit tens of meters apart, the audible horizon kilometers
/// away. This is the structural proof that culling cannot move the
/// figure-7/9/11/12 goldens — the scatter list is identical to the
/// pre-culling "everyone else" list.
#[test]
fn no_link_culled_in_any_paper_four_station_cell() {
    let cfg = ExpConfig {
        seed: 1,
        duration: SimDuration::from_secs(1),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    };
    let cells = [
        (PhyRate::R11, FourStationLayout::AsymmetricAt11, "fig7"),
        (PhyRate::R2, FourStationLayout::AsymmetricAt2, "fig9"),
        (PhyRate::R11, FourStationLayout::Symmetric, "fig11"),
        (PhyRate::R2, FourStationLayout::Symmetric, "fig12"),
    ];
    for (rate, layout, label) in cells {
        for transport in [SessionTransport::Udp, SessionTransport::Tcp] {
            for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
                let world = scenario(cfg, rate, layout, transport, scheme).into_world();
                assert_eq!(
                    world.medium().culled_link_count(),
                    0,
                    "{label} {transport:?} {scheme:?}: a paper cell lost a link"
                );
                for i in 0..4u32 {
                    assert_eq!(
                        world.medium().audible_count(dot11_testbed::phy::NodeId(i)),
                        3,
                        "{label}: station {i} should hear all three others"
                    );
                }
            }
        }
    }
}

/// The two-station probe distances of the paper (up to the 1 Mb/s range
/// and beyond, out to the PCS range) also cull nothing.
#[test]
fn no_link_culled_at_any_paper_probe_distance() {
    for d in [10.0, 30.0, 70.0, 100.0, 130.0, 160.0, 250.0] {
        let world = ScenarioBuilder::new(PhyRate::R2)
            .line(&[0.0, d])
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(100))
            .flow(
                0,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 5,
                },
            )
            .build()
            .into_world();
        assert_eq!(
            world.medium().culled_link_count(),
            0,
            "{d} m probe link culled"
        );
    }
}

/// A random field that *does* exercise culling: a dense 12-station
/// cluster (100 m disk — everything mutually audible) plus an 8-station
/// shell scattered over a 30 km disk (mutually isolated, and far beyond
/// the cluster's ~2 km audible horizon with near-certainty).
fn disk_scenario(
    topo_seed: u64,
    run_seed: u64,
    full_fanout: bool,
) -> dot11_testbed::adhoc::Scenario {
    let mut b = ScenarioBuilder::new(PhyRate::R2)
        .random_disk(12, 100.0, topo_seed)
        .random_disk(
            8,
            30_000.0,
            topo_seed.wrapping_mul(0x9e37_79b9).wrapping_add(1),
        );
    if full_fanout {
        b = b.full_fanout();
    }
    b.seed(run_seed)
        .duration(SimDuration::from_millis(400))
        .warmup(SimDuration::from_millis(100))
        // Saturated traffic inside the cluster…
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .flow(
            2,
            3,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        // …and paced probes from the far shell, whose frames reach nobody:
        // with culling their deliveries are empty (no signal events at
        // all); without it they scatter sub-noise signals to all 19
        // others. Identical physics either way.
        .flow(
            12,
            13,
            Traffic::CbrUdp {
                payload_bytes: 256,
                interval: SimDuration::from_millis(20),
                limit: None,
            },
        )
        .flow(
            14,
            15,
            Traffic::CbrUdp {
                payload_bytes: 256,
                interval: SimDuration::from_millis(20),
                limit: None,
            },
        )
        .build()
}

/// Full-fanout vs culled runs on random 20-station disks across 16
/// seeds: the physics layer of every report is byte-identical, while the
/// culled worlds demonstrably drop links (so the test is not vacuous).
#[test]
fn culled_and_full_fanout_reports_are_physics_identical_on_random_disks() {
    let mut total_culled = 0usize;
    for topo_seed in [11u64, 23, 37, 59] {
        // The field must actually split into cluster + unreachable shell.
        let probe = disk_scenario(topo_seed, 1, false).into_world();
        let culled_links = probe.medium().culled_link_count();
        assert!(
            culled_links > 0,
            "topology {topo_seed}: no link culled — the shell landed too close"
        );
        total_culled += culled_links;
        for run_seed in [1u64, 2, 3, 4] {
            let culled = disk_scenario(topo_seed, run_seed, false).run();
            let full = disk_scenario(topo_seed, run_seed, true).run();
            let culled_json = report_json(&culled);
            let full_json = report_json(&full);
            assert_eq!(
                physics_of(&culled_json),
                physics_of(&full_json),
                "topology {topo_seed} seed {run_seed}: culling changed an observable"
            );
        }
    }
    // Across four topologies the shell stations cut hundreds of links.
    assert!(
        total_culled > 100,
        "expected a substantial culled-link population, got {total_culled}"
    );
}

/// The full-fanout switch really is just the old behaviour: it keeps all
/// n·(n−1) links regardless of distance.
#[test]
fn full_fanout_keeps_every_link() {
    let world = disk_scenario(7, 1, true).into_world();
    assert_eq!(world.medium().culled_link_count(), 0);
    assert_eq!(world.medium().max_audible_count(), 19);
}
