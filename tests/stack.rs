//! Integration: stack-level behaviours beyond the paper's scenarios —
//! short preamble, bidirectional TCP, mixed traffic on one station.

use desim::SimDuration;
use dot11_testbed::adhoc::analytic::{max_throughput_eq_with, AccessScheme};
use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
use dot11_testbed::mac::MacConfig;
use dot11_testbed::net::FlowId;
use dot11_testbed::phy::{DayProfile, PhyRate, Preamble};

fn two_node(rate: PhyRate, preamble: Preamble, traffic: Traffic, seed: u64) -> f64 {
    let mut mac = MacConfig::new(rate);
    mac.preamble = preamble;
    ScenarioBuilder::new(rate)
        .line(&[0.0, 5.0])
        .day(DayProfile::still())
        .mac_config(mac)
        .seed(seed)
        .duration(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(1))
        .flow(0, 1, traffic)
        .run()
        .flow(FlowId(0))
        .throughput_kbps
        / 1000.0
}

/// The short PLCP preamble buys the throughput the analytic model says
/// it does — in simulation, end to end.
#[test]
fn short_preamble_gain_matches_the_model() {
    let sat = Traffic::SaturatedUdp {
        payload_bytes: 512,
        backlog: 10,
    };
    let long = two_node(PhyRate::R11, Preamble::Long, sat, 5);
    let short = two_node(PhyRate::R11, Preamble::Short, sat, 5);
    let model_gain =
        max_throughput_eq_with(512, PhyRate::R11, AccessScheme::Basic, Preamble::Short)
            / max_throughput_eq_with(512, PhyRate::R11, AccessScheme::Basic, Preamble::Long);
    let sim_gain = short / long;
    assert!(
        (sim_gain - model_gain).abs() < 0.05,
        "sim gain {sim_gain:.3} vs model gain {model_gain:.3}"
    );
    assert!(
        sim_gain > 1.12,
        "short preamble should gain ≥12% at 11 Mb/s, got {sim_gain:.3}"
    );
}

/// Two TCP flows in opposite directions between the same pair: both make
/// progress, roughly fairly — each station is simultaneously TCP sender,
/// TCP receiver, MAC transmitter and MAC responder.
#[test]
fn bidirectional_tcp_shares_the_link() {
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 10.0])
        .day(DayProfile::still())
        .seed(8)
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .flow(0, 1, Traffic::BulkTcp { mss: 512 })
        .flow(1, 0, Traffic::BulkTcp { mss: 512 })
        .run();
    let a = report.flow(FlowId(0)).throughput_kbps;
    let b = report.flow(FlowId(1)).throughput_kbps;
    assert!(
        a > 400.0 && b > 400.0,
        "both directions flow: {a:.0} / {b:.0}"
    );
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 2.0, "directions roughly fair: {a:.0} vs {b:.0}");
    // Combined they approach (but cannot beat) the unidirectional rate.
    let solo = two_node(
        PhyRate::R11,
        Preamble::Long,
        Traffic::BulkTcp { mss: 512 },
        8,
    );
    assert!(
        a + b < solo * 1000.0 * 1.15,
        "no free capacity: {:.0} vs solo {:.0}",
        a + b,
        solo * 1000.0
    );
}

/// A station can source a TCP flow while sinking an unrelated UDP flow.
#[test]
fn mixed_roles_on_one_station() {
    let report = ScenarioBuilder::new(PhyRate::R2)
        .line(&[0.0, 20.0, 40.0])
        .day(DayProfile::still())
        .seed(6)
        .duration(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(1))
        // Station 1 sends TCP to 2 while receiving UDP from 0.
        .flow(1, 2, Traffic::BulkTcp { mss: 512 })
        .flow(
            0,
            1,
            Traffic::CbrUdp {
                payload_bytes: 256,
                interval: SimDuration::from_millis(20),
                limit: None,
            },
        )
        .run();
    let tcp = report.flow(FlowId(0));
    let udp = report.flow(FlowId(1));
    assert!(
        tcp.throughput_kbps > 200.0,
        "TCP starved: {:.0}",
        tcp.throughput_kbps
    );
    assert!(
        udp.loss_rate < 0.05,
        "paced UDP should survive: loss {:.2}",
        udp.loss_rate
    );
}

/// Delayed flow starts: a second flow joining mid-run takes its share
/// without wedging the first.
#[test]
fn late_joiner_takes_a_share() {
    let sat = Traffic::SaturatedUdp {
        payload_bytes: 512,
        backlog: 10,
    };
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 10.0, 20.0])
        .day(DayProfile::still())
        .seed(2)
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .flow(0, 1, sat)
        .flow_at(2, 1, sat, SimDuration::from_secs(3))
        .run();
    let first = report.flow(FlowId(0));
    let second = report.flow(FlowId(1));
    assert!(second.delivered_packets > 500, "late joiner moved data");
    // The first flow keeps more bytes (it had the channel alone for
    // half the measured window).
    assert!(first.measured_bytes > second.measured_bytes);
}

/// End-to-end delay statistics behave: paced traffic on an idle link
/// sees near-constant millisecond delays; saturating the interface queue
/// inflates them by orders of magnitude (queueing delay).
#[test]
fn saturation_inflates_delay() {
    let paced = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 10.0])
        .day(DayProfile::still())
        .seed(9)
        .duration(SimDuration::from_secs(4))
        .warmup(SimDuration::from_millis(500))
        .flow(
            0,
            1,
            Traffic::CbrUdp {
                payload_bytes: 512,
                interval: SimDuration::from_millis(10),
                limit: None,
            },
        )
        .run();
    let p = paced.flow(FlowId(0));
    assert!(
        p.mean_delay_ms > 0.0 && p.mean_delay_ms < 5.0,
        "paced delay {:.2} ms",
        p.mean_delay_ms
    );
    assert!(
        p.max_delay_ms < 20.0,
        "paced max delay {:.2} ms",
        p.max_delay_ms
    );

    let saturated = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 10.0])
        .day(DayProfile::still())
        .seed(9)
        .duration(SimDuration::from_secs(4))
        .warmup(SimDuration::from_millis(500))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .run();
    let s = saturated.flow(FlowId(0));
    assert!(
        s.mean_delay_ms > p.mean_delay_ms * 3.0,
        "queueing should inflate delay: {:.2} vs {:.2} ms",
        s.mean_delay_ms,
        p.mean_delay_ms
    );
}
