//! Integration: hidden- and exposed-station topologies.
//!
//! These are the canonical CSMA/CA pathologies the paper's four-station
//! experiments compose; here each is isolated in its pure form.

use desim::SimDuration;
use dot11_testbed::adhoc::analytic::AccessScheme;
use dot11_testbed::adhoc::experiments::{hidden, ExpConfig};
use dot11_testbed::adhoc::{ScenarioBuilder, Traffic};
use dot11_testbed::net::FlowId;
use dot11_testbed::phy::{DayProfile, PhyRate, RadioConfig};

/// Two senders that cannot carrier-sense each other converging on one
/// receiver in the middle: the hidden-station collision storm, and the
/// RTS/CTS rescue.
///
/// Geometry (2 Mb/s, still channel): senders at 0 m and 190 m, receiver
/// at 95 m. Sender-sender distance 190 m is beyond the ~150 m PCS range;
/// each sender-receiver link (95 m) is within the ~104 m data range.
#[test]
fn hidden_stations_collide_and_rts_helps() {
    let run = |rts: bool| {
        let report = ScenarioBuilder::new(PhyRate::R2)
            .line(&[0.0, 95.0, 190.0])
            .day(DayProfile::still())
            .rts(rts)
            .seed(5)
            .duration(SimDuration::from_secs(8))
            .warmup(SimDuration::from_secs(1))
            .flow(
                0,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .flow(
                2,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .run();
        let total = report.flow(FlowId(0)).throughput_kbps + report.flow(FlowId(1)).throughput_kbps;
        let retries: u64 = report.nodes.iter().map(|n| n.mac.retries).sum();
        (total, retries)
    };
    let (basic_total, basic_retries) = run(false);
    let (rts_total, rts_retries) = run(true);
    // Without RTS the hidden senders trash each other's data frames at
    // the receiver: heavy retries, poor goodput.
    assert!(
        basic_retries > 2_000,
        "hidden stations should collide, retries {basic_retries}"
    );
    // RTS/CTS trades short RTS collisions for protected data: fewer
    // retries and clearly better total goodput.
    assert!(
        rts_total > basic_total * 1.3,
        "RTS/CTS should rescue hidden stations: {rts_total:.0} vs {basic_total:.0} kb/s"
    );
    assert!(
        rts_retries < basic_retries,
        "retries {rts_retries} vs {basic_retries}"
    );
}

/// The same pathology through the sweepable experiment constructor
/// ([`hidden::hidden_triple`]), pinned across the paper's test-bed
/// payload sizes: at every size, basic-access aggregate goodput
/// collapses below the RTS/CTS run. This is the scenario `repro sweep
/// --scenarios hidden3` expands, so the pin also guards the sweep axis.
#[test]
fn hidden_triple_collapses_without_rts_at_paper_payloads() {
    let cfg = ExpConfig {
        seed: 5,
        duration: SimDuration::from_secs(8),
        warmup: SimDuration::from_secs(1),
        threads: 1,
    };
    let total = |scheme: AccessScheme, payload: u32| {
        let report = hidden::hidden_triple(cfg, PhyRate::R2, scheme, payload).run();
        report.flow(FlowId(0)).throughput_kbps + report.flow(FlowId(1)).throughput_kbps
    };
    for payload in [512, 1000, 1460] {
        let basic = total(AccessScheme::Basic, payload);
        let rts = total(AccessScheme::RtsCts, payload);
        assert!(
            basic < rts,
            "{payload} B: basic access should collapse below RTS/CTS, \
             got {basic:.0} vs {rts:.0} kb/s"
        );
        assert!(rts > 200.0, "{payload} B: RTS/CTS should move real data");
    }
}

/// With carrier sensing crippled (ablation D1), the session-1 sender can
/// no longer defer to the foreign session it cannot decode: its frames
/// overlap the neighbour's and its receiver — also blinded less often —
/// sees far more corrupted receptions. On the real shadowed channel this
/// collapses session 1 outright.
#[test]
fn removing_pcs_advantage_creates_hidden_stations() {
    let run = |radio: RadioConfig| {
        let report = ScenarioBuilder::new(PhyRate::R11)
            .line(&[0.0, 25.0, 107.5, 132.5])
            .radio(radio)
            .seed(2)
            .duration(SimDuration::from_secs(6))
            .warmup(SimDuration::from_secs(1))
            .flow(
                0,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .flow(
                2,
                3,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .run();
        let retries: u64 = report.nodes.iter().map(|n| n.mac.retries).sum();
        (
            report.flow(FlowId(0)).throughput_kbps,
            report.flow(FlowId(1)).throughput_kbps,
            retries,
        )
    };
    let (s1_with, s2_with, retries_with) = run(RadioConfig::dwl650());
    let (s1_without, s2_without, retries_without) =
        run(RadioConfig::dwl650().without_pcs_advantage());
    // The robust signature of losing carrier sense is wasted air: frames
    // overlap constantly, so MAC retries multiply. (Throughput can move
    // either way — the aggressive sender sometimes *gains* because its
    // receiver captures over the distant interferer — which is itself a
    // finding the ablation bench records.)
    assert!(
        retries_without > retries_with * 2,
        "hidden overlap should multiply retries: {retries_without} vs {retries_with}"
    );
    assert!(s1_with + s2_with > 1000.0, "sanity: baseline moves data");
    assert!(
        s1_without + s2_without > 100.0,
        "sanity: ablation still moves data"
    );
}

/// The exposed-station effect: a sender within carrier-sense range of a
/// *foreign* transmitter defers even though its own receiver (on the far
/// side) would hear it fine. Its throughput under contention falls well
/// below the clean-channel baseline.
#[test]
fn exposed_station_defers_needlessly() {
    // B at 80 m from A transmits to C at 160 m (away from A). A saturates
    // toward its own receiver D on the opposite side (-80 m).
    let run = |with_foreign: bool| {
        let mut b = ScenarioBuilder::new(PhyRate::R2)
            .line(&[0.0, 80.0, 160.0, -80.0])
            .day(DayProfile::still())
            .seed(4)
            .duration(SimDuration::from_secs(6))
            .warmup(SimDuration::from_secs(1))
            .flow(
                1,
                2,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            );
        if with_foreign {
            b = b.flow(
                0,
                3,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            );
        }
        b.run().flow(FlowId(0)).throughput_kbps
    };
    let alone = run(false);
    let exposed = run(true);
    assert!(
        exposed < alone * 0.7,
        "exposed sender should lose throughput: {exposed:.0} vs alone {alone:.0} kb/s"
    );
    assert!(
        exposed > alone * 0.2,
        "but not starve outright: {exposed:.0} kb/s"
    );
}

/// NAV (virtual carrier sense) suppresses CTS responses — the mechanism
/// the paper invokes for its four-station RTS/CTS results ("RTS frames
/// sent by S3 force S2 to not reply with a CTS frame to S1's RTS").
///
/// Construction: a neighbour (S2) keeps sending RTS to a dead station far
/// out of range. Each unanswered RTS leaves a ~1.1 ms reservation in
/// S1's NAV while the medium is physically idle again — so S0's RTS to
/// S1, launched after a normal DIFS+backoff, regularly lands inside the
/// stale reservation and must go unanswered.
#[test]
fn nav_suppresses_cts_after_unanswered_rts() {
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 25.0, 120.0, 600.0])
        .day(DayProfile::still())
        .rts(true)
        .seed(3)
        .duration(SimDuration::from_secs(6))
        .warmup(SimDuration::from_secs(1))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .flow(
            2,
            3,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .run();
    let suppressed = report.nodes[1].mac.cts_suppressed;
    assert!(
        suppressed > 0,
        "stale reservations should block some CTS responses"
    );
    assert!(
        report.nodes[1].mac.nav_updates > 100,
        "S2's RTSes keep setting S1's NAV"
    );
    // The victim flow still makes progress between reservations.
    assert!(report.flow(FlowId(0)).throughput_kbps > 100.0);
}
