//! Auto Rate Fallback (ARF) — dynamic rate switching.
//!
//! The paper's §2 notes that "802.11b cards may implement a dynamic rate
//! switching with the objective of improving performance" (the test-bed
//! pinned the rate instead, to isolate per-rate behaviour). This module
//! implements the classic ARF scheme of Kamerman & Monteban (WaveLAN-II,
//! 1997), the algorithm 2002-era firmware actually shipped:
//!
//! * after [`ArfConfig::up_after`] consecutive successful transmissions,
//!   step one rate up; the first frame at the new rate is a **probe**;
//! * if the probe fails, fall straight back down;
//! * outside probing, [`ArfConfig::down_after`] consecutive failures
//!   step one rate down.
//!
//! Success/failure is counted per transmission attempt (each MAC ACK is
//! a success, each ACK/CTS timeout a failure), which is what firmware
//! observes.

use dot11_phy::PhyRate;

/// ARF tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArfConfig {
    /// Whether ARF drives the data rate at all (off = fixed rate, as in
    /// the paper's test-bed).
    pub enabled: bool,
    /// Consecutive successes before probing the next rate up.
    pub up_after: u32,
    /// Consecutive failures before stepping down (outside a probe).
    pub down_after: u32,
}

impl ArfConfig {
    /// Classic WaveLAN-II parameters: up after 10, down after 2.
    pub fn classic() -> ArfConfig {
        ArfConfig {
            enabled: true,
            up_after: 10,
            down_after: 2,
        }
    }

    /// ARF disabled (fixed-rate operation).
    pub fn disabled() -> ArfConfig {
        ArfConfig {
            enabled: false,
            up_after: 10,
            down_after: 2,
        }
    }
}

impl Default for ArfConfig {
    fn default() -> Self {
        ArfConfig::disabled()
    }
}

/// Cumulative ARF statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArfCounters {
    /// Rate increases committed (probe succeeded).
    pub up_steps: u64,
    /// Rate decreases (including failed probes).
    pub down_steps: u64,
    /// Probes that failed and fell straight back.
    pub failed_probes: u64,
}

/// Per-station ARF state.
#[derive(Debug, Clone, Copy)]
pub struct ArfState {
    cfg: ArfConfig,
    rate: PhyRate,
    successes: u32,
    failures: u32,
    probing: bool,
    counters: ArfCounters,
}

impl ArfState {
    /// Starts at `initial` (the configured NIC rate).
    pub fn new(cfg: ArfConfig, initial: PhyRate) -> ArfState {
        ArfState {
            cfg,
            rate: initial,
            successes: 0,
            failures: 0,
            probing: false,
            counters: ArfCounters::default(),
        }
    }

    /// The rate the next data frame should use.
    pub fn rate(&self) -> PhyRate {
        self.rate
    }

    /// True while the current rate is an uncommitted upward probe.
    pub fn is_probing(&self) -> bool {
        self.probing
    }

    /// Statistics.
    pub fn counters(&self) -> ArfCounters {
        self.counters
    }

    /// A transmission at the current rate was acknowledged.
    pub fn on_success(&mut self) {
        if !self.cfg.enabled {
            return;
        }
        self.failures = 0;
        if self.probing {
            // Probe confirmed: commit the new rate.
            self.probing = false;
            self.counters.up_steps += 1;
            self.successes = 0;
            return;
        }
        self.successes += 1;
        if self.successes >= self.cfg.up_after {
            self.successes = 0;
            if let Some(up) = self.rate.step_up() {
                self.rate = up;
                self.probing = true;
            }
        }
    }

    /// A transmission at the current rate failed (ACK/CTS timeout chain
    /// exhausted or a retry, depending on the caller's granularity).
    pub fn on_failure(&mut self) {
        if !self.cfg.enabled {
            return;
        }
        self.successes = 0;
        if self.probing {
            // Failed probe: straight back down.
            self.probing = false;
            self.counters.failed_probes += 1;
            self.counters.down_steps += 1;
            self.rate = self.rate.step_down().unwrap_or(self.rate);
            self.failures = 0;
            return;
        }
        self.failures += 1;
        if self.failures >= self.cfg.down_after {
            self.failures = 0;
            if let Some(down) = self.rate.step_down() {
                self.rate = down;
                self.counters.down_steps += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_arf_never_moves() {
        let mut a = ArfState::new(ArfConfig::disabled(), PhyRate::R5_5);
        for _ in 0..100 {
            a.on_success();
        }
        for _ in 0..100 {
            a.on_failure();
        }
        assert_eq!(a.rate(), PhyRate::R5_5);
        assert_eq!(a.counters(), ArfCounters::default());
    }

    #[test]
    fn ten_successes_probe_up_and_commit() {
        let mut a = ArfState::new(ArfConfig::classic(), PhyRate::R2);
        for _ in 0..9 {
            a.on_success();
            assert_eq!(a.rate(), PhyRate::R2);
        }
        a.on_success();
        assert_eq!(a.rate(), PhyRate::R5_5, "10th success probes up");
        assert!(a.is_probing());
        a.on_success();
        assert!(!a.is_probing(), "probe success commits");
        assert_eq!(a.counters().up_steps, 1);
    }

    #[test]
    fn failed_probe_falls_straight_back() {
        let mut a = ArfState::new(ArfConfig::classic(), PhyRate::R2);
        for _ in 0..10 {
            a.on_success();
        }
        assert_eq!(a.rate(), PhyRate::R5_5);
        a.on_failure();
        assert_eq!(a.rate(), PhyRate::R2, "single probe failure reverts");
        assert_eq!(a.counters().failed_probes, 1);
    }

    #[test]
    fn two_failures_step_down() {
        let mut a = ArfState::new(ArfConfig::classic(), PhyRate::R11);
        a.on_failure();
        assert_eq!(a.rate(), PhyRate::R11, "one failure is tolerated");
        a.on_failure();
        assert_eq!(a.rate(), PhyRate::R5_5);
        a.on_failure();
        a.on_failure();
        assert_eq!(a.rate(), PhyRate::R2);
        assert_eq!(a.counters().down_steps, 2);
    }

    #[test]
    fn ladder_saturates_at_both_ends() {
        let mut a = ArfState::new(ArfConfig::classic(), PhyRate::R1);
        for _ in 0..10 {
            a.on_failure();
        }
        assert_eq!(a.rate(), PhyRate::R1, "cannot go below 1 Mb/s");
        let mut b = ArfState::new(ArfConfig::classic(), PhyRate::R11);
        for _ in 0..50 {
            b.on_success();
        }
        assert_eq!(b.rate(), PhyRate::R11, "cannot go above 11 Mb/s");
        assert!(!b.is_probing());
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut a = ArfState::new(ArfConfig::classic(), PhyRate::R11);
        a.on_failure();
        a.on_success();
        a.on_failure();
        assert_eq!(
            a.rate(),
            PhyRate::R11,
            "non-consecutive failures don't step down"
        );
    }
}
