//! MAC frame formats and sizes.
//!
//! Sizes follow the paper's Table 1: the data MAC header (addresses,
//! control fields **and** FCS, which the paper folds into the header) is
//! 272 bits = 34 bytes. Control frames use their standard lengths: RTS
//! 20 bytes, CTS and ACK 14 bytes (112 bits, as in Table 1's ACK row).

use desim::SimDuration;
use dot11_phy::NodeId;

/// MAC header + FCS overhead of a data frame, bytes (272 bits, Table 1).
pub const DATA_HEADER_BYTES: u32 = 34;
/// RTS frame length, bytes (160 bits).
pub const RTS_BYTES: u32 = 20;
/// CTS frame length, bytes (112 bits).
pub const CTS_BYTES: u32 = 14;
/// ACK frame length, bytes (112 bits, Table 1).
pub const ACK_BYTES: u32 = 14;

/// The broadcast destination address.
pub const BROADCAST: NodeId = NodeId(u32::MAX);

/// What the upper layer hands to the MAC for transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacSdu<P> {
    /// Destination station ([`BROADCAST`] for broadcast).
    pub dst: NodeId,
    /// MSDU length in bytes (the network-layer packet size).
    pub bytes: u32,
    /// Caller-chosen identifier reported back in
    /// [`crate::MacAction::TxStatus`]; retransmissions keep the tag, and
    /// the receiver MAC uses `(src, tag)` to filter duplicates.
    pub tag: u64,
    /// Opaque upper-layer payload carried through to the receiver.
    pub payload: P,
}

/// Frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A data frame carrying an MSDU.
    Data,
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
    /// MAC-level acknowledgement.
    Ack,
}

/// A MAC frame on the air.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacFrame<P> {
    /// Frame type.
    pub kind: FrameKind,
    /// Transmitting station.
    pub src: NodeId,
    /// Addressed station (receiver address).
    pub dst: NodeId,
    /// The Duration/ID field: how long the medium is reserved beyond this
    /// frame. Third-party stations load it into their NAV.
    pub duration: SimDuration,
    /// MPDU length on the air, bytes (header + payload for data frames).
    pub mpdu_bytes: u32,
    /// Upper-layer identifier (data frames only; 0 otherwise).
    pub tag: u64,
    /// The carried MSDU payload (data frames only).
    pub payload: Option<P>,
}

impl<P> MacFrame<P> {
    /// True if this frame is addressed to `node` specifically.
    pub fn addressed_to(&self, node: NodeId) -> bool {
        self.dst == node
    }

    /// True if this is a broadcast frame.
    pub fn is_broadcast(&self) -> bool {
        self.dst == BROADCAST
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_in_bits() {
        assert_eq!(DATA_HEADER_BYTES * 8, 272);
        assert_eq!(ACK_BYTES * 8, 112);
        assert_eq!(CTS_BYTES * 8, 112);
        assert_eq!(RTS_BYTES * 8, 160);
    }

    #[test]
    fn addressing_predicates() {
        let f: MacFrame<()> = MacFrame {
            kind: FrameKind::Ack,
            src: NodeId(1),
            dst: NodeId(2),
            duration: SimDuration::ZERO,
            mpdu_bytes: ACK_BYTES,
            tag: 0,
            payload: None,
        };
        assert!(f.addressed_to(NodeId(2)));
        assert!(!f.addressed_to(NodeId(1)));
        assert!(!f.is_broadcast());
        let b = MacFrame {
            dst: BROADCAST,
            ..f
        };
        assert!(b.is_broadcast());
    }
}
