//! MAC timing parameters (the paper's Table 1).

use desim::SimDuration;
use dot11_phy::{FrameAirtime, PhyRate, Preamble};

use crate::frame::ACK_BYTES;

/// The DCF timing constants.
///
/// Defaults are exactly the paper's Table 1: slot 20 µs, SIFS 10 µs,
/// DIFS 50 µs, CWmin 32 slots, CWmax 1024 slots, propagation delay
/// τ = 1 µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacTiming {
    /// Slot time.
    pub slot: SimDuration,
    /// Short interframe space.
    pub sifs: SimDuration,
    /// DCF interframe space (SIFS + 2 slots).
    pub difs: SimDuration,
    /// Minimum contention window, slots.
    pub cw_min: u32,
    /// Maximum contention window, slots.
    pub cw_max: u32,
    /// One-way propagation delay budgeted in timeouts (Table 1's τ).
    pub propagation: SimDuration,
}

impl MacTiming {
    /// 802.11b DSSS values (Table 1).
    pub fn dsss() -> MacTiming {
        MacTiming {
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            cw_min: 32,
            cw_max: 1024,
            propagation: SimDuration::from_micros(1),
        }
    }

    /// The same timing with the contention-window bounds moved — the
    /// sweep layer's CW axis. Panics if `cw_min` is 0 or above `cw_max`.
    pub fn with_cw(mut self, cw_min: u32, cw_max: u32) -> MacTiming {
        assert!(cw_min >= 1, "CWmin must be at least 1 slot");
        assert!(cw_min <= cw_max, "CWmin must not exceed CWmax");
        self.cw_min = cw_min;
        self.cw_max = cw_max;
        self
    }

    /// The same timing with a different slot, re-deriving
    /// `DIFS = SIFS + 2·slot` (802.11-1999 §9.2.10). Panics on a zero
    /// slot.
    pub fn with_slot_us(mut self, slot_us: u32) -> MacTiming {
        assert!(slot_us >= 1, "slot must be at least 1 µs");
        self.slot = SimDuration::from_micros(u64::from(slot_us));
        self.difs = self.sifs + self.slot * 2;
        self
    }

    /// Extended interframe space used after a frame is sensed but not
    /// decoded: `SIFS + DIFS + T_ACK` at the lowest basic rate
    /// (802.11-1999 §9.2.3.4).
    pub fn eifs(&self, preamble: Preamble) -> SimDuration {
        let ack_at_1mbps = FrameAirtime::new(ACK_BYTES, PhyRate::R1, preamble).total();
        self.sifs + self.difs + ack_at_1mbps
    }

    /// How long a transmitter waits for a CTS/ACK response before
    /// declaring the attempt failed: SIFS + response airtime + a slot of
    /// slack + two propagation delays.
    pub fn response_timeout(&self, response_air: SimDuration) -> SimDuration {
        self.sifs + response_air + self.slot + self.propagation * 2
    }
}

impl Default for MacTiming {
    fn default() -> Self {
        MacTiming::dsss()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t = MacTiming::dsss();
        assert_eq!(t.slot.as_micros(), 20);
        assert_eq!(t.sifs.as_micros(), 10);
        assert_eq!(t.difs.as_micros(), 50);
        assert_eq!(t.cw_min, 32);
        assert_eq!(t.cw_max, 1024);
        assert_eq!(t.propagation.as_micros(), 1);
        // DIFS = SIFS + 2 slots, as the standard derives it.
        assert_eq!(t.difs, t.sifs + t.slot * 2);
    }

    #[test]
    fn eifs_is_sifs_difs_plus_ack_at_1mbps() {
        let t = MacTiming::dsss();
        // ACK at 1 Mb/s behind a long preamble: 192 + 112 = 304 µs.
        assert_eq!(t.eifs(Preamble::Long).as_micros(), 10 + 50 + 304);
        assert_eq!(t.eifs(Preamble::Short).as_micros(), 10 + 50 + 96 + 112);
    }

    #[test]
    fn response_timeout_covers_the_response() {
        let t = MacTiming::dsss();
        let cts_air = FrameAirtime::new(14, PhyRate::R2, Preamble::Long).total();
        let timeout = t.response_timeout(cts_air);
        assert!(timeout > t.sifs + cts_air);
        assert_eq!(timeout.as_micros(), 10 + 248 + 20 + 2);
    }
}
