//! IEEE 802.11 DCF MAC for the ad hoc testbed.
//!
//! Implements the Distributed Coordination Function as measured by
//! *"IEEE 802.11 Ad Hoc Networks: Performance Measurements"* (ICDCS-W
//! 2003): physical + virtual carrier sense, DIFS/EIFS deferral, slotted
//! backoff with freeze/resume and the 32→1024 contention-window ladder of
//! the paper's Table 1, the basic-access and RTS/CTS exchanges, retry
//! limits, and — crucially for the paper's findings — **per-class
//! transmit rates**: data frames go out at the NIC rate while RTS, CTS
//! and ACK go out at a basic rate (1 or 2 Mb/s), so control frames carry
//! 3–4× further than 11 Mb/s data.
//!
//! The state machine is driven from outside (the `dot11-adhoc` world):
//! every entry point takes `now` and appends [`MacAction`]s describing
//! what the station does (transmit a frame, arm/cancel a timer, deliver a
//! payload). The MAC is generic over the upper-layer payload `P`, which
//! it never inspects.
//!
//! # Example
//!
//! ```
//! use dot11_mac::{DcfMac, MacAction, MacConfig, MacSdu, TimerKind};
//! use dot11_phy::{NodeId, PhyRate};
//! use desim::{SimRng, SimTime};
//!
//! let cfg = MacConfig::new(PhyRate::R11);
//! let mut mac: DcfMac<&str> = DcfMac::new(NodeId(0), cfg, SimRng::from_seed(1));
//! let mut out = Vec::new();
//! // Enqueue a 512-byte SDU for station 1 on an idle medium:
//! mac.enqueue(MacSdu { dst: NodeId(1), bytes: 512, tag: 7, payload: "pkt" },
//!             SimTime::ZERO, &mut out);
//! // The station defers for DIFS before anything goes on the air.
//! assert!(matches!(out[0], MacAction::StartTimer { kind: TimerKind::Difs, .. }));
//! ```

#![warn(missing_docs)]

mod arf;
mod config;
mod counters;
mod dcf;
mod frame;
mod ledger;
mod policy;
mod timing;

pub use arf::{ArfConfig, ArfCounters, ArfState};
pub use config::MacConfig;
pub use counters::MacCounters;
pub use dcf::{DcfMac, MacAction, TimerKind};
pub use frame::{
    FrameKind, MacFrame, MacSdu, ACK_BYTES, BROADCAST, CTS_BYTES, DATA_HEADER_BYTES, RTS_BYTES,
};
pub use ledger::DeferLedger;
pub use policy::{AnyPolicy, BackoffConfig, BackoffPolicy, Beb, CtAdapt, CtAdaptConfig, FixedCw};
pub use timing::MacTiming;
