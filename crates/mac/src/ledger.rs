//! The per-station defer ledger: where MAC-idle time goes.
//!
//! The PHY's airtime ledger splits the run horizon into tx / rx-locked /
//! carrier-busy / idle by radio state alone. This module refines the
//! *idle* share with what the MAC was doing while the radio heard
//! nothing: deferring under a NAV reservation, running down DIFS/EIFS,
//! counting backoff slots, holding a frozen backoff, or genuinely quiet.
//! Together the two ledgers give the exhaustive channel-state accounting
//! the paper's airtime arguments need (who actually got to count down,
//! who sat behind a reservation).
//!
//! The ledger is charged incrementally: every public [`DcfMac`] entry
//! point first charges the span since the previous entry to the category
//! that held over it, then re-derives the category from the post-event
//! state. One category is special-cased: a NAV reservation expires at a
//! known instant but — for a station with nothing to send — without any
//! event, so a [`DeferCat::Nav`] span that crosses its expiry is split at
//! the boundary instead of being charged whole.
//!
//! Every nanosecond lands in exactly one category, and the categories
//! marked *off* mirror the PHY's non-idle time exactly (the MAC learns of
//! every carrier edge at the timestamp it happens), so
//! `off_ns == tx_ns + rx_ns + busy_ns` and the remaining five categories
//! partition the PHY's `idle_ns` — both bit-exactly, which the
//! `airtime` integration tests assert on the golden scenarios.
//!
//! [`DcfMac`]: crate::DcfMac

use desim::SimTime;

/// The category a span of MAC time is charged to.
///
/// Precedence (first match wins) when re-deriving after an event:
/// carrier busy ▸ frozen backoff ▸ DIFS/EIFS ▸ backoff counting ▸
/// NAV defer ▸ quiet. A station in DIFS or backoff never holds an active
/// NAV (reservations are only learned while the carrier is busy, which
/// cancels both), so the ordering of `Difs`/`Backoff` against `Nav` is
/// documentation more than arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeferCat {
    /// The radio is transmitting, locked on a frame, or sensing energy:
    /// the PHY ledger owns the detail; the MAC only totals it.
    Off,
    /// Backoff frozen: slots drawn, medium reserved (NAV) while the
    /// carrier itself is idle.
    Frozen,
    /// DIFS/EIFS deferral running.
    Difs,
    /// Backoff slots counting down.
    Backoff,
    /// Idle carrier but a standing NAV reservation until the given
    /// instant; a charge crossing that instant splits there.
    Nav(SimTime),
    /// Nothing to do: no carrier, no reservation, no pending frame work.
    Quiet,
}

/// Accumulated MAC-side airtime, nanoseconds per category (the module
/// docs in `ledger.rs` describe the accounting discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferLedger {
    /// Time the carrier was non-idle (the PHY's tx + rx + busy).
    pub off_ns: u64,
    /// NAV deferral on an idle carrier.
    pub nav_ns: u64,
    /// DIFS/EIFS deferral.
    pub difs_ns: u64,
    /// Backoff slots counting down.
    pub backoff_ns: u64,
    /// Backoff frozen under a NAV reservation.
    pub frozen_ns: u64,
    /// None of the above: truly idle.
    pub quiet_ns: u64,
    mark: SimTime,
    cat: DeferCat,
}

impl Default for DeferLedger {
    fn default() -> DeferLedger {
        DeferLedger {
            off_ns: 0,
            nav_ns: 0,
            difs_ns: 0,
            backoff_ns: 0,
            frozen_ns: 0,
            quiet_ns: 0,
            mark: SimTime::ZERO,
            cat: DeferCat::Quiet,
        }
    }
}

impl DeferLedger {
    /// Charges the span since the previous charge to the standing
    /// category and advances the mark. A NAV span that crosses its known
    /// expiry is split: reservation time up to the expiry, quiet after.
    pub(crate) fn charge(&mut self, now: SimTime) {
        let span = now.saturating_duration_since(self.mark).as_nanos();
        match self.cat {
            DeferCat::Off => self.off_ns += span,
            DeferCat::Frozen => self.frozen_ns += span,
            DeferCat::Difs => self.difs_ns += span,
            DeferCat::Backoff => self.backoff_ns += span,
            DeferCat::Nav(until) => {
                if until >= now {
                    self.nav_ns += span;
                } else {
                    let reserved = until.saturating_duration_since(self.mark).as_nanos();
                    self.nav_ns += reserved;
                    self.quiet_ns += span - reserved;
                    // The reservation is spent; without this the next
                    // charge would split again at a stale boundary.
                    self.cat = DeferCat::Quiet;
                }
            }
            DeferCat::Quiet => self.quiet_ns += span,
        }
        self.mark = now;
    }

    /// Sets the category that holds from the last charge onward.
    pub(crate) fn set_cat(&mut self, cat: DeferCat) {
        self.cat = cat;
    }

    /// Sum over every category: the horizon this ledger has accounted.
    pub fn total_ns(&self) -> u64 {
        self.off_ns + self.nav_ns + self.difs_ns + self.backoff_ns + self.frozen_ns + self.quiet_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn charges_span_to_standing_category() {
        let mut l = DeferLedger::default();
        l.charge(at(10)); // quiet 10 µs
        l.set_cat(DeferCat::Difs);
        l.charge(at(60)); // difs 50 µs
        l.set_cat(DeferCat::Backoff);
        l.charge(at(100)); // backoff 40 µs
        l.set_cat(DeferCat::Off);
        l.charge(at(700)); // off 600 µs
        assert_eq!(l.quiet_ns, 10_000);
        assert_eq!(l.difs_ns, 50_000);
        assert_eq!(l.backoff_ns, 40_000);
        assert_eq!(l.off_ns, 600_000);
        assert_eq!(l.total_ns(), 700_000);
    }

    #[test]
    fn nav_span_splits_at_expiry() {
        let mut l = DeferLedger::default();
        l.set_cat(DeferCat::Nav(at(100)));
        // Next event only at 250 µs: 100 µs reserved, 150 µs quiet.
        l.charge(at(250));
        assert_eq!(l.nav_ns, 100_000);
        assert_eq!(l.quiet_ns, 150_000);
        // The stale boundary must not split again.
        l.charge(at(300));
        assert_eq!(l.quiet_ns, 200_000);
        assert_eq!(l.total_ns(), 300_000);
    }

    #[test]
    fn nav_span_ending_at_expiry_is_all_reserved() {
        let mut l = DeferLedger::default();
        l.set_cat(DeferCat::Nav(at(100)));
        l.charge(at(100));
        assert_eq!(l.nav_ns, 100_000);
        assert_eq!(l.quiet_ns, 0);
    }

    #[test]
    fn frozen_and_zero_spans() {
        let mut l = DeferLedger::default();
        l.set_cat(DeferCat::Frozen);
        l.charge(at(40));
        l.charge(at(40)); // zero-length re-charge at the same instant
        assert_eq!(l.frozen_ns, 40_000);
        assert_eq!(l.total_ns(), 40_000);
    }
}
