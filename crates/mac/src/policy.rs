//! Pluggable contention-window (backoff) policies.
//!
//! The DCF state machine in [`crate::DcfMac`] owns *when* a backoff is
//! drawn and *which* RNG substream the draw comes from; a
//! [`BackoffPolicy`] only decides **how wide the contention window is**
//! at each of the two decision points the standard defines:
//!
//! - after a failed attempt (CTS/ACK timeout) — classically the window
//!   doubles, and
//! - after the current frame completes (delivered or dropped) —
//!   classically the window resets to CWmin.
//!
//! Three policies ship:
//!
//! - [`Beb`] — binary exponential backoff, byte-identical to the
//!   hard-wired ladder this trait was extracted from (proven by the
//!   golden-trace suite);
//! - [`FixedCw`] — a constant window, the classic ablation for
//!   separating contention-window dynamics from everything else;
//! - [`CtAdapt`] — a Serrano-style proportional controller
//!   (arXiv:1203.2970) that steers the window so the observed
//!   per-attempt failure rate tracks a target. The same timeout events
//!   that increment `MacCounters::retries` drive its estimator.
//!
//! # Determinism contract
//!
//! A policy must be a **pure function of its own observed history**: it
//! may keep state, but it must not draw randomness at all. The single
//! `gen_range_u32(0, cw)` draw per backoff stays inside `DcfMac`, on the
//! station's own labeled `mac/{i}` substream, so swapping policies never
//! perturbs any other station's random sequence. A policy that needs
//! randomization must be given its own labeled substream at
//! construction — never an extra draw from an existing stream.
//!
//! # Examples
//!
//! Drive a controller directly and watch it widen the window under
//! sustained collisions, then relax once the channel clears:
//!
//! ```
//! use dot11_mac::{BackoffPolicy, CtAdapt, CtAdaptConfig, MacTiming};
//!
//! let timing = MacTiming::dsss();
//! let mut policy = CtAdapt::new(CtAdaptConfig::default());
//! let mut cw = timing.cw_min;
//! // A long burst of timeouts: every attempt fails.
//! for _ in 0..256 {
//!     cw = policy.on_failure(cw, &timing);
//! }
//! assert!(cw > timing.cw_min, "controller widened the window");
//! // The channel clears: every frame now completes first try.
//! for _ in 0..2048 {
//!     cw = policy.on_complete(cw, true, &timing);
//! }
//! assert_eq!(cw, timing.cw_min, "controller relaxed back to CWmin");
//! ```

use crate::timing::MacTiming;

/// How a station's contention window evolves.
///
/// Implementations are stepped by [`crate::DcfMac`] at the two points
/// where 802.11 re-draws a backoff; the return value becomes the new
/// window and the MAC draws uniformly in `[0, cw)` from its own RNG
/// substream. The module docs above spell out the determinism contract
/// and walk a worked example.
pub trait BackoffPolicy {
    /// Short static name used in sweep labels and cache keys.
    fn name(&self) -> &'static str;

    /// The window after a failed attempt (CTS or ACK timeout), given the
    /// window `cw` the attempt was drawn from.
    fn on_failure(&mut self, cw: u32, timing: &MacTiming) -> u32;

    /// The window after the current frame completes — `success` is true
    /// for a delivered frame, false for one dropped at the retry limit.
    fn on_complete(&mut self, cw: u32, success: bool, timing: &MacTiming) -> u32;
}

/// Binary exponential backoff — the 802.11 default and the paper's
/// Table 1 ladder: double toward CWmax on failure, reset to CWmin on
/// completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Beb;

impl BackoffPolicy for Beb {
    fn name(&self) -> &'static str {
        "beb"
    }

    fn on_failure(&mut self, cw: u32, timing: &MacTiming) -> u32 {
        (cw * 2).min(timing.cw_max)
    }

    fn on_complete(&mut self, _cw: u32, _success: bool, timing: &MacTiming) -> u32 {
        timing.cw_min
    }
}

/// A constant contention window: no doubling, no reset. Isolates the
/// cost of contention-window dynamics from the rest of DCF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedCw {
    cw: u32,
}

impl FixedCw {
    /// A fixed window of `cw` slots (clamped to ≥ 1 — the MAC draws
    /// uniformly in `[0, cw)`).
    pub fn new(cw: u32) -> FixedCw {
        FixedCw { cw: cw.max(1) }
    }
}

impl BackoffPolicy for FixedCw {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn on_failure(&mut self, _cw: u32, _timing: &MacTiming) -> u32 {
        self.cw
    }

    fn on_complete(&mut self, _cw: u32, _success: bool, _timing: &MacTiming) -> u32 {
        self.cw
    }
}

/// Parameters of the [`CtAdapt`] proportional controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtAdaptConfig {
    /// Target per-attempt failure probability the controller steers
    /// toward (Serrano et al. aim near the collision rate that maximizes
    /// DCF throughput; 0.1 is a sensible default at small n).
    pub target: f64,
    /// Proportional gain applied to the error `observed − target` as a
    /// multiplicative window update per control step.
    pub gain: f64,
    /// Attempts per control step — the estimator window.
    pub window: u32,
}

impl Default for CtAdaptConfig {
    fn default() -> CtAdaptConfig {
        CtAdaptConfig {
            target: 0.1,
            gain: 4.0,
            window: 16,
        }
    }
}

/// A Serrano-style control-theoretic window adapter (arXiv:1203.2970).
///
/// Counts attempts and failures (the same events that feed
/// `MacCounters::retries`); every [`CtAdaptConfig::window`] attempts it
/// applies one proportional step
/// `cw ← cw · (1 + gain · (observed − target))`, clamped to
/// `[CWmin, CWmax]`. Unlike BEB the window is *persistent* — it is not
/// reset after a success, so the station keeps the operating point the
/// controller found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtAdapt {
    cfg: CtAdaptConfig,
    /// Controller state as a continuous window; 0.0 until the first
    /// observation seeds it from the MAC's current window.
    cw: f64,
    attempts: u32,
    failures: u32,
}

impl CtAdapt {
    /// A fresh controller; the window seeds itself from the MAC's
    /// current CW (CWmin at start-of-day) on the first observation.
    pub fn new(cfg: CtAdaptConfig) -> CtAdapt {
        CtAdapt {
            cfg,
            cw: 0.0,
            attempts: 0,
            failures: 0,
        }
    }

    fn observe(&mut self, cw: u32, failed: bool, timing: &MacTiming) -> u32 {
        if self.cw == 0.0 {
            self.cw = f64::from(cw);
        }
        self.attempts += 1;
        self.failures += u32::from(failed);
        if self.attempts >= self.cfg.window.max(1) {
            let observed = f64::from(self.failures) / f64::from(self.attempts);
            let error = observed - self.cfg.target;
            self.cw = (self.cw * (1.0 + self.cfg.gain * error))
                .clamp(f64::from(timing.cw_min), f64::from(timing.cw_max));
            self.attempts = 0;
            self.failures = 0;
        }
        self.cw.round() as u32
    }
}

impl BackoffPolicy for CtAdapt {
    fn name(&self) -> &'static str {
        "ctadapt"
    }

    fn on_failure(&mut self, cw: u32, timing: &MacTiming) -> u32 {
        self.observe(cw, true, timing)
    }

    fn on_complete(&mut self, cw: u32, success: bool, timing: &MacTiming) -> u32 {
        self.observe(cw, !success, timing)
    }
}

/// Copyable policy selector stored in [`crate::MacConfig`] — the sweep
/// layer hashes and cross-products these, and each `World` node
/// instantiates its live state via [`BackoffConfig::instantiate`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum BackoffConfig {
    /// Binary exponential backoff (the default; byte-identical to the
    /// pre-trait hard-wired ladder).
    #[default]
    Beb,
    /// A constant window of the given width, slots.
    FixedCw(u32),
    /// The proportional controller.
    CtAdapt(CtAdaptConfig),
}

impl BackoffConfig {
    /// Builds the live per-station policy state.
    pub fn instantiate(&self) -> AnyPolicy {
        match *self {
            BackoffConfig::Beb => AnyPolicy::Beb(Beb),
            BackoffConfig::FixedCw(cw) => AnyPolicy::FixedCw(FixedCw::new(cw)),
            BackoffConfig::CtAdapt(cfg) => AnyPolicy::CtAdapt(CtAdapt::new(cfg)),
        }
    }

    /// The policy's short name (matches [`BackoffPolicy::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            BackoffConfig::Beb => "beb",
            BackoffConfig::FixedCw(_) => "fixed",
            BackoffConfig::CtAdapt(_) => "ctadapt",
        }
    }
}

/// Enum dispatcher over the shipped policies, so `DcfMac` (and the
/// per-cell `MacConfig` it copies from) stays `Copy` with no boxed
/// trait object on the per-event hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyPolicy {
    /// See [`Beb`].
    Beb(Beb),
    /// See [`FixedCw`].
    FixedCw(FixedCw),
    /// See [`CtAdapt`].
    CtAdapt(CtAdapt),
}

impl BackoffPolicy for AnyPolicy {
    fn name(&self) -> &'static str {
        match self {
            AnyPolicy::Beb(p) => p.name(),
            AnyPolicy::FixedCw(p) => p.name(),
            AnyPolicy::CtAdapt(p) => p.name(),
        }
    }

    fn on_failure(&mut self, cw: u32, timing: &MacTiming) -> u32 {
        match self {
            AnyPolicy::Beb(p) => p.on_failure(cw, timing),
            AnyPolicy::FixedCw(p) => p.on_failure(cw, timing),
            AnyPolicy::CtAdapt(p) => p.on_failure(cw, timing),
        }
    }

    fn on_complete(&mut self, cw: u32, success: bool, timing: &MacTiming) -> u32 {
        match self {
            AnyPolicy::Beb(p) => p.on_complete(cw, success, timing),
            AnyPolicy::FixedCw(p) => p.on_complete(cw, success, timing),
            AnyPolicy::CtAdapt(p) => p.on_complete(cw, success, timing),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beb_matches_the_table1_ladder() {
        let t = MacTiming::dsss();
        let mut p = Beb;
        let mut cw = t.cw_min;
        let ladder: Vec<u32> = (0..7)
            .map(|_| {
                cw = p.on_failure(cw, &t);
                cw
            })
            .collect();
        assert_eq!(ladder, vec![64, 128, 256, 512, 1024, 1024, 1024]);
        assert_eq!(p.on_complete(cw, true, &t), 32);
        assert_eq!(p.on_complete(cw, false, &t), 32);
    }

    #[test]
    fn fixed_cw_never_moves() {
        let t = MacTiming::dsss();
        let mut p = FixedCw::new(64);
        assert_eq!(p.on_failure(64, &t), 64);
        assert_eq!(p.on_complete(64, true, &t), 64);
        assert_eq!(p.on_complete(64, false, &t), 64);
        // Degenerate width is clamped so the uniform draw stays valid.
        assert_eq!(FixedCw::new(0), FixedCw::new(1));
    }

    #[test]
    fn ct_adapt_widens_under_collisions_and_relaxes_when_clear() {
        let t = MacTiming::dsss();
        let mut p = CtAdapt::new(CtAdaptConfig::default());
        let mut cw = t.cw_min;
        for _ in 0..8 * 16 {
            cw = p.on_failure(cw, &t);
        }
        assert!(cw > 256, "sustained failures must widen the window: {cw}");
        for _ in 0..64 * 16 {
            cw = p.on_complete(cw, true, &t);
        }
        assert_eq!(cw, t.cw_min, "a clear channel must relax the window");
    }

    #[test]
    fn ct_adapt_is_clamped_to_the_configured_window_range() {
        let t = MacTiming::dsss();
        let mut p = CtAdapt::new(CtAdaptConfig::default());
        let mut cw = t.cw_min;
        for _ in 0..1024 {
            cw = p.on_failure(cw, &t);
            assert!(cw <= t.cw_max);
        }
        assert_eq!(cw, t.cw_max);
        for _ in 0..4096 {
            cw = p.on_complete(cw, true, &t);
            assert!(cw >= t.cw_min);
        }
    }

    #[test]
    fn selector_instantiates_matching_state() {
        assert_eq!(BackoffConfig::default(), BackoffConfig::Beb);
        assert_eq!(BackoffConfig::Beb.instantiate().name(), "beb");
        assert_eq!(BackoffConfig::FixedCw(8).instantiate().name(), "fixed");
        let ct = BackoffConfig::CtAdapt(CtAdaptConfig::default());
        assert_eq!(ct.instantiate().name(), "ctadapt");
        assert_eq!(ct.name(), "ctadapt");
    }
}
