//! MAC-level statistics counters.

/// Cumulative counters for one station's MAC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacCounters {
    /// Data MPDU transmission attempts (including retransmissions).
    pub data_tx: u64,
    /// RTS transmissions.
    pub rts_tx: u64,
    /// CTS transmissions.
    pub cts_tx: u64,
    /// ACK transmissions.
    pub ack_tx: u64,
    /// MSDUs handed up to the network layer.
    pub delivered: u64,
    /// Duplicate data frames filtered by the `(src, tag)` cache.
    pub duplicates: u64,
    /// MSDUs completed successfully (MAC ACK received / broadcast sent).
    pub tx_success: u64,
    /// MSDUs dropped at the retry limit.
    pub tx_dropped: u64,
    /// MSDUs rejected because the interface queue was full.
    pub queue_drops: u64,
    /// Retransmission attempts (CTS or ACK timeouts).
    pub retries: u64,
    /// Times the EIFS deferral was used instead of DIFS.
    pub eifs_defers: u64,
    /// Times the NAV was set/extended by an overheard frame.
    pub nav_updates: u64,
    /// CTS suppressed because the NAV was busy when an RTS arrived.
    pub cts_suppressed: u64,
}

impl MacCounters {
    /// Total frames put on the air by this station.
    pub fn total_tx(&self) -> u64 {
        self.data_tx + self.rts_tx + self.cts_tx + self.ack_tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_tx_sums_frame_classes() {
        let c = MacCounters {
            data_tx: 3,
            rts_tx: 2,
            cts_tx: 1,
            ack_tx: 4,
            ..Default::default()
        };
        assert_eq!(c.total_tx(), 10);
        assert_eq!(MacCounters::default().total_tx(), 0);
    }
}
