//! Per-station MAC configuration.

use dot11_phy::{PhyRate, Preamble};

use crate::arf::ArfConfig;
use crate::policy::BackoffConfig;
use crate::timing::MacTiming;

/// Configuration of one station's DCF MAC.
#[derive(Debug, Clone, Copy)]
pub struct MacConfig {
    /// Rate used for data MPDUs (the NIC rate, fixed per experiment as in
    /// the paper's test-bed).
    pub data_rate: PhyRate,
    /// Rate used for RTS/CTS/ACK. The standard requires a basic-set rate;
    /// the test-bed's basic set is {1, 2} Mb/s and by default control
    /// goes at the highest basic rate not above the data rate.
    pub control_rate: PhyRate,
    /// Whether the RTS/CTS exchange precedes data frames.
    pub rts_enabled: bool,
    /// Maximum transmissions of an RTS or of a basic-access data frame
    /// (dot11ShortRetryLimit).
    pub short_retry_limit: u32,
    /// Maximum transmissions of a data frame protected by RTS/CTS
    /// (dot11LongRetryLimit).
    pub long_retry_limit: u32,
    /// Interface queue capacity, MSDUs.
    pub queue_capacity: usize,
    /// Timing constants.
    pub timing: MacTiming,
    /// PLCP preamble in use.
    pub preamble: Preamble,
    /// Whether EIFS is applied after undecodable frames (ablation D3
    /// disables it).
    pub eifs_enabled: bool,
    /// Dynamic rate switching (ARF). Disabled by default — the paper's
    /// test-bed pinned the NIC rate; enabling this reproduces what
    /// shipping firmware did instead.
    pub arf: ArfConfig,
    /// Contention-window policy. Defaults to binary exponential backoff
    /// ([`BackoffConfig::Beb`]), the paper's Table 1 behaviour.
    pub backoff: BackoffConfig,
}

impl MacConfig {
    /// The paper's configuration at a given NIC rate: basic access
    /// (RTS/CTS off), control at the matching basic rate, standard retry
    /// limits, 50-packet interface queue.
    pub fn new(data_rate: PhyRate) -> MacConfig {
        MacConfig {
            data_rate,
            control_rate: data_rate.control_rate(),
            rts_enabled: false,
            short_retry_limit: 7,
            long_retry_limit: 4,
            queue_capacity: 50,
            timing: MacTiming::dsss(),
            preamble: Preamble::Long,
            eifs_enabled: true,
            arf: ArfConfig::disabled(),
            backoff: BackoffConfig::Beb,
        }
    }

    /// The same configuration with the RTS/CTS mechanism on.
    pub fn with_rts(mut self) -> MacConfig {
        self.rts_enabled = true;
        self
    }

    /// The same configuration with classic ARF rate switching on,
    /// starting from the configured data rate.
    pub fn with_arf(mut self) -> MacConfig {
        self.arf = ArfConfig::classic();
        self
    }

    /// The same configuration under a different backoff policy.
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> MacConfig {
        self.backoff = backoff;
        self
    }

    /// The same configuration with the contention-window bounds moved —
    /// the CWmin/CWmax sensitivity axis (Siddik et al.,
    /// arXiv:2206.12615). `cw_min` must be ≥ 1 and ≤ `cw_max`.
    pub fn with_cw(mut self, cw_min: u32, cw_max: u32) -> MacConfig {
        self.timing = self.timing.with_cw(cw_min, cw_max);
        self
    }

    /// The same configuration with different retry limits
    /// (dot11ShortRetryLimit / dot11LongRetryLimit).
    pub fn with_retry_limits(mut self, short: u32, long: u32) -> MacConfig {
        self.short_retry_limit = short;
        self.long_retry_limit = long;
        self
    }

    /// The same configuration with a different slot time. DIFS is
    /// re-derived as `SIFS + 2·slot`, as the standard defines it.
    pub fn with_slot_us(mut self, slot_us: u32) -> MacConfig {
        self.timing = self.timing.with_slot_us(slot_us);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_rate_follows_basic_set() {
        assert_eq!(MacConfig::new(PhyRate::R11).control_rate, PhyRate::R2);
        assert_eq!(MacConfig::new(PhyRate::R5_5).control_rate, PhyRate::R2);
        assert_eq!(MacConfig::new(PhyRate::R2).control_rate, PhyRate::R2);
        assert_eq!(MacConfig::new(PhyRate::R1).control_rate, PhyRate::R1);
    }

    #[test]
    fn rts_toggle() {
        let base = MacConfig::new(PhyRate::R11);
        assert!(!base.rts_enabled);
        assert!(base.with_rts().rts_enabled);
        assert_eq!(base.short_retry_limit, 7);
        assert_eq!(base.long_retry_limit, 4);
    }
}
