//! Per-station MAC configuration.

use dot11_phy::{PhyRate, Preamble};

use crate::arf::ArfConfig;
use crate::timing::MacTiming;

/// Configuration of one station's DCF MAC.
#[derive(Debug, Clone, Copy)]
pub struct MacConfig {
    /// Rate used for data MPDUs (the NIC rate, fixed per experiment as in
    /// the paper's test-bed).
    pub data_rate: PhyRate,
    /// Rate used for RTS/CTS/ACK. The standard requires a basic-set rate;
    /// the test-bed's basic set is {1, 2} Mb/s and by default control
    /// goes at the highest basic rate not above the data rate.
    pub control_rate: PhyRate,
    /// Whether the RTS/CTS exchange precedes data frames.
    pub rts_enabled: bool,
    /// Maximum transmissions of an RTS or of a basic-access data frame
    /// (dot11ShortRetryLimit).
    pub short_retry_limit: u32,
    /// Maximum transmissions of a data frame protected by RTS/CTS
    /// (dot11LongRetryLimit).
    pub long_retry_limit: u32,
    /// Interface queue capacity, MSDUs.
    pub queue_capacity: usize,
    /// Timing constants.
    pub timing: MacTiming,
    /// PLCP preamble in use.
    pub preamble: Preamble,
    /// Whether EIFS is applied after undecodable frames (ablation D3
    /// disables it).
    pub eifs_enabled: bool,
    /// Dynamic rate switching (ARF). Disabled by default — the paper's
    /// test-bed pinned the NIC rate; enabling this reproduces what
    /// shipping firmware did instead.
    pub arf: ArfConfig,
}

impl MacConfig {
    /// The paper's configuration at a given NIC rate: basic access
    /// (RTS/CTS off), control at the matching basic rate, standard retry
    /// limits, 50-packet interface queue.
    pub fn new(data_rate: PhyRate) -> MacConfig {
        MacConfig {
            data_rate,
            control_rate: data_rate.control_rate(),
            rts_enabled: false,
            short_retry_limit: 7,
            long_retry_limit: 4,
            queue_capacity: 50,
            timing: MacTiming::dsss(),
            preamble: Preamble::Long,
            eifs_enabled: true,
            arf: ArfConfig::disabled(),
        }
    }

    /// The same configuration with the RTS/CTS mechanism on.
    pub fn with_rts(mut self) -> MacConfig {
        self.rts_enabled = true;
        self
    }

    /// The same configuration with classic ARF rate switching on,
    /// starting from the configured data rate.
    pub fn with_arf(mut self) -> MacConfig {
        self.arf = ArfConfig::classic();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_rate_follows_basic_set() {
        assert_eq!(MacConfig::new(PhyRate::R11).control_rate, PhyRate::R2);
        assert_eq!(MacConfig::new(PhyRate::R5_5).control_rate, PhyRate::R2);
        assert_eq!(MacConfig::new(PhyRate::R2).control_rate, PhyRate::R2);
        assert_eq!(MacConfig::new(PhyRate::R1).control_rate, PhyRate::R1);
    }

    #[test]
    fn rts_toggle() {
        let base = MacConfig::new(PhyRate::R11);
        assert!(!base.rts_enabled);
        assert!(base.with_rts().rts_enabled);
        assert_eq!(base.short_retry_limit, 7);
        assert_eq!(base.long_retry_limit, 4);
    }
}
