//! The DCF station state machine.
//!
//! The machine is event-driven and externally clocked: the simulation
//! driver reports carrier-sense edges, decoded frames, reception errors,
//! end-of-transmission and timer expiries, and the MAC responds by
//! appending [`MacAction`]s. Two planes run side by side:
//!
//! * the **contention plane** moves the head-of-line MSDU through
//!   defer → backoff → (RTS/CTS) → DATA → ACK, with the retry/CW ladder;
//! * the **response plane** answers received RTS/DATA with CTS/ACK after
//!   SIFS — responses ignore carrier sense, as the standard requires,
//!   which is exactly how a station's ACKs puncture a neighbour's ongoing
//!   reception in the paper's four-station experiments.

use std::collections::{HashMap, VecDeque};

use desim::{SimDuration, SimRng, SimTime};
use dot11_phy::{FrameAirtime, NodeId, PhyRate};
use dot11_trace::{NullSink, TraceRecord, TraceSink};

use crate::arf::{ArfCounters, ArfState};
use crate::config::MacConfig;
use crate::counters::MacCounters;
use crate::frame::{
    FrameKind, MacFrame, MacSdu, ACK_BYTES, CTS_BYTES, DATA_HEADER_BYTES, RTS_BYTES,
};
use crate::ledger::{DeferCat, DeferLedger};
use crate::policy::{AnyPolicy, BackoffPolicy};

/// Timers the MAC asks the driver to run on its behalf.
///
/// Arming a timer that is already armed **replaces** it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// DIFS/EIFS deferral after the medium goes idle.
    Difs,
    /// All but the final slot of the current backoff, coalesced into one
    /// timer. The driver must schedule this in the simulator's *trailing*
    /// class so it fires after every ordinary event at its instant —
    /// exactly where the last tick of a per-slot chain would have sat.
    /// Its expiry arms the final [`TimerKind::BackoffSlot`].
    BackoffBulk,
    /// The final backoff slot; its expiry transmits.
    BackoffSlot,
    /// Waiting for a CTS after sending an RTS.
    CtsTimeout,
    /// Waiting for an ACK after sending data.
    AckTimeout,
    /// SIFS before transmitting a CTS/ACK response.
    SifsResponse,
    /// SIFS between a received CTS and our data frame.
    SifsData,
    /// The NAV reservation runs out.
    NavEnd,
}

/// What the MAC wants the driver to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacAction<P> {
    /// Put a frame on the air at the given rate.
    Transmit {
        /// The frame to transmit.
        frame: MacFrame<P>,
        /// PHY rate for the MPDU body.
        rate: PhyRate,
    },
    /// Arm (or re-arm) a timer.
    StartTimer {
        /// Which timer.
        kind: TimerKind,
        /// Expiry delay from now.
        delay: SimDuration,
    },
    /// Cancel a timer if armed.
    CancelTimer {
        /// Which timer.
        kind: TimerKind,
    },
    /// Hand a received MSDU to the network layer.
    Deliver {
        /// Originating station.
        src: NodeId,
        /// The payload.
        payload: P,
    },
    /// Report the fate of a locally queued MSDU.
    TxStatus {
        /// The tag from [`MacSdu::tag`].
        tag: u64,
        /// Destination it was addressed to.
        dst: NodeId,
        /// True if acknowledged (or broadcast completed).
        success: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Contention {
    /// No head-of-line frame.
    Idle,
    /// Frame pending, medium busy.
    WaitIdle,
    /// DIFS/EIFS timer running.
    Defer,
    /// Backoff slot timer running.
    Counting,
    /// Our RTS is on the air.
    TxRts,
    /// CTS timeout armed.
    WaitCts,
    /// SIFS between CTS and our data.
    SifsData,
    /// Our data frame is on the air.
    TxData,
    /// ACK timeout armed.
    WaitAck,
}

#[derive(Debug)]
struct Pending<P> {
    sdu: MacSdu<P>,
    failures: u32,
}

/// One station's DCF MAC. See the [crate docs](crate) for the driving
/// protocol.
///
/// Generic over a [`TraceSink`]; with the default [`NullSink`] every
/// emission site compiles away.
#[derive(Debug)]
pub struct DcfMac<P, S: TraceSink = NullSink> {
    id: NodeId,
    cfg: MacConfig,
    rng: SimRng,
    sink: S,
    queue: VecDeque<MacSdu<P>>,
    current: Option<Pending<P>>,
    contention: Contention,
    cw: u32,
    /// Contention-window policy (instantiated from `cfg.backoff`). Sets
    /// `cw` at the two re-draw points; never draws randomness itself.
    policy: AnyPolicy,
    backoff_slots: Option<u32>,
    /// When the current `Counting` phase started (backoff slots elapse on
    /// a 20 µs grid anchored here — the lazy countdown's freeze arithmetic
    /// divides against it instead of decrementing per slot).
    counting_since: SimTime,
    /// Slots the current `Counting` phase set out to count.
    counting_total: u32,
    response: Option<(MacFrame<P>, PhyRate)>,
    response_txing: bool,
    nav_until: SimTime,
    phys_busy: bool,
    eifs_pending: bool,
    last_tag: HashMap<NodeId, u64>,
    arf: ArfState,
    counters: MacCounters,
    ledger: DeferLedger,
}

impl<P: Clone> DcfMac<P> {
    /// Creates the MAC for station `id`. `rng` should be a per-station
    /// substream of the run seed (backoff draws consume it).
    pub fn new(id: NodeId, cfg: MacConfig, rng: SimRng) -> DcfMac<P> {
        DcfMac::with_sink(id, cfg, rng, NullSink)
    }
}

impl<P: Clone, S: TraceSink> DcfMac<P, S> {
    /// Like [`DcfMac::new`], but every MAC-layer event is also emitted
    /// into `sink`.
    pub fn with_sink(id: NodeId, cfg: MacConfig, rng: SimRng, sink: S) -> DcfMac<P, S> {
        DcfMac {
            id,
            cw: cfg.timing.cw_min,
            policy: cfg.backoff.instantiate(),
            arf: ArfState::new(cfg.arf, cfg.data_rate),
            cfg,
            rng,
            sink,
            queue: VecDeque::new(),
            current: None,
            contention: Contention::Idle,
            backoff_slots: None,
            counting_since: SimTime::ZERO,
            counting_total: 0,
            response: None,
            response_txing: false,
            nav_until: SimTime::ZERO,
            phys_busy: false,
            eifs_pending: false,
            last_tag: HashMap::new(),
            counters: MacCounters::default(),
            ledger: DeferLedger::default(),
        }
    }

    /// This station's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration.
    pub fn config(&self) -> &MacConfig {
        &self.cfg
    }

    /// Cumulative counters.
    pub fn counters(&self) -> MacCounters {
        self.counters
    }

    /// The defer ledger accumulated so far (see [`DeferLedger`]); call
    /// [`DcfMac::account_airtime`] first to fold in the span since the
    /// last event.
    pub fn airtime_ledger(&self) -> DeferLedger {
        self.ledger
    }

    /// Charges the span since the last event to the standing category —
    /// the run-end fold that makes the ledger cover the full horizon.
    pub fn account_airtime(&mut self, now: SimTime) {
        self.ledger.charge(now);
    }

    /// Re-derives the ledger category from the post-event state (see
    /// [`DeferCat`] for the precedence). Runs after every public entry
    /// point's body, paired with the `charge` that ran before it.
    fn ledger_reclass(&mut self, now: SimTime) {
        self.ledger.set_cat(if self.phys_busy {
            DeferCat::Off
        } else if self.contention == Contention::WaitIdle && self.backoff_slots.is_some() {
            DeferCat::Frozen
        } else if self.contention == Contention::Defer {
            DeferCat::Difs
        } else if self.contention == Contention::Counting {
            DeferCat::Backoff
        } else if self.nav_until > now {
            DeferCat::Nav(self.nav_until)
        } else {
            DeferCat::Quiet
        });
    }

    /// MSDUs waiting behind the head-of-line frame.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Free interface-queue slots (not counting the head-of-line frame).
    pub fn queue_space(&self) -> usize {
        self.cfg.queue_capacity - self.queue.len()
    }

    /// True if the MAC has nothing to send.
    pub fn is_drained(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    /// The current contention-window size, slots (test/diagnostic hook).
    pub fn contention_window(&self) -> u32 {
        self.cw
    }

    /// The data rate the next frame will use (moves only under ARF).
    pub fn current_data_rate(&self) -> PhyRate {
        if self.cfg.arf.enabled {
            self.arf.rate()
        } else {
            self.cfg.data_rate
        }
    }

    /// The rate for RTS/CTS/ACK: the configured control rate, tracking
    /// the ARF ladder when dynamic switching is on.
    pub fn current_control_rate(&self) -> PhyRate {
        if self.cfg.arf.enabled {
            self.arf.rate().control_rate()
        } else {
            self.cfg.control_rate
        }
    }

    /// ARF statistics (all zero when ARF is disabled).
    pub fn arf_counters(&self) -> ArfCounters {
        self.arf.counters()
    }

    // --- tracing -----------------------------------------------------------

    /// Runs an ARF-touching closure and emits a [`TraceRecord::RateSwitch`]
    /// if the data rate moved.
    fn with_rate_watch(&mut self, now: SimTime, f: impl FnOnce(&mut ArfState)) {
        let before = self.arf.rate();
        f(&mut self.arf);
        if S::ENABLED && self.cfg.arf.enabled {
            let after = self.arf.rate();
            if after != before {
                self.sink.record(
                    now,
                    &TraceRecord::RateSwitch {
                        node: self.id.0,
                        from_kbps: rate_kbps(before),
                        to_kbps: rate_kbps(after),
                    },
                );
            }
        }
    }

    // --- airtime helpers -------------------------------------------------

    fn data_air(&self, msdu_bytes: u32) -> SimDuration {
        FrameAirtime::new(
            DATA_HEADER_BYTES + msdu_bytes,
            self.current_data_rate(),
            self.cfg.preamble,
        )
        .total()
    }

    fn control_air(&self, bytes: u32) -> SimDuration {
        FrameAirtime::new(bytes, self.current_control_rate(), self.cfg.preamble).total()
    }

    // --- upper-layer interface --------------------------------------------

    /// Accepts an MSDU for transmission. Returns `false` (and counts a
    /// queue drop) if the interface queue is full.
    pub fn enqueue(&mut self, sdu: MacSdu<P>, now: SimTime, out: &mut Vec<MacAction<P>>) -> bool {
        self.ledger.charge(now);
        let accepted = self.enqueue_inner(sdu, now, out);
        self.ledger_reclass(now);
        accepted
    }

    fn enqueue_inner(&mut self, sdu: MacSdu<P>, now: SimTime, out: &mut Vec<MacAction<P>>) -> bool {
        if self.current.is_none() {
            self.current = Some(Pending { sdu, failures: 0 });
            if self.contention == Contention::Idle {
                self.try_start(now, out);
            }
            true
        } else if self.queue.len() < self.cfg.queue_capacity {
            self.queue.push_back(sdu);
            true
        } else {
            self.counters.queue_drops += 1;
            if S::ENABLED {
                self.sink
                    .record(now, &TraceRecord::QueueDrop { node: self.id.0 });
            }
            false
        }
    }

    // --- carrier sense ----------------------------------------------------

    /// Physical carrier sense went busy.
    pub fn on_channel_busy(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        self.ledger.charge(now);
        self.on_channel_busy_inner(now, out);
        self.ledger_reclass(now);
    }

    fn on_channel_busy_inner(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        self.phys_busy = true;
        match self.contention {
            Contention::Defer => {
                out.push(MacAction::CancelTimer {
                    kind: TimerKind::Difs,
                });
                self.contention = Contention::WaitIdle;
            }
            Contention::Counting => {
                // Lazy countdown freeze: slots elapse on the 20 µs grid
                // anchored at `counting_since`; whole elapsed slots are
                // recovered by integer division. A busy edge exactly on a
                // grid tick lands *after* that tick's (virtual) decrement
                // — a per-slot timer armed one slot earlier would have
                // popped before any signal event inserted later — so the
                // truncating division charges the boundary slot, matching
                // the per-slot schedule's decrement-then-freeze order.
                let slot = self.cfg.timing.slot.as_nanos();
                let elapsed = now
                    .saturating_duration_since(self.counting_since)
                    .as_nanos()
                    / slot;
                let remaining = self.counting_total - elapsed as u32;
                debug_assert!(
                    remaining >= 1 && remaining <= self.counting_total,
                    "freeze outside the counting window"
                );
                self.backoff_slots = Some(remaining);
                out.push(MacAction::CancelTimer {
                    kind: TimerKind::BackoffBulk,
                });
                out.push(MacAction::CancelTimer {
                    kind: TimerKind::BackoffSlot,
                });
                self.contention = Contention::WaitIdle;
            }
            _ => {}
        }
    }

    /// Physical carrier sense went idle.
    pub fn on_channel_idle(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        self.ledger.charge(now);
        self.phys_busy = false;
        self.maybe_resume(now, out);
        self.ledger_reclass(now);
    }

    fn medium_busy(&self, now: SimTime) -> bool {
        self.phys_busy || self.nav_until > now
    }

    fn maybe_resume(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        if self.phys_busy {
            return;
        }
        if self.nav_until > now {
            // Only a station waiting to resume contention has anything to
            // do when the NAV runs out; every path that later moves into
            // `WaitIdle` under a standing NAV re-arms this wake-up itself
            // (`try_start`, or the next idle edge through here).
            if self.contention == Contention::WaitIdle {
                out.push(MacAction::StartTimer {
                    kind: TimerKind::NavEnd,
                    delay: self.nav_until - now,
                });
            }
            return;
        }
        if self.contention == Contention::WaitIdle {
            self.arm_defer(now, out);
        }
    }

    fn arm_defer(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        let delay = if self.eifs_pending && self.cfg.eifs_enabled {
            self.counters.eifs_defers += 1;
            if S::ENABLED {
                self.sink
                    .record(now, &TraceRecord::EifsDefer { node: self.id.0 });
            }
            self.cfg.timing.eifs(self.cfg.preamble)
        } else {
            self.cfg.timing.difs
        };
        self.eifs_pending = false;
        self.contention = Contention::Defer;
        out.push(MacAction::StartTimer {
            kind: TimerKind::Difs,
            delay,
        });
    }

    fn try_start(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        debug_assert_eq!(self.contention, Contention::Idle);
        debug_assert!(self.current.is_some());
        if self.medium_busy(now) {
            self.contention = Contention::WaitIdle;
            if !self.phys_busy && self.nav_until > now {
                out.push(MacAction::StartTimer {
                    kind: TimerKind::NavEnd,
                    delay: self.nav_until - now,
                });
            }
        } else {
            self.arm_defer(now, out);
        }
    }

    // --- timers -------------------------------------------------------------

    /// A previously armed timer fired.
    pub fn on_timer(&mut self, kind: TimerKind, now: SimTime, out: &mut Vec<MacAction<P>>) {
        self.ledger.charge(now);
        self.on_timer_inner(kind, now, out);
        self.ledger_reclass(now);
    }

    fn on_timer_inner(&mut self, kind: TimerKind, now: SimTime, out: &mut Vec<MacAction<P>>) {
        match kind {
            TimerKind::Difs => self.on_difs_expired(now, out),
            TimerKind::BackoffBulk => self.on_bulk_expired(out),
            TimerKind::BackoffSlot => self.on_slot_expired(now, out),
            TimerKind::CtsTimeout => self.on_response_timeout(Contention::WaitCts, now, out),
            TimerKind::AckTimeout => self.on_response_timeout(Contention::WaitAck, now, out),
            TimerKind::SifsResponse => self.on_sifs_response(out),
            TimerKind::SifsData => self.on_sifs_data(out),
            TimerKind::NavEnd => {
                if self.nav_until > now {
                    // The NAV was extended after this timer was armed.
                    // Re-arm only if the wake-up can still matter (idle
                    // medium, contention waiting); any path that later
                    // makes it matter re-arms it itself.
                    if !self.phys_busy && self.contention == Contention::WaitIdle {
                        out.push(MacAction::StartTimer {
                            kind: TimerKind::NavEnd,
                            delay: self.nav_until - now,
                        });
                    }
                } else {
                    self.maybe_resume(now, out);
                }
            }
        }
    }

    fn on_difs_expired(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        debug_assert_eq!(self.contention, Contention::Defer);
        match self.backoff_slots {
            None | Some(0) => {
                self.backoff_slots = None;
                self.transmit_current(out);
            }
            Some(n) => {
                // Lazy countdown: instead of one timer per 20 µs slot,
                // count the first n−1 slots with a single coalesced
                // trailing timer and keep only the final, transmission-
                // triggering slot as an ordinary timer (armed by the bulk
                // expiry one slot ahead, so its queue position matches
                // the position a per-slot chain's last re-arm would get).
                self.contention = Contention::Counting;
                self.counting_since = now;
                self.counting_total = n;
                if n == 1 {
                    out.push(MacAction::StartTimer {
                        kind: TimerKind::BackoffSlot,
                        delay: self.cfg.timing.slot,
                    });
                } else {
                    out.push(MacAction::StartTimer {
                        kind: TimerKind::BackoffBulk,
                        delay: self.cfg.timing.slot * (n - 1) as u64,
                    });
                }
            }
        }
    }

    fn on_bulk_expired(&mut self, out: &mut Vec<MacAction<P>>) {
        debug_assert_eq!(self.contention, Contention::Counting);
        out.push(MacAction::StartTimer {
            kind: TimerKind::BackoffSlot,
            delay: self.cfg.timing.slot,
        });
    }

    fn on_slot_expired(&mut self, _now: SimTime, out: &mut Vec<MacAction<P>>) {
        debug_assert_eq!(self.contention, Contention::Counting);
        debug_assert!(self.backoff_slots.is_some(), "counting without slots");
        self.backoff_slots = None;
        self.transmit_current(out);
    }

    fn on_response_timeout(
        &mut self,
        expected: Contention,
        now: SimTime,
        out: &mut Vec<MacAction<P>>,
    ) {
        debug_assert_eq!(self.contention, expected);
        self.counters.retries += 1;
        // ARF observes every failed attempt — including RTS/collision
        // failures, which is the scheme's documented weakness (collisions
        // drag the rate down although slowing down cannot help them).
        self.with_rate_watch(now, |arf| arf.on_failure());
        let cur = self.current.as_mut().expect("timeout without a frame");
        cur.failures += 1;
        let failures = cur.failures;
        if S::ENABLED {
            self.sink.record(
                now,
                &TraceRecord::FrameRetry {
                    node: self.id.0,
                    retry: failures,
                },
            );
        }
        let limit = if self.cfg.rts_enabled && expected == Contention::WaitAck {
            self.cfg.long_retry_limit
        } else {
            self.cfg.short_retry_limit
        };
        if failures >= limit {
            self.complete_current(false, now, out);
        } else {
            self.cw = self.policy.on_failure(self.cw, &self.cfg.timing);
            let slots = self.rng.gen_range_u32(0, self.cw);
            self.backoff_slots = Some(slots);
            if S::ENABLED {
                self.sink.record(
                    now,
                    &TraceRecord::BackoffChosen {
                        node: self.id.0,
                        slots,
                        cw: self.cw,
                    },
                );
            }
            self.contention = Contention::Idle;
            self.try_start(now, out);
        }
    }

    fn on_sifs_response(&mut self, out: &mut Vec<MacAction<P>>) {
        let (frame, rate) = self.response.take().expect("SIFS response without frame");
        match frame.kind {
            FrameKind::Cts => self.counters.cts_tx += 1,
            FrameKind::Ack => self.counters.ack_tx += 1,
            _ => debug_assert!(false, "unexpected response kind {:?}", frame.kind),
        }
        self.response_txing = true;
        out.push(MacAction::Transmit { frame, rate });
    }

    fn on_sifs_data(&mut self, out: &mut Vec<MacAction<P>>) {
        debug_assert_eq!(self.contention, Contention::SifsData);
        self.send_data(out);
    }

    // --- transmissions -----------------------------------------------------

    fn transmit_current(&mut self, out: &mut Vec<MacAction<P>>) {
        let cur = self.current.as_ref().expect("transmit without a frame");
        let broadcast = cur.sdu.dst == crate::frame::BROADCAST;
        if self.cfg.rts_enabled && !broadcast {
            let t = &self.cfg.timing;
            let duration = t.sifs * 3
                + self.control_air(CTS_BYTES)
                + self.data_air(cur.sdu.bytes)
                + self.control_air(ACK_BYTES);
            let frame = MacFrame {
                kind: FrameKind::Rts,
                src: self.id,
                dst: cur.sdu.dst,
                duration,
                mpdu_bytes: RTS_BYTES,
                tag: cur.sdu.tag,
                payload: None,
            };
            self.counters.rts_tx += 1;
            self.contention = Contention::TxRts;
            let rate = self.current_control_rate();
            out.push(MacAction::Transmit { frame, rate });
        } else {
            self.send_data(out);
        }
    }

    fn send_data(&mut self, out: &mut Vec<MacAction<P>>) {
        let cur = self.current.as_ref().expect("send_data without a frame");
        let broadcast = cur.sdu.dst == crate::frame::BROADCAST;
        let duration = if broadcast {
            SimDuration::ZERO
        } else {
            self.cfg.timing.sifs + self.control_air(ACK_BYTES)
        };
        let frame = MacFrame {
            kind: FrameKind::Data,
            src: self.id,
            dst: cur.sdu.dst,
            duration,
            mpdu_bytes: DATA_HEADER_BYTES + cur.sdu.bytes,
            tag: cur.sdu.tag,
            payload: Some(cur.sdu.payload.clone()),
        };
        self.counters.data_tx += 1;
        self.contention = Contention::TxData;
        let rate = self.current_data_rate();
        out.push(MacAction::Transmit { frame, rate });
    }

    /// Our PHY finished putting the current frame on the air.
    pub fn on_tx_end(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        self.ledger.charge(now);
        self.on_tx_end_inner(now, out);
        self.ledger_reclass(now);
    }

    fn on_tx_end_inner(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        if self.response_txing {
            self.response_txing = false;
            return;
        }
        match self.contention {
            Contention::TxRts => {
                self.contention = Contention::WaitCts;
                out.push(MacAction::StartTimer {
                    kind: TimerKind::CtsTimeout,
                    delay: self
                        .cfg
                        .timing
                        .response_timeout(self.control_air(CTS_BYTES)),
                });
            }
            Contention::TxData => {
                let broadcast = self
                    .current
                    .as_ref()
                    .map(|c| c.sdu.dst == crate::frame::BROADCAST)
                    .unwrap_or(false);
                if broadcast {
                    self.complete_current(true, now, out);
                } else {
                    self.contention = Contention::WaitAck;
                    out.push(MacAction::StartTimer {
                        kind: TimerKind::AckTimeout,
                        delay: self
                            .cfg
                            .timing
                            .response_timeout(self.control_air(ACK_BYTES)),
                    });
                }
            }
            other => debug_assert!(false, "tx_end in state {other:?}"),
        }
    }

    fn complete_current(&mut self, success: bool, now: SimTime, out: &mut Vec<MacAction<P>>) {
        let cur = self.current.take().expect("complete without a frame");
        if success {
            self.counters.tx_success += 1;
        } else {
            self.counters.tx_dropped += 1;
        }
        out.push(MacAction::TxStatus {
            tag: cur.sdu.tag,
            dst: cur.sdu.dst,
            success,
        });
        // Post-transmission backoff: the CW is re-set by the policy (BEB
        // resets to CWmin) and a fresh backoff is drawn whether the frame
        // succeeded or was dropped. This is what charges the paper's
        // Eq. (1) its CWmin/2 slots per packet even with a single
        // saturated sender.
        self.cw = self.policy.on_complete(self.cw, success, &self.cfg.timing);
        let slots = self.rng.gen_range_u32(0, self.cw);
        self.backoff_slots = Some(slots);
        if S::ENABLED {
            self.sink.record(
                now,
                &TraceRecord::BackoffChosen {
                    node: self.id.0,
                    slots,
                    cw: self.cw,
                },
            );
        }
        self.contention = Contention::Idle;
        self.current = self
            .queue
            .pop_front()
            .map(|sdu| Pending { sdu, failures: 0 });
        if self.current.is_some() {
            self.try_start(now, out);
        }
    }

    // --- receptions ---------------------------------------------------------

    /// A frame was decoded by our PHY (whoever it was addressed to).
    pub fn on_rx_frame(&mut self, frame: MacFrame<P>, now: SimTime, out: &mut Vec<MacAction<P>>) {
        self.ledger.charge(now);
        self.on_rx_frame_inner(frame, now, out);
        self.ledger_reclass(now);
    }

    fn on_rx_frame_inner(&mut self, frame: MacFrame<P>, now: SimTime, out: &mut Vec<MacAction<P>>) {
        // A correctly received frame clears any pending EIFS penalty.
        self.eifs_pending = false;
        if !frame.addressed_to(self.id) && !frame.is_broadcast() {
            // Third-party frame: virtual carrier sense.
            let until = now + frame.duration;
            if until > self.nav_until {
                self.nav_until = until;
                self.counters.nav_updates += 1;
                if S::ENABLED {
                    self.sink.record(
                        now,
                        &TraceRecord::NavUpdate {
                            node: self.id.0,
                            until_ns: until.as_nanos(),
                        },
                    );
                }
                if self.phys_busy {
                    // Decoding implies the carrier was just busy: the
                    // NavEnd wake-up is (re-)armed at the idle edge via
                    // `maybe_resume` with the fresh expiry. Arming one
                    // here would be immediate churn — drop any armed
                    // (now short) timer instead of replacing it.
                    out.push(MacAction::CancelTimer {
                        kind: TimerKind::NavEnd,
                    });
                } else {
                    out.push(MacAction::StartTimer {
                        kind: TimerKind::NavEnd,
                        delay: frame.duration,
                    });
                }
            }
            return;
        }
        match frame.kind {
            FrameKind::Data => {
                if !frame.is_broadcast() {
                    let t = &self.cfg.timing;
                    debug_assert!(self.response.is_none(), "overlapping SIFS responses");
                    let ack = MacFrame {
                        kind: FrameKind::Ack,
                        src: self.id,
                        dst: frame.src,
                        duration: SimDuration::ZERO,
                        mpdu_bytes: ACK_BYTES,
                        tag: 0,
                        payload: None,
                    };
                    let rate = self.current_control_rate();
                    self.response = Some((ack, rate));
                    out.push(MacAction::StartTimer {
                        kind: TimerKind::SifsResponse,
                        delay: t.sifs,
                    });
                }
                if self.last_tag.get(&frame.src) == Some(&frame.tag) {
                    self.counters.duplicates += 1;
                } else {
                    self.last_tag.insert(frame.src, frame.tag);
                    self.counters.delivered += 1;
                    if let Some(payload) = frame.payload {
                        out.push(MacAction::Deliver {
                            src: frame.src,
                            payload,
                        });
                    } else {
                        debug_assert!(false, "data frame without payload");
                    }
                }
            }
            FrameKind::Rts => {
                if frame.is_broadcast() {
                    return;
                }
                if self.nav_until > now {
                    // Virtual carrier sense says the medium is reserved:
                    // the standard forbids answering the RTS. This is the
                    // mechanism that silences S2 in the paper's four-
                    // station RTS/CTS experiments.
                    self.counters.cts_suppressed += 1;
                    return;
                }
                let cts_air = self.control_air(CTS_BYTES);
                let duration = frame
                    .duration
                    .saturating_sub(self.cfg.timing.sifs)
                    .saturating_sub(cts_air);
                let cts = MacFrame {
                    kind: FrameKind::Cts,
                    src: self.id,
                    dst: frame.src,
                    duration,
                    mpdu_bytes: CTS_BYTES,
                    tag: 0,
                    payload: None,
                };
                debug_assert!(self.response.is_none(), "overlapping SIFS responses");
                let rate = self.current_control_rate();
                self.response = Some((cts, rate));
                out.push(MacAction::StartTimer {
                    kind: TimerKind::SifsResponse,
                    delay: self.cfg.timing.sifs,
                });
            }
            FrameKind::Cts => {
                if self.contention == Contention::WaitCts {
                    out.push(MacAction::CancelTimer {
                        kind: TimerKind::CtsTimeout,
                    });
                    self.contention = Contention::SifsData;
                    out.push(MacAction::StartTimer {
                        kind: TimerKind::SifsData,
                        delay: self.cfg.timing.sifs,
                    });
                }
            }
            FrameKind::Ack => {
                if self.contention == Contention::WaitAck {
                    out.push(MacAction::CancelTimer {
                        kind: TimerKind::AckTimeout,
                    });
                    self.with_rate_watch(now, |arf| arf.on_success());
                    self.complete_current(true, now, out);
                }
            }
        }
    }

    /// Our PHY sensed a frame it could not decode (header or FCS error).
    ///
    /// The standard responds with EIFS instead of DIFS for the next
    /// deferral — ablation D3 turns this off via
    /// [`MacConfig::eifs_enabled`].
    pub fn on_rx_error(&mut self, now: SimTime, _out: &mut Vec<MacAction<P>>) {
        self.ledger.charge(now);
        self.eifs_pending = true;
        self.ledger_reclass(now);
    }
}

/// PHY rate in kb/s, the unit trace records use.
fn rate_kbps(rate: PhyRate) -> u32 {
    (rate.bits_per_sec() / 1000.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;

    const T0: SimTime = SimTime::ZERO;

    fn mac(rts: bool) -> DcfMac<u32> {
        let cfg = MacConfig::new(PhyRate::R11);
        let cfg = if rts { cfg.with_rts() } else { cfg };
        DcfMac::new(NodeId(0), cfg, SimRng::from_seed(3))
    }

    fn sdu(tag: u64) -> MacSdu<u32> {
        MacSdu {
            dst: NodeId(1),
            bytes: 512,
            tag,
            payload: tag as u32,
        }
    }

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn timer_delay(out: &[MacAction<u32>], kind: TimerKind) -> Option<SimDuration> {
        out.iter().find_map(|a| match a {
            MacAction::StartTimer { kind: k, delay } if *k == kind => Some(*delay),
            _ => None,
        })
    }

    fn transmitted(out: &[MacAction<u32>]) -> Option<&MacFrame<u32>> {
        out.iter().find_map(|a| match a {
            MacAction::Transmit { frame, .. } => Some(frame),
            _ => None,
        })
    }

    #[test]
    fn first_frame_on_idle_medium_goes_after_difs_only() {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.enqueue(sdu(1), T0, &mut out);
        assert_eq!(
            timer_delay(&out, TimerKind::Difs),
            Some(SimDuration::from_micros(50))
        );
        out.clear();
        m.on_timer(TimerKind::Difs, at(50), &mut out);
        let f = transmitted(&out).expect("data frame");
        assert_eq!(f.kind, FrameKind::Data);
        assert_eq!(f.mpdu_bytes, 512 + 34);
        assert_eq!(f.dst, NodeId(1));
        // Unicast data reserves SIFS + ACK time.
        assert_eq!(f.duration.as_micros(), 10 + 248);
    }

    #[test]
    fn ack_completes_and_next_frame_backs_off() {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.enqueue(sdu(1), T0, &mut out);
        m.enqueue(sdu(2), T0, &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(50), &mut out);
        out.clear();
        m.on_tx_end(at(700), &mut out);
        assert!(timer_delay(&out, TimerKind::AckTimeout).is_some());
        out.clear();
        let ack: MacFrame<u32> = MacFrame {
            kind: FrameKind::Ack,
            src: NodeId(1),
            dst: NodeId(0),
            duration: SimDuration::ZERO,
            mpdu_bytes: ACK_BYTES,
            tag: 0,
            payload: None,
        };
        m.on_rx_frame(ack, at(960), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            MacAction::TxStatus {
                tag: 1,
                success: true,
                ..
            }
        )));
        assert_eq!(m.counters().tx_success, 1);
        // Frame 2 starts its own deferral; after DIFS it must count
        // post-backoff slots rather than firing immediately.
        assert!(timer_delay(&out, TimerKind::Difs).is_some());
        out.clear();
        m.on_timer(TimerKind::Difs, at(1010), &mut out);
        // Either an immediate transmit (drew 0) or slot counting; with
        // seed 3 the draw is nonzero, so expect a countdown timer (the
        // single bulk timer for n > 1 draws, the final slot for n == 1).
        assert!(
            timer_delay(&out, TimerKind::BackoffBulk).is_some()
                || timer_delay(&out, TimerKind::BackoffSlot).is_some(),
            "post-backoff expected, got {out:?}"
        );
    }

    /// Drives a mac that just entered `Counting` through the coalesced
    /// countdown (optional bulk timer, then the final slot timer) until it
    /// transmits. `out` must hold the actions of the event that entered
    /// counting; `t` is that event's time. Returns the transmit time.
    fn pump_countdown(m: &mut DcfMac<u32>, out: &mut Vec<MacAction<u32>>, mut t: u64) -> u64 {
        if transmitted(out).is_some() {
            return t; // drew zero slots
        }
        if let Some(d) = timer_delay(out, TimerKind::BackoffBulk) {
            assert_eq!(d.as_micros() % 20, 0, "bulk covers whole slots");
            t += d.as_micros();
            out.clear();
            m.on_timer(TimerKind::BackoffBulk, at(t), out);
        }
        let d = timer_delay(out, TimerKind::BackoffSlot).expect("final slot timer");
        assert_eq!(d.as_micros(), 20, "final timer is exactly one slot");
        t += 20;
        out.clear();
        m.on_timer(TimerKind::BackoffSlot, at(t), out);
        assert!(transmitted(out).is_some(), "countdown ends in a transmit");
        t
    }

    #[test]
    fn slots_count_down_to_transmission() {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.enqueue(sdu(1), T0, &mut out);
        m.enqueue(sdu(2), T0, &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(50), &mut out);
        out.clear();
        m.on_tx_end(at(700), &mut out);
        let ack: MacFrame<u32> = MacFrame {
            kind: FrameKind::Ack,
            src: NodeId(1),
            dst: NodeId(0),
            duration: SimDuration::ZERO,
            mpdu_bytes: ACK_BYTES,
            tag: 0,
            payload: None,
        };
        out.clear();
        m.on_rx_frame(ack, at(960), &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(1010), &mut out);
        // The drawn count is visible in the armed timer: n − 1 slots of
        // bulk countdown (absent for n == 1) plus the final slot.
        let n = match timer_delay(&out, TimerKind::BackoffBulk) {
            Some(d) => d.as_micros() / 20 + 1,
            None => 1,
        };
        assert!(n < 32, "backoff should finish within CWmin slots");
        let t = pump_countdown(&mut m, &mut out, 1010);
        assert_eq!(t, 1010 + 20 * n, "transmit lands on the drawn slot grid");
        assert_eq!(transmitted(&out).expect("frame").tag, 2);
    }

    #[test]
    fn busy_medium_freezes_backoff_and_resumes() {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.enqueue(sdu(1), T0, &mut out);
        out.clear();
        // Channel goes busy during DIFS: defer cancelled.
        m.on_channel_busy(at(20), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            MacAction::CancelTimer {
                kind: TimerKind::Difs
            }
        )));
        out.clear();
        // Idle again: fresh DIFS.
        m.on_channel_idle(at(500), &mut out);
        assert_eq!(
            timer_delay(&out, TimerKind::Difs),
            Some(SimDuration::from_micros(50))
        );
        out.clear();
        m.on_timer(TimerKind::Difs, at(550), &mut out);
        assert!(
            transmitted(&out).is_some(),
            "no backoff pending: immediate access"
        );
    }

    /// Reads the drawn slot count out of the countdown timer armed by the
    /// event whose actions are in `out` (bulk covers n − 1 slots; a lone
    /// final slot timer means n == 1).
    fn drawn_slots(out: &[MacAction<u32>]) -> u64 {
        match timer_delay(out, TimerKind::BackoffBulk) {
            Some(d) => d.as_micros() / 20 + 1,
            None => {
                assert!(
                    timer_delay(out, TimerKind::BackoffSlot).is_some(),
                    "not counting: {out:?}"
                );
                1
            }
        }
    }

    /// Builds a mac that has just entered `Counting` at t = 1010 µs with a
    /// multi-slot draw (frame 1 sent and ACKed, frame 2 contending).
    fn counting_mac() -> (DcfMac<u32>, Vec<MacAction<u32>>, u64) {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.enqueue(sdu(1), T0, &mut out);
        m.enqueue(sdu(2), T0, &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(50), &mut out);
        out.clear();
        m.on_tx_end(at(700), &mut out);
        let ack: MacFrame<u32> = MacFrame {
            kind: FrameKind::Ack,
            src: NodeId(1),
            dst: NodeId(0),
            duration: SimDuration::ZERO,
            mpdu_bytes: ACK_BYTES,
            tag: 0,
            payload: None,
        };
        out.clear();
        m.on_rx_frame(ack, at(960), &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(1010), &mut out);
        let n = drawn_slots(&out);
        assert!(
            n >= 2,
            "seed 3 must draw a multi-slot backoff here, got {n}"
        );
        (m, out, n)
    }

    #[test]
    fn mid_slot_busy_charges_elapsed_whole_slots() {
        let (mut m, mut out, n) = counting_mac();
        // Busy 30 µs into the countdown: exactly one whole slot elapsed;
        // the fraction of the second slot is not charged.
        out.clear();
        m.on_channel_busy(at(1040), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            MacAction::CancelTimer {
                kind: TimerKind::BackoffBulk
            }
        )));
        out.clear();
        m.on_channel_idle(at(5000), &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(5050), &mut out);
        assert_eq!(drawn_slots(&out), n - 1, "one elapsed slot charged");
        let t = pump_countdown(&mut m, &mut out, 5050);
        assert_eq!(t, 5050 + 20 * (n - 1));
        assert_eq!(transmitted(&out).expect("frame").tag, 2);
    }

    #[test]
    fn sub_slot_busy_charges_nothing() {
        let (mut m, mut out, n) = counting_mac();
        // Busy 10 µs in: no whole slot has elapsed, the full draw remains.
        out.clear();
        m.on_channel_busy(at(1020), &mut out);
        out.clear();
        m.on_channel_idle(at(5000), &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(5050), &mut out);
        assert_eq!(drawn_slots(&out), n, "no slot charged before one elapses");
    }

    #[test]
    fn busy_on_the_slot_grid_charges_the_boundary_slot() {
        let (mut m, mut out, n) = counting_mac();
        // In the eager schedule a slot timer armed one slot earlier pops
        // before any same-instant busy edge (lower insertion seq), so a
        // freeze landing exactly on the grid sees the boundary slot already
        // counted. Truncating division agrees: 20 / 20 = 1.
        out.clear();
        m.on_channel_busy(at(1030), &mut out);
        out.clear();
        m.on_channel_idle(at(5000), &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(5050), &mut out);
        assert_eq!(drawn_slots(&out), n - 1, "boundary slot charged");
    }

    #[test]
    fn ack_timeout_retries_with_doubled_cw_then_drops() {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.enqueue(sdu(1), T0, &mut out);
        let mut now = 50;
        let mut attempts = 0;
        loop {
            out.clear();
            m.on_timer(TimerKind::Difs, at(now), &mut out);
            // Count down any backoff via the coalesced timers.
            now = pump_countdown(&mut m, &mut out, now);
            attempts += 1;
            now += 700;
            out.clear();
            m.on_tx_end(at(now), &mut out);
            now += 300;
            out.clear();
            m.on_timer(TimerKind::AckTimeout, at(now), &mut out);
            if out
                .iter()
                .any(|a| matches!(a, MacAction::TxStatus { success: false, .. }))
            {
                break;
            }
            // CW doubles, capped at 1024.
            let expected = (32u32 << attempts).min(1024);
            assert_eq!(m.contention_window(), expected, "after {attempts} failures");
            now += 50;
        }
        assert_eq!(attempts, 7, "short retry limit");
        assert_eq!(m.counters().tx_dropped, 1);
        assert_eq!(m.counters().data_tx, 7);
        // CW resets after the drop.
        assert_eq!(m.contention_window(), 32);
    }

    #[test]
    fn rts_cts_exchange_precedes_data() {
        let mut m = mac(true);
        let mut out = Vec::new();
        m.enqueue(sdu(1), T0, &mut out);
        out.clear();
        m.on_timer(TimerKind::Difs, at(50), &mut out);
        let rts = transmitted(&out).expect("rts").clone();
        assert_eq!(rts.kind, FrameKind::Rts);
        assert_eq!(rts.mpdu_bytes, RTS_BYTES);
        // RTS duration covers CTS + DATA + ACK + 3 SIFS.
        let expected = 3 * 10 + 248 + (192_000 + 546 * 8 * 1000 / 11) / 1000 + 248;
        assert!((rts.duration.as_micros() as i64 - expected as i64).abs() <= 1);
        out.clear();
        m.on_tx_end(at(330), &mut out);
        assert!(timer_delay(&out, TimerKind::CtsTimeout).is_some());
        out.clear();
        let cts: MacFrame<u32> = MacFrame {
            kind: FrameKind::Cts,
            src: NodeId(1),
            dst: NodeId(0),
            duration: SimDuration::from_micros(800),
            mpdu_bytes: CTS_BYTES,
            tag: 0,
            payload: None,
        };
        m.on_rx_frame(cts, at(590), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            MacAction::CancelTimer {
                kind: TimerKind::CtsTimeout
            }
        )));
        assert_eq!(
            timer_delay(&out, TimerKind::SifsData),
            Some(SimDuration::from_micros(10))
        );
        out.clear();
        m.on_timer(TimerKind::SifsData, at(600), &mut out);
        assert_eq!(transmitted(&out).expect("data").kind, FrameKind::Data);
    }

    #[test]
    fn receiver_acks_and_delivers_then_filters_duplicate() {
        let mut m = mac(false);
        let mut out = Vec::new();
        let data: MacFrame<u32> = MacFrame {
            kind: FrameKind::Data,
            src: NodeId(2),
            dst: NodeId(0),
            duration: SimDuration::from_micros(258),
            mpdu_bytes: 546,
            tag: 77,
            payload: Some(123),
        };
        m.on_rx_frame(data.clone(), at(1000), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            MacAction::Deliver {
                src: NodeId(2),
                payload: 123
            }
        )));
        assert_eq!(
            timer_delay(&out, TimerKind::SifsResponse),
            Some(SimDuration::from_micros(10))
        );
        out.clear();
        m.on_timer(TimerKind::SifsResponse, at(1010), &mut out);
        let ack = transmitted(&out).expect("ack");
        assert_eq!(ack.kind, FrameKind::Ack);
        assert_eq!(ack.dst, NodeId(2));
        out.clear();
        m.on_tx_end(at(1260), &mut out);
        assert!(out.is_empty(), "response tx end needs no follow-up");
        // The retransmission of the same tag is ACKed but not re-delivered.
        out.clear();
        m.on_rx_frame(data, at(2000), &mut out);
        assert!(!out.iter().any(|a| matches!(a, MacAction::Deliver { .. })));
        assert!(timer_delay(&out, TimerKind::SifsResponse).is_some());
        assert_eq!(m.counters().duplicates, 1);
        assert_eq!(m.counters().delivered, 1);
    }

    #[test]
    fn overheard_frames_set_nav_and_block_cts() {
        let mut m = mac(false);
        let mut out = Vec::new();
        // Overhear an RTS between two other stations.
        let rts: MacFrame<u32> = MacFrame {
            kind: FrameKind::Rts,
            src: NodeId(2),
            dst: NodeId(3),
            duration: SimDuration::from_micros(1500),
            mpdu_bytes: RTS_BYTES,
            tag: 0,
            payload: None,
        };
        m.on_rx_frame(rts, at(1000), &mut out);
        assert_eq!(m.counters().nav_updates, 1);
        assert_eq!(
            timer_delay(&out, TimerKind::NavEnd),
            Some(SimDuration::from_micros(1500))
        );
        // Now an RTS addressed to us arrives while NAV is set: no CTS.
        out.clear();
        let rts_to_me: MacFrame<u32> = MacFrame {
            kind: FrameKind::Rts,
            src: NodeId(4),
            dst: NodeId(0),
            duration: SimDuration::from_micros(900),
            mpdu_bytes: RTS_BYTES,
            tag: 0,
            payload: None,
        };
        m.on_rx_frame(rts_to_me.clone(), at(1200), &mut out);
        assert!(
            out.is_empty(),
            "CTS must be suppressed under NAV, got {out:?}"
        );
        assert_eq!(m.counters().cts_suppressed, 1);
        // After the NAV expires the same RTS gets its CTS.
        out.clear();
        m.on_rx_frame(rts_to_me, at(3000), &mut out);
        assert!(timer_delay(&out, TimerKind::SifsResponse).is_some());
        out.clear();
        m.on_timer(TimerKind::SifsResponse, at(3010), &mut out);
        let cts = transmitted(&out).expect("cts");
        assert_eq!(cts.kind, FrameKind::Cts);
        // CTS duration = RTS duration − SIFS − CTS airtime.
        assert_eq!(cts.duration.as_micros(), 900 - 10 - 248);
    }

    #[test]
    fn nav_defers_own_transmission() {
        let mut m = mac(false);
        let mut out = Vec::new();
        let cts: MacFrame<u32> = MacFrame {
            kind: FrameKind::Cts,
            src: NodeId(2),
            dst: NodeId(3),
            duration: SimDuration::from_micros(2000),
            mpdu_bytes: CTS_BYTES,
            tag: 0,
            payload: None,
        };
        m.on_rx_frame(cts, at(100), &mut out);
        out.clear();
        // Enqueue under NAV: no DIFS starts; a NavEnd timer is requested.
        m.enqueue(sdu(1), at(200), &mut out);
        assert!(timer_delay(&out, TimerKind::Difs).is_none());
        assert!(timer_delay(&out, TimerKind::NavEnd).is_some());
        out.clear();
        m.on_timer(TimerKind::NavEnd, at(2100), &mut out);
        assert!(
            timer_delay(&out, TimerKind::Difs).is_some(),
            "deferral resumes after NAV"
        );
    }

    #[test]
    fn eifs_follows_reception_error_once() {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.on_rx_error(at(100), &mut out);
        m.enqueue(sdu(1), at(100), &mut out);
        // EIFS = 10 + 50 + 304 = 364 µs replaces DIFS.
        assert_eq!(
            timer_delay(&out, TimerKind::Difs),
            Some(SimDuration::from_micros(364))
        );
        assert_eq!(m.counters().eifs_defers, 1);
        out.clear();
        m.on_timer(TimerKind::Difs, at(464), &mut out);
        assert!(transmitted(&out).is_some());
    }

    #[test]
    fn eifs_can_be_disabled() {
        let cfg = MacConfig {
            eifs_enabled: false,
            ..MacConfig::new(PhyRate::R11)
        };
        let mut m: DcfMac<u32> = DcfMac::new(NodeId(0), cfg, SimRng::from_seed(3));
        let mut out = Vec::new();
        m.on_rx_error(at(100), &mut out);
        m.enqueue(sdu(1), at(100), &mut out);
        assert_eq!(
            timer_delay(&out, TimerKind::Difs),
            Some(SimDuration::from_micros(50))
        );
    }

    #[test]
    fn good_reception_clears_pending_eifs() {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.on_rx_error(at(100), &mut out);
        let ack: MacFrame<u32> = MacFrame {
            kind: FrameKind::Ack,
            src: NodeId(5),
            dst: NodeId(6),
            duration: SimDuration::ZERO,
            mpdu_bytes: ACK_BYTES,
            tag: 0,
            payload: None,
        };
        m.on_rx_frame(ack, at(200), &mut out);
        out.clear();
        m.enqueue(sdu(1), at(300), &mut out);
        assert_eq!(
            timer_delay(&out, TimerKind::Difs),
            Some(SimDuration::from_micros(50))
        );
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let cfg = MacConfig {
            queue_capacity: 2,
            ..MacConfig::new(PhyRate::R11)
        };
        let mut m: DcfMac<u32> = DcfMac::new(NodeId(0), cfg, SimRng::from_seed(3));
        let mut out = Vec::new();
        assert!(m.enqueue(sdu(1), T0, &mut out)); // head of line
        assert!(m.enqueue(sdu(2), T0, &mut out));
        assert!(m.enqueue(sdu(3), T0, &mut out));
        assert!(!m.enqueue(sdu(4), T0, &mut out), "queue full");
        assert_eq!(m.counters().queue_drops, 1);
        assert_eq!(m.queue_len(), 2);
        assert_eq!(m.queue_space(), 0);
        assert!(!m.is_drained());
    }

    #[test]
    fn broadcast_data_completes_without_ack() {
        let mut m = mac(false);
        let mut out = Vec::new();
        m.enqueue(
            MacSdu {
                dst: crate::frame::BROADCAST,
                bytes: 100,
                tag: 9,
                payload: 9,
            },
            T0,
            &mut out,
        );
        out.clear();
        m.on_timer(TimerKind::Difs, at(50), &mut out);
        let f = transmitted(&out).expect("frame");
        assert_eq!(f.duration, SimDuration::ZERO);
        out.clear();
        m.on_tx_end(at(400), &mut out);
        assert!(out.iter().any(|a| matches!(
            a,
            MacAction::TxStatus {
                tag: 9,
                success: true,
                ..
            }
        )));
    }

    #[test]
    fn rts_is_never_used_for_broadcast() {
        let mut m = mac(true);
        let mut out = Vec::new();
        m.enqueue(
            MacSdu {
                dst: crate::frame::BROADCAST,
                bytes: 100,
                tag: 9,
                payload: 9,
            },
            T0,
            &mut out,
        );
        out.clear();
        m.on_timer(TimerKind::Difs, at(50), &mut out);
        assert_eq!(transmitted(&out).expect("frame").kind, FrameKind::Data);
    }
}
