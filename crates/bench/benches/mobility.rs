//! The `mobility` group: incremental epoch commits vs full medium
//! rebuilds — the headline artifact of the epoch-versioned link state.
//!
//! For N ∈ {64, 256, 1024} stations on a constant-density spiral field
//! (a few audible neighbors each — a sparse wide-area deployment), a
//! small mover fraction (~0.5%, the regime mobility epochs live in)
//! bounces between two position sets every iteration. `rebuild_nN` times
//! `Medium::commit_epoch_rebuild` (tear-down + reconstruction with
//! state transplant — the O(N·degree) reference); `epoch_nN` times the
//! incremental `Medium::commit_epoch` (dirty-neighborhood recompute,
//! O(moved)) and reports `speedup` = rebuild median / epoch median.
//! The two paths produce bitwise-identical link state — that equivalence
//! is pinned by the phy crate's `incremental_epochs_match_rebuild_bitwise`
//! and the world-level `tests/mobility.rs`; only the wall clock differs.
//!
//! Committed medians live in `BENCH_pr10.json`; CI gates `speedup`
//! (regresses downward) against it. Independent of any baseline, the
//! bench hard-fails unless the incremental path clears **10×** over
//! rebuild at N = 1024 — the acceptance floor for O(moved) maintenance:
//!
//! ```console
//! cargo bench -p dot11-bench --bench mobility -- --json BENCH_pr10.json
//! cargo bench -p dot11-bench --bench mobility -- --baseline BENCH_pr10.json --tolerance 60
//! ```

use desim::{SimDuration, SimRng};
use dot11_bench::Harness;
use dot11_phy::{
    CullPolicy, DayProfile, Db, Dbm, EpochChurn, LogDistance, Medium, MediumConfig, NodeId,
    Position, Shadowing, CULL_MARGIN_DB,
};

/// Constant-density sunflower spiral: the field radius grows with √N so
/// every station keeps the same (sparse, wide-area) audible
/// neighborhood — a handful of stations under the ~4.7 km audible cull
/// the CULL_MARGIN_DB policy resolves to — and an epoch update is
/// N-independent work per mover.
fn spiral(n: usize) -> Vec<Position> {
    let radius = 14_000.0 * (n as f64 / 64.0).sqrt();
    (0..n)
        .map(|k| {
            let r = radius * ((k as f64 + 0.5) / n as f64).sqrt();
            let th = k as f64 * 2.399_963_229_728_653;
            Position {
                x: r * th.cos(),
                y: r * th.sin(),
            }
        })
        .collect()
}

fn medium(n: usize) -> Medium {
    let day = DayProfile::clear();
    Medium::new(
        spiral(n),
        Shadowing::new(day.clone(), SimRng::from_seed(33)),
        MediumConfig {
            path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
            day,
            propagation_delay: SimDuration::from_micros(1),
            cull: CullPolicy::Audible {
                tx_power: Dbm(15.0),
                noise_floor: Dbm(-96.6),
                margin: Db(CULL_MARGIN_DB),
            },
        },
    )
}

/// The two alternating move sets: ~0.5% of stations (at least one) hop
/// 60-odd metres out on even epochs and back home on odd ones, so the
/// medium bounces between two states instead of drifting off the field.
fn move_sets(n: usize) -> [Vec<(NodeId, Position)>; 2] {
    let positions = spiral(n);
    let movers = (n / 200).max(1);
    let stride = n / movers;
    let mut out = Vec::with_capacity(movers);
    let mut back = Vec::with_capacity(movers);
    for m in 0..movers {
        let i = m * stride;
        let p = positions[i];
        out.push((
            NodeId(i as u32),
            Position {
                x: p.x + 60.0,
                y: p.y - 45.0,
            },
        ));
        back.push((NodeId(i as u32), p));
    }
    [out, back]
}

/// Times one commit family: alternating out/back epochs through
/// `commit`, reporting per-epoch churn — and, for the incremental rows,
/// `speedup` over the already-timed rebuild reference.
fn bench_commits(
    h: &Harness,
    name: &str,
    n: usize,
    rebuild_ns: Option<f64>,
    mut commit: impl FnMut(&mut Medium, &[(NodeId, Position)]) -> EpochChurn,
) {
    let mut medium = medium(n);
    let sets = move_sets(n);
    // Install the steady state (capacity slack, epoch grid) before
    // timing, exactly as a run's first epochs would.
    commit(&mut medium, &sets[0]);
    commit(&mut medium, &sets[1]);
    let mut flip = 0usize;
    h.bench_metrics(
        name,
        move || {
            let churn = commit(&mut medium, &sets[flip]);
            flip ^= 1;
            churn
        },
        |churn, median| {
            let mut m = vec![
                ("stations".into(), n as f64),
                ("moved".into(), churn.moved as f64),
                ("links_recomputed".into(), churn.links_recomputed as f64),
                (
                    "audible_churn".into(),
                    (churn.audible_added + churn.audible_removed) as f64,
                ),
            ];
            if let Some(rebuild_ns) = rebuild_ns {
                m.push(("speedup".into(), rebuild_ns / median.as_nanos() as f64));
            }
            m
        },
    );
}

/// Rebuild median for size `n`, if its row ran (the speedup denominator).
fn rebuild_median_ns(h: &Harness, n: usize) -> Option<f64> {
    h.records()
        .iter()
        .find(|r| r.name == format!("mobility/rebuild_n{n}"))
        .map(|r| r.median_ns as f64)
}

fn main() {
    let h = Harness::from_args();
    for n in [64usize, 256, 1024] {
        // Reference first so the incremental row can report its speedup.
        bench_commits(&h, &format!("mobility/rebuild_n{n}"), n, None, |m, mv| {
            m.commit_epoch_rebuild(mv)
        });
        let rebuild = rebuild_median_ns(&h, n);
        bench_commits(&h, &format!("mobility/epoch_n{n}"), n, rebuild, |m, mv| {
            m.commit_epoch(mv)
        });
    }
    // Acceptance floor, independent of any committed baseline: at 1024
    // stations with a small mover set the incremental path must clear
    // 10× over the rebuild reference, or it is not O(moved) maintenance.
    let full = h
        .records()
        .into_iter()
        .find(|r| r.name == "mobility/epoch_n1024");
    if let Some(r) = full {
        let speedup = r
            .metrics
            .iter()
            .find(|(k, _)| k == "speedup")
            .map(|&(_, v)| v);
        match speedup {
            Some(s) if s >= 10.0 => {
                println!(
                    "mobility gate: epoch update {s:.1}x cheaper than rebuild at n=1024 (>= 10x)"
                );
            }
            Some(s) => {
                eprintln!(
                    "PERF REGRESSION: mobility/epoch_n1024 only {s:.1}x cheaper than rebuild \
                     (< 10x floor)"
                );
                std::process::exit(1);
            }
            // rebuild_n1024 filtered out: no denominator, nothing to gate.
            None => {}
        }
    }
    h.finish();
}
