//! Ablation benches for the design decisions of DESIGN.md §5.
//!
//! Each variant reruns the Figure 7 scenario (saturated UDP, 11 Mb/s)
//! with one mechanism removed. The *throughputs* these produce are
//! reported by `cargo run --example ablations`; the benches measure how
//! each mechanism changes the simulation cost (EIFS and PCS change the
//! number of MAC events dramatically).

use std::hint::black_box;

use desim::SimDuration;
use dot11_adhoc::{ScenarioBuilder, Traffic};
use dot11_bench::Harness;
use dot11_mac::MacConfig;
use dot11_phy::{DayProfile, PhyRate, RadioConfig};

#[derive(Clone, Copy)]
struct Variant {
    name: &'static str,
    eifs: bool,
    pcs: bool,
    capture: bool,
    still: bool,
    ctrl_at_data: bool,
}

const BASE: Variant = Variant {
    name: "baseline",
    eifs: true,
    pcs: true,
    capture: true,
    still: false,
    ctrl_at_data: false,
};

const VARIANTS: [Variant; 6] = [
    BASE,
    Variant {
        name: "d1_no_pcs",
        pcs: false,
        ..BASE
    },
    Variant {
        name: "d2_ctrl_at_data_rate",
        ctrl_at_data: true,
        ..BASE
    },
    Variant {
        name: "d3_no_eifs",
        eifs: false,
        ..BASE
    },
    Variant {
        name: "d4_still_channel",
        still: true,
        ..BASE
    },
    Variant {
        name: "d5_no_capture",
        capture: false,
        ..BASE
    },
];

fn run_variant(v: Variant) -> f64 {
    let mut mac = MacConfig::new(PhyRate::R11);
    mac.eifs_enabled = v.eifs;
    if v.ctrl_at_data {
        mac.control_rate = mac.data_rate;
    }
    let mut radio = RadioConfig::dwl650();
    if !v.pcs {
        radio = radio.without_pcs_advantage();
    }
    radio.capture_enabled = v.capture;
    let day = if v.still {
        DayProfile::still()
    } else {
        DayProfile::clear()
    };
    let report = ScenarioBuilder::new(PhyRate::R11)
        .line(&[0.0, 25.0, 107.5, 132.5])
        .mac_config(mac)
        .radio(radio)
        .day(day)
        .seed(3)
        .duration(SimDuration::from_secs(1))
        .warmup(SimDuration::from_millis(200))
        .flow(
            0,
            1,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .flow(
            2,
            3,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .run();
    report.total_throughput_kbps()
}

fn main() {
    let h = Harness::from_args();
    for v in VARIANTS {
        h.bench(&format!("ablations_fig7/{}", v.name), || {
            black_box(run_variant(v))
        });
    }
}
