//! The `engine_hotpath` group: the per-frame fast path and the tracked
//! perf baseline.
//!
//! These are the numbers `BENCH_pr8.json` pins (see README "Perf
//! trajectory"): the four-station run's ns/event, events/sec and
//! end-to-end `sim_ns_per_wall_ns` speedup, the raw medium-scatter /
//! PHY-interference / timer-cancel microcosts under it, and the
//! cold/warm sweep wall time. Run with
//!
//! ```console
//! cargo bench -p dot11-bench --bench hotpath -- --json BENCH_pr8.json
//! cargo bench -p dot11-bench --bench hotpath -- --baseline BENCH_pr8.json
//! ```
//!
//! The second form is the CI regression gate: it exits non-zero if any
//! gated metric regressed more than the tolerance (default 25%) —
//! `ns_per_event` guards per-event cost, `sim_ns_per_wall_ns` guards the
//! end-to-end ratio so "fewer but slower events" can't slip through.

use std::hint::black_box;

use desim::{SimDuration, SimRng, SimTime, Simulator};
use dot11_adhoc::analytic::AccessScheme;
use dot11_adhoc::calib::calibrated_medium_config;
use dot11_adhoc::experiments::four_station::{scenario, FourStationLayout, SessionTransport};
use dot11_bench::{bench_config, Harness};
use dot11_phy::{
    DayProfile, Medium, NodeId, PhyRate, PhyState, Position, Preamble, RadioConfig, Shadowing,
    TxId, TxSignal,
};
use dot11_sweep::{run_sweep, RunParams, SweepOptions, SweepScenario, SweepSpec};

/// The four asymmetric-layout station positions as a `Medium`.
fn four_station_medium() -> Medium {
    let positions = FourStationLayout::AsymmetricAt11
        .positions()
        .iter()
        .map(|&x| Position { x, y: 0.0 })
        .collect();
    Medium::new(
        positions,
        Shadowing::new(DayProfile::clear(), SimRng::from_seed(7)),
        calibrated_medium_config(DayProfile::clear()),
    )
}

/// End-to-end: one saturated-UDP four-station cell (Figure 7's workload)
/// at 1 s. The derived ns/event + events/sec pin per-event cost;
/// `sim_ns_per_wall_ns` (simulated nanoseconds per wall nanosecond) pins
/// the end-to-end speed so an event-count cut that makes each event
/// slower still has to win overall.
fn bench_four_station(h: &Harness) {
    let cfg = bench_config();
    h.bench_metrics(
        "engine_hotpath/four_station_udp_1s",
        || {
            scenario(
                cfg,
                PhyRate::R11,
                FourStationLayout::AsymmetricAt11,
                SessionTransport::Udp,
                AccessScheme::Basic,
            )
            .run()
        },
        |report, median| {
            let events = report.engine.events as f64;
            vec![
                ("events".into(), events),
                ("ns_per_event".into(), median.as_nanos() as f64 / events),
                ("events_per_sec".into(), events / median.as_secs_f64()),
                (
                    "sim_ns_per_wall_ns".into(),
                    report.engine.sim_elapsed.as_nanos() as f64 / median.as_nanos() as f64,
                ),
            ]
        },
    );
}

/// The scatter step alone: per frame, sample every receiver's power.
fn bench_medium_scatter(h: &Harness) {
    let mut medium = four_station_medium();
    let radio = RadioConfig::dwl650();
    let mut now_ns = 0u64;
    let mut deliveries = Vec::new();
    const FRAMES: usize = 1_000;
    h.bench_metrics(
        "engine_hotpath/medium_scatter_1k_frames",
        move || {
            let mut delivered = 0usize;
            for _ in 0..FRAMES {
                now_ns += 200_000; // one frame every 200 µs
                let src = NodeId((now_ns / 200_000 % 4) as u32);
                deliveries.clear(); // caller-owned, like World's pooled buffers
                medium.transmit_into(
                    src,
                    radio.tx_power,
                    PhyRate::R11,
                    534,
                    Preamble::Long,
                    SimTime::from_nanos(now_ns),
                    &mut deliveries,
                );
                delivered += black_box(&deliveries).len();
            }
            delivered
        },
        |_, median| {
            vec![(
                "ns_per_frame".into(),
                median.as_nanos() as f64 / FRAMES as f64,
            )]
        },
    );
}

/// Interference accounting alone: three overlapping signals arrive and
/// leave while the MAC polls carrier sense (the `sync_cs` pattern).
fn bench_phy_interference(h: &Harness) {
    const ROUNDS: u64 = 1_000;
    h.bench_metrics(
        "engine_hotpath/phy_interference_churn",
        || {
            let mut phy = PhyState::new(RadioConfig::dwl650(), SimRng::from_seed(9));
            let mut busy = 0u64;
            for round in 0..ROUNDS {
                let base = round * 3_000_000;
                for k in 0..3u64 {
                    let start = SimTime::from_nanos(base + k * 50_000);
                    let sig = TxSignal {
                        tx_id: TxId(round * 3 + k),
                        source: NodeId((k + 1) as u32),
                        rx_power: dot11_phy::Dbm(-70.0 - k as f64),
                        rate: PhyRate::R11,
                        mpdu_bytes: 534,
                        preamble: Preamble::Long,
                        starts_at: start,
                        ends_at: SimTime::from_nanos(base + 1_000_000 + k * 50_000),
                    };
                    phy.signal_start(&sig, start);
                    busy += phy.carrier_busy() as u64;
                }
                for k in 0..3u64 {
                    let end = SimTime::from_nanos(base + 1_000_000 + k * 50_000);
                    black_box(phy.signal_end(TxId(round * 3 + k), end));
                    busy += phy.carrier_busy() as u64;
                }
            }
            busy
        },
        |_, median| {
            vec![(
                "ns_per_signal".into(),
                median.as_nanos() as f64 / (ROUNDS * 6) as f64,
            )]
        },
    );
}

/// Timer arm/cancel churn — the DCF's most common queue operation,
/// including cancels that land *after* the event fired.
fn bench_queue_cancel(h: &Harness) {
    const ROUNDS: u32 = 1_000;
    h.bench_metrics(
        "engine_hotpath/queue_cancel_churn",
        || {
            let mut sim: Simulator<u32> = Simulator::new();
            let mut fired = 0u64;
            for i in 0..ROUNDS {
                // Arm a timer, think better of it, arm another, fire it,
                // then cancel the stale handle (idempotent no-op).
                let stale = sim.schedule_in(SimDuration::from_micros(50), i);
                sim.cancel(stale);
                let live = sim.schedule_in(SimDuration::from_micros(20), i);
                fired += sim.pop().is_some() as u64;
                sim.cancel(live);
            }
            fired
        },
        |_, median| {
            vec![(
                "ns_per_round".into(),
                median.as_nanos() as f64 / ROUNDS as f64,
            )]
        },
    );
}

/// The sweep engine over the Figure 7 grid: cold (every cell simulated)
/// and warm (every cell answered from the cache).
fn bench_sweep(h: &Harness) {
    let spec = SweepSpec::new(RunParams {
        duration: SimDuration::from_millis(250),
        warmup: SimDuration::from_millis(50),
        threads: 1,
    })
    .scenarios(SweepScenario::figure(7))
    .seeds(1..=4);

    h.bench("engine_hotpath/sweep_fig7_4seeds_cold", || {
        let r = run_sweep(&spec, &SweepOptions::serial()).expect("sweep");
        assert_eq!(r.engine.simulated, 16);
        r
    });

    let dir = std::env::temp_dir().join(format!("dot11-hotpath-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions::serial().cache(&dir);
    run_sweep(&spec, &opts).expect("populate cache");
    h.bench("engine_hotpath/sweep_fig7_4seeds_warm", || {
        let r = run_sweep(&spec, &opts).expect("warm sweep");
        assert_eq!(r.engine.simulated, 0, "warm cache must not simulate");
        r
    });
    std::fs::remove_dir_all(&dir).ok();
}

fn main() {
    let h = Harness::from_args();
    bench_four_station(&h);
    bench_medium_scatter(&h);
    bench_phy_interference(&h);
    bench_queue_cancel(&h);
    bench_sweep(&h);
    h.finish();
}
