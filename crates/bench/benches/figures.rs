//! Regeneration benches for Figures 1–4.
//!
//! * `figure1` — encapsulation breakdown (analytic).
//! * `figure2` — ideal vs measured TCP/UDP at 11 Mb/s (4 simulations).
//! * `figure3` — the loss-vs-distance sweep, per rate and full.
//! * `figure4` — the two-day 1 Mb/s sweep.

use std::hint::black_box;

use dot11_adhoc::analytic::{overhead_breakdown, TransportKind};
use dot11_adhoc::experiments::figure2::figure2;
use dot11_adhoc::experiments::figure3::{figure3, loss_curve, DISTANCES_M};
use dot11_adhoc::experiments::figure4::figure4;
use dot11_bench::{bench_config, Harness};
use dot11_phy::{DayProfile, PhyRate, Preamble};

fn main() {
    let h = Harness::from_args();
    let cfg = bench_config();
    h.bench("figure1/overhead_breakdown", || {
        overhead_breakdown(
            black_box(512),
            TransportKind::Udp,
            PhyRate::R11,
            Preamble::Long,
        )
    });
    h.bench("figure2/ideal_vs_udp_vs_tcp", || black_box(figure2(cfg)));
    h.bench("figure3/one_rate_11mbps", || {
        black_box(loss_curve(
            cfg,
            PhyRate::R11,
            DayProfile::clear(),
            &DISTANCES_M,
        ))
    });
    h.bench("figure3/all_rates", || black_box(figure3(cfg)));
    h.bench("figure4/two_days_1mbps", || black_box(figure4(cfg)));
}
