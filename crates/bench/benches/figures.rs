//! Regeneration benches for Figures 1–4.
//!
//! * `figure1` — encapsulation breakdown (analytic).
//! * `figure2` — ideal vs measured TCP/UDP at 11 Mb/s (4 simulations).
//! * `figure3` — the loss-vs-distance sweep, per rate and full.
//! * `figure4` — the two-day 1 Mb/s sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dot11_adhoc::analytic::{overhead_breakdown, TransportKind};
use dot11_adhoc::experiments::figure2::figure2;
use dot11_adhoc::experiments::figure3::{figure3, loss_curve, DISTANCES_M};
use dot11_adhoc::experiments::figure4::figure4;
use dot11_bench::bench_config;
use dot11_phy::{DayProfile, PhyRate, Preamble};

fn bench_figure1(c: &mut Criterion) {
    c.bench_function("figure1/overhead_breakdown", |b| {
        b.iter(|| overhead_breakdown(black_box(512), TransportKind::Udp, PhyRate::R11, Preamble::Long))
    });
}

fn bench_figure2(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("figure2");
    g.sample_size(10);
    g.bench_function("ideal_vs_udp_vs_tcp", |b| b.iter(|| black_box(figure2(cfg))));
    g.finish();
}

fn bench_figure3(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("figure3");
    g.sample_size(10);
    g.bench_function("one_rate_11mbps", |b| {
        b.iter(|| black_box(loss_curve(cfg, PhyRate::R11, DayProfile::clear(), &DISTANCES_M)))
    });
    g.bench_function("all_rates", |b| b.iter(|| black_box(figure3(cfg))));
    g.finish();
}

fn bench_figure4(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("figure4");
    g.sample_size(10);
    g.bench_function("two_days_1mbps", |b| b.iter(|| black_box(figure4(cfg))));
    g.finish();
}

criterion_group!(figures, bench_figure1, bench_figure2, bench_figure3, bench_figure4);
criterion_main!(figures);
