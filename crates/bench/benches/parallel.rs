//! The `parallel` group: wall-clock scaling of the sharded executor.
//!
//! The two large scenario families — the 1024-station chain and the
//! 4096-station random disk — run to completion serial (`t1`) and
//! sharded at 2 and at all available cores, reporting `ns_per_event`
//! and `speedup` (serial median / sharded median) per row. Results are
//! **byte-identical** across rows (pinned by
//! `tests/determinism_sharded.rs`); only the wall clock may move.
//!
//! Committed medians live in `BENCH_pr9.json`; CI gates `speedup` (must
//! not regress downward) and `ns_per_event` against it at a wide
//! tolerance, macro-bench noise being what it is:
//!
//! ```console
//! cargo bench -p dot11-bench --bench parallel -- --json BENCH_pr9.json
//! cargo bench -p dot11-bench --bench parallel -- --baseline BENCH_pr9.json --tolerance 60
//! ```
//!
//! Thread counts exceeding the machine are skipped (with a log line),
//! so the committed baseline only ever carries rows the runner could
//! actually produce — the gate ignores benches missing on either side.
//! On ≥ 4-core machines the bench additionally hard-fails if the disk
//! at full width does not clear 1.5× over serial — the acceptance floor
//! for the sharded executor — independent of any `--baseline`.

use desim::SimDuration;
use dot11_adhoc::{Scenario, ScenarioBuilder, Traffic};
use dot11_bench::Harness;
use dot11_phy::PhyRate;

const SATURATED: Traffic = Traffic::SaturatedUdp {
    payload_bytes: 512,
    backlog: 10,
};

/// The scaling group's saturated kilo-station chain (fan-out 31–50).
fn chain1024() -> Scenario {
    ScenarioBuilder::new(PhyRate::R2)
        .chain(1024, 80.0)
        .seed(3)
        .duration(SimDuration::from_millis(500))
        .warmup(SimDuration::from_millis(100))
        .flow(0, 1023, SATURATED)
        .build()
}

/// The scaling group's production-scale disk (fan-out ~97 — the shape
/// whose per-event physics the parallel sections actually amortize).
fn disk4096() -> Scenario {
    let mut b = ScenarioBuilder::new(PhyRate::R2)
        .random_disk(4096, 12_000.0, 7)
        .seed(3)
        .duration(SimDuration::from_millis(500))
        .warmup(SimDuration::from_millis(100));
    for (src, dst) in [(0, 1), (2, 3), (4, 5)] {
        b = b.flow(src, dst, SATURATED);
    }
    b.build()
}

/// Serial median for `family`, if its `t1` row ran (the speedup
/// denominator).
fn serial_median_ns(h: &Harness, family: &str) -> Option<f64> {
    h.records()
        .iter()
        .find(|r| r.name == format!("parallel/{family}/t1"))
        .map(|r| r.median_ns as f64)
}

fn bench_family(h: &Harness, family: &str, mk: fn() -> Scenario, threads: &[usize], cores: usize) {
    for &t in threads {
        let name = format!("parallel/{family}/t{t}");
        if t > cores {
            eprintln!("{name}: skipped ({t} threads > {cores} cores)");
            continue;
        }
        let serial = serial_median_ns(h, family);
        h.bench_metrics(
            &name,
            move || mk().with_threads(t).run(),
            move |report, median| {
                let events = report.engine.events as f64;
                let mut m = vec![
                    ("events".into(), events),
                    ("threads".into(), t as f64),
                    ("ns_per_event".into(), median.as_nanos() as f64 / events),
                    (
                        "sim_ns_per_wall_ns".into(),
                        report.engine.sim_elapsed.as_nanos() as f64 / median.as_nanos() as f64,
                    ),
                ];
                if let Some(serial_ns) = serial {
                    m.push(("speedup".into(), serial_ns / median.as_nanos() as f64));
                }
                m
            },
        );
    }
}

fn main() {
    let h = Harness::from_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Serial, two-wide, and full-width rows; deduped so a 2-core
    // machine doesn't run t2 twice.
    let mut threads = vec![1usize, 2, cores.max(2)];
    threads.dedup();
    bench_family(&h, "chain1024", chain1024, &threads, cores);
    bench_family(&h, "disk4096", disk4096, &threads, cores);

    // Acceptance floor, independent of any committed baseline: on a
    // machine wide enough for the executor to matter, the disk at full
    // width must clear 1.5× over serial.
    if cores >= 4 {
        let full = h
            .records()
            .into_iter()
            .find(|r| r.name == format!("parallel/disk4096/t{cores}"));
        if let Some(r) = full {
            let speedup = r
                .metrics
                .iter()
                .find(|(k, _)| k == "speedup")
                .map(|&(_, v)| v);
            match speedup {
                Some(s) if s > 1.5 => {
                    println!("parallel gate: disk4096 speedup {s:.2}x at {cores} threads (> 1.5x)")
                }
                Some(s) => {
                    eprintln!(
                        "PERF REGRESSION: parallel/disk4096/t{cores} speedup {s:.2}x <= 1.5x"
                    );
                    std::process::exit(1);
                }
                // t1 filtered out: no denominator, nothing to gate.
                None => {}
            }
        }
    }
    h.finish();
}
