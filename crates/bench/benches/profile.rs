//! The `profile` group: the engine profiler's cost and its findings.
//!
//! Two jobs:
//!
//! 1. **Overhead gate (in-process).** The probe trait mirrors
//!    `TraceSink`'s zero-cost contract: a `NoProbe` world must compile to
//!    the same hot loop as before the instrumentation existed. The gate
//!    times the same four-station cell twice — probes compiled out
//!    (`NoProbe`) and probes compiled in but disarmed (`WallProbe::off`)
//!    — and **exits non-zero** if the two ns/event figures differ by more
//!    than the standard bench tolerance (25%). Either direction failing
//!    means the monomorphization story broke.
//!
//! 2. **Attribution benches.** `profile/chain256_probed` runs the
//!    N-scaling headline case with an armed probe and reports the
//!    per-kind wall-time totals as metrics (`kind_ns_*`, `phase_ns_*`),
//!    asserting that the kind scopes attribute ≥ 95% of the run's wall
//!    time — the number that named the per-event costs the flat-cost
//!    work of `BENCH_pr8.json` then removed (mac_sifs_response mean
//!    18.7 µs → 2.3 µs, phase_scatter 7.5 µs → 1.4 µs; see
//!    ARCHITECTURE.md § Flat per-event cost at large N). The committed
//!    medians live in `BENCH_pr8.json`:
//!
//! ```console
//! cargo bench -p dot11-bench --bench profile -- --json BENCH_pr8.json
//! cargo bench -p dot11-bench --bench profile -- --baseline BENCH_pr8.json --tolerance 100
//! ```

use desim::{SimDuration, WallProbe};
use dot11_adhoc::analytic::AccessScheme;
use dot11_adhoc::experiments::four_station::{self, FourStationLayout, SessionTransport};
use dot11_adhoc::world::PROBE_SCOPES;
use dot11_adhoc::{RunReport, Scenario, ScenarioBuilder, Traffic};
use dot11_bench::{bench_config, Harness};
use dot11_phy::PhyRate;
use dot11_trace::NullSink;

/// The overhead-gate workload: the Figure 7 UDP/basic cell at the bench
/// config — the same contended four-station traffic the `four_station`
/// group times.
fn cell() -> Scenario {
    four_station::scenario(
        bench_config(),
        PhyRate::R11,
        FourStationLayout::AsymmetricAt11,
        SessionTransport::Udp,
        AccessScheme::Basic,
    )
}

/// The attribution workload: the 256-station saturated chain from the
/// `scaling` group (80 m pitch, 2 Mb/s, 500 ms).
fn chain256() -> Scenario {
    ScenarioBuilder::new(PhyRate::R2)
        .chain(256, 80.0)
        .seed(3)
        .duration(SimDuration::from_millis(500))
        .warmup(SimDuration::from_millis(100))
        .flow(
            0,
            255,
            Traffic::SaturatedUdp {
                payload_bytes: 512,
                backlog: 10,
            },
        )
        .build()
}

fn ns_per_event(report: &RunReport, median: std::time::Duration) -> Vec<(String, f64)> {
    let events = report.engine.events as f64;
    vec![
        ("events".into(), events),
        ("ns_per_event".into(), median.as_nanos() as f64 / events),
        (
            "sim_ns_per_wall_ns".into(),
            report.engine.sim_elapsed.as_nanos() as f64 / median.as_nanos() as f64,
        ),
    ]
}

/// Pulls `ns_per_event` out of a finished record by bench name.
fn recorded_ns_per_event(h: &Harness, name: &str) -> Option<f64> {
    h.records()
        .iter()
        .find(|r| r.name == name)
        .and_then(|r| r.metrics.iter().find(|(k, _)| k == "ns_per_event"))
        .map(|&(_, v)| v)
}

const GATE_TOLERANCE_PCT: f64 = 25.0;

fn main() {
    let h = Harness::from_args();

    // --- 1. overhead gate: compiled-out vs compiled-in-but-disarmed ---
    h.bench_metrics(
        "profile/four_station_compiled_out",
        || cell().run(),
        ns_per_event,
    );
    h.bench_metrics(
        "profile/four_station_probe_off",
        || cell().run_probed(NullSink, WallProbe::off(&PROBE_SCOPES)),
        ns_per_event,
    );
    if let (Some(out), Some(off)) = (
        recorded_ns_per_event(&h, "profile/four_station_compiled_out"),
        recorded_ns_per_event(&h, "profile/four_station_probe_off"),
    ) {
        let ratio = out.max(off) / out.min(off).max(f64::MIN_POSITIVE);
        if ratio > 1.0 + GATE_TOLERANCE_PCT / 100.0 {
            eprintln!(
                "PROBE OVERHEAD GATE: compiled-out {out:.1} ns/event vs disarmed \
                 {off:.1} ns/event differ {:.0}% (> {GATE_TOLERANCE_PCT}%) — \
                 the Probe monomorphization is no longer zero-cost",
                (ratio - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "probe overhead gate: compiled-out {out:.1} vs disarmed {off:.1} ns/event \
             ({:+.1}%, tolerance {GATE_TOLERANCE_PCT}%)",
            (off / out - 1.0) * 100.0
        );
    }

    // --- 2. attribution: armed probe over the chain256 headline case ---
    h.bench_metrics(
        "profile/chain256_probed",
        || chain256().run_probed(NullSink, WallProbe::new(&PROBE_SCOPES)),
        |report, median| {
            let frac = report
                .engine
                .attributed_fraction()
                .expect("armed probe attributes");
            assert!(
                frac >= 0.95,
                "kind scopes attribute only {:.1}% of chain256 wall time (need >= 95%)",
                100.0 * frac
            );
            let profile = report.engine.profile.as_ref().expect("armed probe reports");
            let mut m = ns_per_event(report, median);
            m.push(("attributed_pct".into(), 100.0 * frac));
            // Per-scope wall-time totals and per-visit means for the last
            // iteration. Kind scopes partition the dispatch loop;
            // phase_* scopes overlap it — never sum the two families.
            for s in &profile.scopes {
                let key = if s.name.starts_with("phase_") {
                    format!("{}_ns", s.name)
                } else {
                    format!("kind_ns_{}", s.name)
                };
                m.push((key, s.total_ns as f64));
                if s.count > 0 {
                    let mean_key = if s.name.starts_with("phase_") {
                        format!("{}_mean_ns", s.name)
                    } else {
                        format!("kind_mean_ns_{}", s.name)
                    };
                    m.push((mean_key, s.mean_ns()));
                }
            }
            m
        },
    );

    h.finish();
}
