//! Substrate microbenchmarks: the hot paths under every experiment.

use std::hint::black_box;

use desim::{EventQueue, SimDuration, SimRng, SimTime, Simulator};
use dot11_adhoc::{ScenarioBuilder, Traffic};
use dot11_bench::Harness;
use dot11_net::{TcpConfig, TcpSender};
use dot11_phy::{ber, packet_success_prob, Modulation};
use dot11_phy::{FrameAirtime, PhyRate, Preamble};

/// Event-queue churn: the simulator's innermost loop.
fn bench_event_queue(h: &Harness) {
    h.bench("desim/queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });
    h.bench("desim/timer_churn_arm_cancel", || {
        let mut sim: Simulator<u32> = Simulator::new();
        for i in 0..1_000u32 {
            let handle = sim.schedule_in(SimDuration::from_micros(50), i);
            sim.cancel(handle);
            sim.schedule_in(SimDuration::from_micros(20), i);
            sim.pop();
        }
        sim.events_dispatched()
    });
    let master = SimRng::from_seed(1);
    h.bench("desim/rng_substream_derivation", || {
        black_box(master.substream(b"node-42/backoff")).gen_f64()
    });
}

/// PHY arithmetic: error model and airtime.
fn bench_phy(h: &Harness) {
    h.bench("phy/ber_cck11", || ber(Modulation::Cck11, black_box(20.0)));
    h.bench("phy/packet_success_12kbit", || {
        packet_success_prob(black_box(1e-5), 12_000)
    });
    h.bench("phy/frame_airtime", || {
        FrameAirtime::new(black_box(1536), PhyRate::R11, Preamble::Long).total()
    });
}

/// TCP sender state machine without the radio under it.
fn bench_tcp(h: &Harness) {
    h.bench("tcp/ack_clock_1k_acks", || {
        let mut s = TcpSender::new(
            dot11_net::FlowId(0),
            dot11_phy::NodeId(0),
            dot11_phy::NodeId(1),
            TcpConfig::new(512),
        );
        let mut out = Vec::new();
        s.start(SimTime::ZERO, &mut out);
        let mut acked = 0u64;
        for k in 1..1_000u64 {
            out.clear();
            acked = (acked + 512).min(s.acked_bytes() + s.flight_size());
            s.on_ack(acked, SimTime::from_millis(k), &mut out);
        }
        s.stats().segments_sent
    });
}

/// End-to-end: simulated seconds per wall second on the canonical
/// two-node saturated link (the NullSink regression canary: tracing is
/// compiled out here and must stay free).
fn bench_end_to_end(h: &Harness) {
    h.bench("end_to_end/two_node_udp_1s_sim", || {
        ScenarioBuilder::new(PhyRate::R11)
            .line(&[0.0, 10.0])
            .seed(1)
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_millis(100))
            .flow(
                0,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .run()
            .events
    });
}

fn main() {
    let h = Harness::from_args();
    bench_event_queue(&h);
    bench_phy(&h);
    bench_tcp(&h);
    bench_end_to_end(&h);
}
