//! Substrate microbenchmarks: the hot paths under every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use desim::{EventQueue, SimDuration, SimRng, SimTime, Simulator};
use dot11_adhoc::{ScenarioBuilder, Traffic};
use dot11_net::{TcpConfig, TcpSender};
use dot11_phy::{ber, packet_success_prob, Modulation};
use dot11_phy::{FrameAirtime, PhyRate, Preamble};

/// Event-queue churn: the simulator's innermost loop.
fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim");
    g.bench_function("queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    g.bench_function("timer_churn_arm_cancel", |b| {
        b.iter(|| {
            let mut sim: Simulator<u32> = Simulator::new();
            for i in 0..1_000u32 {
                let h = sim.schedule_in(SimDuration::from_micros(50), i);
                sim.cancel(h);
                sim.schedule_in(SimDuration::from_micros(20), i);
                sim.pop();
            }
            black_box(sim.events_dispatched())
        })
    });
    g.bench_function("rng_substream_derivation", |b| {
        let master = SimRng::from_seed(1);
        b.iter(|| black_box(master.substream(b"node-42/backoff")).gen_f64())
    });
    g.finish();
}

/// PHY arithmetic: error model and airtime.
fn bench_phy(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy");
    g.bench_function("ber_cck11", |b| b.iter(|| ber(Modulation::Cck11, black_box(20.0))));
    g.bench_function("packet_success_12kbit", |b| {
        b.iter(|| packet_success_prob(black_box(1e-5), 12_000))
    });
    g.bench_function("frame_airtime", |b| {
        b.iter(|| FrameAirtime::new(black_box(1536), PhyRate::R11, Preamble::Long).total())
    });
    g.finish();
}

/// TCP sender state machine without the radio under it.
fn bench_tcp(c: &mut Criterion) {
    c.bench_function("tcp/ack_clock_1k_acks", |b| {
        b.iter(|| {
            let mut s = TcpSender::new(
                dot11_net::FlowId(0),
                dot11_phy::NodeId(0),
                dot11_phy::NodeId(1),
                TcpConfig::new(512),
            );
            let mut out = Vec::new();
            s.start(SimTime::ZERO, &mut out);
            let mut acked = 0u64;
            for k in 1..1_000u64 {
                out.clear();
                acked = (acked + 512).min(s.acked_bytes() + s.flight_size());
                s.on_ack(acked, SimTime::from_millis(k), &mut out);
            }
            black_box(s.stats().segments_sent)
        })
    });
}

/// End-to-end: simulated seconds per wall second on the canonical
/// two-node saturated link.
fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("two_node_udp_1s_sim", |b| {
        b.iter(|| {
            ScenarioBuilder::new(PhyRate::R11)
                .line(&[0.0, 10.0])
                .seed(1)
                .duration(SimDuration::from_secs(1))
                .warmup(SimDuration::from_millis(100))
                .flow(0, 1, Traffic::SaturatedUdp { payload_bytes: 512, backlog: 10 })
                .run()
                .events
        })
    });
    g.finish();
}

criterion_group!(engine, bench_event_queue, bench_phy, bench_tcp, bench_end_to_end);
criterion_main!(engine);
