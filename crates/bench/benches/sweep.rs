//! Sweep-engine benches: the figure reproductions as parallel multi-seed
//! batches.
//!
//! `figures_8seeds_j1` vs `figures_8seeds_jN` measures what the thread
//! pool buys on this machine for the real workload (all four four-station
//! figures × 8 seeds); `warm_cache` measures the cost of a fully cached
//! re-run (file reads only — no worlds simulated).

use desim::SimDuration;
use dot11_bench::Harness;
use dot11_sweep::{run_sweep, RunParams, SweepOptions, SweepScenario, SweepSpec};

fn figures_spec() -> SweepSpec {
    let mut scenarios = Vec::new();
    for fig in [7, 9, 11, 12] {
        scenarios.extend(SweepScenario::figure(fig));
    }
    SweepSpec::new(RunParams {
        duration: SimDuration::from_millis(250),
        warmup: SimDuration::from_millis(50),
        threads: 1,
    })
    .scenarios(scenarios)
    .seeds(1..=8)
}

fn main() {
    let h = Harness::from_args();
    let spec = figures_spec();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    h.bench("sweep/figures_8seeds_j1", || {
        run_sweep(&spec, &SweepOptions::serial()).expect("sweep")
    });
    h.bench(&format!("sweep/figures_8seeds_j{cores}"), || {
        run_sweep(&spec, &SweepOptions::with_jobs(cores)).expect("sweep")
    });

    // Warm-cache re-run: populate once, then measure pure cache reads.
    let dir = std::env::temp_dir().join(format!("dot11-sweep-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions::with_jobs(cores).cache(&dir);
    let cold = run_sweep(&spec, &opts).expect("populate cache");
    assert_eq!(cold.engine.cached, 0);
    h.bench("sweep/figures_8seeds_warm_cache", || {
        let r = run_sweep(&spec, &opts).expect("warm sweep");
        assert_eq!(r.engine.simulated, 0, "warm cache must not simulate");
        r
    });
    std::fs::remove_dir_all(&dir).ok();
}
