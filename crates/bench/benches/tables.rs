//! Regeneration benches for the paper's tables.
//!
//! * `table1` — parameter construction (trivially cheap; included so the
//!   per-artifact inventory is complete).
//! * `table2` — the 16-cell analytic throughput table, both the faithful
//!   equations and the paper-calibrated variant.
//! * `table3` — the transmission-range table distilled from simulated
//!   loss-vs-distance sweeps (the heavy one).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dot11_adhoc::analytic::{
    max_throughput_eq, max_throughput_paper, table2, AccessScheme, Dot11bParams,
};
use dot11_adhoc::experiments::table3::table3;
use dot11_bench::bench_config;
use dot11_phy::PhyRate;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/params", |b| {
        b.iter(|| black_box(Dot11bParams::table1()).mean_backoff_us())
    });
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.bench_function("paper_variant_16_cells", |b| b.iter(|| black_box(table2())));
    g.bench_function("single_cell_paper", |b| {
        b.iter(|| max_throughput_paper(black_box(1024), PhyRate::R11, AccessScheme::Basic))
    });
    g.bench_function("single_cell_eq", |b| {
        b.iter(|| max_throughput_eq(black_box(1024), PhyRate::R11, AccessScheme::RtsCts))
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("range_sweep_all_rates", |b| b.iter(|| black_box(table3(cfg))));
    g.finish();
}

criterion_group!(tables, bench_table1, bench_table2, bench_table3);
criterion_main!(tables);
