//! Regeneration benches for the paper's tables.
//!
//! * `table1` — parameter construction (trivially cheap; included so the
//!   per-artifact inventory is complete).
//! * `table2` — the 16-cell analytic throughput table, both the faithful
//!   equations and the paper-calibrated variant.
//! * `table3` — the transmission-range table distilled from simulated
//!   loss-vs-distance sweeps (the heavy one).

use std::hint::black_box;

use dot11_adhoc::analytic::{
    max_throughput_eq, max_throughput_paper, table2, AccessScheme, Dot11bParams,
};
use dot11_adhoc::experiments::table3::table3;
use dot11_bench::{bench_config, Harness};
use dot11_phy::PhyRate;

fn main() {
    let h = Harness::from_args();
    let cfg = bench_config();
    h.bench("table1/params", || {
        black_box(Dot11bParams::table1()).mean_backoff_us()
    });
    h.bench("table2/paper_variant_16_cells", || black_box(table2()));
    h.bench("table2/single_cell_paper", || {
        max_throughput_paper(black_box(1024), PhyRate::R11, AccessScheme::Basic)
    });
    h.bench("table2/single_cell_eq", || {
        max_throughput_eq(black_box(1024), PhyRate::R11, AccessScheme::RtsCts)
    });
    h.bench("table3/range_sweep_all_rates", || black_box(table3(cfg)));
}
