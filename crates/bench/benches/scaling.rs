//! The `scaling` group: how per-frame cost scales with station count N.
//!
//! Saturated multihop chains at N ∈ {4, 16, 64, 256, 1024} stations
//! (80 m pitch, 2 Mb/s — a reliable hop per the calibrated Table 3
//! ranges), the 256-station chain with audible-set culling disabled, and
//! a 4096-station random disk (the largest scenario family the repo
//! ships). The committed medians live in `BENCH_pr8.json`; CI gates
//! `ns_per_event`, `sim_ns_per_wall_ns`, *and* `deliveries_per_frame`
//! against it — the last is exact arithmetic over static audible sets
//! (zero run-to-run noise), so it pins the culling structure itself
//! while the wall-clock metrics run at a wide 100% tolerance (these
//! whole-simulation macro-benches are far noisier than the hotpath
//! micro-benches, and the regression the gate exists to catch is a
//! +711% deliveries / >+270% wall swing):
//!
//! ```console
//! cargo bench -p dot11-bench --bench scaling -- --json BENCH_pr8.json
//! cargo bench -p dot11-bench --bench scaling -- --baseline BENCH_pr8.json --tolerance 100
//! ```
//!
//! Two comparisons carry the story. `scaling/chain256` vs
//! `scaling/chain256_full_fanout`: with culling, a transmission scatters
//! to the ~50 stations inside the ~2 km audible horizon instead of all
//! 255, so `deliveries_per_frame` (exact: Σ tx_frames·|audible set|,
//! over frames) and the wall-time metrics improve together while the
//! physics stays bit-identical (see `tests/culling.rs`). And
//! `scaling/chain4` vs the larger chains: identical event counts from
//! chain64 up, so ns/event isolates per-event cost — the flat-cost gap
//! that remains tracks `deliveries_per_frame` (31.4 vs 3.0), i.e. the
//! physical fan-out each event must pay for, not the station count.

use desim::SimDuration;
use dot11_adhoc::{Scenario, ScenarioBuilder, Traffic};
use dot11_bench::Harness;
use dot11_phy::{NodeId, PhyRate};

const SATURATED: Traffic = Traffic::SaturatedUdp {
    payload_bytes: 512,
    backlog: 10,
};

/// An N-station saturated chain at 80 m pitch, 500 ms of simulated time.
fn chain(n: u32, full_fanout: bool) -> Scenario {
    let mut b = ScenarioBuilder::new(PhyRate::R2).chain(n, 80.0);
    if full_fanout {
        b = b.full_fanout();
    }
    b.seed(3)
        .duration(SimDuration::from_millis(500))
        .warmup(SimDuration::from_millis(100))
        .flow(0, n - 1, SATURATED)
        .build()
}

/// A 4096-station uniform random disk, radius 12 km (station density ≈
/// one per 110 m², audible sets ~100 stations under the dual-slope
/// horizon), with the sweep family's three single-hop saturated flows.
/// This is the production-scale shape the ROADMAP aims at: per-event
/// cost must track the audible fan-out, never N. Note the harness
/// times scenario + world construction inside the iteration, so this
/// row's `ns_per_event` is dominated by (O(N), once-per-run)
/// construction amortized over a short session — which is the point:
/// it pins construction cost too.
fn disk4096() -> Scenario {
    let mut b = ScenarioBuilder::new(PhyRate::R2)
        .random_disk(4096, 12_000.0, 7)
        .seed(3)
        .duration(SimDuration::from_millis(500))
        .warmup(SimDuration::from_millis(100));
    for (src, dst) in [(0, 1), (2, 3), (4, 5)] {
        b = b.flow(src, dst, SATURATED);
    }
    b.build()
}

/// Per-station audible-set sizes — static for a run, so computed once
/// from a throwaway world and folded into the report metrics.
fn audible_counts(scenario: Scenario) -> Vec<f64> {
    let world = scenario.into_world();
    (0..world.medium().station_count() as u32)
        .map(|i| world.medium().audible_count(NodeId(i)) as f64)
        .collect()
}

fn bench_scenario(h: &Harness, name: &str, mk: impl Fn() -> Scenario + 'static) {
    if !h.selected(name) {
        return;
    }
    let audible = audible_counts(mk());
    let max_audible = audible.iter().cloned().fold(0.0f64, f64::max);
    h.bench_metrics(
        name,
        move || mk().run(),
        move |report, median| {
            let events = report.engine.events as f64;
            let frames: f64 = report.nodes.iter().map(|nr| nr.phy.tx_frames as f64).sum();
            // Exact per-receiver arrivals: each of a station's frames is
            // delivered to its whole (static) audible set.
            let deliveries: f64 = report
                .nodes
                .iter()
                .map(|nr| nr.phy.tx_frames as f64 * audible[nr.node.index()])
                .sum();
            vec![
                ("events".into(), events),
                ("ns_per_event".into(), median.as_nanos() as f64 / events),
                (
                    "sim_ns_per_wall_ns".into(),
                    report.engine.sim_elapsed.as_nanos() as f64 / median.as_nanos() as f64,
                ),
                ("frames".into(), frames),
                (
                    "deliveries_per_frame".into(),
                    if frames > 0.0 {
                        deliveries / frames
                    } else {
                        0.0
                    },
                ),
                ("max_audible".into(), max_audible),
            ]
        },
    );
}

fn main() {
    let h = Harness::from_args();
    for n in [4u32, 16, 64, 256, 1024] {
        bench_scenario(&h, &format!("scaling/chain{n}"), move || chain(n, false));
    }
    bench_scenario(&h, "scaling/chain256_full_fanout", || chain(256, true));
    bench_scenario(&h, "scaling/disk4096", disk4096);
    h.finish();
}
