//! Regeneration benches for the four-station figures (7, 9, 11, 12).
//!
//! Each group runs the four cells (UDP/TCP × basic/RTS-CTS) of one
//! figure; `single_cell` isolates one saturated-UDP run for profiling the
//! hot path (PHY SINR integration + DCF state machine).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dot11_adhoc::experiments::four_station::{
    figure11, figure12, figure7, figure9, four_station, FourStationLayout,
};
use dot11_bench::bench_config;
use dot11_phy::PhyRate;

fn bench_figures(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("four_station");
    g.sample_size(10);
    g.bench_function("figure7_asym_11mbps", |b| b.iter(|| black_box(figure7(cfg))));
    g.bench_function("figure9_asym_2mbps", |b| b.iter(|| black_box(figure9(cfg))));
    g.bench_function("figure11_sym_11mbps", |b| b.iter(|| black_box(figure11(cfg))));
    g.bench_function("figure12_sym_2mbps", |b| b.iter(|| black_box(figure12(cfg))));
    g.finish();
}

fn bench_single_cell(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("four_station_cell");
    g.sample_size(10);
    g.bench_function("udp_both_schemes_11mbps", |b| {
        b.iter(|| black_box(four_station(cfg, PhyRate::R11, FourStationLayout::AsymmetricAt11)))
    });
    g.finish();
}

criterion_group!(four_station_benches, bench_figures, bench_single_cell);
criterion_main!(four_station_benches);
