//! Regeneration benches for the four-station figures (7, 9, 11, 12).
//!
//! Each entry runs the four cells (UDP/TCP × basic/RTS-CTS) of one
//! figure; `single_cell` isolates one saturated-UDP run for profiling the
//! hot path (PHY SINR integration + DCF state machine).

use std::hint::black_box;

use dot11_adhoc::experiments::four_station::{
    figure11, figure12, figure7, figure9, four_station, FourStationLayout,
};
use dot11_bench::{bench_config, Harness};
use dot11_phy::PhyRate;

fn main() {
    let h = Harness::from_args();
    let cfg = bench_config();
    h.bench("four_station/figure7_asym_11mbps", || {
        black_box(figure7(cfg))
    });
    h.bench("four_station/figure9_asym_2mbps", || {
        black_box(figure9(cfg))
    });
    h.bench("four_station/figure11_sym_11mbps", || {
        black_box(figure11(cfg))
    });
    h.bench("four_station/figure12_sym_2mbps", || {
        black_box(figure12(cfg))
    });
    h.bench("four_station_cell/udp_both_schemes_11mbps", || {
        black_box(four_station(
            cfg,
            PhyRate::R11,
            FourStationLayout::AsymmetricAt11,
        ))
    });
}
