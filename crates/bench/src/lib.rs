//! Shared helpers for the testbed benches.
//!
//! The benches live in `benches/`, one group per paper artifact (see
//! `DESIGN.md` §3). Each group measures the cost of *regenerating* that
//! artifact; the `repro` binary in the workspace root prints the
//! artifacts themselves.
//!
//! Timing is done by the self-contained [`Harness`] below (the container
//! has no bench framework): each benchmark warms up briefly, then runs
//! timed iterations until a wall-clock budget is spent, and reports the
//! median/min per-iteration time. Pass a substring on the command line to
//! run a subset: `cargo bench --bench engine -- queue`.
//!
//! The harness also maintains the repo's perf trajectory:
//!
//! * `--json PATH` writes every result (plus derived metrics such as
//!   ns/event) as machine-readable JSON — CI uploads these as artifacts;
//! * `--baseline PATH` compares the run against a committed
//!   `BENCH_*.json` and **exits non-zero** if any shared gated metric
//!   regressed more than `--tolerance PCT` (default 25%). Two metrics
//!   are gated: `ns_per_event` (per-event cost; regresses upward) and
//!   `sim_ns_per_wall_ns` (end-to-end simulated-time-per-wall-time;
//!   regresses downward — this one stays meaningful when an optimization
//!   shrinks the event count itself, which makes ns/event misleading).
//!
//! Call [`Harness::finish`] at the end of each bench `main` to flush the
//! JSON and apply the gate.

use std::cell::RefCell;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use desim::SimDuration;
use dot11_adhoc::experiments::ExpConfig;
use dot11_sweep::json;

/// The reduced configuration benches run at: 1 s sessions are enough to
/// exercise every code path while keeping repeated sampling affordable.
pub fn bench_config() -> ExpConfig {
    ExpConfig {
        seed: 3,
        duration: SimDuration::from_secs(1),
        warmup: SimDuration::from_millis(200),
        threads: 1,
    }
}

/// One benchmark's recorded outcome (what `--json` serializes).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Median per-iteration wall time, nanoseconds.
    pub median_ns: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Timed iterations taken.
    pub iters: usize,
    /// Derived metrics (e.g. `events`, `events_per_sec`, `ns_per_event`),
    /// in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchRecord {
    fn to_json(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{k}\":{}", fmt_f64(*v)))
            .collect();
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"iters\":{},\
             \"metrics\":{{{}}}}}",
            self.name,
            self.median_ns,
            self.min_ns,
            self.iters,
            metrics.join(",")
        )
    }
}

/// Shortest-round-trip float formatting (JSON has no NaN/Inf).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A minimal benchmark runner: substring filtering, warm-up, a fixed
/// wall-clock budget per benchmark, median-of-iterations reporting, and
/// optional JSON emission / baseline regression gating (module docs).
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
    max_iters: usize,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance_pct: f64,
    results: RefCell<Vec<BenchRecord>>,
}

impl Harness {
    /// Builds a harness from `std::env::args`. Recognized flags:
    /// `--json PATH`, `--baseline PATH`, `--tolerance PCT`; other flags
    /// (cargo passes `--bench`) are ignored, and the first free argument
    /// is a substring filter on benchmark names.
    pub fn from_args() -> Harness {
        let mut filter = None;
        let mut h = Harness::with_filter(None);
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => h.json = args.next().map(PathBuf::from),
                "--baseline" => h.baseline = args.next().map(PathBuf::from),
                "--tolerance" => {
                    h.tolerance_pct = args
                        .next()
                        .and_then(|t| t.parse().ok())
                        .unwrap_or(h.tolerance_pct)
                }
                _ if a.starts_with('-') => {}
                _ if filter.is_none() => filter = Some(a),
                _ => {}
            }
        }
        h.filter = filter;
        h
    }

    /// Builds a harness with an explicit (optional) name filter.
    pub fn with_filter(filter: Option<String>) -> Harness {
        Harness {
            filter,
            budget: Duration::from_secs(1),
            max_iters: 1_000,
            json: None,
            baseline: None,
            tolerance_pct: 25.0,
            results: RefCell::new(Vec::new()),
        }
    }

    /// Whether `name` passes the filter.
    pub fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Times `f`, printing one line: name, median and min per-iteration
    /// time, and the iteration count. Always runs at least one timed
    /// iteration, so even multi-second benchmarks report.
    pub fn bench<R>(&self, name: &str, f: impl FnMut() -> R) {
        self.bench_metrics(name, f, |_, _| Vec::new());
    }

    /// Like [`Harness::bench`], but also derives named metrics from the
    /// last iteration's return value and the median iteration time (e.g.
    /// events dispatched → ns/event, events/sec). Metrics land in the
    /// printed line and the `--json` record.
    pub fn bench_metrics<R>(
        &self,
        name: &str,
        mut f: impl FnMut() -> R,
        metrics: impl FnOnce(&R, Duration) -> Vec<(String, f64)>,
    ) {
        if !self.selected(name) {
            return;
        }
        // Warm-up: up to two iterations or 200 ms, whichever first.
        let warm_start = Instant::now();
        for _ in 0..2 {
            std::hint::black_box(f());
            if warm_start.elapsed() > Duration::from_millis(200) {
                break;
            }
        }
        let mut samples = Vec::new();
        let start = Instant::now();
        let mut last = None;
        while samples.len() < self.max_iters
            && (samples.is_empty() || start.elapsed() < self.budget)
        {
            let t0 = Instant::now();
            last = Some(std::hint::black_box(f()));
            samples.push(t0.elapsed());
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let derived = metrics(last.as_ref().expect("at least one iteration"), median);
        let extra: String = derived
            .iter()
            .map(|(k, v)| format!("  {k} {v:.1}"))
            .collect();
        println!(
            "{name:<44} median {:>10}  min {:>10}  ({} iters){extra}",
            fmt_duration(median),
            fmt_duration(min),
            samples.len()
        );
        self.results.borrow_mut().push(BenchRecord {
            name: name.to_owned(),
            median_ns: median.as_nanos() as u64,
            min_ns: min.as_nanos() as u64,
            iters: samples.len(),
            metrics: derived,
        });
    }

    /// The records accumulated so far, in run order.
    pub fn records(&self) -> Vec<BenchRecord> {
        self.results.borrow().clone()
    }

    /// Serializes the accumulated records as one JSON object.
    pub fn results_json(&self) -> String {
        let benches: Vec<String> = self
            .results
            .borrow()
            .iter()
            .map(BenchRecord::to_json)
            .collect();
        format!(
            "{{\"version\":\"dot11-bench/v1\",\"benches\":[{}]}}\n",
            benches.join(",")
        )
    }

    /// Flushes `--json` output and applies the `--baseline` regression
    /// gate. Call at the end of each bench `main`; exits the process with
    /// a non-zero status (after printing each offender) if any shared
    /// gated metric ([`GATED_METRICS`]) regressed beyond the tolerance.
    pub fn finish(&self) {
        if let Some(path) = &self.json {
            let path = resolve_repo_path(path);
            std::fs::write(&path, self.results_json())
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
        }
        let Some(baseline) = &self.baseline else {
            return;
        };
        let baseline = resolve_repo_path(baseline);
        let text = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline.display()));
        // A gated row missing from the baseline is not an error (machine
        // width and bench retirement both legitimately drop rows) — but
        // it must never pass *silently*, or a renamed bench quietly
        // leaves the gate.
        for name in missing_from_baseline(&self.records(), &text) {
            eprintln!("SKIPPED (row missing from baseline): {name}");
        }
        let regressions = check_against_baseline(&self.records(), &text, self.tolerance_pct);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("PERF REGRESSION: {r}");
            }
            std::process::exit(1);
        }
        let gated: Vec<&str> = GATED_METRICS.iter().map(|&(name, _)| name).collect();
        println!(
            "perf gate: no {} regression > {}% vs {}",
            gated.join(" / "),
            self.tolerance_pct,
            baseline.display()
        );
    }
}

/// Resolves a CLI-supplied path: absolute paths, and relative paths that
/// already exist from the current directory, are used as-is; anything
/// else is anchored at the workspace root. Cargo runs bench binaries
/// with the *package* directory as cwd, but the committed `BENCH_*.json`
/// files live at the repo root where CI invokes cargo — without the
/// re-anchoring, `--baseline BENCH_pr4.json` would silently look in
/// `crates/bench/` instead.
fn resolve_repo_path(path: &std::path::Path) -> PathBuf {
    if path.is_absolute() || path.exists() {
        return path.to_path_buf();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .find(|dir| dir.join("Cargo.lock").exists())
        .map(|root| root.join(path))
        .unwrap_or_else(|| path.to_path_buf())
}

/// The metrics the baseline gate watches, with their regression
/// direction. `ns_per_event` regresses *upward*; `sim_ns_per_wall_ns`
/// (simulated nanoseconds covered per wall nanosecond — the end-to-end
/// speed, which stays honest when a change shrinks the event count
/// itself) regresses *downward*. `deliveries_per_frame` (reported by
/// the scaling group) regresses *upward* and — unlike the two
/// wall-clock metrics — is exact arithmetic over static audible sets,
/// so any tolerance catches a structural fan-out regression with zero
/// run-to-run noise. Benches that don't report a gated metric are
/// simply not gated on it.
pub const GATED_METRICS: [(&str, bool); 4] = [
    ("ns_per_event", true),
    ("sim_ns_per_wall_ns", false),
    ("deliveries_per_frame", true),
    // Sharded-executor speedup over the serial run (parallel group):
    // regresses *downward* — a lower multiple means the parallel
    // sections stopped pulling their weight.
    ("speedup", false),
];

/// Names of run records that carry at least one gated metric (see
/// [`GATED_METRICS`]) but have no row in the baseline JSON — rows the
/// regression gate would skip. [`Harness::finish`] logs one explicit
/// `SKIPPED (row missing from baseline)` line per name. An unparseable
/// baseline returns the empty list; [`check_against_baseline`] already
/// reports that case as its own failure.
pub fn missing_from_baseline(records: &[BenchRecord], baseline_json: &str) -> Vec<String> {
    let Ok(parsed) = json::parse(baseline_json) else {
        return Vec::new();
    };
    let Some(benches) = parsed
        .as_object()
        .and_then(|o| json::get(o, "benches"))
        .and_then(|b| match b {
            json::JsonValue::Arr(a) => Some(a),
            _ => None,
        })
    else {
        return Vec::new();
    };
    let baseline_names: Vec<&str> = benches
        .iter()
        .filter_map(|e| e.as_object().and_then(|o| json::get_str(o, "name")))
        .collect();
    records
        .iter()
        .filter(|r| {
            r.metrics
                .iter()
                .any(|(k, _)| GATED_METRICS.iter().any(|&(g, _)| g == k))
        })
        .filter(|r| !baseline_names.contains(&r.name.as_str()))
        .map(|r| r.name.clone())
        .collect()
}

/// Compares run records against a committed `BENCH_*.json`: for every
/// benchmark present in both with a gated metric (see [`GATED_METRICS`]),
/// reports a regression when the current value is worse than the
/// baseline by more than `tolerance_pct` percent in that metric's bad
/// direction. Unknown benches on either side are ignored, so adding or
/// retiring benchmarks never trips the gate.
pub fn check_against_baseline(
    records: &[BenchRecord],
    baseline_json: &str,
    tolerance_pct: f64,
) -> Vec<String> {
    let parsed = match json::parse(baseline_json) {
        Ok(v) => v,
        Err(e) => return vec![format!("baseline is not valid JSON: {e}")],
    };
    let Some(benches) = parsed
        .as_object()
        .and_then(|o| json::get(o, "benches"))
        .and_then(|b| match b {
            json::JsonValue::Arr(a) => Some(a),
            _ => None,
        })
    else {
        return vec!["baseline has no \"benches\" array".to_owned()];
    };
    let mut regressions = Vec::new();
    for entry in benches {
        let Some(obj) = entry.as_object() else {
            continue;
        };
        let (Some(name), Some(metrics)) = (
            json::get_str(obj, "name"),
            json::get(obj, "metrics").and_then(|m| m.as_object()),
        ) else {
            continue;
        };
        let Some(record) = records.iter().find(|r| r.name == name) else {
            continue;
        };
        for (metric, higher_is_worse) in GATED_METRICS {
            let Some(base) = json::get_f64(metrics, metric) else {
                continue;
            };
            let Some(&(_, cur)) = record.metrics.iter().find(|(k, _)| k == metric) else {
                continue;
            };
            if base <= 0.0 {
                continue;
            }
            let regressed = if higher_is_worse {
                cur > base * (1.0 + tolerance_pct / 100.0)
            } else {
                cur < base * (1.0 - tolerance_pct / 100.0)
            };
            if regressed {
                let pct = if higher_is_worse {
                    (cur / base - 1.0) * 100.0
                } else {
                    (1.0 - cur / base) * 100.0
                };
                regressions.push(format!(
                    "{name}: {metric} {cur:.1} vs baseline {base:.1} \
                     ({}{pct:.0}%, tolerance {tolerance_pct}%)",
                    if higher_is_worse { "+" } else { "-" },
                ));
            }
        }
    }
    regressions
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_short_but_valid() {
        let c = bench_config();
        assert!(c.warmup < c.duration);
        assert_eq!(c.seed, 3, "benches pin the reference channel state");
    }

    #[test]
    fn filter_selects_by_substring() {
        let h = Harness::with_filter(Some("queue".into()));
        assert!(h.selected("desim/queue_push_pop_1k"));
        assert!(!h.selected("phy/ber_cck11"));
        let all = Harness::with_filter(None);
        assert!(all.selected("anything"));
    }

    fn record(name: &str, ns_per_event: f64) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            median_ns: 1_000,
            min_ns: 900,
            iters: 10,
            metrics: vec![("ns_per_event".into(), ns_per_event)],
        }
    }

    #[test]
    fn results_json_is_parseable_and_complete() {
        let h = Harness::with_filter(None);
        h.bench_metrics(
            "group/case",
            || 42u64,
            |&v, median| {
                assert!(median.as_nanos() > 0 || v == 42);
                vec![("events".into(), v as f64)]
            },
        );
        let json_text = h.results_json();
        let parsed = json::parse(&json_text).expect("valid JSON");
        let obj = parsed.as_object().expect("object");
        assert_eq!(json::get_str(obj, "version"), Some("dot11-bench/v1"));
        assert!(json_text.contains("\"name\":\"group/case\""));
        assert!(json_text.contains("\"events\":42"));
    }

    #[test]
    fn baseline_gate_flags_only_real_regressions() {
        let baseline = "{\"version\":\"dot11-bench/v1\",\"benches\":[\
             {\"name\":\"a\",\"median_ns\":1,\"min_ns\":1,\"iters\":1,\
              \"metrics\":{\"ns_per_event\":100.0}},\
             {\"name\":\"gone\",\"median_ns\":1,\"min_ns\":1,\"iters\":1,\
              \"metrics\":{\"ns_per_event\":5.0}}]}";
        // Within tolerance: 20% over a 25% gate.
        assert!(check_against_baseline(&[record("a", 120.0)], baseline, 25.0).is_empty());
        // Beyond tolerance: flagged.
        let regressions = check_against_baseline(&[record("a", 130.0)], baseline, 25.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("ns_per_event 130.0 vs baseline 100.0"));
        // Improvements and benches missing on either side never trip it.
        assert!(check_against_baseline(&[record("a", 50.0)], baseline, 25.0).is_empty());
        assert!(check_against_baseline(&[record("new", 9e9)], baseline, 25.0).is_empty());
        // A garbage baseline reports instead of passing silently.
        assert!(!check_against_baseline(&[record("a", 1.0)], "nope", 25.0).is_empty());
    }

    #[test]
    fn missing_gated_rows_are_reported_not_silent() {
        let baseline = "{\"version\":\"dot11-bench/v1\",\"benches\":[\
             {\"name\":\"a\",\"median_ns\":1,\"min_ns\":1,\"iters\":1,\
              \"metrics\":{\"ns_per_event\":100.0}}]}";
        // Present in baseline: not skipped.
        assert!(missing_from_baseline(&[record("a", 90.0)], baseline).is_empty());
        // Gated metric, no baseline row: reported by name.
        assert_eq!(
            missing_from_baseline(&[record("renamed", 90.0)], baseline),
            vec!["renamed".to_owned()]
        );
        // Ungated records don't clutter the skip list.
        let ungated = BenchRecord {
            name: "plain".into(),
            median_ns: 1,
            min_ns: 1,
            iters: 1,
            metrics: vec![("events".into(), 5.0)],
        };
        assert!(missing_from_baseline(&[ungated], baseline).is_empty());
        // Garbage baselines are check_against_baseline's problem.
        assert!(missing_from_baseline(&[record("a", 90.0)], "nope").is_empty());
    }

    fn speed_record(name: &str, sim_ns_per_wall_ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            median_ns: 1_000,
            min_ns: 900,
            iters: 10,
            metrics: vec![("sim_ns_per_wall_ns".into(), sim_ns_per_wall_ns)],
        }
    }

    #[test]
    fn baseline_gate_inverts_for_throughput_metrics() {
        let baseline = "{\"version\":\"dot11-bench/v1\",\"benches\":[\
             {\"name\":\"a\",\"median_ns\":1,\"min_ns\":1,\"iters\":1,\
              \"metrics\":{\"sim_ns_per_wall_ns\":400.0}}]}";
        // sim/wall is higher-is-better: dropping within tolerance passes…
        assert!(check_against_baseline(&[speed_record("a", 320.0)], baseline, 25.0).is_empty());
        // …dropping beyond it is a regression…
        let regressions = check_against_baseline(&[speed_record("a", 250.0)], baseline, 25.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("sim_ns_per_wall_ns 250.0 vs baseline 400.0"));
        // …and going faster never trips it.
        assert!(check_against_baseline(&[speed_record("a", 4000.0)], baseline, 25.0).is_empty());
    }

    #[test]
    fn baseline_gate_watches_structural_fanout_metric() {
        let baseline = "{\"version\":\"dot11-bench/v1\",\"benches\":[\
             {\"name\":\"a\",\"median_ns\":1,\"min_ns\":1,\"iters\":1,\
              \"metrics\":{\"deliveries_per_frame\":31.4}}]}";
        let fanout = |v: f64| BenchRecord {
            name: "a".into(),
            median_ns: 1_000,
            min_ns: 900,
            iters: 10,
            metrics: vec![("deliveries_per_frame".into(), v)],
        };
        // Identical (the metric is deterministic) passes at any tolerance…
        assert!(check_against_baseline(&[fanout(31.4)], baseline, 100.0).is_empty());
        // …losing the culling win (full fan-out) trips even a wide gate.
        let regressions = check_against_baseline(&[fanout(255.0)], baseline, 100.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("deliveries_per_frame"));
    }

    #[test]
    fn baseline_gate_checks_both_metrics_of_one_bench() {
        let baseline = "{\"version\":\"dot11-bench/v1\",\"benches\":[\
             {\"name\":\"a\",\"median_ns\":1,\"min_ns\":1,\"iters\":1,\
              \"metrics\":{\"ns_per_event\":100.0,\"sim_ns_per_wall_ns\":400.0}}]}";
        let mut both = record("a", 200.0);
        both.metrics.push(("sim_ns_per_wall_ns".into(), 100.0));
        let regressions = check_against_baseline(&[both], baseline, 25.0);
        assert_eq!(regressions.len(), 2, "{regressions:?}");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
