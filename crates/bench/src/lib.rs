//! Shared helpers for the testbed benches.
//!
//! The benches live in `benches/`, one Criterion group per paper artifact
//! (see `DESIGN.md` §3). Each group measures the cost of *regenerating*
//! that artifact; the `repro` binary in the workspace root prints the
//! artifacts themselves.

use desim::SimDuration;
use dot11_adhoc::experiments::ExpConfig;

/// The reduced configuration benches run at: 1 s sessions are enough to
/// exercise every code path while keeping Criterion's repeated sampling
/// affordable.
pub fn bench_config() -> ExpConfig {
    ExpConfig {
        seed: 3,
        duration: SimDuration::from_secs(1),
        warmup: SimDuration::from_millis(200),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_short_but_valid() {
        let c = bench_config();
        assert!(c.warmup < c.duration);
        assert_eq!(c.seed, 3, "benches pin the reference channel state");
    }
}
