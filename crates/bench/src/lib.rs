//! Shared helpers for the testbed benches.
//!
//! The benches live in `benches/`, one group per paper artifact (see
//! `DESIGN.md` §3). Each group measures the cost of *regenerating* that
//! artifact; the `repro` binary in the workspace root prints the
//! artifacts themselves.
//!
//! Timing is done by the self-contained [`Harness`] below (the container
//! has no bench framework): each benchmark warms up briefly, then runs
//! timed iterations until a wall-clock budget is spent, and reports the
//! median/min per-iteration time. Pass a substring on the command line to
//! run a subset: `cargo bench --bench engine -- queue`.

use std::time::{Duration, Instant};

use desim::SimDuration;
use dot11_adhoc::experiments::ExpConfig;

/// The reduced configuration benches run at: 1 s sessions are enough to
/// exercise every code path while keeping repeated sampling affordable.
pub fn bench_config() -> ExpConfig {
    ExpConfig {
        seed: 3,
        duration: SimDuration::from_secs(1),
        warmup: SimDuration::from_millis(200),
    }
}

/// A minimal benchmark runner: substring filtering, warm-up, a fixed
/// wall-clock budget per benchmark, median-of-iterations reporting.
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
    max_iters: usize,
}

impl Harness {
    /// Builds a harness from `std::env::args`, ignoring flags (cargo
    /// passes `--bench`); the first free argument is a substring filter
    /// on benchmark names.
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness::with_filter(filter)
    }

    /// Builds a harness with an explicit (optional) name filter.
    pub fn with_filter(filter: Option<String>) -> Harness {
        Harness {
            filter,
            budget: Duration::from_secs(1),
            max_iters: 1_000,
        }
    }

    /// Whether `name` passes the filter.
    pub fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Times `f`, printing one line: name, median and min per-iteration
    /// time, and the iteration count. Always runs at least one timed
    /// iteration, so even multi-second benchmarks report.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        // Warm-up: up to two iterations or 200 ms, whichever first.
        let warm_start = Instant::now();
        for _ in 0..2 {
            std::hint::black_box(f());
            if warm_start.elapsed() > Duration::from_millis(200) {
                break;
            }
        }
        let mut samples = Vec::new();
        let start = Instant::now();
        while samples.len() < self.max_iters
            && (samples.is_empty() || start.elapsed() < self.budget)
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "{name:<44} median {:>10}  min {:>10}  ({} iters)",
            fmt_duration(median),
            fmt_duration(min),
            samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_short_but_valid() {
        let c = bench_config();
        assert!(c.warmup < c.duration);
        assert_eq!(c.seed, 3, "benches pin the reference channel state");
    }

    #[test]
    fn filter_selects_by_substring() {
        let h = Harness::with_filter(Some("queue".into()));
        assert!(h.selected("desim/queue_push_pop_1k"));
        assert!(!h.selected("phy/ber_cck11"));
        let all = Harness::with_filter(None);
        assert!(all.selected("anything"));
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(15)), "15.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
