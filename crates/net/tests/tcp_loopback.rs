//! TCP integration over an in-memory lossy channel.
//!
//! A miniature event loop connects a [`TcpSender`] and [`TcpReceiver`]
//! directly — no radio underneath — with deterministic per-segment loss
//! injection and a fixed one-way latency. This isolates Reno's recovery
//! logic: whatever is dropped, every byte must arrive exactly once and
//! in order, via fast retransmit when the dupack stream allows it and
//! via RTO when it does not.

use std::collections::BinaryHeap;

use desim::{SimDuration, SimTime};
use dot11_net::{FlowId, Packet, Segment, TcpConfig, TcpOutput, TcpReceiver, TcpSender};
use dot11_phy::NodeId;

#[derive(Debug)]
enum Ev {
    /// Data segment arrives at the receiver.
    DataArrives(u64, u32),
    /// ACK arrives at the sender.
    AckArrives(u64),
    /// Sender RTO fires.
    Rto,
    /// Receiver delayed-ACK timer fires.
    Delack,
}

struct Harness {
    queue: BinaryHeap<(std::cmp::Reverse<(u64, u64)>, u64)>,
    events: Vec<Option<Ev>>,
    now: SimTime,
    seq: u64,
    rto_at: Option<u64>,
    delack_at: Option<u64>,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            queue: BinaryHeap::new(),
            events: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rto_at: None,
            delack_at: None,
        }
    }

    fn at(&mut self, t: SimTime, ev: Ev) -> u64 {
        let id = self.events.len() as u64;
        self.events.push(Some(ev));
        self.seq += 1;
        self.queue
            .push((std::cmp::Reverse((t.as_nanos(), self.seq)), id));
        id
    }

    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        while let Some((std::cmp::Reverse((t, _)), id)) = self.queue.pop() {
            if let Some(ev) = self.events[id as usize].take() {
                self.now = SimTime::from_nanos(t);
                return Some((self.now, ev));
            }
        }
        None
    }

    fn cancel(&mut self, id: Option<u64>) {
        if let Some(id) = id {
            self.events[id as usize] = None;
        }
    }
}

/// Runs a transfer with `drop(seq) == true` meaning "lose that data
/// segment's k-th transmission on the wire"; returns
/// (delivered bytes, sender stats, acks sent).
fn run_transfer(
    total_ms: u64,
    mut drop: impl FnMut(u64, u64) -> bool,
) -> (u64, dot11_net::tcp::TcpSenderStats, u64) {
    let latency = SimDuration::from_millis(2);
    let cfg = TcpConfig::new(512);
    let mut tx = TcpSender::new(FlowId(0), NodeId(0), NodeId(1), cfg);
    let mut rx = TcpReceiver::new(FlowId(0), NodeId(1), NodeId(0), cfg);
    let mut h = Harness::new();
    let mut tx_count: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    let mut outs = Vec::new();
    tx.start(SimTime::ZERO, &mut outs);

    loop {
        // Apply sender/receiver outputs.
        for out in outs.drain(..) {
            match out {
                TcpOutput::Send(Packet {
                    seg: Segment::Tcp { seq, ack },
                    payload_bytes,
                    ..
                }) => {
                    let t = h.now + latency;
                    if payload_bytes > 0 {
                        let k = tx_count.entry(seq).and_modify(|k| *k += 1).or_insert(1);
                        if !drop(seq, *k) {
                            h.at(t, Ev::DataArrives(seq, payload_bytes));
                        }
                    } else {
                        h.at(t, Ev::AckArrives(ack));
                    }
                }
                TcpOutput::Send(_) => unreachable!("tcp endpoints emit tcp segments"),
                TcpOutput::ArmRto(d) => {
                    let old = h.rto_at.take();
                    h.cancel(old);
                    let t = h.now + d;
                    h.rto_at = Some(h.at(t, Ev::Rto));
                }
                TcpOutput::CancelRto => {
                    let old = h.rto_at.take();
                    h.cancel(old);
                }
                TcpOutput::ArmDelack(d) => {
                    let old = h.delack_at.take();
                    h.cancel(old);
                    let t = h.now + d;
                    h.delack_at = Some(h.at(t, Ev::Delack));
                }
                TcpOutput::CancelDelack => {
                    let old = h.delack_at.take();
                    h.cancel(old);
                }
            }
        }
        let Some((now, ev)) = h.pop() else { break };
        if now > SimTime::from_millis(total_ms) {
            break;
        }
        match ev {
            Ev::DataArrives(seq, len) => rx.on_segment(seq, len, now, &mut outs),
            Ev::AckArrives(ack) => tx.on_ack(ack, now, &mut outs),
            Ev::Rto => {
                h.rto_at = None;
                tx.on_rto(now, &mut outs);
            }
            Ev::Delack => {
                h.delack_at = None;
                rx.on_delack_timer(now, &mut outs);
            }
        }
    }
    (rx.delivered_bytes(), tx.stats(), rx.stats().acks_sent)
}

#[test]
fn clean_channel_streams_at_line_speed() {
    let (delivered, stats, acks) = run_transfer(1_000, |_, _| false);
    // 2 ms each way → RTT 4 ms; cwnd caps at 32 KiB → ~8 MB/s potential;
    // 1 s of transfer must deliver megabytes.
    assert!(delivered > 2_000_000, "delivered {delivered}");
    assert_eq!(stats.retransmits, 0);
    assert_eq!(stats.timeouts, 0);
    assert!(acks > 1_000);
}

#[test]
fn single_loss_recovers_by_fast_retransmit() {
    // Drop the first transmission of segment 100*512.
    let lost = 100 * 512;
    let (delivered, stats, _) = run_transfer(1_000, |seq, k| seq == lost && k == 1);
    assert!(delivered > 1_000_000);
    assert_eq!(stats.fast_retransmits, 1, "one dupack-triggered recovery");
    assert_eq!(stats.timeouts, 0, "no RTO needed for an isolated loss");
}

#[test]
fn periodic_loss_still_delivers_everything_in_order() {
    // Lose every 50th segment's first transmission.
    let (delivered, stats, _) = run_transfer(2_000, |seq, k| (seq / 512) % 50 == 49 && k == 1);
    assert!(delivered > 500_000, "delivered {delivered}");
    assert!(stats.retransmits > 10);
    // delivered_bytes is rcv_nxt: in-order by construction; the harness
    // also proves no byte was delivered twice because rcv_nxt only moves
    // forward by the segment lengths handed up.
    assert!(
        stats.fast_retransmits * 5 > stats.timeouts,
        "steady window should mostly recover via dupacks: {} fr vs {} rto",
        stats.fast_retransmits,
        stats.timeouts
    );
}

#[test]
fn burst_loss_falls_back_to_rto_and_survives() {
    // Segment 50 loses its first two transmissions (the fast-retransmit
    // copy dies too) and 51/52 lose their first: classic Reno head-of-
    // line blindness. Once every later segment sits buffered at the
    // receiver there are no duplicate ACKs left, so each remaining hole
    // costs one full (backed-off) RTO — ~1.5 s of stall — after which
    // the transfer resumes at line speed.
    let (delivered, stats, _) = run_transfer(8_000, |seq, k| {
        (seq / 512 == 50 && k < 3) || ((51..53).contains(&(seq / 512)) && k < 2)
    });
    assert!(delivered > 2_000_000, "delivered {delivered}");
    assert!(
        stats.timeouts >= 2,
        "RTO-paced hole clearing: {} timeouts",
        stats.timeouts
    );
    assert!(stats.retransmits >= 4);
    assert!(
        stats.fast_retransmits >= 1,
        "the first loss still triggers dupack recovery"
    );
}

#[test]
fn total_blackout_makes_no_progress_but_does_not_panic() {
    // 4 s of dead air: RTOs at ~1 s and ~3 s (1 s initial, then doubled).
    let (delivered, stats, _) = run_transfer(4_000, |_, _| true);
    assert_eq!(delivered, 0);
    assert!(
        stats.timeouts >= 2,
        "RTO backoff keeps retrying: {}",
        stats.timeouts
    );
    assert!(
        stats.segments_sent < 100,
        "exponential backoff bounds the retries"
    );
}
