//! Transport layer and traffic sources for the 802.11b testbed.
//!
//! The paper measures ftp (TCP) and CBR (UDP) applications over 802.11b
//! ad hoc links. This crate provides the matching stack:
//!
//! * a size-accounting packet model with the encapsulation overheads of
//!   the paper's Figure 1 — application payload inside TCP/UDP inside IP
//!   ([`packet`]);
//! * **TCP Reno** — slow start, congestion avoidance, fast
//!   retransmit/recovery, Jacobson/Karn RTO estimation, delayed ACKs —
//!   enough fidelity to reproduce the paper's TCP findings: throughput
//!   below UDP because every data segment also costs a TCP-ACK
//!   transmission on the shared medium, and reduced (but persistent)
//!   unfairness in the four-station scenarios ([`tcp`]);
//! * asymptotic (saturated) and paced CBR sources plus a bulk-transfer
//!   source driving the TCP sender ([`app`]);
//! * a static next-hop routing table for the multi-hop extension
//!   experiments ([`route`]).
//!
//! Packets carry byte *counts*, not byte contents: the simulator needs
//! airtime and header arithmetic, never payload data.

#![warn(missing_docs)]

pub mod app;
pub mod packet;
pub mod route;
pub mod tcp;

pub use app::{CbrSource, SaturatedSource};
pub use packet::{FlowId, Packet, Segment, IP_HEADER_BYTES, TCP_HEADER_BYTES, UDP_HEADER_BYTES};
pub use route::StaticRoutes;
pub use tcp::{TcpConfig, TcpOutput, TcpReceiver, TcpSender};
