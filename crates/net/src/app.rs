//! Application-layer traffic sources.
//!
//! The paper's workloads: a CBR generator over UDP and an asymptotic
//! ("always has packets") source used for both the saturated-UDP and the
//! loss-probe experiments.

use desim::{SimDuration, SimTime};
use dot11_phy::NodeId;

use crate::packet::{FlowId, Packet, Segment};

/// A constant-bit-rate UDP source: one `payload_bytes` datagram every
/// `interval`.
///
/// # Example
///
/// ```
/// use dot11_net::CbrSource;
/// use dot11_phy::NodeId;
/// use desim::{SimDuration, SimTime};
///
/// let mut cbr = CbrSource::new(
///     dot11_net::FlowId(0), NodeId(0), NodeId(1),
///     512, SimDuration::from_millis(10), Some(3),
/// );
/// let (p, next) = cbr.tick(SimTime::ZERO).expect("first packet");
/// assert_eq!(p.payload_bytes, 512);
/// assert_eq!(next, Some(SimTime::ZERO + SimDuration::from_millis(10)));
/// ```
#[derive(Debug, Clone)]
pub struct CbrSource {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    payload_bytes: u32,
    interval: SimDuration,
    limit: Option<u64>,
    next_seq: u64,
}

impl CbrSource {
    /// Creates a CBR source. `limit` bounds the number of datagrams
    /// (`None` = unbounded).
    pub fn new(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        interval: SimDuration,
        limit: Option<u64>,
    ) -> CbrSource {
        CbrSource {
            flow,
            src,
            dst,
            payload_bytes,
            interval,
            limit,
            next_seq: 0,
        }
    }

    /// Datagrams emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Emits the datagram due at `now` and reports when the next one is
    /// due (`None` when the limit is reached).
    pub fn tick(&mut self, now: SimTime) -> Option<(Packet, Option<SimTime>)> {
        if let Some(limit) = self.limit {
            if self.next_seq >= limit {
                return None;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let done = self.limit.is_some_and(|l| self.next_seq >= l);
        let packet = Packet {
            flow: self.flow,
            src: self.src,
            dst: self.dst,
            seg: Segment::Udp { seq },
            payload_bytes: self.payload_bytes,
            sent_at: now,
        };
        let next = if done {
            None
        } else {
            Some(now + self.interval)
        };
        Some((packet, next))
    }
}

/// An asymptotic UDP source: keeps the interface queue topped up so the
/// MAC always has a frame ready — the paper's saturated-CBR condition.
#[derive(Debug, Clone)]
pub struct SaturatedSource {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    payload_bytes: u32,
    /// How many packets to keep queued at the interface.
    backlog: usize,
    next_seq: u64,
}

impl SaturatedSource {
    /// Creates a source that keeps `backlog` datagrams queued.
    pub fn new(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        backlog: usize,
    ) -> SaturatedSource {
        SaturatedSource {
            flow,
            src,
            dst,
            payload_bytes,
            backlog,
            next_seq: 0,
        }
    }

    /// Datagrams emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Appends enough datagrams to `out` to restore the backlog given the
    /// current interface-queue occupancy. Takes the output buffer from the
    /// caller so the per-refill hot path reuses one allocation for the
    /// whole run.
    pub fn refill(&mut self, queued: usize, now: SimTime, out: &mut Vec<Packet>) {
        let want = self.backlog.saturating_sub(queued);
        out.extend((0..want).map(|_| {
            let seq = self.next_seq;
            self.next_seq += 1;
            Packet {
                flow: self.flow,
                src: self.src,
                dst: self.dst,
                seg: Segment::Udp { seq },
                payload_bytes: self.payload_bytes,
                sent_at: now,
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_paces_and_numbers_datagrams() {
        let mut cbr = CbrSource::new(
            FlowId(1),
            NodeId(0),
            NodeId(1),
            512,
            SimDuration::from_millis(5),
            None,
        );
        let (p0, n0) = cbr.tick(SimTime::ZERO).expect("packet");
        let (p1, _) = cbr.tick(n0.expect("next due")).expect("packet");
        assert_eq!((p0.payload_bytes, p1.payload_bytes), (512, 512));
        assert!(matches!(p0.seg, Segment::Udp { seq: 0 }));
        assert!(matches!(p1.seg, Segment::Udp { seq: 1 }));
        assert_eq!(cbr.emitted(), 2);
    }

    #[test]
    fn cbr_limit_stops_the_source() {
        let mut cbr = CbrSource::new(
            FlowId(1),
            NodeId(0),
            NodeId(1),
            100,
            SimDuration::from_millis(1),
            Some(2),
        );
        let (_, n0) = cbr.tick(SimTime::ZERO).expect("packet 0");
        assert!(n0.is_some());
        let (_, n1) = cbr.tick(n0.expect("due")).expect("packet 1");
        assert_eq!(n1, None, "limit reached: no next tick");
        assert!(cbr.tick(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn saturated_source_tops_up_to_backlog() {
        let mut s = SaturatedSource::new(FlowId(0), NodeId(0), NodeId(1), 512, 5);
        let mut first = Vec::new();
        s.refill(0, SimTime::ZERO, &mut first);
        assert_eq!(first.len(), 5);
        let mut again = Vec::new();
        s.refill(5, SimTime::ZERO, &mut again);
        assert!(again.is_empty());
        let mut partial = Vec::new();
        s.refill(3, SimTime::ZERO, &mut partial);
        assert_eq!(partial.len(), 2);
        // Sequence numbers are continuous across refills.
        let seqs: Vec<u64> = first
            .iter()
            .chain(partial.iter())
            .map(|p| match p.seg {
                Segment::Udp { seq } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, (0..7).collect::<Vec<_>>());
        assert_eq!(s.emitted(), 7);
    }
}
