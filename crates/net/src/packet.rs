//! The size-accounting packet model (the paper's Figure 1 encapsulation).

use desim::SimTime;
use dot11_phy::NodeId;

/// IPv4 header, bytes (no options).
pub const IP_HEADER_BYTES: u32 = 20;
/// UDP header, bytes.
pub const UDP_HEADER_BYTES: u32 = 8;
/// TCP header, bytes (no options).
pub const TCP_HEADER_BYTES: u32 = 20;

/// Identifier of an end-to-end flow (one sender/receiver session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u32);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// Transport-layer content of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// A UDP datagram, numbered by the source for loss accounting.
    Udp {
        /// Datagram sequence number (source-assigned, starting at 0).
        seq: u64,
    },
    /// A TCP segment (data, pure ACK, or both roles use the same shape).
    Tcp {
        /// Sequence number of the first payload byte.
        seq: u64,
        /// Cumulative acknowledgement number.
        ack: u64,
    },
}

/// A network-layer packet in flight.
///
/// # Example
///
/// ```
/// use dot11_net::{FlowId, Packet, Segment};
/// use dot11_phy::NodeId;
/// use desim::SimTime;
///
/// let p = Packet {
///     flow: FlowId(0),
///     src: NodeId(0),
///     dst: NodeId(1),
///     seg: Segment::Udp { seq: 0 },
///     payload_bytes: 512,
///     sent_at: SimTime::ZERO,
/// };
/// // 512 B of application data costs 512 + 8 (UDP) + 20 (IP) on the wire.
/// assert_eq!(p.wire_bytes(), 540);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Source station.
    pub src: NodeId,
    /// Destination station.
    pub dst: NodeId,
    /// Transport content.
    pub seg: Segment,
    /// Application payload bytes carried.
    pub payload_bytes: u32,
    /// When the transport layer emitted it (RTT sampling, delay stats).
    pub sent_at: SimTime,
}

impl Packet {
    /// The network-layer size handed to the MAC: payload + transport
    /// header + IP header.
    pub fn wire_bytes(&self) -> u32 {
        let transport = match self.seg {
            Segment::Udp { .. } => UDP_HEADER_BYTES,
            Segment::Tcp { .. } => TCP_HEADER_BYTES,
        };
        self.payload_bytes + transport + IP_HEADER_BYTES
    }

    /// True for a TCP segment that carries no payload (a pure ACK).
    pub fn is_pure_ack(&self) -> bool {
        matches!(self.seg, Segment::Tcp { .. }) && self.payload_bytes == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udp(payload: u32) -> Packet {
        Packet {
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            seg: Segment::Udp { seq: 3 },
            payload_bytes: payload,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn udp_wire_size_is_figure1_encapsulation() {
        assert_eq!(udp(512).wire_bytes(), 512 + 8 + 20);
        assert_eq!(udp(1024).wire_bytes(), 1024 + 28);
        assert_eq!(udp(0).wire_bytes(), 28);
    }

    #[test]
    fn tcp_wire_size_and_pure_ack() {
        let data = Packet {
            seg: Segment::Tcp { seq: 0, ack: 0 },
            payload_bytes: 512,
            ..udp(0)
        };
        assert_eq!(data.wire_bytes(), 512 + 20 + 20);
        assert!(!data.is_pure_ack());
        let ack = Packet {
            seg: Segment::Tcp { seq: 0, ack: 512 },
            payload_bytes: 0,
            ..udp(0)
        };
        assert_eq!(ack.wire_bytes(), 40);
        assert!(ack.is_pure_ack());
        assert!(!udp(0).is_pure_ack(), "UDP is never a TCP ACK");
    }
}
