//! Static routing for multi-hop ad hoc topologies.
//!
//! The paper's introduction motivates multi-hop ad hoc networking —
//! "the addition of routing mechanisms at stations so that they can
//! forward packets towards the intended destination" — and measures only
//! the single-hop building block. This module provides the static
//! routing substrate the multi-hop extension experiments use: the
//! test-bed equivalent of manually configured routes over a static
//! topology (no route discovery — the paper's scenarios are static by
//! design, precisely to exclude route recomputation effects).

use std::collections::HashMap;

use dot11_phy::NodeId;

/// A static next-hop table: `(at, final destination) → next hop`.
///
/// # Example
///
/// ```
/// use dot11_net::StaticRoutes;
/// use dot11_phy::NodeId;
///
/// // A 4-station chain: 0 - 1 - 2 - 3.
/// let routes = StaticRoutes::chain(4);
/// assert_eq!(routes.next_hop(NodeId(0), NodeId(3)), Some(NodeId(1)));
/// assert_eq!(routes.next_hop(NodeId(2), NodeId(3)), Some(NodeId(3)));
/// assert_eq!(routes.next_hop(NodeId(3), NodeId(0)), Some(NodeId(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticRoutes {
    hops: HashMap<(NodeId, NodeId), NodeId>,
}

impl StaticRoutes {
    /// An empty table (every destination is assumed directly reachable).
    pub fn new() -> StaticRoutes {
        StaticRoutes {
            hops: HashMap::new(),
        }
    }

    /// Routes for a linear chain of `n` stations (ids `0..n`): packets
    /// step one station at a time toward the destination, both ways.
    pub fn chain(n: u32) -> StaticRoutes {
        let mut r = StaticRoutes::new();
        for at in 0..n {
            for dst in 0..n {
                if at == dst {
                    continue;
                }
                let via = if dst > at { at + 1 } else { at - 1 };
                r.add(NodeId(at), NodeId(dst), NodeId(via));
            }
        }
        r
    }

    /// Adds (or replaces) the route `at → dst via next`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate routes (`at == dst`, `next == at`).
    pub fn add(&mut self, at: NodeId, dst: NodeId, next: NodeId) -> &mut StaticRoutes {
        assert_ne!(at, dst, "route to self");
        assert_ne!(next, at, "route via self");
        self.hops.insert((at, dst), next);
        self
    }

    /// The configured next hop from `at` toward `dst`, if any. `None`
    /// means "deliver directly" (single-hop assumption).
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        self.hops.get(&(at, dst)).copied()
    }

    /// Number of configured entries.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if no routes are configured.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_routes_step_one_hop_at_a_time() {
        let r = StaticRoutes::chain(5);
        // Forward direction.
        assert_eq!(r.next_hop(NodeId(0), NodeId(4)), Some(NodeId(1)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(4)), Some(NodeId(2)));
        assert_eq!(r.next_hop(NodeId(3), NodeId(4)), Some(NodeId(4)));
        // Reverse direction (TCP ACKs travel it).
        assert_eq!(r.next_hop(NodeId(4), NodeId(0)), Some(NodeId(3)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(0)), Some(NodeId(0)));
        // Adjacent stations deliver directly: chain() stores the direct
        // hop explicitly.
        assert_eq!(r.next_hop(NodeId(2), NodeId(3)), Some(NodeId(3)));
    }

    #[test]
    fn unknown_pairs_mean_direct_delivery() {
        let r = StaticRoutes::new();
        assert_eq!(r.next_hop(NodeId(0), NodeId(9)), None);
        assert!(r.is_empty());
    }

    #[test]
    fn manual_routes_override() {
        let mut r = StaticRoutes::chain(3);
        let before = r.len();
        r.add(NodeId(0), NodeId(2), NodeId(1)); // same as chain
        assert_eq!(r.len(), before);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "route to self")]
    fn self_route_panics() {
        StaticRoutes::new().add(NodeId(1), NodeId(1), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "route via self")]
    fn via_self_panics() {
        StaticRoutes::new().add(NodeId(1), NodeId(2), NodeId(1));
    }
}
