//! Static routing for multi-hop ad hoc topologies.
//!
//! The paper's introduction motivates multi-hop ad hoc networking —
//! "the addition of routing mechanisms at stations so that they can
//! forward packets towards the intended destination" — and measures only
//! the single-hop building block. This module provides the static
//! routing substrate the multi-hop extension experiments use: the
//! test-bed equivalent of manually configured routes over a static
//! topology (no route discovery — the paper's scenarios are static by
//! design, precisely to exclude route recomputation effects).

use std::collections::HashMap;

use dot11_phy::NodeId;

/// A static next-hop table: `(at, final destination) → next hop`.
///
/// Chain routes are stored in closed form rather than as `n·(n−1)`
/// individual entries: on a chain the next hop toward any destination is
/// just the adjacent station in that direction, so [`StaticRoutes::chain`]
/// records only `n` and [`StaticRoutes::next_hop`] computes the hop in
/// O(1). That keeps building an `n = 4096` chain scenario O(1) instead of
/// ~16.8 million hash inserts, while manual [`StaticRoutes::add`] entries
/// still override the closed form pair-by-pair.
///
/// # Example
///
/// ```
/// use dot11_net::StaticRoutes;
/// use dot11_phy::NodeId;
///
/// // A 4-station chain: 0 - 1 - 2 - 3.
/// let routes = StaticRoutes::chain(4);
/// assert_eq!(routes.next_hop(NodeId(0), NodeId(3)), Some(NodeId(1)));
/// assert_eq!(routes.next_hop(NodeId(2), NodeId(3)), Some(NodeId(3)));
/// assert_eq!(routes.next_hop(NodeId(3), NodeId(0)), Some(NodeId(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticRoutes {
    hops: HashMap<(NodeId, NodeId), NodeId>,
    /// Closed-form chain overlay: stations `0..chain_n` route one hop at
    /// a time toward the destination (0 = no chain).
    chain_n: u32,
    /// Manual entries that override a pair the chain overlay also covers
    /// (counted so [`StaticRoutes::len`] does not double-count them).
    shadowed: usize,
}

impl StaticRoutes {
    /// An empty table (every destination is assumed directly reachable).
    pub fn new() -> StaticRoutes {
        StaticRoutes::default()
    }

    /// Routes for a linear chain of `n` stations (ids `0..n`): packets
    /// step one station at a time toward the destination, both ways.
    /// Stored in closed form — construction is O(1) in `n`.
    pub fn chain(n: u32) -> StaticRoutes {
        StaticRoutes {
            hops: HashMap::new(),
            chain_n: n,
            shadowed: 0,
        }
    }

    /// The chain overlay's hop for `at → dst`, if the overlay covers the
    /// pair: identical to what the per-pair table built by the pre-
    /// closed-form `chain()` held (see the equivalence test).
    fn chain_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        if at != dst && at.0 < self.chain_n && dst.0 < self.chain_n {
            Some(NodeId(if dst.0 > at.0 { at.0 + 1 } else { at.0 - 1 }))
        } else {
            None
        }
    }

    /// Number of `(at, dst)` pairs the chain overlay covers.
    fn chain_pair_count(&self) -> usize {
        let n = self.chain_n as usize;
        n * n.saturating_sub(1)
    }

    /// Adds (or replaces) the route `at → dst via next`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate routes (`at == dst`, `next == at`).
    pub fn add(&mut self, at: NodeId, dst: NodeId, next: NodeId) -> &mut StaticRoutes {
        assert_ne!(at, dst, "route to self");
        assert_ne!(next, at, "route via self");
        match self.chain_hop(at, dst) {
            // Re-stating what the chain overlay already implies drops any
            // manual override, so the last `add` wins exactly as it did
            // when every pair was a map entry.
            Some(implied) if implied == next => {
                if self.hops.remove(&(at, dst)).is_some() {
                    self.shadowed -= 1;
                }
            }
            implied => {
                if self.hops.insert((at, dst), next).is_none() && implied.is_some() {
                    self.shadowed += 1;
                }
            }
        }
        self
    }

    /// The configured next hop from `at` toward `dst`, if any. `None`
    /// means "deliver directly" (single-hop assumption). Manual entries
    /// take precedence over the chain overlay.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<NodeId> {
        if !self.hops.is_empty() {
            if let Some(next) = self.hops.get(&(at, dst)) {
                return Some(*next);
            }
        }
        self.chain_hop(at, dst)
    }

    /// Number of configured `(at, dst)` pairs (chain-overlay pairs
    /// included, each counted once even when manually overridden).
    pub fn len(&self) -> usize {
        self.chain_pair_count() + self.hops.len() - self.shadowed
    }

    /// True if no routes are configured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_routes_step_one_hop_at_a_time() {
        let r = StaticRoutes::chain(5);
        // Forward direction.
        assert_eq!(r.next_hop(NodeId(0), NodeId(4)), Some(NodeId(1)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(4)), Some(NodeId(2)));
        assert_eq!(r.next_hop(NodeId(3), NodeId(4)), Some(NodeId(4)));
        // Reverse direction (TCP ACKs travel it).
        assert_eq!(r.next_hop(NodeId(4), NodeId(0)), Some(NodeId(3)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(0)), Some(NodeId(0)));
        // Adjacent stations deliver directly: chain() covers the direct
        // hop explicitly.
        assert_eq!(r.next_hop(NodeId(2), NodeId(3)), Some(NodeId(3)));
    }

    /// The closed-form chain must be indistinguishable from the per-pair
    /// table the old `chain()` built with n·(n−1) `add` calls — same
    /// hops, same misses outside the chain, same `len`.
    #[test]
    fn chain_closed_form_matches_per_pair_table() {
        let n = 7u32;
        let closed = StaticRoutes::chain(n);
        let mut table = StaticRoutes::new();
        for at in 0..n {
            for dst in 0..n {
                if at == dst {
                    continue;
                }
                let via = if dst > at { at + 1 } else { at - 1 };
                table.add(NodeId(at), NodeId(dst), NodeId(via));
            }
        }
        assert_eq!(closed.len(), table.len());
        for at in 0..n + 2 {
            for dst in 0..n + 2 {
                assert_eq!(
                    closed.next_hop(NodeId(at), NodeId(dst)),
                    table.next_hop(NodeId(at), NodeId(dst)),
                    "{at} -> {dst}"
                );
            }
        }
    }

    #[test]
    fn unknown_pairs_mean_direct_delivery() {
        let r = StaticRoutes::new();
        assert_eq!(r.next_hop(NodeId(0), NodeId(9)), None);
        assert!(r.is_empty());
        // Off-chain ids fall back to direct delivery too.
        let c = StaticRoutes::chain(3);
        assert_eq!(c.next_hop(NodeId(3), NodeId(0)), None);
        assert_eq!(c.next_hop(NodeId(0), NodeId(3)), None);
        assert!(!c.is_empty());
    }

    #[test]
    fn manual_routes_override() {
        let mut r = StaticRoutes::chain(3);
        let before = r.len();
        r.add(NodeId(0), NodeId(2), NodeId(1)); // same as chain
        assert_eq!(r.len(), before);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
        // A genuinely different next hop replaces the chain's, without
        // changing the number of configured pairs.
        r.add(NodeId(0), NodeId(2), NodeId(2));
        assert_eq!(r.len(), before);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(NodeId(2)));
        // Re-adding the override is idempotent.
        r.add(NodeId(0), NodeId(2), NodeId(2));
        assert_eq!(r.len(), before);
        // Pairs outside the chain extend the table as before.
        r.add(NodeId(0), NodeId(7), NodeId(1));
        assert_eq!(r.len(), before + 1);
        // Restoring the chain's own hop discards the override (last add
        // wins), leaving the pair count intact.
        r.add(NodeId(0), NodeId(2), NodeId(1));
        assert_eq!(r.len(), before + 1);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "route to self")]
    fn self_route_panics() {
        StaticRoutes::new().add(NodeId(1), NodeId(1), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "route via self")]
    fn via_self_panics() {
        StaticRoutes::new().add(NodeId(1), NodeId(2), NodeId(1));
    }
}
