//! Retransmission-timeout estimation (Jacobson/Karn, RFC 6298 shape).

use desim::SimDuration;

/// SRTT/RTTVAR smoothing and the RTO it implies.
///
/// # Example
///
/// ```
/// use dot11_net::tcp::RtoEstimator;
/// use desim::SimDuration;
///
/// let mut est = RtoEstimator::new(
///     SimDuration::from_secs(1),
///     SimDuration::from_millis(200),
///     SimDuration::from_secs(60),
/// );
/// est.on_sample(SimDuration::from_millis(10));
/// // First sample: SRTT = 10 ms, RTTVAR = 5 ms, RTO clamps to min 200 ms.
/// assert_eq!(est.rto(), SimDuration::from_millis(200));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RtoEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    /// Exponential backoff multiplier applied after timeouts, cleared by
    /// the next valid sample.
    backoff: u32,
}

impl RtoEstimator {
    /// Creates an estimator with no samples yet.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial_rto,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Incorporates a round-trip sample (from an un-retransmitted segment,
    /// per Karn's algorithm — the caller enforces that).
    pub fn on_sample(&mut self, sample: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let err = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - sample|
                self.rttvar = (self.rttvar * 3 + err) / 4;
                // SRTT = 7/8 SRTT + 1/8 sample
                self.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
        self.backoff = 0;
        let base = self.srtt.expect("just set") + self.rttvar * 4;
        self.rto = clamp(base, self.min_rto, self.max_rto);
    }

    /// Doubles the timeout after an expiry (Karn backoff).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(10);
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        let scaled = self.rto * (1u64 << self.backoff.min(10));
        clamp(scaled, self.min_rto, self.max_rto)
    }

    /// The smoothed round-trip time, if any sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }
}

fn clamp(v: SimDuration, lo: SimDuration, hi: SimDuration) -> SimDuration {
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RtoEstimator {
        RtoEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        assert_eq!(est().rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn smoothing_converges_toward_stable_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(50));
        }
        let srtt = e.srtt().expect("samples seen");
        assert!((srtt.as_micros() as i64 - 50_000).abs() < 1_000);
        // Variance decays, so RTO approaches the floor.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn timeout_backoff_doubles_and_sample_resets() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100)); // RTO 300 ms
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(1_200));
        e.on_sample(SimDuration::from_millis(100));
        assert!(
            e.rto() < SimDuration::from_millis(600),
            "backoff cleared by sample"
        );
    }

    #[test]
    fn rto_respects_bounds() {
        let mut e = est();
        e.on_sample(SimDuration::from_micros(500)); // tiny RTT
        assert_eq!(e.rto(), SimDuration::from_millis(200), "min clamp");
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60), "max clamp");
    }
}
