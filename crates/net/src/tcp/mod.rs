//! TCP Reno: sender, receiver, and RTO estimation.
//!
//! The connection model matches what the paper's test-bed ran (ftp over
//! the Linux stack of 2002) at the fidelity the measurements depend on:
//!
//! * window-based self-clocking — the data rate is set by returning ACKs
//!   crossing the same radio channel, which is why the paper's TCP
//!   throughput sits visibly below UDP;
//! * Reno loss recovery (triple-dupack fast retransmit + fast recovery,
//!   RTO with exponential backoff) — MAC-level drops after retry
//!   exhaustion look like congestion losses and halve the window, which
//!   is how the four-station unfairness softens under TCP;
//! * delayed ACKs (every 2nd segment or a 40 ms timeout).
//!
//! Connections start established (no handshake) and carry data one way;
//! the reverse path carries pure ACKs. This mirrors the paper's
//! unidirectional ftp sessions.

mod receiver;
mod rto;
mod sender;

pub use receiver::{TcpReceiver, TcpReceiverStats};
pub use rto::RtoEstimator;
pub use sender::{TcpSender, TcpSenderStats};

use desim::SimDuration;

use crate::packet::Packet;

/// Tuning of one TCP connection.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size: application payload bytes per data segment.
    /// The paper's experiments use 512-byte application packets.
    pub mss: u32,
    /// Initial congestion window, bytes.
    pub initial_cwnd: u32,
    /// Initial slow-start threshold, bytes.
    pub initial_ssthresh: u32,
    /// Receiver advertised window, bytes (2002-era Linux default: 32 KiB).
    pub recv_window: u32,
    /// Duplicate ACKs triggering fast retransmit.
    pub dupack_threshold: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
    /// RTO before the first RTT sample.
    pub initial_rto: SimDuration,
    /// Delayed-ACK: acknowledge every `ack_every`-th in-order segment…
    pub ack_every: u32,
    /// …or after this timeout, whichever comes first.
    pub delack_timeout: SimDuration,
}

impl TcpConfig {
    /// Defaults for an `mss`-byte-payload connection.
    pub fn new(mss: u32) -> TcpConfig {
        TcpConfig {
            mss,
            initial_cwnd: 2 * mss,
            initial_ssthresh: 64 * 1024,
            recv_window: 32 * 1024,
            dupack_threshold: 3,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
            ack_every: 2,
            delack_timeout: SimDuration::from_millis(40),
        }
    }
}

/// What a TCP endpoint asks its host to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOutput {
    /// Hand this packet to the interface (MAC) queue.
    Send(Packet),
    /// (Re)arm the retransmission timer.
    ArmRto(SimDuration),
    /// Cancel the retransmission timer.
    CancelRto,
    /// Arm the delayed-ACK timer.
    ArmDelack(SimDuration),
    /// Cancel the delayed-ACK timer.
    CancelDelack,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_scale_with_mss() {
        let c = TcpConfig::new(512);
        assert_eq!(c.initial_cwnd, 1024);
        assert_eq!(c.recv_window, 32 * 1024);
        assert_eq!(c.dupack_threshold, 3);
        assert!(c.min_rto < c.initial_rto && c.initial_rto < c.max_rto);
    }
}
