//! The TCP Reno sending endpoint (bulk transfer: data never runs out).

use desim::SimTime;
use dot11_phy::NodeId;
use dot11_trace::{NullSink, TraceRecord, TraceSink};

use crate::packet::{FlowId, Packet, Segment};
use crate::tcp::rto::RtoEstimator;
use crate::tcp::{TcpConfig, TcpOutput};

/// Cumulative sender-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpSenderStats {
    /// Data segments emitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Triple-dupack fast retransmits.
    pub fast_retransmits: u64,
}

/// A Reno bulk-data sender.
///
/// The application always has data (the paper's asymptotic ftp), so the
/// sender is driven purely by ACKs and timer events:
/// [`TcpSender::start`] opens the flow, [`TcpSender::on_ack`] processes a
/// cumulative acknowledgement, [`TcpSender::on_rto`] handles a timeout.
/// All three append [`TcpOutput`]s for the host to execute.
#[derive(Debug)]
pub struct TcpSender<S: TraceSink = NullSink> {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    cfg: TcpConfig,
    sink: S,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    /// Last (cwnd, ssthresh) emitted as a trace record, for deduplication.
    traced_window: (u64, u64),
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    rto: RtoEstimator,
    /// Karn timing: (ack number that validates the sample, send time).
    timed: Option<(u64, SimTime)>,
    stats: TcpSenderStats,
}

impl TcpSender {
    /// Creates an established connection ready to send `src → dst`.
    pub fn new(flow: FlowId, src: NodeId, dst: NodeId, cfg: TcpConfig) -> TcpSender {
        TcpSender::with_sink(flow, src, dst, cfg, NullSink)
    }
}

impl<S: TraceSink> TcpSender<S> {
    /// Like [`TcpSender::new`], but transport-layer events are also
    /// emitted into `sink`.
    pub fn with_sink(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        cfg: TcpConfig,
        sink: S,
    ) -> TcpSender<S> {
        TcpSender {
            flow,
            src,
            dst,
            sink,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: cfg.initial_cwnd as f64,
            ssthresh: cfg.initial_ssthresh as f64,
            traced_window: (cfg.initial_cwnd as u64, cfg.initial_ssthresh as u64),
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            rto: RtoEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto),
            timed: None,
            stats: TcpSenderStats::default(),
            cfg,
        }
    }

    /// Emits a [`TraceRecord::TcpCwndChange`] if the window moved since
    /// the last emission.
    fn trace_window(&mut self, now: SimTime) {
        if S::ENABLED {
            let window = (self.cwnd as u64, self.ssthresh as u64);
            if window != self.traced_window {
                self.traced_window = window;
                self.sink.record(
                    now,
                    &TraceRecord::TcpCwndChange {
                        node: self.src.0,
                        flow: self.flow.0,
                        cwnd: window.0,
                        ssthresh: window.1,
                    },
                );
            }
        }
    }

    /// Sender statistics.
    pub fn stats(&self) -> TcpSenderStats {
        self.stats
    }

    /// Current congestion window, bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current slow-start threshold, bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh as u64
    }

    /// Bytes in flight.
    pub fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Highest cumulative ACK received.
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// True while loss recovery is in progress.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Opens the flow: emits the initial window and arms the RTO.
    pub fn start(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.pump(now, out);
        out.push(TcpOutput::ArmRto(self.rto.rto()));
    }

    /// Processes a cumulative acknowledgement.
    pub fn on_ack(&mut self, ack: u64, now: SimTime, out: &mut Vec<TcpOutput>) {
        if ack > self.snd_nxt {
            debug_assert!(false, "ack {ack} beyond snd_nxt {}", self.snd_nxt);
            return;
        }
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            if let Some((expected, sent_at)) = self.timed {
                if ack >= expected {
                    self.rto.on_sample(now - sent_at);
                    self.timed = None;
                }
            }
            let mss = self.cfg.mss as f64;
            if self.in_recovery {
                if ack >= self.recover {
                    // Full recovery: deflate to ssthresh.
                    self.in_recovery = false;
                    self.dup_acks = 0;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: the next hole is already lost —
                    // retransmit it and stay in recovery.
                    self.retransmit_head(now, out);
                    self.cwnd = (self.cwnd - newly as f64 + mss).max(mss);
                }
            } else {
                self.dup_acks = 0;
                if self.cwnd < self.ssthresh {
                    self.cwnd += (newly as f64).min(mss); // slow start
                } else {
                    self.cwnd += mss * mss / self.cwnd; // congestion avoidance
                }
            }
            self.cwnd = self.cwnd.min(self.cfg.recv_window as f64);
            if self.snd_una == self.snd_nxt {
                out.push(TcpOutput::CancelRto);
            } else {
                out.push(TcpOutput::ArmRto(self.rto.rto()));
            }
            self.trace_window(now);
            self.pump(now, out);
        } else if ack == self.snd_una && self.flight_size() > 0 {
            self.dup_acks += 1;
            let mss = self.cfg.mss as f64;
            if self.in_recovery {
                // Window inflation keeps the pipe full during recovery.
                self.cwnd = (self.cwnd + mss).min(self.cfg.recv_window as f64 + 3.0 * mss);
                self.pump(now, out);
            } else if self.dup_acks == self.cfg.dupack_threshold {
                self.stats.fast_retransmits += 1;
                self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0 * mss);
                self.cwnd = self.ssthresh + self.cfg.dupack_threshold as f64 * mss;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.retransmit_head(now, out);
                out.push(TcpOutput::ArmRto(self.rto.rto()));
            }
            self.trace_window(now);
        }
    }

    /// The retransmission timer expired.
    pub fn on_rto(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        if self.flight_size() == 0 {
            return; // stale timer
        }
        self.stats.timeouts += 1;
        if S::ENABLED {
            self.sink.record(
                now,
                &TraceRecord::TcpRto {
                    node: self.src.0,
                    flow: self.flow.0,
                },
            );
        }
        let mss = self.cfg.mss as f64;
        self.ssthresh = (self.flight_size() as f64 / 2.0).max(2.0 * mss);
        self.cwnd = mss;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.rto.on_timeout();
        self.trace_window(now);
        self.retransmit_head(now, out);
        out.push(TcpOutput::ArmRto(self.rto.rto()));
    }

    fn retransmit_head(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.stats.retransmits += 1;
        // Karn: a retransmitted range can no longer time the RTT.
        self.timed = None;
        let seg = self.make_segment(self.snd_una, now, true);
        out.push(TcpOutput::Send(seg));
    }

    /// Emits as many new segments as the window allows.
    fn pump(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        let wnd = (self.cwnd as u64).min(self.cfg.recv_window as u64);
        while self.snd_nxt + self.cfg.mss as u64 <= self.snd_una + wnd {
            let seq = self.snd_nxt;
            self.snd_nxt += self.cfg.mss as u64;
            if self.timed.is_none() {
                self.timed = Some((self.snd_nxt, now));
            }
            let seg = self.make_segment(seq, now, false);
            out.push(TcpOutput::Send(seg));
        }
    }

    fn make_segment(&mut self, seq: u64, now: SimTime, retransmit: bool) -> Packet {
        self.stats.segments_sent += 1;
        if S::ENABLED {
            self.sink.record(
                now,
                &TraceRecord::TcpSend {
                    node: self.src.0,
                    flow: self.flow.0,
                    seq,
                    bytes: self.cfg.mss,
                    retransmit,
                },
            );
        }
        Packet {
            flow: self.flow,
            src: self.src,
            dst: self.dst,
            seg: Segment::Tcp { seq, ack: 0 },
            payload_bytes: self.cfg.mss,
            sent_at: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    fn sender() -> TcpSender {
        TcpSender::new(FlowId(0), NodeId(0), NodeId(1), TcpConfig::new(512))
    }

    fn sent(out: &[TcpOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TcpOutput::Send(p) => match p.seg {
                    Segment::Tcp { seq, .. } => Some(seq),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn start_emits_initial_window() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start(at(0), &mut out);
        assert_eq!(sent(&out), vec![0, 512], "initial cwnd = 2 MSS");
        assert!(out.iter().any(|o| matches!(o, TcpOutput::ArmRto(_))));
        assert_eq!(s.flight_size(), 1024);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start(at(0), &mut out);
        out.clear();
        s.on_ack(512, at(10), &mut out);
        // cwnd 2→3 MSS: one ACKed segment frees one slot, growth adds one.
        assert_eq!(sent(&out), vec![1024, 1536]);
        out.clear();
        s.on_ack(1024, at(12), &mut out);
        assert_eq!(sent(&out), vec![2048, 2560]);
        assert_eq!(s.cwnd(), 4 * 512);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start(at(0), &mut out);
        // Force CA: set ssthresh below cwnd via a fast retransmit episode…
        // simpler: drive cwnd past initial_ssthresh artificially by acks.
        // initial_ssthresh is 64 KiB, so emulate CA by checking the growth
        // formula directly after many RTTs of slow start is impractical;
        // instead verify the increment arithmetic.
        let before = s.cwnd;
        s.ssthresh = 512.0; // now in CA
        out.clear();
        s.on_ack(512, at(5), &mut out);
        let expect = before + 512.0 * 512.0 / before;
        assert!((s.cwnd - expect).abs() < 1e-9);
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit_and_recovery() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start(at(0), &mut out);
        // Grow the window a little.
        s.on_ack(512, at(5), &mut out);
        s.on_ack(1024, at(6), &mut out);
        let flight_before = s.flight_size();
        out.clear();
        for _ in 0..3 {
            s.on_ack(1024, at(7), &mut out);
        }
        assert_eq!(s.stats().fast_retransmits, 1);
        assert!(s.in_recovery());
        assert_eq!(sent(&out), vec![1024], "head of window retransmitted");
        assert_eq!(s.ssthresh(), (flight_before / 2).max(1024));
        // Recovery exits and deflates on a full ACK.
        out.clear();
        let recover_point = s.recover;
        s.on_ack(recover_point, at(20), &mut out);
        assert!(!s.in_recovery());
        assert_eq!(s.cwnd(), s.ssthresh());
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start(at(0), &mut out);
        for k in 1..=6 {
            s.on_ack(512 * k, at(4 + k), &mut out);
        }
        out.clear();
        for _ in 0..3 {
            s.on_ack(512 * 6, at(11), &mut out);
        }
        assert!(s.in_recovery());
        out.clear();
        // Partial ACK: one segment past the loss, still below recover.
        s.on_ack(512 * 7, at(15), &mut out);
        assert!(s.in_recovery(), "partial ack keeps recovery");
        assert_eq!(sent(&out), vec![512 * 7], "next hole retransmitted");
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start(at(0), &mut out);
        s.on_ack(512, at(5), &mut out);
        out.clear();
        s.on_rto(at(1200), &mut out);
        assert_eq!(s.cwnd(), 512, "cwnd collapses to 1 MSS");
        assert_eq!(s.stats().timeouts, 1);
        assert_eq!(sent(&out), vec![512], "head retransmitted");
        // The re-armed RTO is backed off (doubled).
        let armed = out.iter().find_map(|o| match o {
            TcpOutput::ArmRto(d) => Some(*d),
            _ => None,
        });
        let d = armed.expect("rto armed");
        assert!(
            d >= SimDuration::from_millis(400),
            "backoff expected, got {d}"
        );
    }

    #[test]
    fn stale_rto_with_nothing_in_flight_is_ignored() {
        // A bulk sender only has an empty flight before `start`; a timer
        // that fires then (cancellation raced the expiry) must be a no-op.
        let mut s = sender();
        let mut out = Vec::new();
        s.on_rto(at(2000), &mut out);
        assert!(out.is_empty());
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn window_never_exceeds_recv_window() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start(at(0), &mut out);
        // Ack everything in big strides for a while.
        for k in 1..200u64 {
            let target = (k * 2048).min(s.snd_nxt);
            s.on_ack(target, at(k), &mut out);
        }
        assert!(s.cwnd() <= 32 * 1024);
        assert!(s.flight_size() <= 32 * 1024);
    }

    #[test]
    fn rtt_sample_updates_estimator_only_for_clean_segments() {
        let mut s = sender();
        let mut out = Vec::new();
        s.start(at(0), &mut out);
        s.on_ack(512, at(50), &mut out); // 50 ms sample
                                         // RTO = srtt + 4*rttvar = 50 + 100 = 150 → clamped to 200 ms.
        let armed = out.iter().rev().find_map(|o| match o {
            TcpOutput::ArmRto(d) => Some(*d),
            _ => None,
        });
        assert_eq!(armed, Some(SimDuration::from_millis(200)));
    }
}
