//! The TCP receiving endpoint: reassembly and (delayed) ACK generation.

use std::collections::BTreeMap;

use desim::SimTime;
use dot11_phy::NodeId;

use crate::packet::{FlowId, Packet, Segment};
use crate::tcp::{TcpConfig, TcpOutput};

/// Cumulative receiver-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpReceiverStats {
    /// Segments that arrived entirely below `rcv_nxt`.
    pub duplicates: u64,
    /// Segments buffered out of order.
    pub out_of_order: u64,
    /// ACK packets emitted.
    pub acks_sent: u64,
}

/// The receiving half of a unidirectional TCP connection.
///
/// Generates cumulative ACKs with the delayed-ACK rule (every 2nd in-order
/// segment or on the 40 ms timer), and immediate ACKs for out-of-order or
/// duplicate segments — the dup-ACK stream that drives the sender's fast
/// retransmit.
#[derive(Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    /// This endpoint's station (the ACK source).
    node: NodeId,
    /// The data sender (the ACK destination).
    peer: NodeId,
    cfg: TcpConfig,
    rcv_nxt: u64,
    /// Out-of-order runs: start → end (exclusive).
    ooo: BTreeMap<u64, u64>,
    since_last_ack: u32,
    delack_armed: bool,
    stats: TcpReceiverStats,
}

impl TcpReceiver {
    /// Creates the receiver for a flow whose data arrives `peer → node`.
    pub fn new(flow: FlowId, node: NodeId, peer: NodeId, cfg: TcpConfig) -> TcpReceiver {
        TcpReceiver {
            flow,
            node,
            peer,
            cfg,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            since_last_ack: 0,
            delack_armed: false,
            stats: TcpReceiverStats::default(),
        }
    }

    /// Bytes delivered in order to the application so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.rcv_nxt
    }

    /// Receiver statistics.
    pub fn stats(&self) -> TcpReceiverStats {
        self.stats
    }

    /// Number of buffered out-of-order runs (diagnostic).
    pub fn ooo_runs(&self) -> usize {
        self.ooo.len()
    }

    /// Processes an arriving data segment.
    pub fn on_segment(&mut self, seq: u64, len: u32, now: SimTime, out: &mut Vec<TcpOutput>) {
        debug_assert!(len > 0, "zero-length data segment");
        let end = seq + len as u64;
        if end <= self.rcv_nxt {
            // Entirely old: immediate ACK to resynchronize the sender.
            self.stats.duplicates += 1;
            self.emit_ack(now, out);
        } else if seq <= self.rcv_nxt {
            // In order (possibly partially overlapping).
            self.rcv_nxt = end;
            let had_holes = !self.ooo.is_empty();
            self.drain_ooo();
            if had_holes {
                // Filling a hole: ACK immediately so the sender exits
                // recovery promptly.
                self.emit_ack(now, out);
            } else {
                self.since_last_ack += 1;
                if self.since_last_ack >= self.cfg.ack_every {
                    self.emit_ack(now, out);
                } else if !self.delack_armed {
                    self.delack_armed = true;
                    out.push(TcpOutput::ArmDelack(self.cfg.delack_timeout));
                }
            }
        } else {
            // Out of order: buffer and send an immediate duplicate ACK.
            self.stats.out_of_order += 1;
            self.insert_ooo(seq, end);
            self.emit_ack(now, out);
        }
    }

    /// The delayed-ACK timer fired.
    pub fn on_delack_timer(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.delack_armed = false;
        if self.since_last_ack > 0 {
            self.emit_ack(now, out);
        }
    }

    fn insert_ooo(&mut self, seq: u64, end: u64) {
        // Merge with any overlapping or adjacent runs.
        let mut start = seq;
        let mut stop = end;
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|(_, &e)| e >= seq)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ooo.remove(&s).expect("key just seen");
            start = start.min(s);
            stop = stop.max(e);
        }
        self.ooo.insert(start, stop);
    }

    fn drain_ooo(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.ooo.remove(&s);
                self.rcv_nxt = self.rcv_nxt.max(e);
            } else {
                break;
            }
        }
    }

    fn emit_ack(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.stats.acks_sent += 1;
        self.since_last_ack = 0;
        if self.delack_armed {
            self.delack_armed = false;
            out.push(TcpOutput::CancelDelack);
        }
        out.push(TcpOutput::Send(Packet {
            flow: self.flow,
            src: self.node,
            dst: self.peer,
            seg: Segment::Tcp {
                seq: 0,
                ack: self.rcv_nxt,
            },
            payload_bytes: 0,
            sent_at: now,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> TcpReceiver {
        TcpReceiver::new(FlowId(0), NodeId(1), NodeId(0), TcpConfig::new(512))
    }

    fn acks(out: &[TcpOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TcpOutput::Send(p) => match p.seg {
                    Segment::Tcp { ack, .. } => Some(ack),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn every_second_segment_is_acked() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_segment(0, 512, at(1), &mut out);
        assert!(acks(&out).is_empty(), "first segment delays the ACK");
        assert!(out.iter().any(|o| matches!(o, TcpOutput::ArmDelack(_))));
        out.clear();
        r.on_segment(512, 512, at(2), &mut out);
        assert_eq!(acks(&out), vec![1024]);
        assert_eq!(r.delivered_bytes(), 1024);
    }

    #[test]
    fn delack_timer_flushes_pending_ack() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_segment(0, 512, at(1), &mut out);
        out.clear();
        r.on_delack_timer(at(41), &mut out);
        assert_eq!(acks(&out), vec![512]);
        out.clear();
        // No pending data: timer fires without emitting.
        r.on_delack_timer(at(81), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn out_of_order_segment_triggers_immediate_dup_ack() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_segment(0, 512, at(1), &mut out);
        out.clear();
        r.on_segment(1024, 512, at(2), &mut out); // hole at 512
        assert_eq!(acks(&out), vec![512], "dup ack advertises rcv_nxt");
        assert_eq!(r.ooo_runs(), 1);
        out.clear();
        r.on_segment(1536, 512, at(3), &mut out);
        assert_eq!(acks(&out), vec![512]);
        // Filling the hole delivers everything and acks immediately.
        out.clear();
        r.on_segment(512, 512, at(4), &mut out);
        assert_eq!(acks(&out), vec![2048]);
        assert_eq!(r.delivered_bytes(), 2048);
        assert_eq!(r.ooo_runs(), 0);
    }

    #[test]
    fn duplicate_old_segment_is_acked_immediately() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_segment(0, 512, at(1), &mut out);
        r.on_segment(512, 512, at(2), &mut out);
        out.clear();
        r.on_segment(0, 512, at(3), &mut out);
        assert_eq!(acks(&out), vec![1024]);
        assert_eq!(r.stats().duplicates, 1);
        assert_eq!(r.delivered_bytes(), 1024, "no double delivery");
    }

    #[test]
    fn overlapping_ooo_runs_merge() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_segment(1024, 512, at(1), &mut out);
        r.on_segment(2048, 512, at(2), &mut out);
        r.on_segment(1536, 512, at(3), &mut out); // bridges the two runs
        assert_eq!(r.ooo_runs(), 1);
        out.clear();
        r.on_segment(0, 1024, at(4), &mut out);
        assert_eq!(r.delivered_bytes(), 2560);
        assert_eq!(acks(&out), vec![2560]);
    }

    #[test]
    fn ack_packets_are_pure_acks_with_reversed_direction() {
        let mut r = rx();
        let mut out = Vec::new();
        r.on_segment(0, 512, at(1), &mut out);
        r.on_segment(512, 512, at(2), &mut out);
        let pkt = out
            .iter()
            .find_map(|o| match o {
                TcpOutput::Send(p) => Some(*p),
                _ => None,
            })
            .expect("ack packet");
        assert!(pkt.is_pure_ack());
        assert_eq!(pkt.src, NodeId(1));
        assert_eq!(pkt.dst, NodeId(0));
        assert_eq!(pkt.wire_bytes(), 40);
    }
}
