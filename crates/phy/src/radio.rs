//! Radio front-end parameters.
//!
//! The single most consequential modelling choice for reproducing the
//! paper is that the **carrier-sense threshold sits well below the level
//! needed to decode anything** — correlation-based carrier sense detects
//! 802.11 energy the demodulator cannot recover. This makes the physical
//! carrier-sensing range (PCS_range) a multiple of the transmission range,
//! which the paper identifies as the force shaping its four-station
//! results ("the physical carrier sensing range often produces an effect
//! similar to the RTS/CTS mechanism").

use crate::plcp::Preamble;
use crate::units::{Db, Dbm};

/// Configuration of a station's radio.
///
/// # Example
///
/// ```
/// use dot11_phy::RadioConfig;
/// let r = RadioConfig::default();
/// assert!(r.cs_threshold.0 < r.noise_floor.0, "correlation CS detects below the noise floor");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RadioConfig {
    /// Transmit power (constant across rates — 802.11 cards transmit at
    /// constant power, which is exactly why lower rates reach further).
    pub tx_power: Dbm,
    /// Noise power in the 11 MHz chip bandwidth (thermal + noise figure).
    pub noise_floor: Dbm,
    /// Received-power level at which the station declares the channel
    /// busy and can lock onto an incoming preamble.
    pub cs_threshold: Dbm,
    /// Extra signal-over-lock power required for a later-arriving frame to
    /// capture the receiver during the current frame's preamble.
    pub capture_margin: Db,
    /// Whether preamble capture is enabled at all (ablation D5).
    pub capture_enabled: bool,
    /// PLCP preamble format used for transmissions.
    pub preamble: Preamble,
}

impl RadioConfig {
    /// The calibrated DWL-650-like defaults used by the reproduction.
    ///
    /// * 15 dBm TX power (D-Link DWL-650 class card);
    /// * −96.6 dBm noise floor (−174 dBm/Hz + 10·log10(11 MHz) + 7 dB NF);
    /// * −101.5 dBm carrier-sense/lock threshold (correlation detection a
    ///   few dB below the noise floor — the Barker correlator's 10.4 dB
    ///   processing gain makes that physical — giving PCS_range ≈ 150 m
    ///   against a ~30 m 11 Mb/s data range under the calibrated path
    ///   loss);
    /// * 10 dB preamble capture margin.
    pub fn dwl650() -> RadioConfig {
        RadioConfig {
            tx_power: Dbm(15.0),
            noise_floor: Dbm(-96.6),
            cs_threshold: Dbm(-101.5),
            capture_margin: Db(10.0),
            capture_enabled: true,
            preamble: Preamble::Long,
        }
    }

    /// Ablation D1: carrier sense no more sensitive than decoding — the
    /// "TX_range = PCS_range" assumption of naive simulation setups. The
    /// threshold is placed at the noise floor + 14.6 dB (the 11 Mb/s
    /// decode SINR), so stations only defer to what they could decode.
    pub fn without_pcs_advantage(self) -> RadioConfig {
        RadioConfig {
            cs_threshold: Dbm(self.noise_floor.0 + 14.6),
            ..self
        }
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig::dwl650()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_cs_below_noise() {
        let r = RadioConfig::default();
        assert!(r.cs_threshold.0 < r.noise_floor.0);
        assert!(r.capture_enabled);
        assert_eq!(r.preamble, Preamble::Long);
    }

    #[test]
    fn pcs_ablation_raises_threshold() {
        let base = RadioConfig::default();
        let flat = base.without_pcs_advantage();
        assert!(flat.cs_threshold.0 > base.cs_threshold.0 + 10.0);
        assert_eq!(flat.tx_power.0, base.tx_power.0);
    }
}
