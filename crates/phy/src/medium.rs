//! The shared wireless medium: positions, propagation, active signals.
//!
//! `Medium` is pure computation — the event loop lives in the simulation
//! driver. When a station starts transmitting, the driver calls
//! [`Medium::transmit`], which samples the per-receiver powers **once**
//! (path loss + that instant's shadowing) and returns them; the driver
//! then schedules signal-start/end events at each receiver after the
//! propagation delay.

use desim::{SimDuration, SimTime};

use crate::pathloss::{PathLoss, PathLossModel};
use crate::plcp::{FrameAirtime, Preamble};
use crate::rate::PhyRate;
use crate::shadowing::{DayProfile, Shadowing};
use crate::units::{Db, Dbm, Meters, NodeId, Position};

/// Identifier of one transmission on the medium (unique within a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

/// Default culling margin (dB) below the noise floor for
/// [`CullPolicy::Audible`].
///
/// A link is kept whenever its *best-case* received power — TX power
/// minus cached path loss minus [`DayProfile::min_excess`] — still clears
/// `noise_floor − CULL_MARGIN_DB`. At 25 dB below a −96.6 dBm noise floor
/// a culled signal is ≤ −121.6 dBm ≈ 7·10⁻¹³ mW, more than 300× below
/// the weakest signal the PHY will ever carrier-sense (−101.5 dBm) and
/// ~10⁻⁵ of the noise power that dominates every SINR denominator, so
/// dropping it cannot flip a carrier-sense comparison or change a decode
/// probability beyond the float's low bits (see ARCHITECTURE.md,
/// "Audible sets & scaling", for the full soundness argument).
pub const CULL_MARGIN_DB: f64 = 25.0;

/// How [`Medium`] decides, at construction, which receivers each
/// transmitter can possibly reach.
#[derive(Debug, Clone, Copy)]
pub enum CullPolicy {
    /// Deliver every frame to all other stations — O(N) fan-out, the
    /// pre-culling behaviour. Kept for A/B comparison and as the safe
    /// default for hand-built media whose TX power is unknown.
    Full,
    /// Deliver only to receivers whose best-case received power clears
    /// `noise_floor − margin`. Sound only if every transmission uses at
    /// most `tx_power` (checked by a debug assertion on the hot path).
    Audible {
        /// Upper bound on the TX power any station will use.
        tx_power: Dbm,
        /// The receivers' thermal noise floor.
        noise_floor: Dbm,
        /// Safety margin below the noise floor (see [`CULL_MARGIN_DB`]).
        margin: Db,
    },
}

/// Static configuration of the medium.
#[derive(Clone)]
pub struct MediumConfig {
    /// Deterministic path-loss model (devirtualized — see
    /// [`PathLossModel`]).
    pub path_loss: PathLossModel,
    /// Day/weather profile driving the shadowing process.
    pub day: DayProfile,
    /// Propagation delay applied uniformly (the paper's Table 1 lists
    /// τ = 1 µs).
    pub propagation_delay: SimDuration,
    /// Audible-set culling policy applied when the link matrix is built.
    pub cull: CullPolicy,
}

impl std::fmt::Debug for MediumConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediumConfig")
            .field("path_loss", &self.path_loss)
            .field("day", &self.day.name)
            .field("propagation_delay", &self.propagation_delay)
            .field("cull", &self.cull)
            .finish()
    }
}

/// One launched transmission, as seen by a particular receiver.
#[derive(Debug, Clone, Copy)]
pub struct TxSignal {
    /// The transmission this signal belongs to.
    pub tx_id: TxId,
    /// The transmitting station.
    pub source: NodeId,
    /// Received power at this receiver (sampled at transmit time).
    pub rx_power: Dbm,
    /// Rate of the MPDU body.
    pub rate: PhyRate,
    /// MPDU length, bytes.
    pub mpdu_bytes: u32,
    /// Preamble format.
    pub preamble: Preamble,
    /// Airtime start at the receiver (transmit time + propagation delay).
    pub starts_at: SimTime,
    /// Airtime end at the receiver.
    pub ends_at: SimTime,
}

/// The shared medium for one simulation run.
///
/// Positions are static for a run, so the deterministic part of every
/// directed link — distance and path loss — is precomputed at
/// construction into a flat n×n matrix. The per-frame cost of
/// [`Medium::transmit_into`] is then one cache-line read plus the
/// time-varying shadowing sample per receiver; no `log10`, no virtual
/// dispatch, no allocation.
#[derive(Debug)]
pub struct Medium {
    positions: Vec<Position>,
    shadowing: Shadowing,
    config: MediumConfig,
    /// Row-major `[tx][rx]` cache of `(distance, path_loss)` per directed
    /// pair — exactly the values `path_loss.path_loss(distance(tx, rx))`
    /// would produce, so cached and recomputed powers are bit-identical.
    links: Vec<(Meters, Db)>,
    /// CSR layout of the per-transmitter audible sets: transmitter `t`'s
    /// receivers are `audible[audible_offsets[t] .. audible_offsets[t+1]]`,
    /// in station order, never containing `t` itself. Under
    /// [`CullPolicy::Full`] this is simply "everyone else".
    audible: Vec<NodeId>,
    audible_offsets: Vec<u32>,
    next_tx: u64,
}

impl Medium {
    /// Creates a medium over the given station positions.
    ///
    /// Besides the deterministic link matrix, construction precomputes
    /// each transmitter's **audible set** under `config.cull`: the
    /// receivers whose best-case received power (TX power bound − cached
    /// path loss − [`DayProfile::min_excess`]) clears
    /// `noise_floor − margin`. [`Medium::transmit_into`] scatters only
    /// over that list, making per-frame fan-out O(reachable) rather than
    /// O(N).
    pub fn new(positions: Vec<Position>, shadowing: Shadowing, config: MediumConfig) -> Medium {
        let n = positions.len();
        let mut links = Vec::with_capacity(n * n);
        for tx in 0..n {
            for rx in 0..n {
                let d = positions[tx].distance_to(positions[rx]);
                links.push((d, config.path_loss.path_loss(d)));
            }
        }
        let min_excess = config.day.min_excess();
        let mut audible = Vec::new();
        let mut audible_offsets = Vec::with_capacity(n + 1);
        audible_offsets.push(0u32);
        for tx in 0..n {
            for rx in 0..n {
                if rx == tx {
                    continue;
                }
                let keep = match config.cull {
                    CullPolicy::Full => true,
                    CullPolicy::Audible {
                        tx_power,
                        noise_floor,
                        margin,
                    } => {
                        let (_, pl) = links[tx * n + rx];
                        let best_case = tx_power - pl - min_excess;
                        best_case.0 >= noise_floor.0 - margin.0
                    }
                };
                if keep {
                    audible.push(NodeId(rx as u32));
                }
            }
            audible_offsets.push(audible.len() as u32);
        }
        Medium {
            positions,
            shadowing,
            config,
            links,
            audible,
            audible_offsets,
            next_tx: 0,
        }
    }

    /// The cached (distance, path loss) of the directed link `tx → rx`.
    #[inline]
    fn link(&self, tx: NodeId, rx: NodeId) -> (Meters, Db) {
        self.links[tx.index() * self.positions.len() + rx.index()]
    }

    /// Number of stations on the field.
    pub fn station_count(&self) -> usize {
        self.positions.len()
    }

    /// Position of a station.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Distance between two stations.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Meters {
        self.position(a).distance_to(self.position(b))
    }

    /// The propagation delay between any pair of stations.
    pub fn propagation_delay(&self) -> SimDuration {
        self.config.propagation_delay
    }

    /// The audible set of `tx`: the receivers `transmit_into` will
    /// scatter to, in station order.
    pub fn audible_set(&self, tx: NodeId) -> &[NodeId] {
        let start = self.audible_offsets[tx.index()] as usize;
        let end = self.audible_offsets[tx.index() + 1] as usize;
        &self.audible[start..end]
    }

    /// Number of receivers in `tx`'s audible set.
    pub fn audible_count(&self, tx: NodeId) -> usize {
        self.audible_set(tx).len()
    }

    /// The largest audible set over all transmitters — the capacity a
    /// delivery buffer needs so the steady-state path never reallocates.
    pub fn max_audible_count(&self) -> usize {
        (0..self.positions.len())
            .map(|t| self.audible_count(NodeId(t as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Number of directed links removed by the culling policy, out of
    /// `n·(n−1)` total. Zero under [`CullPolicy::Full`] — and zero on all
    /// paper-scale scenarios even under [`CullPolicy::Audible`], which is
    /// what makes culling physics-invisible there (asserted by the
    /// cull-exactness regression test).
    pub fn culled_link_count(&self) -> usize {
        let n = self.positions.len();
        n * n.saturating_sub(1) - self.audible.len()
    }

    /// Samples the received power on the directed link `tx → rx` at `now`
    /// given the transmitter's TX power: (cached) path loss plus the
    /// current shadowing state of that link.
    pub fn rx_power(&mut self, tx: NodeId, rx: NodeId, tx_power: Dbm, now: SimTime) -> Dbm {
        let (d, pl) = self.link(tx, rx);
        let excess = self.shadowing.sample(tx, rx, d, now);
        tx_power - pl - excess
    }

    /// Launches a transmission at `now` from `source`, appending the
    /// signal as it will appear at every station in `source`'s audible
    /// set (in station order) to `deliveries`, powers sampled at launch
    /// (block-fading per frame).
    ///
    /// `deliveries` must arrive **empty** (debug-asserted): the old
    /// per-frame `clear()`/`reserve()` is hoisted to the caller, which
    /// sizes its pooled buffers once at construction via
    /// [`Medium::max_audible_count`], so the steady-state path neither
    /// clears nor allocates here.
    #[allow(clippy::too_many_arguments)] // the per-frame signature is flat on purpose
    pub fn transmit_into(
        &mut self,
        source: NodeId,
        tx_power: Dbm,
        rate: PhyRate,
        mpdu_bytes: u32,
        preamble: Preamble,
        now: SimTime,
        deliveries: &mut Vec<(NodeId, TxSignal)>,
    ) -> (TxId, FrameAirtime) {
        debug_assert!(
            deliveries.is_empty(),
            "transmit_into expects an empty delivery buffer"
        );
        #[cfg(debug_assertions)]
        if let CullPolicy::Audible {
            tx_power: bound, ..
        } = self.config.cull
        {
            debug_assert!(
                tx_power.0 <= bound.0,
                "transmit at {tx_power:?} exceeds the audible-set TX power bound {bound:?}"
            );
        }
        let tx_id = TxId(self.next_tx);
        self.next_tx += 1;
        let airtime = FrameAirtime::new(mpdu_bytes, rate, preamble);
        let starts_at = now + self.config.propagation_delay;
        let ends_at = starts_at + airtime.total();
        let start = self.audible_offsets[source.index()] as usize;
        let end = self.audible_offsets[source.index() + 1] as usize;
        for i in start..end {
            let rx = self.audible[i];
            let rx_power = self.rx_power(source, rx, tx_power, now);
            deliveries.push((
                rx,
                TxSignal {
                    tx_id,
                    source,
                    rx_power,
                    rate,
                    mpdu_bytes,
                    preamble,
                    starts_at,
                    ends_at,
                },
            ));
        }
        (tx_id, airtime)
    }

    /// Allocating convenience form of [`Medium::transmit_into`] for tests
    /// and one-shot callers; the event loop uses the scratch-buffer form.
    /// Delegates through the same audible-list path so the two forms
    /// cannot drift.
    pub fn transmit(
        &mut self,
        source: NodeId,
        tx_power: Dbm,
        rate: PhyRate,
        mpdu_bytes: u32,
        preamble: Preamble,
        now: SimTime,
    ) -> (TxId, FrameAirtime, Vec<(NodeId, TxSignal)>) {
        let mut deliveries = Vec::new();
        let (tx_id, airtime) = self.transmit_into(
            source,
            tx_power,
            rate,
            mpdu_bytes,
            preamble,
            now,
            &mut deliveries,
        );
        (tx_id, airtime, deliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::LogDistance;
    use desim::SimRng;

    fn medium(positions: Vec<Position>, sigma_zero: bool) -> Medium {
        let day = if sigma_zero {
            DayProfile::still()
        } else {
            DayProfile::clear()
        };
        Medium::new(
            positions,
            Shadowing::new(day.clone(), SimRng::from_seed(5)),
            MediumConfig {
                path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
                day,
                propagation_delay: SimDuration::from_micros(1),
                cull: CullPolicy::Full,
            },
        )
    }

    #[test]
    fn geometry_queries() {
        let m = medium(vec![Position::on_line(0.0), Position::on_line(25.0)], true);
        assert_eq!(m.station_count(), 2);
        assert!((m.distance(NodeId(0), NodeId(1)).0 - 25.0).abs() < 1e-12);
        assert_eq!(m.propagation_delay(), SimDuration::from_micros(1));
    }

    #[test]
    fn rx_power_decreases_with_distance() {
        let mut m = medium(
            vec![
                Position::on_line(0.0),
                Position::on_line(10.0),
                Position::on_line(100.0),
            ],
            true,
        );
        let now = SimTime::ZERO;
        let near = m.rx_power(NodeId(0), NodeId(1), Dbm(15.0), now);
        let far = m.rx_power(NodeId(0), NodeId(2), Dbm(15.0), now);
        assert!(near.0 > far.0 + 25.0, "near {near} vs far {far}");
    }

    #[test]
    fn transmit_delivers_to_all_but_source() {
        let mut m = medium(
            vec![
                Position::on_line(0.0),
                Position::on_line(10.0),
                Position::on_line(20.0),
            ],
            true,
        );
        let now = SimTime::from_millis(1);
        let (tx_id, airtime, deliveries) = m.transmit(
            NodeId(1),
            Dbm(15.0),
            PhyRate::R2,
            112 / 8,
            Preamble::Long,
            now,
        );
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|(rx, _)| *rx != NodeId(1)));
        for (_, sig) in &deliveries {
            assert_eq!(sig.tx_id, tx_id);
            assert_eq!(sig.starts_at, now + SimDuration::from_micros(1));
            assert_eq!(sig.ends_at - sig.starts_at, airtime.total());
        }
        // Consecutive transmissions get distinct ids.
        let (tx_id2, ..) = m.transmit(NodeId(0), Dbm(15.0), PhyRate::R1, 20, Preamble::Long, now);
        assert_ne!(tx_id, tx_id2);
    }

    /// The link matrix is an optimization, not a behaviour change: the
    /// cached (distance, loss) must be bit-identical to recomputing from
    /// positions, and a scratch-buffer transmit must equal the allocating
    /// form — including the shadowing draws, which depend only on call
    /// order.
    #[test]
    fn link_cache_matches_naive_recomputation_bitwise() {
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(25.0),
            Position { x: 40.0, y: 30.0 },
            Position::on_line(200.0),
        ];
        let model = LogDistance::anchored_at_free_space_1m(3.0);
        for tx in 0..positions.len() {
            for rx in 0..positions.len() {
                let m = medium(positions.clone(), false);
                let (d, pl) = m.link(NodeId(tx as u32), NodeId(rx as u32));
                let naive_d = positions[tx].distance_to(positions[rx]);
                assert_eq!(d.0.to_bits(), naive_d.0.to_bits(), "{tx}->{rx} distance");
                assert_eq!(
                    pl.0.to_bits(),
                    model.path_loss(naive_d).0.to_bits(),
                    "{tx}->{rx} loss"
                );
            }
        }
        // Two identically seeded media: transmit vs transmit_into agree
        // bit-for-bit. The caller owns clearing now, mirroring World's
        // pooled-buffer discipline.
        let mut a = medium(positions.clone(), false);
        let mut b = medium(positions, false);
        let mut scratch = Vec::new();
        for frame in 0..8u64 {
            let now = SimTime::from_micros(frame * 300);
            let src = NodeId((frame % 4) as u32);
            let (id_a, air_a, dels_a) =
                a.transmit(src, Dbm(15.0), PhyRate::R11, 534, Preamble::Long, now);
            scratch.clear();
            let (id_b, air_b) = b.transmit_into(
                src,
                Dbm(15.0),
                PhyRate::R11,
                534,
                Preamble::Long,
                now,
                &mut scratch,
            );
            assert_eq!(id_a, id_b);
            assert_eq!(air_a.total(), air_b.total());
            assert_eq!(dels_a.len(), scratch.len());
            for ((rx_a, sig_a), (rx_b, sig_b)) in dels_a.iter().zip(&scratch) {
                assert_eq!(rx_a, rx_b);
                assert_eq!(sig_a.rx_power.0.to_bits(), sig_b.rx_power.0.to_bits());
                assert_eq!(sig_a.starts_at, sig_b.starts_at);
                assert_eq!(sig_a.ends_at, sig_b.ends_at);
            }
        }
    }

    fn audible_medium(positions: Vec<Position>, margin: f64) -> Medium {
        let day = DayProfile::clear();
        Medium::new(
            positions,
            Shadowing::new(day.clone(), SimRng::from_seed(5)),
            MediumConfig {
                path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
                day,
                propagation_delay: SimDuration::from_micros(1),
                cull: CullPolicy::Audible {
                    tx_power: Dbm(15.0),
                    noise_floor: Dbm(-96.6),
                    margin: Db(margin),
                },
            },
        )
    }

    #[test]
    fn audible_sets_cull_unreachable_receivers_only() {
        // With exponent 3.0 the cull horizon at margin 25 dB sits where
        // path loss exceeds 15 + 96.6 + 25 + 16 ≈ 152.6 dB → ~5.6 km.
        // One station far beyond that, three well inside.
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(50.0),
            Position::on_line(100.0),
            Position::on_line(50_000.0),
        ];
        let m = audible_medium(positions.clone(), CULL_MARGIN_DB);
        // Near stations hear each other but not the far one.
        assert_eq!(
            m.audible_set(NodeId(0)),
            &[NodeId(1), NodeId(2)],
            "far station should be culled from 0's set"
        );
        assert_eq!(m.audible_set(NodeId(3)), &[] as &[NodeId]);
        assert_eq!(m.audible_count(NodeId(1)), 2);
        assert_eq!(m.max_audible_count(), 2);
        // 12 directed links total; 6 involve the far station.
        assert_eq!(m.culled_link_count(), 6);

        // The full policy keeps everything.
        let full = medium(positions, false);
        assert_eq!(full.culled_link_count(), 0);
        assert_eq!(full.max_audible_count(), 3);
        assert_eq!(
            full.audible_set(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn transmit_scatters_over_audible_set_only() {
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(50.0),
            Position::on_line(50_000.0),
        ];
        let mut m = audible_medium(positions, CULL_MARGIN_DB);
        let now = SimTime::from_millis(1);
        let (_, _, deliveries) = m.transmit(
            NodeId(0),
            Dbm(15.0),
            PhyRate::R2,
            112 / 8,
            Preamble::Long,
            now,
        );
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].0, NodeId(1));
        // An isolated transmitter delivers to nobody.
        let (_, _, empty) = m.transmit(
            NodeId(2),
            Dbm(15.0),
            PhyRate::R2,
            112 / 8,
            Preamble::Long,
            now,
        );
        assert!(empty.is_empty());
    }

    /// Culling must never perturb the powers of the links it keeps: the
    /// kept deliveries of a culled medium are bit-identical to the same
    /// links in a full-fanout medium with the same seed, because per-link
    /// shadowing substreams are call-order independent.
    #[test]
    fn kept_links_are_bitwise_unaffected_by_culling() {
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(60.0),
            Position { x: 30.0, y: 40.0 },
            Position::on_line(40_000.0),
        ];
        let day = DayProfile::clear();
        let mk = |cull: CullPolicy| {
            Medium::new(
                positions.clone(),
                Shadowing::new(day.clone(), SimRng::from_seed(11)),
                MediumConfig {
                    path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
                    day: day.clone(),
                    propagation_delay: SimDuration::from_micros(1),
                    cull,
                },
            )
        };
        let mut full = mk(CullPolicy::Full);
        let mut culled = mk(CullPolicy::Audible {
            tx_power: Dbm(15.0),
            noise_floor: Dbm(-96.6),
            margin: Db(CULL_MARGIN_DB),
        });
        assert!(culled.culled_link_count() > 0);
        for frame in 0..6u64 {
            let now = SimTime::from_micros(frame * 500);
            let src = NodeId((frame % 3) as u32);
            let (_, _, dels_full) =
                full.transmit(src, Dbm(15.0), PhyRate::R11, 534, Preamble::Long, now);
            let (_, _, dels_culled) =
                culled.transmit(src, Dbm(15.0), PhyRate::R11, 534, Preamble::Long, now);
            for (rx, sig) in &dels_culled {
                let (_, sig_full) = dels_full
                    .iter()
                    .find(|(r, _)| r == rx)
                    .expect("kept link present in full fan-out");
                assert_eq!(
                    sig.rx_power.0.to_bits(),
                    sig_full.rx_power.0.to_bits(),
                    "kept link {src:?}->{rx:?} perturbed by culling"
                );
            }
        }
    }

    #[test]
    fn shadowed_link_varies_but_still_link_does_not() {
        let mut still = medium(vec![Position::on_line(0.0), Position::on_line(50.0)], true);
        let a = still.rx_power(NodeId(0), NodeId(1), Dbm(15.0), SimTime::from_secs(1));
        let b = still.rx_power(NodeId(0), NodeId(1), Dbm(15.0), SimTime::from_secs(30));
        assert_eq!(a.0, b.0);

        let mut varying = medium(vec![Position::on_line(0.0), Position::on_line(50.0)], false);
        let a = varying.rx_power(NodeId(0), NodeId(1), Dbm(15.0), SimTime::from_secs(1));
        let b = varying.rx_power(NodeId(0), NodeId(1), Dbm(15.0), SimTime::from_secs(30));
        assert_ne!(a.0, b.0, "time-varying channel should move over 29 s");
    }
}
