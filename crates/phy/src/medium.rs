//! The shared wireless medium: positions, propagation, active signals.
//!
//! `Medium` is pure computation — the event loop lives in the simulation
//! driver. When a station starts transmitting, the driver calls
//! [`Medium::transmit`], which samples the per-receiver powers **once**
//! (path loss + that instant's shadowing) and returns them; the driver
//! then schedules signal-start/end events at each receiver after the
//! propagation delay.

use desim::{SimDuration, SimTime};

use crate::pathloss::{PathLoss, PathLossModel};
use crate::plcp::{FrameAirtime, Preamble};
use crate::rate::PhyRate;
use crate::shadowing::{Ar1Memo, DayProfile, ShadowView, Shadowing, SlotEntry};
use crate::units::{Db, Dbm, Meters, NodeId, Position};

/// Identifier of one transmission on the medium (unique within a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

/// Default culling margin (dB) below the noise floor for
/// [`CullPolicy::Audible`].
///
/// A link is kept whenever its *best-case* received power — TX power
/// minus cached path loss minus [`DayProfile::min_excess`] — still clears
/// `noise_floor − CULL_MARGIN_DB`. At 25 dB below a −96.6 dBm noise floor
/// a culled signal is ≤ −121.6 dBm ≈ 7·10⁻¹³ mW, more than 300× below
/// the weakest signal the PHY will ever carrier-sense (−101.5 dBm) and
/// ~10⁻⁵ of the noise power that dominates every SINR denominator, so
/// dropping it cannot flip a carrier-sense comparison or change a decode
/// probability beyond the float's low bits (see ARCHITECTURE.md,
/// "Audible sets & scaling", for the full soundness argument).
pub const CULL_MARGIN_DB: f64 = 25.0;

/// How [`Medium`] decides, at construction, which receivers each
/// transmitter can possibly reach.
#[derive(Debug, Clone, Copy)]
pub enum CullPolicy {
    /// Deliver every frame to all other stations — O(N) fan-out, the
    /// pre-culling behaviour. Kept for A/B comparison and as the safe
    /// default for hand-built media whose TX power is unknown.
    Full,
    /// Deliver only to receivers whose best-case received power clears
    /// `noise_floor − margin`. Sound only if every transmission uses at
    /// most `tx_power` (checked by a debug assertion on the hot path).
    Audible {
        /// Upper bound on the TX power any station will use.
        tx_power: Dbm,
        /// The receivers' thermal noise floor.
        noise_floor: Dbm,
        /// Safety margin below the noise floor (see [`CULL_MARGIN_DB`]).
        margin: Db,
    },
}

/// Static configuration of the medium.
#[derive(Clone)]
pub struct MediumConfig {
    /// Deterministic path-loss model (devirtualized — see
    /// [`PathLossModel`]).
    pub path_loss: PathLossModel,
    /// Day/weather profile driving the shadowing process.
    pub day: DayProfile,
    /// Propagation delay applied uniformly (the paper's Table 1 lists
    /// τ = 1 µs).
    pub propagation_delay: SimDuration,
    /// Audible-set culling policy applied when the link matrix is built.
    pub cull: CullPolicy,
}

impl std::fmt::Debug for MediumConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediumConfig")
            .field("path_loss", &self.path_loss)
            .field("day", &self.day.name)
            .field("propagation_delay", &self.propagation_delay)
            .field("cull", &self.cull)
            .finish()
    }
}

/// One launched transmission, as seen by a particular receiver.
#[derive(Debug, Clone, Copy)]
pub struct TxSignal {
    /// The transmission this signal belongs to.
    pub tx_id: TxId,
    /// The transmitting station.
    pub source: NodeId,
    /// Received power at this receiver (sampled at transmit time).
    pub rx_power: Dbm,
    /// Rate of the MPDU body.
    pub rate: PhyRate,
    /// MPDU length, bytes.
    pub mpdu_bytes: u32,
    /// Preamble format.
    pub preamble: Preamble,
    /// Airtime start at the receiver (transmit time + propagation delay).
    pub starts_at: SimTime,
    /// Airtime end at the receiver.
    pub ends_at: SimTime,
}

/// The shared medium for one simulation run.
///
/// Positions are static for a run, so the deterministic part of every
/// directed link — distance and path loss — is cached per kept link. The
/// cache is **audible-slice-major**: one `(distance, loss)` entry per
/// kept CSR link, parallel to `audible`, so a frame's scatter walks one
/// contiguous block instead of striding an N-sized matrix row — and the
/// whole cache is O(kept links), not O(N²) (a 4096-station disk needs
/// megabytes, not a 256 MB matrix). Entries fill lazily on first touch
/// (NaN-sentinelled — no shipped model produces NaN for any distance), so
/// construction does no `log10` at all and a run only ever pays for the
/// links its transmitters actually use. The per-frame cost of
/// [`Medium::transmit_into`] is then one sequential cache read plus the
/// time-varying shadowing sample per receiver; no `log10`, no virtual
/// dispatch, no hashing, no allocation.
#[derive(Debug)]
pub struct Medium {
    positions: Vec<Position>,
    shadowing: Shadowing,
    config: MediumConfig,
    /// Audible-slice-major cache of `(distance, path_loss)`, parallel to
    /// `audible`: entry `i` describes the directed link whose receiver is
    /// `audible[i]` — exactly the values `path_loss.path_loss(distance)`
    /// would produce, so cached and recomputed powers are bit-identical.
    /// A NaN loss marks a not-yet-filled entry (and a NaN distance one
    /// whose distance is also deferred); [`Medium::slot_link`] fills both
    /// on first touch.
    slot_links: Vec<(Meters, Db)>,
    /// CSR layout of the per-transmitter audible sets: transmitter `t`'s
    /// receivers are the first `audible_lens[t]` entries of
    /// `audible[audible_offsets[t] .. audible_offsets[t+1]]`, in station
    /// order, never containing `t` itself. Under [`CullPolicy::Full`]
    /// this is simply "everyone else". Construction packs the slices
    /// tight (`audible_lens[t] == audible_offsets[t+1] −
    /// audible_offsets[t]`); an epoch compaction re-lays the arrays with
    /// per-station slack so later [`Medium::commit_epoch`] splices stay
    /// in place, leaving dead capacity past each live prefix that no
    /// reader ever touches.
    audible: Vec<NodeId>,
    audible_offsets: Vec<u32>,
    audible_lens: Vec<u32>,
    /// Total live CSR entries (`audible.len()` until slack exists).
    live_links: usize,
    /// The exact keep horizon recovered by `keep_radius` at construction.
    /// A function of the cull policy, path-loss model and day profile
    /// only — never of positions — so epoch commits reuse it as-is.
    cull_radius: f64,
    /// Mutable bucket grid reused across epoch commits (`None` until the
    /// first commit; static runs never build it).
    epoch_grid: Option<EpochGrid>,
    next_tx: u64,
}

/// NaN sentinel for lazily-filled link-cache fields. No shipped
/// [`PathLoss`] model returns NaN (every model is finite for every
/// distance, and distances between finite positions are finite), so NaN
/// unambiguously marks "not computed yet".
const UNFILLED: f64 = f64::NAN;

/// Reads the lazy link-cache entry `cell` for the directed link
/// `tx → rx`, filling it on first touch. This is the one fill routine —
/// shared by the serial [`Medium::slot_link`] and the parallel
/// [`ScatterView::fill`] — so the two scatter paths cannot drift.
#[inline]
fn fill_slot_link(
    cell: &mut (Meters, Db),
    positions: &[Position],
    path_loss: &PathLossModel,
    tx: NodeId,
    rx: NodeId,
) -> (Meters, Db) {
    let (d, pl) = *cell;
    if !pl.0.is_nan() {
        return (d, pl);
    }
    let d = if d.0.is_nan() {
        positions[tx.index()].distance_to(positions[rx.index()])
    } else {
        d
    };
    let pl = path_loss.path_loss(d);
    *cell = (d, pl);
    (d, pl)
}

/// One transmission whose per-receiver scatter is delegated to
/// [`ScatterView::fill`] workers: everything [`Medium::transmit_into`]'s
/// loop needs, captured by value so the fill calls are pure functions of
/// `(job, slot)` plus the per-slot link/shadowing state.
#[derive(Debug, Clone, Copy)]
pub struct ScatterJob {
    /// The allocated transmission id.
    pub tx_id: TxId,
    /// The transmitting station.
    pub source: NodeId,
    /// First CSR slot of `source`'s audible slice.
    pub start_slot: usize,
    /// One past the last CSR slot of the slice; `end_slot - start_slot`
    /// deliveries will be produced.
    pub end_slot: usize,
    tx_power: Dbm,
    rate: PhyRate,
    mpdu_bytes: u32,
    preamble: Preamble,
    now: SimTime,
    starts_at: SimTime,
    ends_at: SimTime,
}

/// Cross-shard structure of the audible-link graph under a station
/// partition — the frontier the sharded executor's conservative
/// lookahead argument rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierReport {
    /// Total directed links kept by culling (CSR entries).
    pub total_links: usize,
    /// Kept links whose transmitter and receiver lie in different
    /// shards: the only channels through which one shard can influence
    /// another.
    pub cross_links: usize,
    /// Conservative lookahead horizon: the minimum latency any
    /// cross-shard influence experiences. Propagation delay is uniform,
    /// so a transmission committed at time `T` cannot place a signal at
    /// any receiver — in particular one across a frontier link — before
    /// `T + horizon`.
    pub horizon: SimDuration,
}

/// Link-churn accounting for one mobility epoch, returned by
/// [`Medium::commit_epoch`] (and, with identical values, by the
/// [`Medium::commit_epoch_rebuild`] reference — both modes count through
/// the same code paths, so a run report carrying accumulated churn stays
/// bitwise comparable across them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochChurn {
    /// Stations whose position actually changed (bit-identical no-op
    /// moves are dropped).
    pub moved: u32,
    /// Audible slices recomputed: the movers plus their grid-bounded
    /// neighbourhoods.
    pub slices_recomputed: u32,
    /// Pre-epoch directed links invalidated — entries with a moved
    /// endpoint, including those that left their audible set.
    pub links_dirtied: u32,
    /// Post-epoch directed links starting from fresh state — entries
    /// with a moved endpoint, including those that just entered.
    pub links_recomputed: u32,
    /// Directed links that entered an audible set this epoch.
    pub audible_added: u32,
    /// Directed links that left an audible set this epoch.
    pub audible_removed: u32,
    /// Whole-CSR re-layouts forced by a slice outgrowing its capacity
    /// (0 or 1 per commit; always 0 on the rebuild reference, which
    /// re-lays everything by definition).
    pub compactions: u32,
}

/// The validated move set of one epoch: which stations really moved, and
/// from where.
struct EpochPlan {
    moved: Vec<bool>,
    moved_count: u32,
    /// `(station, pre-epoch position)`, ascending by station.
    movers: Vec<(u32, Position)>,
}

/// Merges a dirty station's old live slice against its recomputed slice
/// (both in station order) into churn counters. An entry present on both
/// sides with no moved endpoint survives untouched; everything else is
/// dirtied and/or recomputed. Shared by the incremental and rebuild
/// commit paths so their accounting cannot diverge.
fn count_slice_churn(
    moved: &[bool],
    tx: usize,
    old_rx: &[NodeId],
    new: &[(u32, f64)],
    churn: &mut EpochChurn,
) {
    churn.slices_recomputed += 1;
    let tx_moved = moved[tx];
    let (mut i, mut j) = (0usize, 0usize);
    while i < old_rx.len() || j < new.len() {
        match (old_rx.get(i).map(|r| r.0), new.get(j).map(|&(r, _)| r)) {
            (Some(a), Some(b)) if a == b => {
                if tx_moved || moved[a as usize] {
                    churn.links_dirtied += 1;
                    churn.links_recomputed += 1;
                }
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                churn.links_dirtied += 1;
                churn.audible_removed += 1;
                i += 1;
            }
            (Some(_), None) => {
                churn.links_dirtied += 1;
                churn.audible_removed += 1;
                i += 1;
            }
            (_, Some(_)) => {
                churn.links_recomputed += 1;
                churn.audible_added += 1;
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

/// A `Send + Sync` window onto a [`Medium`] for parallel scatter: shared
/// reads of the CSR geometry plus raw access to the lazily-filled link
/// cache and shadowing slots. Obtained via [`Medium::scatter_view`];
/// concurrent [`fill`](ScatterView::fill) calls must cover disjoint slot
/// ranges.
#[derive(Clone, Copy)]
pub struct ScatterView<'a> {
    audible: &'a [NodeId],
    slot_links: *mut (Meters, Db),
    positions: &'a [Position],
    path_loss: PathLossModel,
    shadow: ShadowView<'a>,
}

// SAFETY: the raw link-cache pointer is only dereferenced inside `fill`,
// whose contract requires disjoint slot ranges across concurrent
// callers; `shadow` carries the same per-slot contract, and the
// remaining fields are shared reads.
unsafe impl Send for ScatterView<'_> {}
unsafe impl Sync for ScatterView<'_> {}

impl ScatterView<'_> {
    /// Produces the deliveries for `slots` (a sub-range of
    /// `job.start_slot..job.end_slot`), writing delivery `slot` to
    /// `out[slot - job.start_slot]`. Bitwise identical to the
    /// corresponding iterations of [`Medium::transmit_into`]'s loop: the
    /// link fill and shadowing sample delegate to the same shared
    /// helpers, and the caller-owned `memo` cannot change sampled values
    /// (it only skips recomputing a pure function of the time delta).
    ///
    /// # Safety
    ///
    /// * No two concurrent `fill` calls (on any copy of this view) may
    ///   overlap in `slots`, and the `Medium` must not be used while any
    ///   call is live.
    /// * `out` must point to a writable region with room for
    ///   `job.end_slot - job.start_slot` elements (spare capacity is
    ///   fine; elements need not be initialized).
    /// * `slots` must lie within `job.start_slot..job.end_slot`.
    pub unsafe fn fill(
        &self,
        job: &ScatterJob,
        slots: std::ops::Range<usize>,
        out: *mut (NodeId, TxSignal),
        memo: &mut Ar1Memo,
    ) {
        debug_assert!(job.start_slot <= slots.start && slots.end <= job.end_slot);
        for slot in slots {
            let rx = self.audible[slot];
            // SAFETY: the disjoint-range contract gives us exclusive
            // access to this slot's cache entry and shadowing state.
            let cell = unsafe { &mut *self.slot_links.add(slot) };
            let (d, pl) = fill_slot_link(cell, self.positions, &self.path_loss, job.source, rx);
            let excess = unsafe {
                self.shadow
                    .sample_slot(slot, job.source, rx, d, job.now, memo)
            };
            let delivery = (
                rx,
                TxSignal {
                    tx_id: job.tx_id,
                    source: job.source,
                    rx_power: job.tx_power - pl - excess,
                    rate: job.rate,
                    mpdu_bytes: job.mpdu_bytes,
                    preamble: job.preamble,
                    starts_at: job.starts_at,
                    ends_at: job.ends_at,
                },
            );
            // SAFETY: in-bounds by the caller's `out` capacity contract.
            unsafe { out.add(slot - job.start_slot).write(delivery) };
        }
    }
}

/// The largest distance the (monotone) keep predicate accepts, found by
/// bisection over the f64 bit lattice — non-negative floats order like
/// their bit patterns, so this lands on the exact float where the
/// predicate flips. [`PathLoss`] implementations are monotone
/// non-decreasing in distance (a documented trait contract the range
/// solvers already rely on), which makes `keep` downward-closed in
/// distance; `d ≤ radius` then reproduces `keep(d)` for every distance,
/// bit for bit (debug-asserted per examined pair in [`Medium::new`], and
/// pinned against the exhaustive scan by the cull-equivalence test).
///
/// Returns `NEG_INFINITY` when nothing is kept (every comparison false)
/// and `INFINITY` when everything is (every comparison true).
fn keep_radius(keep: impl Fn(Meters) -> bool) -> f64 {
    if !keep(Meters(0.0)) {
        return f64::NEG_INFINITY;
    }
    if keep(Meters(f64::MAX)) {
        return f64::INFINITY;
    }
    let (mut lo, mut hi) = (0.0f64.to_bits(), f64::MAX.to_bits());
    // Invariant: keep(lo) && !keep(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if keep(Meters(f64::from_bits(mid))) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    f64::from_bits(lo)
}

/// A uniform bucket grid over station positions: the spatial index that
/// lets audible-set construction examine only O(neighbours) candidate
/// pairs per station instead of all N−1. Cell side is at least the keep
/// radius (so a 1-ring neighbourhood always covers it) but never smaller
/// than span/√N (so the grid itself stays O(N) cells even when the keep
/// radius is far below the station spacing).
struct CellGrid {
    cell: f64,
    min_x: f64,
    min_y: f64,
    nx: usize,
    ny: usize,
    /// Cells-per-axis a pair within the keep radius can straddle.
    reach: usize,
    /// CSR station ids per cell, ascending within each cell.
    starts: Vec<u32>,
    ids: Vec<u32>,
}

/// Shared geometry of both grids: cell side, origin, cell counts and
/// neighbourhood reach for `positions` under keep radius `radius`.
/// Factored so [`CellGrid`] (construction) and [`EpochGrid`] (epoch
/// commits) derive byte-identical parameters from the same positions.
#[derive(Debug)]
struct GridGeometry {
    cell: f64,
    min_x: f64,
    min_y: f64,
    nx: usize,
    ny: usize,
    reach: usize,
}

fn grid_geometry(positions: &[Position], radius: f64) -> GridGeometry {
    let n = positions.len();
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in positions {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let span = (max_x - min_x).max(max_y - min_y).max(1.0);
    let max_side = (n as f64).sqrt().ceil().max(1.0);
    let cell = radius.max(span / max_side);
    let nx = (((max_x - min_x) / cell) as usize + 1).max(1);
    let ny = (((max_y - min_y) / cell) as usize + 1).max(1);
    // ceil(radius/cell) rings suffice mathematically; the +1 ring
    // absorbs any rounding in the division for free (the extra cells
    // are empty or re-checked by the exact distance compare anyway).
    let reach = ((radius / cell).ceil() as usize).saturating_add(1);
    GridGeometry {
        cell,
        min_x,
        min_y,
        nx,
        ny,
        reach,
    }
}

impl GridGeometry {
    /// The (clamped) cell index of a position. Clamping makes the index
    /// total: positions outside the original bounding box land in edge
    /// cells. Because clamping is monotone and non-expanding, two
    /// positions within the keep radius of each other still map to cells
    /// at most `reach` apart — so a grid whose geometry was frozen on an
    /// old bounding box remains a *correct* candidate generator for any
    /// later positions (only its efficiency can degrade as stations
    /// drift far outside the box).
    fn cell_of(&self, p: &Position) -> usize {
        let ix = (((p.x - self.min_x) / self.cell) as usize).min(self.nx - 1);
        let iy = (((p.y - self.min_y) / self.cell) as usize).min(self.ny - 1);
        iy * self.nx + ix
    }

    /// The cell rectangle guaranteed to contain every station within the
    /// keep radius of `of`, as `(x0, x1, y0, y1)` inclusive bounds.
    fn neighbourhood(&self, of: &Position) -> (usize, usize, usize, usize) {
        let ix = (((of.x - self.min_x) / self.cell) as usize).min(self.nx - 1);
        let iy = (((of.y - self.min_y) / self.cell) as usize).min(self.ny - 1);
        (
            ix.saturating_sub(self.reach),
            (ix + self.reach).min(self.nx - 1),
            iy.saturating_sub(self.reach),
            (iy + self.reach).min(self.ny - 1),
        )
    }
}

impl CellGrid {
    fn new(positions: &[Position], radius: f64) -> CellGrid {
        let n = positions.len();
        let GridGeometry {
            cell,
            min_x,
            min_y,
            nx,
            ny,
            reach,
        } = grid_geometry(positions, radius);
        let mut counts = vec![0u32; nx * ny + 1];
        let idx = |p: &Position| {
            let ix = (((p.x - min_x) / cell) as usize).min(nx - 1);
            let iy = (((p.y - min_y) / cell) as usize).min(ny - 1);
            iy * nx + ix
        };
        for p in positions {
            counts[idx(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut ids = vec![0u32; n];
        // Ascending station order keeps each cell's id list sorted.
        for (i, p) in positions.iter().enumerate() {
            let c = idx(p);
            ids[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        CellGrid {
            cell,
            min_x,
            min_y,
            nx,
            ny,
            reach,
            starts,
            ids,
        }
    }

    /// Visits every station id (including `of` itself) in the
    /// neighbourhood of cells guaranteed to contain all stations within
    /// the keep radius of `of`.
    fn for_each_neighbour(&self, of: &Position, mut visit: impl FnMut(u32)) {
        let ix = (((of.x - self.min_x) / self.cell) as usize).min(self.nx - 1);
        let iy = (((of.y - self.min_y) / self.cell) as usize).min(self.ny - 1);
        let x0 = ix.saturating_sub(self.reach);
        let x1 = (ix + self.reach).min(self.nx - 1);
        let y0 = iy.saturating_sub(self.reach);
        let y1 = (iy + self.reach).min(self.ny - 1);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let c = cy * self.nx + cx;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &id in &self.ids[lo..hi] {
                    visit(id);
                }
            }
        }
    }
}

/// A candidate generator for audible-slice recomputation: visits a
/// superset of the stations within the keep radius of a position. Both
/// grids implement it, so construction and epoch commits share one slice
/// routine ([`compute_audible_slice`]) and cannot drift.
trait NeighbourSource {
    fn for_each_neighbour(&self, of: &Position, visit: impl FnMut(u32));
}

impl NeighbourSource for CellGrid {
    fn for_each_neighbour(&self, of: &Position, visit: impl FnMut(u32)) {
        CellGrid::for_each_neighbour(self, of, visit)
    }
}

/// The mutable bucket grid epoch commits reuse: same geometry derivation
/// as [`CellGrid`] but with per-cell `Vec` buckets so moving a station
/// is two bucket edits instead of a CSR rebuild — the piece that makes
/// [`Medium::commit_epoch`] O(moved neighbourhoods) with no O(N) scan.
///
/// Geometry is frozen when the grid is first built (first epoch commit).
/// [`GridGeometry::cell_of`]'s clamped indexing keeps the frozen grid a
/// correct candidate generator for arbitrary later positions; bucket
/// *order* is irrelevant (every consumer either marks a dirty bit or
/// sorts the slice it builds), so removal can `swap_remove`.
#[derive(Debug)]
struct EpochGrid {
    geo: GridGeometry,
    buckets: Vec<Vec<u32>>,
}

impl EpochGrid {
    fn new(positions: &[Position], radius: f64) -> EpochGrid {
        let geo = grid_geometry(positions, radius);
        let mut buckets = vec![Vec::new(); geo.nx * geo.ny];
        for (i, p) in positions.iter().enumerate() {
            buckets[geo.cell_of(p)].push(i as u32);
        }
        EpochGrid { geo, buckets }
    }

    /// Re-bins station `id` after it moved from `old` to `new`.
    fn move_id(&mut self, id: u32, old: &Position, new: &Position) {
        let from = self.geo.cell_of(old);
        let to = self.geo.cell_of(new);
        if from == to {
            return;
        }
        let bucket = &mut self.buckets[from];
        let at = bucket
            .iter()
            .position(|&b| b == id)
            .expect("station binned in the cell its old position maps to");
        bucket.swap_remove(at);
        self.buckets[to].push(id);
    }
}

impl NeighbourSource for EpochGrid {
    fn for_each_neighbour(&self, of: &Position, mut visit: impl FnMut(u32)) {
        let (x0, x1, y0, y1) = self.geo.neighbourhood(of);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                for &id in &self.buckets[cy * self.geo.nx + cx] {
                    visit(id);
                }
            }
        }
    }
}

/// Computes station `tx`'s audible slice from the current positions —
/// grid-bounded candidates, the exact `d ≤ radius` filter (debug
/// cross-checked against the full predicate), sorted into station order.
/// The single slice routine shared by [`Medium::new`] and
/// [`Medium::commit_epoch`]: an epoch-recomputed slice is byte-identical
/// to what construction over the same positions would build.
// `config` only feeds the debug cross-check below.
#[cfg_attr(not(debug_assertions), allow(unused_variables))]
fn compute_audible_slice(
    positions: &[Position],
    config: &MediumConfig,
    radius: f64,
    grid: &impl NeighbourSource,
    tx: usize,
    scratch: &mut Vec<(u32, f64)>,
) {
    scratch.clear();
    grid.for_each_neighbour(&positions[tx], |rx| {
        if rx as usize == tx {
            return;
        }
        let d = positions[tx].distance_to(positions[rx as usize]);
        #[cfg(debug_assertions)]
        if let CullPolicy::Audible {
            tx_power,
            noise_floor,
            margin,
        } = config.cull
        {
            let best_case = tx_power - config.path_loss.path_loss(d) - config.day.min_excess();
            debug_assert_eq!(
                d.0 <= radius,
                best_case.0 >= noise_floor.0 - margin.0,
                "keep-radius compare diverged from the exact predicate at {d:?}"
            );
        }
        if d.0 <= radius {
            scratch.push((rx, d.0));
        }
    });
    // Neighbour cells are visited in grid order; the audible slice must
    // be in station order.
    scratch.sort_unstable_by_key(|&(rx, _)| rx);
}

impl Medium {
    /// Creates a medium over the given station positions.
    ///
    /// Construction precomputes each transmitter's **audible set** under
    /// `config.cull`: the receivers whose best-case received power (TX
    /// power bound − path loss − [`DayProfile::min_excess`]) clears
    /// `noise_floor − margin`. [`Medium::transmit_into`] scatters only
    /// over that list, making per-frame fan-out O(reachable) rather than
    /// O(N).
    ///
    /// The kept set is identical — station for station — to evaluating
    /// the predicate on all `n·(n−1)` pairs, but is built in
    /// O(N + kept): the predicate depends on a pair only through its
    /// distance and path loss is monotone in distance, so the exact keep
    /// horizon is recovered once by `keep_radius` bisection and each
    /// station only examines the neighbours a `CellGrid` proves could
    /// be inside it. Path losses themselves are deferred to first touch.
    pub fn new(positions: Vec<Position>, mut shadowing: Shadowing, config: MediumConfig) -> Medium {
        let n = positions.len();
        let mut audible = Vec::new();
        let mut slot_links = Vec::new();
        let mut audible_offsets = Vec::with_capacity(n + 1);
        audible_offsets.push(0u32);
        let radius = match config.cull {
            CullPolicy::Full => f64::INFINITY,
            CullPolicy::Audible {
                tx_power,
                noise_floor,
                margin,
            } => {
                let min_excess = config.day.min_excess();
                keep_radius(|d| {
                    let best_case = tx_power - config.path_loss.path_loss(d) - min_excess;
                    best_case.0 >= noise_floor.0 - margin.0
                })
            }
        };
        if radius == f64::INFINITY {
            // Everything is kept (Full policy, or a horizon beyond
            // f64::MAX): the audible sets are "everyone else" and no
            // geometry needs computing at all.
            for tx in 0..n {
                for rx in 0..n {
                    if rx != tx {
                        audible.push(NodeId(rx as u32));
                    }
                }
                audible_offsets.push(audible.len() as u32);
            }
            slot_links.resize(audible.len(), (Meters(UNFILLED), Db(UNFILLED)));
        } else if radius == f64::NEG_INFINITY || n == 0 {
            // Nothing is kept: every audible set is empty.
            audible_offsets.resize(n + 1, 0);
        } else {
            let grid = CellGrid::new(&positions, radius);
            let mut scratch: Vec<(u32, f64)> = Vec::new();
            for tx in 0..n {
                compute_audible_slice(&positions, &config, radius, &grid, tx, &mut scratch);
                for &(rx, d) in &scratch {
                    audible.push(NodeId(rx));
                    slot_links.push((Meters(d), Db(UNFILLED)));
                }
                audible_offsets.push(audible.len() as u32);
            }
        }
        shadowing.reserve_slots(audible.len());
        // Construction packs the CSR tight: every slice's live length is
        // its full capacity. Epoch compactions are what introduce slack.
        let audible_lens = audible_offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let live_links = audible.len();
        Medium {
            positions,
            shadowing,
            config,
            slot_links,
            audible,
            audible_offsets,
            audible_lens,
            live_links,
            cull_radius: radius,
            epoch_grid: None,
            next_tx: 0,
        }
    }

    /// The live CSR slot range of transmitter `tx`'s audible slice —
    /// `start + audible_lens[tx]`, *not* the next offset, which past a
    /// compaction may include dead slack capacity.
    #[inline]
    fn slice_bounds(&self, tx: usize) -> (usize, usize) {
        let start = self.audible_offsets[tx] as usize;
        (start, start + self.audible_lens[tx] as usize)
    }

    /// The CSR slot of the directed link `tx → rx`, if the link survived
    /// culling. Each audible slice is in station order, so this is a
    /// binary search over `tx`'s slice.
    #[inline]
    fn slot_of(&self, tx: NodeId, rx: NodeId) -> Option<usize> {
        let (start, end) = self.slice_bounds(tx.index());
        self.audible[start..end]
            .binary_search_by(|r| r.0.cmp(&rx.0))
            .ok()
            .map(|i| start + i)
    }

    /// The (distance, path loss) of the CSR slot `slot` (a `tx → rx`
    /// link), filling the lazy cache entry on first touch. Filled entries
    /// hold exactly what recomputing from positions would produce, so
    /// cached and recomputed values are bit-identical (asserted by the
    /// bitwise link-cache test).
    #[inline]
    fn slot_link(&mut self, slot: usize, tx: NodeId) -> (Meters, Db) {
        let rx = self.audible[slot];
        fill_slot_link(
            &mut self.slot_links[slot],
            &self.positions,
            &self.config.path_loss,
            tx,
            rx,
        )
    }

    /// The (distance, path loss) of the directed link `tx → rx`: read
    /// from the audible-slice cache when the link has a filled slot,
    /// computed from positions otherwise (without caching — this is the
    /// shared-reference form) — the two are bit-identical by
    /// construction.
    #[inline]
    fn link(&self, tx: NodeId, rx: NodeId) -> (Meters, Db) {
        if let Some(slot) = self.slot_of(tx, rx) {
            let (d, pl) = self.slot_links[slot];
            if !pl.0.is_nan() {
                return (d, pl);
            }
        }
        let d = self.positions[tx.index()].distance_to(self.positions[rx.index()]);
        (d, self.config.path_loss.path_loss(d))
    }

    /// Number of stations on the field.
    pub fn station_count(&self) -> usize {
        self.positions.len()
    }

    /// Position of a station.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Distance between two stations.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Meters {
        self.position(a).distance_to(self.position(b))
    }

    /// The propagation delay between any pair of stations.
    pub fn propagation_delay(&self) -> SimDuration {
        self.config.propagation_delay
    }

    /// The audible set of `tx`: the receivers `transmit_into` will
    /// scatter to, in station order.
    pub fn audible_set(&self, tx: NodeId) -> &[NodeId] {
        let (start, end) = self.slice_bounds(tx.index());
        &self.audible[start..end]
    }

    /// Number of receivers in `tx`'s audible set.
    pub fn audible_count(&self, tx: NodeId) -> usize {
        self.audible_set(tx).len()
    }

    /// The largest audible set over all transmitters — the capacity a
    /// delivery buffer needs so the steady-state path never reallocates.
    pub fn max_audible_count(&self) -> usize {
        (0..self.positions.len())
            .map(|t| self.audible_count(NodeId(t as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Number of directed links removed by the culling policy, out of
    /// `n·(n−1)` total. Zero under [`CullPolicy::Full`] — and zero on all
    /// paper-scale scenarios even under [`CullPolicy::Audible`], which is
    /// what makes culling physics-invisible there (asserted by the
    /// cull-exactness regression test).
    pub fn culled_link_count(&self) -> usize {
        let n = self.positions.len();
        n * n.saturating_sub(1) - self.live_links
    }

    /// Samples the received power on the directed link `tx → rx` at `now`
    /// given the transmitter's TX power: (cached) path loss plus the
    /// current shadowing state of that link.
    ///
    /// A link's shadowing state is sequential, so a slotted (CSR) pair
    /// must always advance its slot state here — the same one
    /// [`Medium::transmit_into`] advances — never a parallel HashMap
    /// entry; splitting a link across the two stores would fork its
    /// random trajectory.
    pub fn rx_power(&mut self, tx: NodeId, rx: NodeId, tx_power: Dbm, now: SimTime) -> Dbm {
        match self.slot_of(tx, rx) {
            Some(slot) => {
                let (d, pl) = self.slot_link(slot, tx);
                let excess = self.shadowing.sample_slot(slot, tx, rx, d, now);
                tx_power - pl - excess
            }
            None => {
                let (d, pl) = self.link(tx, rx);
                let excess = self.shadowing.sample(tx, rx, d, now);
                tx_power - pl - excess
            }
        }
    }

    /// Launches a transmission at `now` from `source`, appending the
    /// signal as it will appear at every station in `source`'s audible
    /// set (in station order) to `deliveries`, powers sampled at launch
    /// (block-fading per frame).
    ///
    /// `deliveries` must arrive **empty** (debug-asserted): the old
    /// per-frame `clear()`/`reserve()` is hoisted to the caller, which
    /// sizes its pooled buffers once at construction via
    /// [`Medium::max_audible_count`], so the steady-state path neither
    /// clears nor allocates here.
    #[allow(clippy::too_many_arguments)] // the per-frame signature is flat on purpose
    pub fn transmit_into(
        &mut self,
        source: NodeId,
        tx_power: Dbm,
        rate: PhyRate,
        mpdu_bytes: u32,
        preamble: Preamble,
        now: SimTime,
        deliveries: &mut Vec<(NodeId, TxSignal)>,
    ) -> (TxId, FrameAirtime) {
        debug_assert!(
            deliveries.is_empty(),
            "transmit_into expects an empty delivery buffer"
        );
        #[cfg(debug_assertions)]
        if let CullPolicy::Audible {
            tx_power: bound, ..
        } = self.config.cull
        {
            debug_assert!(
                tx_power.0 <= bound.0,
                "transmit at {tx_power:?} exceeds the audible-set TX power bound {bound:?}"
            );
        }
        let tx_id = TxId(self.next_tx);
        self.next_tx += 1;
        let airtime = FrameAirtime::new(mpdu_bytes, rate, preamble);
        let starts_at = now + self.config.propagation_delay;
        let ends_at = starts_at + airtime.total();
        let (start, end) = self.slice_bounds(source.index());
        // One pass over the contiguous audible slice: gain read, shadowing
        // advance, and power subtraction per receiver, with the slot index
        // doubling as the shadowing-state index (no per-receiver search or
        // hashing). The arithmetic and draw order match `rx_power` on the
        // slotted path exactly.
        for slot in start..end {
            let rx = self.audible[slot];
            let (d, pl) = self.slot_link(slot, source);
            let excess = self.shadowing.sample_slot(slot, source, rx, d, now);
            deliveries.push((
                rx,
                TxSignal {
                    tx_id,
                    source,
                    rx_power: tx_power - pl - excess,
                    rate,
                    mpdu_bytes,
                    preamble,
                    starts_at,
                    ends_at,
                },
            ));
        }
        (tx_id, airtime)
    }

    /// Opens a transmission for parallel scatter: allocates the
    /// transmission id and computes the frame timing exactly as
    /// [`Medium::transmit_into`] does, but defers the per-receiver loop
    /// to [`ScatterView::fill`] workers. The job covers CSR slots
    /// `start_slot..end_slot`; the caller partitions that range across
    /// workers and commits the results in slot order.
    #[allow(clippy::too_many_arguments)] // mirrors transmit_into on purpose
    pub fn begin_scatter(
        &mut self,
        source: NodeId,
        tx_power: Dbm,
        rate: PhyRate,
        mpdu_bytes: u32,
        preamble: Preamble,
        now: SimTime,
    ) -> (ScatterJob, FrameAirtime) {
        #[cfg(debug_assertions)]
        if let CullPolicy::Audible {
            tx_power: bound, ..
        } = self.config.cull
        {
            debug_assert!(
                tx_power.0 <= bound.0,
                "transmit at {tx_power:?} exceeds the audible-set TX power bound {bound:?}"
            );
        }
        let tx_id = TxId(self.next_tx);
        self.next_tx += 1;
        let airtime = FrameAirtime::new(mpdu_bytes, rate, preamble);
        let starts_at = now + self.config.propagation_delay;
        let ends_at = starts_at + airtime.total();
        let (start_slot, end_slot) = self.slice_bounds(source.index());
        (
            ScatterJob {
                tx_id,
                source,
                start_slot,
                end_slot,
                tx_power,
                rate,
                mpdu_bytes,
                preamble,
                now,
                starts_at,
                ends_at,
            },
            airtime,
        )
    }

    /// A `Send + Sync` view for parallel [`ScatterView::fill`] calls.
    /// Takes `&mut self` so no other medium access can overlap the
    /// borrow; disjointness of the concurrent slot ranges is the
    /// caller's contract.
    pub fn scatter_view(&mut self) -> ScatterView<'_> {
        ScatterView {
            audible: &self.audible,
            slot_links: self.slot_links.as_mut_ptr(),
            positions: &self.positions,
            path_loss: self.config.path_loss,
            shadow: self.shadowing.view(),
        }
    }

    /// Classifies every kept (CSR) link under the station partition
    /// `shard_of` (one shard index per station) and reports the
    /// conservative lookahead horizon of the frontier.
    ///
    /// # Panics
    ///
    /// Panics if `shard_of.len()` differs from the station count.
    pub fn frontier_links(&self, shard_of: &[u32]) -> FrontierReport {
        assert_eq!(
            shard_of.len(),
            self.positions.len(),
            "one shard index per station"
        );
        let mut cross_links = 0usize;
        for tx in 0..self.positions.len() {
            let (start, end) = self.slice_bounds(tx);
            let home = shard_of[tx];
            for rx in &self.audible[start..end] {
                if shard_of[rx.index()] != home {
                    cross_links += 1;
                }
            }
        }
        FrontierReport {
            total_links: self.live_links,
            cross_links,
            horizon: self.config.propagation_delay,
        }
    }

    /// All station positions, indexed by station id. Movement models
    /// read this to derive the next epoch's displacements.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Applies one mobility epoch **incrementally**: moves the given
    /// stations and repairs only the link state their displacement can
    /// have touched, leaving every unmoved pair's cached geometry and
    /// shadowing state byte-for-byte intact (same bits, same RNG
    /// substream position). The result is bitwise-identical to tearing
    /// the medium down and rebuilding it at the new positions
    /// ([`Medium::commit_epoch_rebuild`] is that reference
    /// implementation; the epoch-identity tests replay every epoch both
    /// ways).
    ///
    /// The dirty set is bounded by the persistent epoch grid: a
    /// station's slice can only change if it moved or lies within the
    /// keep radius of some mover's old or new position, and the grid
    /// over-approximates exactly those neighbourhoods. Recomputation
    /// then uses the same exact-predicate slice routine as construction,
    /// so the bound being a superset costs work, never correctness.
    /// Slices are spliced in place while they fit their CSR capacity;
    /// the first growth beyond capacity triggers one compaction that
    /// re-lays the arrays with per-station slack (¼ of the live length,
    /// at least 4 slots), after which splices fit in place again.
    ///
    /// Duplicate moves of one station keep the last position; moves that
    /// leave a station's position bit-identical are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any moved [`NodeId`] is out of range.
    pub fn commit_epoch(&mut self, moves: &[(NodeId, Position)]) -> EpochChurn {
        let plan = self.apply_moves(moves);
        let mut churn = EpochChurn {
            moved: plan.moved_count,
            ..EpochChurn::default()
        };
        if plan.movers.is_empty() {
            return churn;
        }
        self.shadowing.retain_unmoved_links(&plan.moved);
        let radius = self.cull_radius;
        let n = self.positions.len();
        if radius == f64::NEG_INFINITY || n == 0 {
            return churn;
        }
        if radius == f64::INFINITY {
            self.commit_epoch_full_fanout(&plan, true, &mut churn);
            return churn;
        }
        let grid = self.take_epoch_grid(&plan, radius);
        let dirty = self.dirty_stations(&plan, &grid, radius);
        // Recompute every dirty slice first (flat arena, one slice per
        // `dirty` entry), counting churn against the old live slices;
        // only then mutate, so the capacity check can pick in-place
        // splicing vs. one whole-CSR compaction up front.
        let mut flat: Vec<(u32, f64)> = Vec::new();
        let mut ends: Vec<u32> = Vec::with_capacity(dirty.len());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        let mut fits_in_place = true;
        for &tx in &dirty {
            compute_audible_slice(
                &self.positions,
                &self.config,
                radius,
                &grid,
                tx as usize,
                &mut scratch,
            );
            let start = self.audible_offsets[tx as usize] as usize;
            let cap = self.audible_offsets[tx as usize + 1] as usize - start;
            let old_len = self.audible_lens[tx as usize] as usize;
            count_slice_churn(
                &plan.moved,
                tx as usize,
                &self.audible[start..start + old_len],
                &scratch,
                &mut churn,
            );
            fits_in_place &= scratch.len() <= cap;
            flat.extend_from_slice(&scratch);
            ends.push(flat.len() as u32);
        }
        if fits_in_place {
            self.splice_in_place(&plan.moved, &dirty, &flat, &ends);
        } else {
            churn.compactions = 1;
            self.compact_with(&plan.moved, &dirty, &flat, &ends);
        }
        self.epoch_grid = Some(grid);
        churn
    }

    /// The from-scratch reference for [`Medium::commit_epoch`]: applies
    /// the same moves, reconstructs the medium with [`Medium::new`] at
    /// the new positions, then transplants every unmoved pair's cached
    /// cell and shadowing state into the fresh CSR (relocation cannot
    /// fork a link's trajectory — the state is the same bits in a
    /// different slot). Churn counters are computed by the same
    /// accounting paths as the incremental commit, so the two modes
    /// report identical [`EpochChurn`] — which is what lets the identity
    /// tests compare whole run reports.
    ///
    /// O(N + kept links) per epoch; exists for the identity proof and as
    /// the bench baseline the ≥10× gate is measured against.
    pub fn commit_epoch_rebuild(&mut self, moves: &[(NodeId, Position)]) -> EpochChurn {
        let plan = self.apply_moves(moves);
        let mut churn = EpochChurn {
            moved: plan.moved_count,
            ..EpochChurn::default()
        };
        if plan.movers.is_empty() {
            return churn;
        }
        let radius = self.cull_radius;
        let n = self.positions.len();
        // Churn accounting first, against the still-old CSR, through the
        // exact code paths the incremental commit uses.
        let grid = if radius == f64::NEG_INFINITY || n == 0 {
            None
        } else if radius == f64::INFINITY {
            self.commit_epoch_full_fanout(&plan, false, &mut churn);
            None
        } else {
            let grid = self.take_epoch_grid(&plan, radius);
            let dirty = self.dirty_stations(&plan, &grid, radius);
            let mut scratch: Vec<(u32, f64)> = Vec::new();
            for &tx in &dirty {
                compute_audible_slice(
                    &self.positions,
                    &self.config,
                    radius,
                    &grid,
                    tx as usize,
                    &mut scratch,
                );
                let (start, end) = self.slice_bounds(tx as usize);
                count_slice_churn(
                    &plan.moved,
                    tx as usize,
                    &self.audible[start..end],
                    &scratch,
                    &mut churn,
                );
            }
            Some(grid)
        };
        // Full rebuild at the new positions, from the same (already
        // salted) master stream …
        self.shadowing.retain_unmoved_links(&plan.moved);
        let mut fresh = Medium::new(
            self.positions.clone(),
            self.shadowing.fresh_like(),
            self.config.clone(),
        );
        fresh.next_tx = self.next_tx;
        fresh.epoch_grid = grid;
        // … then transplant the surviving state: every directed link
        // whose endpoints both stayed put keeps its membership (its
        // distance is unchanged), its cached (distance, loss) bits and
        // its shadowing trajectory.
        for tx in 0..n {
            if plan.moved[tx] {
                continue;
            }
            let (start, end) = self.slice_bounds(tx);
            for slot in start..end {
                let rx = self.audible[slot];
                if plan.moved[rx.index()] {
                    continue;
                }
                let new_slot = fresh
                    .slot_of(NodeId(tx as u32), rx)
                    .expect("an unmoved pair's audible membership cannot change");
                fresh.slot_links[new_slot] = self.slot_links[slot];
                let entry = self.shadowing.take_slot(slot);
                if entry.is_some() {
                    fresh.shadowing.put_slot(new_slot, entry);
                }
            }
        }
        fresh.shadowing.adopt_links_from(&mut self.shadowing);
        *self = fresh;
        churn
    }

    /// Validates and applies the raw move list: dedups stations (last
    /// position wins), drops bit-identical no-ops, records each real
    /// mover's pre-epoch position, and updates `positions`.
    fn apply_moves(&mut self, moves: &[(NodeId, Position)]) -> EpochPlan {
        let n = self.positions.len();
        let mut moved = vec![false; n];
        let mut movers: Vec<(u32, Position)> = Vec::new();
        for &(node, to) in moves {
            let i = node.index();
            let old = self.positions[i];
            if old.x.to_bits() == to.x.to_bits() && old.y.to_bits() == to.y.to_bits() {
                continue;
            }
            if !moved[i] {
                moved[i] = true;
                movers.push((i as u32, old));
            }
            self.positions[i] = to;
        }
        movers.sort_unstable_by_key(|&(id, _)| id);
        EpochPlan {
            moved_count: movers.len() as u32,
            moved,
            movers,
        }
    }

    /// The persistent epoch grid, with every mover re-binned to its new
    /// cell — built over the current (post-move) positions on the first
    /// epoch commit, bucket-updated ever after. Taken out of `self` so
    /// the caller can hold it across borrows; put it back when done.
    fn take_epoch_grid(&mut self, plan: &EpochPlan, radius: f64) -> EpochGrid {
        match self.epoch_grid.take() {
            Some(mut grid) => {
                for &(id, ref old) in &plan.movers {
                    grid.move_id(id, old, &self.positions[id as usize]);
                }
                grid
            }
            None => EpochGrid::new(&self.positions, radius),
        }
    }

    /// The stations whose audible slice this epoch can have changed:
    /// every mover, plus every station within the keep radius of a
    /// mover's old or new position. A proven — and exact up to the
    /// movers' own neighbours — superset: an unmoved station's slice can
    /// only differ if some mover entered it, left it, or changed
    /// distance inside it, and each of those puts the station within
    /// `radius` of that mover's old or new position. Grid neighbourhoods
    /// generate the candidates (movers are binned at their new cells; a
    /// mover audible at its old cell is dirty by the first rule), the
    /// exact distance predicate then discards the 3×3-cell overhang —
    /// without the filter the dirty set is ~9/π wider and the epoch
    /// commit measurably slower at scale. Ascending station order.
    fn dirty_stations(&self, plan: &EpochPlan, grid: &EpochGrid, radius: f64) -> Vec<u32> {
        let n = self.positions.len();
        let mut dirty = vec![false; n];
        for &(id, ref old) in &plan.movers {
            dirty[id as usize] = true;
            let new = self.positions[id as usize];
            grid.for_each_neighbour(old, |t| {
                if old.distance_to(self.positions[t as usize]).0 <= radius {
                    dirty[t as usize] = true;
                }
            });
            grid.for_each_neighbour(&new, |t| {
                if new.distance_to(self.positions[t as usize]).0 <= radius {
                    dirty[t as usize] = true;
                }
            });
        }
        (0..n as u32).filter(|&t| dirty[t as usize]).collect()
    }

    /// The epoch path under [`CullPolicy::Full`] (or a horizon past
    /// `f64::MAX`): membership is "everyone else" forever, so only the
    /// cached cells and shadowing state of moved pairs need resetting —
    /// to the exact `(UNFILLED, UNFILLED)` state the Full construction
    /// branch starts every cell in. With `mutate` false only the
    /// counters are produced (the rebuild reference wants identical
    /// accounting without touching state it is about to discard).
    fn commit_epoch_full_fanout(&mut self, plan: &EpochPlan, mutate: bool, churn: &mut EpochChurn) {
        let n = self.positions.len();
        for &(id, _) in &plan.movers {
            churn.slices_recomputed += 1;
            let (start, end) = self.slice_bounds(id as usize);
            churn.links_dirtied += (end - start) as u32;
            churn.links_recomputed += (end - start) as u32;
            if mutate {
                for slot in start..end {
                    self.slot_links[slot] = (Meters(UNFILLED), Db(UNFILLED));
                    self.shadowing.clear_slot(slot);
                }
            }
        }
        for tx in 0..n as u32 {
            if plan.moved[tx as usize] {
                continue;
            }
            for &(id, _) in &plan.movers {
                if let Some(slot) = self.slot_of(NodeId(tx), NodeId(id)) {
                    churn.links_dirtied += 1;
                    churn.links_recomputed += 1;
                    if mutate {
                        self.slot_links[slot] = (Meters(UNFILLED), Db(UNFILLED));
                        self.shadowing.clear_slot(slot);
                    }
                }
            }
        }
    }

    /// Replaces each dirty slice inside its existing CSR capacity:
    /// extract the surviving (unmoved-pair) entries, write the
    /// recomputed slice with fresh `(distance, UNFILLED)` cells, then
    /// drop the survivors back onto their receivers — cached bits and
    /// shadowing state relocated, never recomputed. O(dirty slice
    /// lengths) total.
    fn splice_in_place(
        &mut self,
        moved: &[bool],
        dirty: &[u32],
        flat: &[(u32, f64)],
        ends: &[u32],
    ) {
        let mut retained: Vec<(u32, (Meters, Db), SlotEntry)> = Vec::new();
        let mut begin = 0usize;
        for (k, &tx) in dirty.iter().enumerate() {
            let new = &flat[begin..ends[k] as usize];
            begin = ends[k] as usize;
            let start = self.audible_offsets[tx as usize] as usize;
            let old_len = self.audible_lens[tx as usize] as usize;
            retained.clear();
            for i in 0..old_len {
                let slot = start + i;
                let rx = self.audible[slot];
                if moved[tx as usize] || moved[rx.index()] {
                    self.shadowing.clear_slot(slot);
                } else {
                    retained.push((rx.0, self.slot_links[slot], self.shadowing.take_slot(slot)));
                }
            }
            for (i, &(rx, d)) in new.iter().enumerate() {
                let slot = start + i;
                self.audible[slot] = NodeId(rx);
                self.slot_links[slot] = (Meters(d), Db(UNFILLED));
            }
            self.live_links -= old_len;
            self.live_links += new.len();
            self.audible_lens[tx as usize] = new.len() as u32;
            for (rx, cell, entry) in retained.drain(..) {
                let i = new
                    .binary_search_by_key(&rx, |&(r, _)| r)
                    .expect("an unmoved pair's audible membership cannot change");
                let slot = start + i;
                self.slot_links[slot] = cell;
                if entry.is_some() {
                    self.shadowing.put_slot(slot, entry);
                }
            }
        }
    }

    /// The compaction fallback: some dirty slice outgrew its capacity,
    /// so re-lay the whole CSR with per-station slack (live length + ¼,
    /// at least 4 slots), relocating every surviving entry — clean
    /// slices wholesale, dirty slices via the same survivor logic as the
    /// in-place splice — and remapping the shadowing slot store in one
    /// pass. O(N + kept links), amortized away by the slack it installs.
    fn compact_with(&mut self, moved: &[bool], dirty: &[u32], flat: &[(u32, f64)], ends: &[u32]) {
        let n = self.positions.len();
        let mut dirty_index = vec![usize::MAX; n];
        for (k, &tx) in dirty.iter().enumerate() {
            dirty_index[tx as usize] = k;
        }
        let slice_of = |k: usize| {
            let lo = if k == 0 { 0 } else { ends[k - 1] as usize };
            &flat[lo..ends[k] as usize]
        };
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u32);
        let mut new_lens = Vec::with_capacity(n);
        let mut total = 0usize;
        for (t, &dix) in dirty_index.iter().enumerate() {
            let len = match dix {
                usize::MAX => self.audible_lens[t] as usize,
                k => slice_of(k).len(),
            };
            new_lens.push(len as u32);
            total += len + (len / 4).max(4);
            new_offsets.push(total as u32);
        }
        let mut new_audible = vec![NodeId(u32::MAX); total];
        let mut new_slot_links = vec![(Meters(UNFILLED), Db(UNFILLED)); total];
        let mut slot_moves: Vec<(u32, u32)> = Vec::with_capacity(self.live_links);
        let mut live = 0usize;
        for t in 0..n {
            let old_start = self.audible_offsets[t] as usize;
            let new_start = new_offsets[t] as usize;
            match dirty_index[t] {
                usize::MAX => {
                    let len = self.audible_lens[t] as usize;
                    for i in 0..len {
                        new_audible[new_start + i] = self.audible[old_start + i];
                        new_slot_links[new_start + i] = self.slot_links[old_start + i];
                        slot_moves.push(((old_start + i) as u32, (new_start + i) as u32));
                    }
                    live += len;
                }
                k => {
                    let new = slice_of(k);
                    for (i, &(rx, d)) in new.iter().enumerate() {
                        new_audible[new_start + i] = NodeId(rx);
                        new_slot_links[new_start + i] = (Meters(d), Db(UNFILLED));
                    }
                    let old_len = self.audible_lens[t] as usize;
                    for i in 0..old_len {
                        let rx = self.audible[old_start + i];
                        if moved[t] || moved[rx.index()] {
                            continue;
                        }
                        let j = new
                            .binary_search_by_key(&rx.0, |&(r, _)| r)
                            .expect("an unmoved pair's audible membership cannot change");
                        new_slot_links[new_start + j] = self.slot_links[old_start + i];
                        slot_moves.push(((old_start + i) as u32, (new_start + j) as u32));
                    }
                    live += new.len();
                }
            }
        }
        self.shadowing.remap_slots(total, &slot_moves);
        self.audible = new_audible;
        self.slot_links = new_slot_links;
        self.audible_offsets = new_offsets;
        self.audible_lens = new_lens;
        self.live_links = live;
    }

    /// Allocating convenience form of [`Medium::transmit_into`] for tests
    /// and one-shot callers; the event loop uses the scratch-buffer form.
    /// Delegates through the same audible-list path so the two forms
    /// cannot drift.
    pub fn transmit(
        &mut self,
        source: NodeId,
        tx_power: Dbm,
        rate: PhyRate,
        mpdu_bytes: u32,
        preamble: Preamble,
        now: SimTime,
    ) -> (TxId, FrameAirtime, Vec<(NodeId, TxSignal)>) {
        let mut deliveries = Vec::new();
        let (tx_id, airtime) = self.transmit_into(
            source,
            tx_power,
            rate,
            mpdu_bytes,
            preamble,
            now,
            &mut deliveries,
        );
        (tx_id, airtime, deliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::LogDistance;
    use desim::SimRng;

    fn medium(positions: Vec<Position>, sigma_zero: bool) -> Medium {
        let day = if sigma_zero {
            DayProfile::still()
        } else {
            DayProfile::clear()
        };
        Medium::new(
            positions,
            Shadowing::new(day.clone(), SimRng::from_seed(5)),
            MediumConfig {
                path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
                day,
                propagation_delay: SimDuration::from_micros(1),
                cull: CullPolicy::Full,
            },
        )
    }

    #[test]
    fn geometry_queries() {
        let m = medium(vec![Position::on_line(0.0), Position::on_line(25.0)], true);
        assert_eq!(m.station_count(), 2);
        assert!((m.distance(NodeId(0), NodeId(1)).0 - 25.0).abs() < 1e-12);
        assert_eq!(m.propagation_delay(), SimDuration::from_micros(1));
    }

    #[test]
    fn rx_power_decreases_with_distance() {
        let mut m = medium(
            vec![
                Position::on_line(0.0),
                Position::on_line(10.0),
                Position::on_line(100.0),
            ],
            true,
        );
        let now = SimTime::ZERO;
        let near = m.rx_power(NodeId(0), NodeId(1), Dbm(15.0), now);
        let far = m.rx_power(NodeId(0), NodeId(2), Dbm(15.0), now);
        assert!(near.0 > far.0 + 25.0, "near {near} vs far {far}");
    }

    #[test]
    fn transmit_delivers_to_all_but_source() {
        let mut m = medium(
            vec![
                Position::on_line(0.0),
                Position::on_line(10.0),
                Position::on_line(20.0),
            ],
            true,
        );
        let now = SimTime::from_millis(1);
        let (tx_id, airtime, deliveries) = m.transmit(
            NodeId(1),
            Dbm(15.0),
            PhyRate::R2,
            112 / 8,
            Preamble::Long,
            now,
        );
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|(rx, _)| *rx != NodeId(1)));
        for (_, sig) in &deliveries {
            assert_eq!(sig.tx_id, tx_id);
            assert_eq!(sig.starts_at, now + SimDuration::from_micros(1));
            assert_eq!(sig.ends_at - sig.starts_at, airtime.total());
        }
        // Consecutive transmissions get distinct ids.
        let (tx_id2, ..) = m.transmit(NodeId(0), Dbm(15.0), PhyRate::R1, 20, Preamble::Long, now);
        assert_ne!(tx_id, tx_id2);
    }

    /// The link matrix is an optimization, not a behaviour change: the
    /// cached (distance, loss) must be bit-identical to recomputing from
    /// positions, and a scratch-buffer transmit must equal the allocating
    /// form — including the shadowing draws, which depend only on call
    /// order.
    #[test]
    fn link_cache_matches_naive_recomputation_bitwise() {
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(25.0),
            Position { x: 40.0, y: 30.0 },
            Position::on_line(200.0),
        ];
        let model = LogDistance::anchored_at_free_space_1m(3.0);
        for tx in 0..positions.len() {
            for rx in 0..positions.len() {
                let m = medium(positions.clone(), false);
                let (d, pl) = m.link(NodeId(tx as u32), NodeId(rx as u32));
                let naive_d = positions[tx].distance_to(positions[rx]);
                assert_eq!(d.0.to_bits(), naive_d.0.to_bits(), "{tx}->{rx} distance");
                assert_eq!(
                    pl.0.to_bits(),
                    model.path_loss(naive_d).0.to_bits(),
                    "{tx}->{rx} loss"
                );
            }
        }
        // Two identically seeded media: transmit vs transmit_into agree
        // bit-for-bit. The caller owns clearing now, mirroring World's
        // pooled-buffer discipline.
        let mut a = medium(positions.clone(), false);
        let mut b = medium(positions, false);
        let mut scratch = Vec::new();
        for frame in 0..8u64 {
            let now = SimTime::from_micros(frame * 300);
            let src = NodeId((frame % 4) as u32);
            let (id_a, air_a, dels_a) =
                a.transmit(src, Dbm(15.0), PhyRate::R11, 534, Preamble::Long, now);
            scratch.clear();
            let (id_b, air_b) = b.transmit_into(
                src,
                Dbm(15.0),
                PhyRate::R11,
                534,
                Preamble::Long,
                now,
                &mut scratch,
            );
            assert_eq!(id_a, id_b);
            assert_eq!(air_a.total(), air_b.total());
            assert_eq!(dels_a.len(), scratch.len());
            for ((rx_a, sig_a), (rx_b, sig_b)) in dels_a.iter().zip(&scratch) {
                assert_eq!(rx_a, rx_b);
                assert_eq!(sig_a.rx_power.0.to_bits(), sig_b.rx_power.0.to_bits());
                assert_eq!(sig_a.starts_at, sig_b.starts_at);
                assert_eq!(sig_a.ends_at, sig_b.ends_at);
            }
        }
    }

    fn audible_medium(positions: Vec<Position>, margin: f64) -> Medium {
        let day = DayProfile::clear();
        Medium::new(
            positions,
            Shadowing::new(day.clone(), SimRng::from_seed(5)),
            MediumConfig {
                path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
                day,
                propagation_delay: SimDuration::from_micros(1),
                cull: CullPolicy::Audible {
                    tx_power: Dbm(15.0),
                    noise_floor: Dbm(-96.6),
                    margin: Db(margin),
                },
            },
        )
    }

    #[test]
    fn audible_sets_cull_unreachable_receivers_only() {
        // With exponent 3.0 the cull horizon at margin 25 dB sits where
        // path loss exceeds 15 + 96.6 + 25 + 16 ≈ 152.6 dB → ~5.6 km.
        // One station far beyond that, three well inside.
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(50.0),
            Position::on_line(100.0),
            Position::on_line(50_000.0),
        ];
        let m = audible_medium(positions.clone(), CULL_MARGIN_DB);
        // Near stations hear each other but not the far one.
        assert_eq!(
            m.audible_set(NodeId(0)),
            &[NodeId(1), NodeId(2)],
            "far station should be culled from 0's set"
        );
        assert_eq!(m.audible_set(NodeId(3)), &[] as &[NodeId]);
        assert_eq!(m.audible_count(NodeId(1)), 2);
        assert_eq!(m.max_audible_count(), 2);
        // 12 directed links total; 6 involve the far station.
        assert_eq!(m.culled_link_count(), 6);

        // The full policy keeps everything.
        let full = medium(positions, false);
        assert_eq!(full.culled_link_count(), 0);
        assert_eq!(full.max_audible_count(), 3);
        assert_eq!(
            full.audible_set(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn transmit_scatters_over_audible_set_only() {
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(50.0),
            Position::on_line(50_000.0),
        ];
        let mut m = audible_medium(positions, CULL_MARGIN_DB);
        let now = SimTime::from_millis(1);
        let (_, _, deliveries) = m.transmit(
            NodeId(0),
            Dbm(15.0),
            PhyRate::R2,
            112 / 8,
            Preamble::Long,
            now,
        );
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].0, NodeId(1));
        // An isolated transmitter delivers to nobody.
        let (_, _, empty) = m.transmit(
            NodeId(2),
            Dbm(15.0),
            PhyRate::R2,
            112 / 8,
            Preamble::Long,
            now,
        );
        assert!(empty.is_empty());
    }

    /// Culling must never perturb the powers of the links it keeps: the
    /// kept deliveries of a culled medium are bit-identical to the same
    /// links in a full-fanout medium with the same seed, because per-link
    /// shadowing substreams are call-order independent.
    #[test]
    fn kept_links_are_bitwise_unaffected_by_culling() {
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(60.0),
            Position { x: 30.0, y: 40.0 },
            Position::on_line(40_000.0),
        ];
        let day = DayProfile::clear();
        let mk = |cull: CullPolicy| {
            Medium::new(
                positions.clone(),
                Shadowing::new(day.clone(), SimRng::from_seed(11)),
                MediumConfig {
                    path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
                    day: day.clone(),
                    propagation_delay: SimDuration::from_micros(1),
                    cull,
                },
            )
        };
        let mut full = mk(CullPolicy::Full);
        let mut culled = mk(CullPolicy::Audible {
            tx_power: Dbm(15.0),
            noise_floor: Dbm(-96.6),
            margin: Db(CULL_MARGIN_DB),
        });
        assert!(culled.culled_link_count() > 0);
        for frame in 0..6u64 {
            let now = SimTime::from_micros(frame * 500);
            let src = NodeId((frame % 3) as u32);
            let (_, _, dels_full) =
                full.transmit(src, Dbm(15.0), PhyRate::R11, 534, Preamble::Long, now);
            let (_, _, dels_culled) =
                culled.transmit(src, Dbm(15.0), PhyRate::R11, 534, Preamble::Long, now);
            for (rx, sig) in &dels_culled {
                let (_, sig_full) = dels_full
                    .iter()
                    .find(|(r, _)| r == rx)
                    .expect("kept link present in full fan-out");
                assert_eq!(
                    sig.rx_power.0.to_bits(),
                    sig_full.rx_power.0.to_bits(),
                    "kept link {src:?}->{rx:?} perturbed by culling"
                );
            }
        }
    }

    /// The grid-accelerated construction is an optimization, not a
    /// policy change: for any topology it must keep exactly the pairs the
    /// exhaustive n·(n−1) predicate scan keeps — same audible sets in the
    /// same order, same culled count, and bit-identical (distance, loss)
    /// per kept link.
    #[test]
    fn grid_cull_matches_exhaustive_scan_bitwise() {
        use crate::pathloss::DualSlope;

        // Exhaustive reference: the pre-grid per-pair construction.
        fn exhaustive(
            positions: &[Position],
            config: &MediumConfig,
        ) -> (Vec<Vec<NodeId>>, Vec<(u64, u64)>) {
            let min_excess = config.day.min_excess();
            let mut sets = Vec::new();
            let mut links = Vec::new();
            for tx in 0..positions.len() {
                let mut set = Vec::new();
                for rx in 0..positions.len() {
                    if rx == tx {
                        continue;
                    }
                    let d = positions[tx].distance_to(positions[rx]);
                    let pl = config.path_loss.path_loss(d);
                    let keep = match config.cull {
                        CullPolicy::Full => true,
                        CullPolicy::Audible {
                            tx_power,
                            noise_floor,
                            margin,
                        } => {
                            let best_case = tx_power - pl - min_excess;
                            best_case.0 >= noise_floor.0 - margin.0
                        }
                    };
                    if keep {
                        set.push(NodeId(rx as u32));
                        links.push((d.0.to_bits(), pl.0.to_bits()));
                    }
                }
                sets.push(set);
            }
            (sets, links)
        }

        // A deterministic irregular disk: golden-angle spiral.
        fn spiral(n: usize, radius: f64) -> Vec<Position> {
            (0..n)
                .map(|k| {
                    let r = radius * ((k as f64 + 0.5) / n as f64).sqrt();
                    let th = k as f64 * 2.399_963_229_728_653;
                    Position {
                        x: r * th.cos(),
                        y: r * th.sin(),
                    }
                })
                .collect()
        }

        let far_model: PathLossModel = DualSlope {
            near: LogDistance::anchored_at_free_space_1m(2.42),
            breakpoint: Meters(500.0),
            far_exponent: 4.0,
        }
        .into();
        let topologies: Vec<Vec<Position>> = vec![
            // A long chain with a finite horizon partway down it.
            (0..120)
                .map(|i| Position::on_line(i as f64 * 140.0))
                .collect(),
            // An irregular disk wider than the horizon.
            spiral(150, 9_000.0),
            // Two clusters with a gulf between them.
            (0..30)
                .map(|i| Position {
                    x: (i % 6) as f64 * 55.0 + if i >= 15 { 30_000.0 } else { 0.0 },
                    y: (i / 6 % 3) as f64 * 70.0,
                })
                .collect(),
            // Degenerate: everyone in (nearly) one spot.
            (0..8).map(|i| Position::on_line(i as f64 * 0.25)).collect(),
        ];
        let culls = [
            CullPolicy::Audible {
                tx_power: Dbm(15.0),
                noise_floor: Dbm(-96.6),
                margin: Db(CULL_MARGIN_DB),
            },
            // A margin so hostile nothing survives even at 0 m.
            CullPolicy::Audible {
                tx_power: Dbm(-400.0),
                noise_floor: Dbm(-96.6),
                margin: Db(0.0),
            },
            CullPolicy::Full,
        ];
        // Checks one medium against the exhaustive reference at its
        // *current* positions: sets, per-link bits, culled count.
        fn assert_matches_exhaustive(m: &Medium, config: &MediumConfig, tag: &str) {
            let positions = m.positions().to_vec();
            let (sets, links) = exhaustive(&positions, config);
            let mut kept = 0usize;
            for (tx, set) in sets.iter().enumerate() {
                let tx = NodeId(tx as u32);
                assert_eq!(m.audible_set(tx), set.as_slice(), "{tag} set of {tx:?}");
                for &rx in set {
                    let (d, pl) = m.link(tx, rx);
                    assert_eq!(
                        (d.0.to_bits(), pl.0.to_bits()),
                        links[kept],
                        "{tag} link {tx:?}->{rx:?}"
                    );
                    kept += 1;
                }
            }
            assert_eq!(
                m.culled_link_count(),
                positions.len() * (positions.len() - 1) - kept,
                "{tag} culled count"
            );
        }

        for positions in &topologies {
            for cull in culls {
                let day = DayProfile::clear();
                let config = MediumConfig {
                    path_loss: far_model,
                    day: day.clone(),
                    propagation_delay: SimDuration::from_micros(1),
                    cull,
                };
                let mut m = Medium::new(
                    positions.clone(),
                    Shadowing::new(day, SimRng::from_seed(9)),
                    config.clone(),
                );
                assert_matches_exhaustive(&m, &config, &format!("{cull:?} static"));
                // Post-move incremental state: arbitrary displacement
                // sequences (large jumps, sign flips, diagonal drift)
                // must leave the medium exactly what a full per-pair
                // scan over the new positions would build — proving the
                // grid candidate superset stays correct as stations
                // leave their construction-time cells (and the original
                // bounding box).
                let n = positions.len();
                for epoch in 0..3usize {
                    let mut moves = Vec::new();
                    for i in (epoch % 3..n).step_by(3) {
                        let p = m.positions()[i];
                        let sign = if (i + epoch) % 2 == 0 { 1.0 } else { -1.0 };
                        let dx = sign * (((i * 37 + epoch * 101) % 40) as f64) * 60.0;
                        let dy = -sign * (((i * 13 + epoch * 59) % 30) as f64) * 45.0;
                        moves.push((
                            NodeId(i as u32),
                            Position {
                                x: p.x + dx,
                                y: p.y + dy,
                            },
                        ));
                    }
                    m.commit_epoch(&moves);
                    assert_matches_exhaustive(&m, &config, &format!("{cull:?} epoch {epoch}"));
                }
            }
        }
    }

    /// The incremental epoch commit must be indistinguishable — bit for
    /// bit — from tearing the medium down and rebuilding it at the new
    /// positions: same audible sets, same cached link cells, same
    /// shadowing trajectories (probed by interleaved transmissions that
    /// consume RNG state between epochs), same churn counters. Covers a
    /// drifting disk, a chain with a moved block (which densifies until
    /// a slice outgrows its capacity and forces a compaction), and the
    /// degenerate full-fanout / nothing-kept culls.
    #[test]
    fn incremental_epochs_match_rebuild_bitwise() {
        fn spiral(n: usize, radius: f64) -> Vec<Position> {
            (0..n)
                .map(|k| {
                    let r = radius * ((k as f64 + 0.5) / n as f64).sqrt();
                    let th = k as f64 * 2.399_963_229_728_653;
                    Position {
                        x: r * th.cos(),
                        y: r * th.sin(),
                    }
                })
                .collect()
        }

        fn assert_same_state(inc: &Medium, reb: &Medium, tag: &str) {
            assert_eq!(inc.station_count(), reb.station_count());
            assert_eq!(inc.culled_link_count(), reb.culled_link_count(), "{tag}");
            assert_eq!(inc.max_audible_count(), reb.max_audible_count(), "{tag}");
            assert_eq!(inc.next_tx, reb.next_tx, "{tag}");
            for t in 0..inc.station_count() {
                let tx = NodeId(t as u32);
                assert_eq!(inc.audible_set(tx), reb.audible_set(tx), "{tag} set {tx:?}");
                for &rx in inc.audible_set(tx) {
                    let (di, pi) = inc.slot_links[inc.slot_of(tx, rx).unwrap()];
                    let (dr, pr) = reb.slot_links[reb.slot_of(tx, rx).unwrap()];
                    assert_eq!(di.0.to_bits(), dr.0.to_bits(), "{tag} {tx:?}->{rx:?} d");
                    assert_eq!(pi.0.to_bits(), pr.0.to_bits(), "{tag} {tx:?}->{rx:?} pl");
                }
            }
        }

        let culls = [
            CullPolicy::Audible {
                tx_power: Dbm(15.0),
                noise_floor: Dbm(-96.6),
                margin: Db(CULL_MARGIN_DB),
            },
            CullPolicy::Full,
            CullPolicy::Audible {
                tx_power: Dbm(-400.0),
                noise_floor: Dbm(-96.6),
                margin: Db(0.0),
            },
        ];
        let topologies: Vec<Vec<Position>> = vec![
            spiral(60, 9_000.0),
            (0..48)
                .map(|i| Position::on_line(i as f64 * 2_500.0))
                .collect(),
        ];
        for positions in &topologies {
            for cull in culls {
                let day = DayProfile::clear();
                let mk = || {
                    Medium::new(
                        positions.clone(),
                        Shadowing::new(day.clone(), SimRng::from_seed(33)),
                        MediumConfig {
                            path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
                            day: day.clone(),
                            propagation_delay: SimDuration::from_micros(1),
                            cull,
                        },
                    )
                };
                let mut inc = mk();
                let mut reb = mk();
                let n = positions.len();
                let mut saw_compaction = false;
                for epoch in 0..6usize {
                    // ~10% of stations drift toward the field's center —
                    // densification that eventually overflows some CSR
                    // slice — plus one no-op move and one duplicate to
                    // exercise the move-plan validation.
                    let mut moves = Vec::new();
                    for i in (epoch % 10..n).step_by(10) {
                        let p = inc.positions()[i];
                        moves.push((
                            NodeId(i as u32),
                            Position {
                                x: p.x * 0.45,
                                y: p.y * 0.45 + 80.0,
                            },
                        ));
                    }
                    let anchor = inc.positions()[(epoch + 1) % n];
                    moves.push((NodeId(((epoch + 1) % n) as u32), anchor));
                    if let Some(&first) = moves.first() {
                        moves.push(first);
                    }
                    let ci = inc.commit_epoch(&moves);
                    let cr = reb.commit_epoch_rebuild(&moves);
                    saw_compaction |= ci.compactions > 0;
                    assert_eq!(
                        EpochChurn {
                            compactions: 0,
                            ..ci
                        },
                        cr,
                        "churn diverged ({cull:?} epoch {epoch})"
                    );
                    assert_same_state(&inc, &reb, &format!("{cull:?} epoch {epoch}"));
                    // Consume shadowing state on both sides between
                    // epochs so survivors' RNG positions are live state,
                    // not fresh draws — the deliveries must stay
                    // bitwise equal.
                    let tx_power = if matches!(cull, CullPolicy::Audible { tx_power, .. } if tx_power.0 < 0.0)
                    {
                        Dbm(-400.0)
                    } else {
                        Dbm(15.0)
                    };
                    for f in 0..4u64 {
                        let now = SimTime::from_micros((epoch as u64 * 4 + f) * 700 + 1);
                        let src = NodeId(((epoch as u64 * 7 + f * 13) % n as u64) as u32);
                        let (ia, _, da) =
                            inc.transmit(src, tx_power, PhyRate::R2, 256, Preamble::Long, now);
                        let (ib, _, db) =
                            reb.transmit(src, tx_power, PhyRate::R2, 256, Preamble::Long, now);
                        assert_eq!(ia, ib);
                        assert_eq!(da.len(), db.len(), "{cull:?} epoch {epoch} frame {f}");
                        for ((rxa, sa), (rxb, sb)) in da.iter().zip(&db) {
                            assert_eq!(rxa, rxb);
                            assert_eq!(
                                sa.rx_power.0.to_bits(),
                                sb.rx_power.0.to_bits(),
                                "{cull:?} epoch {epoch} frame {f} {rxa:?}"
                            );
                        }
                    }
                }
                if matches!(cull, CullPolicy::Audible { tx_power, .. } if tx_power.0 > 0.0)
                    && n == 48
                {
                    assert!(
                        saw_compaction,
                        "the densifying chain should overflow a slice and compact"
                    );
                }
            }
        }
    }

    /// Move-plan validation: empty commits, bit-identical no-ops and
    /// duplicate entries (last position wins).
    #[test]
    fn epoch_move_plan_validates_inputs() {
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(50.0),
            Position::on_line(100.0),
        ];
        let mut m = medium(positions.clone(), false);
        assert_eq!(m.commit_epoch(&[]), EpochChurn::default());
        // A bit-identical "move" is a no-op commit.
        let noop = m.commit_epoch(&[(NodeId(1), positions[1])]);
        assert_eq!(noop, EpochChurn::default());
        // Duplicates: the last position wins, and the station counts once.
        let churn = m.commit_epoch(&[
            (NodeId(1), Position::on_line(999.0)),
            (NodeId(1), Position::on_line(60.0)),
        ]);
        assert_eq!(churn.moved, 1);
        assert_eq!(m.position(NodeId(1)).x, 60.0);
        // Full fan-out: membership never changes, only moved-pair state
        // resets (2 slice entries + 2 reverse entries here).
        assert_eq!(churn.audible_added, 0);
        assert_eq!(churn.audible_removed, 0);
        assert_eq!(churn.links_dirtied, 4);
        assert_eq!(churn.links_recomputed, 4);
    }

    /// The parallel scatter path must be an execution strategy, not a
    /// physics change: `begin_scatter` + chunked `fill` calls — in
    /// arbitrary chunk order, each chunk with its own cold memo, exactly
    /// as racing workers would execute them — produce deliveries bitwise
    /// identical to the serial `transmit_into` loop.
    #[test]
    fn chunked_scatter_fill_matches_transmit_into_bitwise() {
        let positions: Vec<Position> = (0..40)
            .map(|i| Position {
                x: (i % 8) as f64 * 35.0,
                y: (i / 8) as f64 * 35.0,
            })
            .collect();
        let mut serial = medium(positions.clone(), false);
        let mut parallel = medium(positions, false);
        let mut expect = Vec::new();
        for frame in 0..12u64 {
            let now = SimTime::from_micros(frame * 400);
            let src = NodeId((frame % 5 * 7) as u32 % 40);
            expect.clear();
            let (id_s, air_s) = serial.transmit_into(
                src,
                Dbm(15.0),
                PhyRate::R11,
                534,
                Preamble::Long,
                now,
                &mut expect,
            );
            let (job, air_p) =
                parallel.begin_scatter(src, Dbm(15.0), PhyRate::R11, 534, Preamble::Long, now);
            assert_eq!(id_s, job.tx_id);
            assert_eq!(air_s.total(), air_p.total());
            let n = job.end_slot - job.start_slot;
            assert_eq!(n, expect.len());
            let mut out: Vec<(NodeId, TxSignal)> = Vec::with_capacity(n);
            {
                let view = parallel.scatter_view();
                let base = out.spare_capacity_mut().as_mut_ptr() as *mut (NodeId, TxSignal);
                // Walk chunks in a scrambled order with a cold memo per
                // chunk, like independent workers would.
                let chunk = 7usize;
                let chunks: Vec<usize> = (0..n.div_ceil(chunk)).collect();
                for &c in chunks.iter().rev() {
                    let lo = job.start_slot + c * chunk;
                    let hi = (lo + chunk).min(job.end_slot);
                    let mut memo = Ar1Memo::new();
                    // SAFETY: chunks are disjoint; `out` has capacity n.
                    unsafe { view.fill(&job, lo..hi, base, &mut memo) };
                }
            }
            // SAFETY: every one of the n slots was written exactly once.
            unsafe { out.set_len(n) };
            for (i, ((rx_s, sig_s), (rx_p, sig_p))) in expect.iter().zip(&out).enumerate() {
                assert_eq!(rx_s, rx_p, "frame {frame} delivery {i}");
                assert_eq!(
                    sig_s.rx_power.0.to_bits(),
                    sig_p.rx_power.0.to_bits(),
                    "frame {frame} delivery {i} power"
                );
                assert_eq!(sig_s.tx_id, sig_p.tx_id);
                assert_eq!(sig_s.starts_at, sig_p.starts_at);
                assert_eq!(sig_s.ends_at, sig_p.ends_at);
            }
        }
    }

    #[test]
    fn frontier_links_classify_the_partition() {
        // Two tight clusters, mutually audible: splitting along the
        // cluster boundary leaves exactly the inter-cluster links on the
        // frontier.
        let positions = vec![
            Position::on_line(0.0),
            Position::on_line(10.0),
            Position::on_line(60.0),
            Position::on_line(70.0),
        ];
        let m = medium(positions, true);
        let all_links = 4 * 3;
        let everyone_one_shard = m.frontier_links(&[0, 0, 0, 0]);
        assert_eq!(everyone_one_shard.total_links, all_links);
        assert_eq!(everyone_one_shard.cross_links, 0);
        assert_eq!(everyone_one_shard.horizon, SimDuration::from_micros(1));
        let split = m.frontier_links(&[0, 0, 1, 1]);
        assert_eq!(split.cross_links, 8, "2×2 directed pairs × 2 directions");
        let shattered = m.frontier_links(&[0, 1, 2, 3]);
        assert_eq!(shattered.cross_links, all_links);
    }

    #[test]
    fn shadowed_link_varies_but_still_link_does_not() {
        let mut still = medium(vec![Position::on_line(0.0), Position::on_line(50.0)], true);
        let a = still.rx_power(NodeId(0), NodeId(1), Dbm(15.0), SimTime::from_secs(1));
        let b = still.rx_power(NodeId(0), NodeId(1), Dbm(15.0), SimTime::from_secs(30));
        assert_eq!(a.0, b.0);

        let mut varying = medium(vec![Position::on_line(0.0), Position::on_line(50.0)], false);
        let a = varying.rx_power(NodeId(0), NodeId(1), Dbm(15.0), SimTime::from_secs(1));
        let b = varying.rx_power(NodeId(0), NodeId(1), Dbm(15.0), SimTime::from_secs(30));
        assert_ne!(a.0, b.0, "time-varying channel should move over 29 s");
    }
}
