//! PLCP framing: the preamble and header prepended to every frame.
//!
//! The PLCP preamble + header are transmitted at basic rates regardless of
//! the body rate, so they dominate overhead at 11 Mb/s — one of the two
//! structural reasons (with contention overhead) why the paper's Table 2
//! finds **less than 44% of the nominal bandwidth usable**.

use desim::SimDuration;

use crate::rate::PhyRate;

/// PLCP preamble format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preamble {
    /// Long PLCP: 144-bit preamble + 48-bit header, all at 1 Mb/s —
    /// 192 µs. Mandatory, and the format the paper assumes.
    #[default]
    Long,
    /// Short PLCP: 72-bit preamble at 1 Mb/s + 48-bit header at 2 Mb/s —
    /// 96 µs. Optional in 802.11b; implemented for ablation experiments.
    Short,
}

impl Preamble {
    /// Total airtime of preamble + PLCP header.
    pub fn duration(self) -> SimDuration {
        match self {
            Preamble::Long => SimDuration::from_micros(192),
            Preamble::Short => SimDuration::from_micros(96),
        }
    }
}

/// The airtime decomposition of one PHY frame: PLCP portion at basic rate,
/// body (MPDU) portion at the data rate.
///
/// # Example
///
/// ```
/// use dot11_phy::{FrameAirtime, PhyRate, Preamble};
/// // An ACK (14-byte MPDU) at 2 Mb/s: 192 + 112/2 = 248 µs.
/// let ack = FrameAirtime::new(14, PhyRate::R2, Preamble::Long);
/// assert_eq!(ack.total().as_micros(), 248);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameAirtime {
    /// Airtime of the PLCP preamble + header.
    pub plcp: SimDuration,
    /// Airtime of the MPDU at the data rate.
    pub body: SimDuration,
    /// The rate carrying the body.
    pub rate: PhyRate,
    /// MPDU length in bytes.
    pub mpdu_bytes: u32,
}

impl FrameAirtime {
    /// Computes the airtime of an `mpdu_bytes`-byte MPDU at `rate` behind
    /// the given preamble.
    pub fn new(mpdu_bytes: u32, rate: PhyRate, preamble: Preamble) -> FrameAirtime {
        FrameAirtime {
            plcp: preamble.duration(),
            body: rate.duration_of_bytes(mpdu_bytes),
            rate,
            mpdu_bytes,
        }
    }

    /// Total frame airtime.
    pub fn total(&self) -> SimDuration {
        self.plcp + self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_preamble_is_192_micros() {
        assert_eq!(Preamble::Long.duration(), SimDuration::from_micros(192));
        assert_eq!(Preamble::Short.duration(), SimDuration::from_micros(96));
    }

    #[test]
    fn paper_table1_phy_header_in_slots() {
        // Table 1 expresses PHYhdr as 9.6 slot times (slot = 20 µs).
        assert_eq!(
            Preamble::Long.duration().as_nanos(),
            (9.6 * 20_000.0) as u64
        );
    }

    #[test]
    fn data_frame_airtime_decomposes() {
        // 546-byte MPDU (512 payload + 34 MAC overhead) at 11 Mb/s.
        let air = FrameAirtime::new(546, PhyRate::R11, Preamble::Long);
        assert_eq!(air.plcp.as_micros(), 192);
        assert_eq!(air.body.as_nanos(), 397_091); // 4368 bits / 11 = 397.09 µs
        assert_eq!(air.total(), air.plcp + air.body);
    }

    #[test]
    fn short_preamble_halves_plcp_cost() {
        let long = FrameAirtime::new(100, PhyRate::R2, Preamble::Long);
        let short = FrameAirtime::new(100, PhyRate::R2, Preamble::Short);
        assert_eq!(long.body, short.body);
        assert_eq!(long.plcp - short.plcp, SimDuration::from_micros(96));
    }
}
