//! Time-correlated log-normal shadowing with per-day weather profiles.
//!
//! The paper stresses that the channel is **time-varying and asymmetric**:
//! the same link measured on different days (and within one session) shows
//! different loss (their Figure 4, footnote 4, and the non-monotonic
//! points of Figure 3). We model the deviation from deterministic path
//! loss as two per-directed-link components in dB:
//!
//! * a **slow** (session-scale) log-normal term, drawn once per link per
//!   run — antennas, ground moisture, people walking by: this is what
//!   makes two sessions at the same distance measure different loss;
//! * a **fast** Gauss–Markov (AR(1)) term with coherence time `τ`:
//!
//! ```text
//! X(t+Δ) = ρ X(t) + σ_f √(1-ρ²) N(0,1),   ρ = exp(-Δ/τ)
//! ```
//!
//! A [`DayProfile`] adds a constant weather offset and selects the random
//! stream, so "2002-12-06" and "2002-12-09" are reproducible distinct
//! days. Keying the state on the *directed* pair (a→b) yields the
//! asymmetric channels the paper observed.

use std::collections::HashMap;

use desim::{SimDuration, SimRng, SimTime};

use crate::units::{Db, Meters, NodeId};

/// Hard bound on the total random deviation (slow + fast, dB) a single
/// [`Shadowing::sample`] may return around the profile's `extra_loss`.
///
/// The deviation is clamped at *read time*; the underlying AR(1)/slow
/// state evolves unclamped, so trajectories are unchanged and only the
/// astronomically rare excursion is truncated. For every shipped profile
/// the combined σ is at most ≈2.9 dB, putting the bound past 5.5σ —
/// P(hit) < 2·10⁻⁸ per sample, far below one expected hit across all
/// golden runs. What the clamp buys is a *strict* link-budget bound: the
/// received power on a link can never exceed
/// `tx_power − path_loss − extra_loss + DEVIATION_BOUND_DB`, which is
/// what makes the audible-set culling in [`crate::Medium`] sound rather
/// than merely probabilistic (see `ARCHITECTURE.md`, "Audible sets").
pub const DEVIATION_BOUND_DB: f64 = 16.0;

/// Weather/epoch profile for a measurement day.
///
/// # Example
///
/// ```
/// use dot11_phy::DayProfile;
/// let clear = DayProfile::clear();
/// let rainy = DayProfile::rainy();
/// assert!(rainy.extra_loss.0 > clear.extra_loss.0);
/// ```
#[derive(Debug, Clone)]
pub struct DayProfile {
    /// Human-readable label, e.g. `"2002-12-06"`.
    pub name: String,
    /// Constant extra attenuation on every link (weather, humidity).
    pub extra_loss: Db,
    /// Standard deviation of the slow (per-session, per-link) component.
    pub sigma_slow: Db,
    /// Standard deviation of the fast AR(1) component.
    pub sigma_fast: Db,
    /// Coherence time of the fast component.
    pub coherence: SimDuration,
    /// Distance at which the sigmas reach full strength. Short links are
    /// line-of-sight on the open field and shadow little; the variance
    /// ramps linearly up to this distance (σ_eff = σ · min(1, d/d_full)).
    pub sigma_full_distance: Meters,
    /// Salt mixed into the random stream so different days decorrelate.
    pub seed_salt: u64,
}

impl DayProfile {
    /// A clear, dry day — the paper's 2002-12-06 session (longer ranges).
    pub fn clear() -> DayProfile {
        DayProfile {
            name: "2002-12-06 (clear)".to_owned(),
            extra_loss: Db(0.0),
            sigma_slow: Db(2.0),
            sigma_fast: Db(1.0),
            coherence: SimDuration::from_millis(300),
            sigma_full_distance: Meters(75.0),
            seed_salt: 0x2002_1206,
        }
    }

    /// A damp day — the paper's 2002-12-09 session, with visibly shorter
    /// ranges (their Figure 4).
    pub fn rainy() -> DayProfile {
        DayProfile {
            name: "2002-12-09 (damp)".to_owned(),
            extra_loss: Db(4.0),
            sigma_slow: Db(2.6),
            sigma_fast: Db(1.2),
            coherence: SimDuration::from_millis(300),
            sigma_full_distance: Meters(75.0),
            seed_salt: 0x2002_1209,
        }
    }

    /// A hypothetical still channel (no shadowing) — ablation D4: with
    /// σ = 0 the loss-vs-distance curves become knife edges, unlike the
    /// paper's gradual Figure 3 transitions.
    pub fn still() -> DayProfile {
        DayProfile {
            name: "still channel (ablation)".to_owned(),
            extra_loss: Db(0.0),
            sigma_slow: Db(0.0),
            sigma_fast: Db(0.0),
            coherence: SimDuration::from_millis(300),
            sigma_full_distance: Meters(75.0),
            seed_salt: 0,
        }
    }

    /// Lower bound (dB) on the excess loss any [`Shadowing::sample`] call
    /// under this profile can ever return, i.e. the *best case* for a
    /// receiver. With both sigmas zero the sample short-circuits to
    /// exactly `extra_loss`; otherwise the read-time clamp guarantees the
    /// random deviation never exceeds [`DEVIATION_BOUND_DB`] in the
    /// receiver's favour. [`crate::Medium`] uses this to build sound
    /// audible sets.
    pub fn min_excess(&self) -> Db {
        if self.sigma_slow.0 == 0.0 && self.sigma_fast.0 == 0.0 {
            self.extra_loss
        } else {
            Db(self.extra_loss.0 - DEVIATION_BOUND_DB)
        }
    }
}

impl Default for DayProfile {
    fn default() -> Self {
        DayProfile::clear()
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkState {
    at: SimTime,
    slow_db: f64,
    fast_db: f64,
}

/// One dense-store cell: the link's AR(1)/slow state plus its private
/// substream, or `None` before first sample. [`crate::Medium`]'s epoch
/// commit relocates these wholesale when the CSR layout changes.
pub(crate) type SlotEntry = Option<(LinkState, SimRng)>;

/// Initializes the state for the directed link `tx → rx`: derive the
/// link's substream from the 15-byte `"shadow/" + tx + rx` label and draw
/// the slow then fast components, exactly as every prior revision did —
/// the label bytes and draw order are load-bearing for byte-identity.
fn init_link_state(
    master: &SimRng,
    tx: NodeId,
    rx: NodeId,
    slow: f64,
    fast: f64,
    now: SimTime,
) -> (LinkState, SimRng) {
    let mut label = [0u8; 15];
    label[..7].copy_from_slice(b"shadow/");
    label[7..11].copy_from_slice(&tx.0.to_le_bytes());
    label[11..15].copy_from_slice(&rx.0.to_le_bytes());
    let mut rng = master.substream(&label);
    let slow_db = rng.gen_normal(0.0, slow);
    let fast_db = rng.gen_normal(0.0, fast);
    (
        LinkState {
            at: now,
            slow_db,
            fast_db,
        },
        rng,
    )
}

/// Advances the AR(1) fast component to `now` and returns the clamped
/// total excess loss. `memo` caches `(ρ, √(1-ρ²))` keyed on the raw bits
/// of `dt`: every audible link of one transmitter advances with the same
/// `dt` (links are only sampled when that station transmits), so one
/// `exp`+`sqrt` pair serves the whole scatter slice. The innovation is
/// still drawn per link, keeping the sample stream byte-identical.
fn advance_and_read(
    state: &mut LinkState,
    rng: &mut SimRng,
    extra_loss: f64,
    fast: f64,
    tau: f64,
    now: SimTime,
    memo: &mut Option<(u64, f64, f64)>,
) -> Db {
    let dt = now.saturating_duration_since(state.at).as_secs_f64();
    if dt > 0.0 && fast > 0.0 {
        let (rho, root) = match *memo {
            Some((bits, rho, root)) if bits == dt.to_bits() => (rho, root),
            _ => {
                let rho = (-dt / tau).exp();
                let root = (1.0 - rho * rho).sqrt();
                *memo = Some((dt.to_bits(), rho, root));
                (rho, root)
            }
        };
        let innov = fast * root;
        state.fast_db = rho * state.fast_db + rng.gen_normal(0.0, innov.max(0.0));
        state.at = now;
    }
    let deviation = (state.slow_db + state.fast_db).clamp(-DEVIATION_BOUND_DB, DEVIATION_BOUND_DB);
    Db(extra_loss + deviation)
}

/// A caller-owned AR(1) coefficient memo: `(dt_bits, ρ, √(1-ρ²))`.
///
/// [`Shadowing`] keeps one of these internally for the serial scatter
/// path (every audible link of one transmitter advances with the same
/// `dt`, so one `exp`+`sqrt` pair serves the whole slice). Parallel
/// scatter workers each own one instead — the memo only short-circuits
/// *recomputation* of a pure function of `dt`, so per-worker memos
/// produce bit-identical samples to the shared one.
#[derive(Debug, Default, Clone)]
pub struct Ar1Memo(Option<(u64, f64, f64)>);

impl Ar1Memo {
    /// An empty memo (first use pays the `exp`+`sqrt`).
    pub fn new() -> Ar1Memo {
        Ar1Memo(None)
    }
}

/// Samples the slot-stored link `tx → rx` at `now`: the one shadowing
/// process shared — deliberately, as the single source of truth — by
/// [`Shadowing::sample_slot`] (serial, `&mut self`) and
/// [`ShadowView::sample_slot`] (parallel, disjoint raw slots), so the
/// two paths cannot drift. All profile scalars arrive precomputed.
#[allow(clippy::too_many_arguments)] // flat on purpose: the hot per-receiver call
#[inline]
fn sample_slot_entry(
    entry: &mut Option<(LinkState, SimRng)>,
    master: &SimRng,
    tx: NodeId,
    rx: NodeId,
    distance: Meters,
    now: SimTime,
    extra_loss: f64,
    sigma_slow: f64,
    sigma_fast: f64,
    sigma_full_distance: f64,
    tau: f64,
    memo: &mut Ar1Memo,
) -> Db {
    let scale = (distance.0 / sigma_full_distance.max(1e-9)).clamp(0.0, 1.0);
    let slow = sigma_slow * scale;
    let fast = sigma_fast * scale;
    if slow == 0.0 && fast == 0.0 {
        return Db(extra_loss);
    }
    let (state, rng) =
        entry.get_or_insert_with(|| init_link_state(master, tx, rx, slow, fast, now));
    advance_and_read(state, rng, extra_loss, fast, tau, now, &mut memo.0)
}

/// A `Send + Sync` window onto a [`Shadowing`]'s dense slot store for
/// parallel scatter: raw slot access plus copies of the profile scalars.
///
/// Obtained via [`Shadowing::view`]; the lifetime pins the owning
/// process, but disjointness of concurrent slot access is the caller's
/// obligation (see [`ShadowView::sample_slot`]).
#[derive(Debug, Clone, Copy)]
pub struct ShadowView<'a> {
    slots: *mut Option<(LinkState, SimRng)>,
    len: usize,
    master: &'a SimRng,
    extra_loss: f64,
    sigma_slow: f64,
    sigma_fast: f64,
    sigma_full_distance: f64,
    tau: f64,
}

// SAFETY: the raw slot pointer is only dereferenced inside
// `sample_slot`, whose contract requires disjoint slots across
// concurrent callers; everything else is shared-read scalars.
unsafe impl Send for ShadowView<'_> {}
unsafe impl Sync for ShadowView<'_> {}

impl ShadowView<'_> {
    /// Same process as [`Shadowing::sample_slot`] — both delegate to one
    /// shared helper — with the link state read through the raw slot
    /// pointer and the AR(1) memo owned by the caller.
    ///
    /// # Safety
    ///
    /// No two concurrent calls (on any clone of this view) may pass the
    /// same `slot`, and the `Shadowing` this view was created from must
    /// not be used while any call is live.
    pub unsafe fn sample_slot(
        &self,
        slot: usize,
        tx: NodeId,
        rx: NodeId,
        distance: Meters,
        now: SimTime,
        memo: &mut Ar1Memo,
    ) -> Db {
        debug_assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        // SAFETY: slot is in bounds (the view was built from the live
        // slot store) and the caller guarantees exclusive access to it.
        let entry = unsafe { &mut *self.slots.add(slot) };
        sample_slot_entry(
            entry,
            self.master,
            tx,
            rx,
            distance,
            now,
            self.extra_loss,
            self.sigma_slow,
            self.sigma_fast,
            self.sigma_full_distance,
            self.tau,
            memo,
        )
    }
}

/// The per-link shadowing process for one simulation run.
///
/// Link state lives in one of two stores, and each directed link uses
/// exactly one of them for its whole lifetime (the AR(1) state is
/// sequential, so splitting a link across stores would fork its stream):
///
/// * a dense `slots` lane indexed by the owning [`crate::Medium`]'s CSR
///   audible slot — the hot scatter path, no hashing;
/// * a `HashMap` fallback for arbitrary pairs outside the audible sets
///   (probes, tests, culled links queried directly).
#[derive(Debug)]
pub struct Shadowing {
    profile: DayProfile,
    master: SimRng,
    links: HashMap<(NodeId, NodeId), (LinkState, SimRng)>,
    slots: Vec<Option<(LinkState, SimRng)>>,
    ar1_memo: Ar1Memo,
}

impl Shadowing {
    /// Creates the process for `profile`, deriving all link streams from
    /// `master` (pass a substream of the run's master seed).
    pub fn new(profile: DayProfile, master: SimRng) -> Shadowing {
        let master = master.substream(&profile.seed_salt.to_le_bytes());
        Shadowing {
            profile,
            master,
            links: HashMap::new(),
            slots: Vec::new(),
            ar1_memo: Ar1Memo::new(),
        }
    }

    /// The active day profile.
    pub fn profile(&self) -> &DayProfile {
        &self.profile
    }

    /// Sizes the dense slot store. Called once by [`crate::Medium`] with
    /// the total CSR audible-slot count; slots initialize lazily on first
    /// sample.
    pub fn reserve_slots(&mut self, n: usize) {
        self.slots.resize_with(n, || None);
    }

    /// Samples the total excess loss (weather offset + shadowing) on the
    /// directed link `tx → rx` of length `distance` at time `now`.
    ///
    /// Consecutive samples on the same link are correlated with
    /// coherence time `τ`; samples on different links (including the
    /// reverse direction) are independent. Variance ramps with distance
    /// (see [`DayProfile::sigma_full_distance`]).
    ///
    /// This is the HashMap-backed path for pairs without a CSR slot; a
    /// slotted link must go through [`Shadowing::sample_slot`] instead.
    pub fn sample(&mut self, tx: NodeId, rx: NodeId, distance: Meters, now: SimTime) -> Db {
        let scale = (distance.0 / self.profile.sigma_full_distance.0.max(1e-9)).clamp(0.0, 1.0);
        let slow = self.profile.sigma_slow.0 * scale;
        let fast = self.profile.sigma_fast.0 * scale;
        if slow == 0.0 && fast == 0.0 {
            return self.profile.extra_loss;
        }
        let tau = self.profile.coherence.as_secs_f64().max(1e-9);
        let (state, rng) = self
            .links
            .entry((tx, rx))
            .or_insert_with(|| init_link_state(&self.master, tx, rx, slow, fast, now));
        advance_and_read(
            state,
            rng,
            self.profile.extra_loss.0,
            fast,
            tau,
            now,
            &mut self.ar1_memo.0,
        )
    }

    /// Same process as [`Shadowing::sample`], but the link state lives in
    /// the dense slot `slot` (the link's index in the owning `Medium`'s
    /// CSR audible arrays) — no hashing on the scatter hot path. The
    /// AR(1) memo persists across calls on the owned process (one
    /// `exp`+`sqrt` serves a whole scatter slice).
    pub fn sample_slot(
        &mut self,
        slot: usize,
        tx: NodeId,
        rx: NodeId,
        distance: Meters,
        now: SimTime,
    ) -> Db {
        let tau = self.profile.coherence.as_secs_f64().max(1e-9);
        sample_slot_entry(
            &mut self.slots[slot],
            &self.master,
            tx,
            rx,
            distance,
            now,
            self.profile.extra_loss.0,
            self.profile.sigma_slow.0,
            self.profile.sigma_fast.0,
            self.profile.sigma_full_distance.0,
            tau,
            &mut self.ar1_memo,
        )
    }

    // ---- epoch-commit support (crate-internal) ----------------------
    //
    // [`crate::Medium::commit_epoch`] relocates surviving link state when
    // the CSR layout changes and drops state whose endpoint moved. All of
    // this is mechanical slot surgery: the per-link process itself (the
    // substream label, the slow-then-fast draw order, the AR(1) advance)
    // is untouched, and `init_link_state` is a pure function of
    // `(master, tx, rx)` — which together are what make an incremental
    // epoch bitwise-identical to a from-scratch rebuild.

    /// Removes and returns the state of dense slot `slot`.
    pub(crate) fn take_slot(&mut self, slot: usize) -> SlotEntry {
        self.slots[slot].take()
    }

    /// Installs `entry` at dense slot `slot` (used to relocate a
    /// surviving link's state to its new CSR slot).
    pub(crate) fn put_slot(&mut self, slot: usize, entry: SlotEntry) {
        self.slots[slot] = entry;
    }

    /// Drops the state of dense slot `slot`: the next sample re-derives
    /// it from the master stream exactly as a fresh construction would.
    pub(crate) fn clear_slot(&mut self, slot: usize) {
        self.slots[slot] = None;
    }

    /// Rebuilds the dense store at `new_len` slots, relocating each
    /// `(from, to)` entry of `moves` and dropping everything else.
    /// Destination slots must be distinct.
    pub(crate) fn remap_slots(&mut self, new_len: usize, moves: &[(u32, u32)]) {
        let mut old = std::mem::take(&mut self.slots);
        let mut slots: Vec<SlotEntry> = Vec::new();
        slots.resize_with(new_len, || None);
        for &(from, to) in moves {
            slots[to as usize] = old[from as usize].take();
        }
        self.slots = slots;
    }

    /// Drops every HashMap-backed link whose endpoint is flagged in
    /// `moved` (indexed by station id; out-of-range ids — probe pairs
    /// tests invent — count as unmoved).
    pub(crate) fn retain_unmoved_links(&mut self, moved: &[bool]) {
        self.links.retain(|&(a, b), _| {
            !moved.get(a.index()).copied().unwrap_or(false)
                && !moved.get(b.index()).copied().unwrap_or(false)
        });
    }

    /// Moves every HashMap-backed link of `other` into `self` (the
    /// rebuild reference path transplants surviving fallback state into
    /// the freshly constructed process).
    pub(crate) fn adopt_links_from(&mut self, other: &mut Shadowing) {
        self.links.extend(other.links.drain());
    }

    /// A fresh process with the same profile and (already-salted) master
    /// stream but no link state — what a from-scratch reconstruction of
    /// the owning `Medium` starts from. Cloning the master directly is
    /// deliberate: `Shadowing::new` already applied the profile salt, so
    /// re-deriving through it would double-salt the stream.
    pub(crate) fn fresh_like(&self) -> Shadowing {
        Shadowing {
            profile: self.profile.clone(),
            master: self.master.clone(),
            links: HashMap::new(),
            slots: Vec::new(),
            ar1_memo: Ar1Memo::new(),
        }
    }

    /// A `Send + Sync` view over the dense slot store for parallel
    /// scatter. Takes `&mut self` so no other access can overlap the
    /// borrow; disjointness *between* the view's concurrent users is
    /// their contract (see [`ShadowView::sample_slot`]).
    pub fn view(&mut self) -> ShadowView<'_> {
        ShadowView {
            slots: self.slots.as_mut_ptr(),
            len: self.slots.len(),
            master: &self.master,
            extra_loss: self.profile.extra_loss.0,
            sigma_slow: self.profile.sigma_slow.0,
            sigma_fast: self.profile.sigma_fast.0,
            sigma_full_distance: self.profile.sigma_full_distance.0,
            tau: self.profile.coherence.as_secs_f64().max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(profile: DayProfile, seed: u64) -> Shadowing {
        Shadowing::new(profile, SimRng::from_seed(seed))
    }

    #[test]
    fn still_profile_is_deterministic_offset() {
        let mut s = process(DayProfile::still(), 1);
        for k in 0..10 {
            let v = s.sample(
                NodeId(0),
                NodeId(1),
                Meters(100.0),
                SimTime::from_millis(k * 10),
            );
            assert_eq!(v.0, 0.0);
        }
    }

    #[test]
    fn same_seed_reproduces_samples() {
        let mut a = process(DayProfile::clear(), 42);
        let mut b = process(DayProfile::clear(), 42);
        for k in 0..50 {
            let t = SimTime::from_millis(k * 7);
            assert_eq!(
                a.sample(NodeId(0), NodeId(1), Meters(100.0), t).0.to_bits(),
                b.sample(NodeId(0), NodeId(1), Meters(100.0), t).0.to_bits()
            );
        }
    }

    #[test]
    fn slot_and_hashmap_paths_are_bitwise_identical() {
        // The dense slot store and the HashMap fallback must realize the
        // same per-link process: same substream label, same draw order,
        // same AR(1) advance. Interleave two links with irregular lags so
        // the dt-keyed coefficient memo is exercised across links.
        let mut a = process(DayProfile::clear(), 42);
        let mut b = process(DayProfile::clear(), 42);
        b.reserve_slots(4);
        for k in 0..50u64 {
            let t = SimTime::from_millis(k * k % 97 + k * 7);
            assert_eq!(
                a.sample(NodeId(3), NodeId(9), Meters(100.0), t).0.to_bits(),
                b.sample_slot(2, NodeId(3), NodeId(9), Meters(100.0), t)
                    .0
                    .to_bits()
            );
            let t2 = SimTime::from_millis(k * 13 + 5);
            assert_eq!(
                a.sample(NodeId(9), NodeId(3), Meters(60.0), t2).0.to_bits(),
                b.sample_slot(0, NodeId(9), NodeId(3), Meters(60.0), t2)
                    .0
                    .to_bits()
            );
        }
    }

    /// Epoch commits shuffle link state between dense slots; none of the
    /// surgery primitives may fork a link's random trajectory, and a
    /// cleared slot must re-derive bitwise the state a fresh process
    /// would create (the RNG-substream invariance the incremental
    /// mobility path rests on).
    #[test]
    fn relocated_slot_state_continues_the_same_trajectory() {
        let mut a = process(DayProfile::clear(), 42);
        let mut b = process(DayProfile::clear(), 42);
        a.reserve_slots(8);
        b.reserve_slots(8);
        for k in 0..20u64 {
            let t = SimTime::from_millis(k * 11 + 3);
            assert_eq!(
                a.sample_slot(1, NodeId(4), NodeId(6), Meters(90.0), t)
                    .0
                    .to_bits(),
                b.sample_slot(1, NodeId(4), NodeId(6), Meters(90.0), t)
                    .0
                    .to_bits()
            );
        }
        // Relocate the link's state to a different slot (as an in-place
        // epoch splice does) …
        let entry = b.take_slot(1);
        b.put_slot(5, entry);
        // … then via a full remap to a larger store (as a compaction does).
        b.remap_slots(16, &[(5, 7)]);
        for k in 20..40u64 {
            let t = SimTime::from_millis(k * 11 + 3);
            assert_eq!(
                a.sample_slot(1, NodeId(4), NodeId(6), Meters(90.0), t)
                    .0
                    .to_bits(),
                b.sample_slot(7, NodeId(4), NodeId(6), Meters(90.0), t)
                    .0
                    .to_bits(),
                "relocation must not fork the trajectory"
            );
        }
        // A cleared slot re-derives from the master: bitwise the state a
        // fresh process would create for the same directed pair.
        let mut c = process(DayProfile::clear(), 42);
        c.reserve_slots(1);
        b.clear_slot(7);
        let t = SimTime::from_secs(9);
        assert_eq!(
            b.sample_slot(7, NodeId(4), NodeId(6), Meters(90.0), t)
                .0
                .to_bits(),
            c.sample_slot(0, NodeId(4), NodeId(6), Meters(90.0), t)
                .0
                .to_bits()
        );
    }

    /// The parallel view must realize the exact same per-link process as
    /// the serial slot path — including when every call uses a fresh,
    /// cold [`Ar1Memo`] (the memo only skips recomputing a pure function
    /// of `dt`, so cold and warm memos yield identical bits).
    #[test]
    fn view_path_is_bitwise_identical_to_serial_slots() {
        let mut serial = process(DayProfile::clear(), 42);
        let mut viewed = process(DayProfile::clear(), 42);
        serial.reserve_slots(6);
        viewed.reserve_slots(6);
        for k in 0..60u64 {
            let t = SimTime::from_millis(k * k % 89 + k * 5);
            let (slot, tx, rx) = match k % 3 {
                0 => (0, NodeId(3), NodeId(9)),
                1 => (4, NodeId(9), NodeId(3)),
                _ => (5, NodeId(7), NodeId(2)),
            };
            let d = Meters(40.0 + (k % 4) as f64 * 30.0);
            let want = serial.sample_slot(slot, tx, rx, d, t);
            let view = viewed.view();
            let mut memo = Ar1Memo::new();
            // SAFETY: single-threaded; no overlapping slot access.
            let got = unsafe { view.sample_slot(slot, tx, rx, d, t, &mut memo) };
            assert_eq!(want.0.to_bits(), got.0.to_bits(), "slot {slot} at {t:?}");
        }
    }

    #[test]
    fn directions_are_independent() {
        let mut s = process(DayProfile::clear(), 42);
        let t = SimTime::from_secs(1);
        let fwd = s.sample(NodeId(0), NodeId(1), Meters(100.0), t);
        let rev = s.sample(NodeId(1), NodeId(0), Meters(100.0), t);
        assert_ne!(fwd.0, rev.0, "directed links should decorrelate");
    }

    #[test]
    fn short_lags_are_highly_correlated_long_lags_are_not() {
        // Correlation over many links: sample each link at t, t+1ms (short
        // lag) and t+10s (≫ coherence time).
        let mut s = process(DayProfile::clear(), 7);
        let mut short_pairs = Vec::new();
        let mut long_pairs = Vec::new();
        for i in 0..300u32 {
            let (a, b) = (NodeId(i), NodeId(i + 1000));
            let x0 = s.sample(a, b, Meters(100.0), SimTime::from_secs(1)).0;
            let x1 = s
                .sample(
                    a,
                    b,
                    Meters(100.0),
                    SimTime::from_secs(1) + SimDuration::from_millis(1),
                )
                .0;
            let x2 = s.sample(a, b, Meters(100.0), SimTime::from_secs(20)).0;
            short_pairs.push((x0, x1));
            long_pairs.push((x0, x2));
        }
        let corr = |pairs: &[(f64, f64)]| {
            let n = pairs.len() as f64;
            let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
            let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
            let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
            let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
            let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
            cov / (sx * sy)
        };
        let short = corr(&short_pairs);
        let long = corr(&long_pairs);
        assert!(
            short > 0.95,
            "1 ms lag should be near-perfectly correlated, got {short}"
        );
        // The fast component decorrelates over 10 s; the slow per-session
        // component persists, so the long-lag correlation settles near
        // slow² / (slow² + fast²) ≈ 0.81 for the clear profile.
        assert!(
            long < short - 0.02,
            "fast component should decay: {long} vs {short}"
        );
        assert!(
            (0.55..0.95).contains(&long),
            "slow component should persist, got {long}"
        );
    }

    #[test]
    fn marginal_std_matches_combined_sigma() {
        let mut s = process(DayProfile::clear(), 9);
        let vals: Vec<f64> = (0..2000u32)
            .map(|i| {
                s.sample(
                    NodeId(i),
                    NodeId(i + 10_000),
                    Meters(100.0),
                    SimTime::from_secs(5),
                )
                .0
            })
            .collect();
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let std = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
        let expect = (2.0f64.powi(2) + 1.0f64.powi(2)).sqrt();
        assert!(
            (std - expect).abs() < 0.3,
            "marginal std {std} should approach {expect:.2}"
        );
        assert!(
            mean.abs() < 0.3,
            "mean {mean} should be near the 0 dB offset"
        );
    }

    #[test]
    fn short_links_shadow_less_than_long_links() {
        let mut s = process(DayProfile::clear(), 21);
        let spread = |d: f64, s: &mut Shadowing| {
            let vals: Vec<f64> = (0..500u32)
                .map(|i| {
                    s.sample(
                        NodeId(i),
                        NodeId(i + 5000),
                        Meters(d),
                        SimTime::from_secs(1),
                    )
                    .0
                })
                .collect();
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt()
        };
        let near = spread(20.0, &mut s);
        let mut s2 = process(DayProfile::clear(), 21);
        let far = spread(120.0, &mut s2);
        assert!(
            near < far * 0.5,
            "20 m spread {near:.2} dB should be well below 120 m {far:.2} dB"
        );
        // Beyond sigma_full_distance the variance saturates.
        let mut s3 = process(DayProfile::clear(), 21);
        let very_far = spread(300.0, &mut s3);
        assert!(
            (very_far - far).abs() < 0.4,
            "variance saturates: {far:.2} vs {very_far:.2}"
        );
    }

    #[test]
    fn deviation_is_hard_bounded_for_every_profile() {
        for profile in [DayProfile::clear(), DayProfile::rainy()] {
            let extra = profile.extra_loss.0;
            let mut s = process(profile, 13);
            for i in 0..5000u32 {
                let v = s
                    .sample(
                        NodeId(i),
                        NodeId(i + 50_000),
                        Meters(200.0),
                        SimTime::from_secs(3),
                    )
                    .0;
                assert!(
                    (v - extra).abs() <= DEVIATION_BOUND_DB,
                    "deviation {v} escaped the ±{DEVIATION_BOUND_DB} dB bound"
                );
            }
        }
    }

    #[test]
    fn min_excess_bounds_every_sample_from_below() {
        for profile in [
            DayProfile::clear(),
            DayProfile::rainy(),
            DayProfile::still(),
        ] {
            let floor = profile.min_excess().0;
            let mut s = process(profile, 17);
            for i in 0..2000u32 {
                let v = s
                    .sample(
                        NodeId(i),
                        NodeId(i + 20_000),
                        Meters(150.0),
                        SimTime::from_secs(1),
                    )
                    .0;
                assert!(v >= floor, "sample {v} fell below min_excess {floor}");
            }
        }
        assert_eq!(DayProfile::still().min_excess().0, 0.0);
        assert_eq!(DayProfile::clear().min_excess().0, -DEVIATION_BOUND_DB);
        assert_eq!(DayProfile::rainy().min_excess().0, 4.0 - DEVIATION_BOUND_DB);
    }

    #[test]
    fn rainy_day_adds_loss_on_average() {
        let mut clear = process(DayProfile::clear(), 3);
        let mut rainy = process(DayProfile::rainy(), 3);
        let avg = |s: &mut Shadowing| {
            (0..500u32)
                .map(|i| {
                    s.sample(
                        NodeId(i),
                        NodeId(i + 1000),
                        Meters(100.0),
                        SimTime::from_secs(2),
                    )
                    .0
                })
                .sum::<f64>()
                / 500.0
        };
        let diff = avg(&mut rainy) - avg(&mut clear);
        assert!(
            diff > 2.0,
            "rainy day should average ≥2 dB extra loss, got {diff}"
        );
    }
}
