//! Bit-error-rate model for the DSSS/CCK modulations.
//!
//! The inputs are linear SINR values at the receiver; the DSSS processing
//! gain (11 MHz chip bandwidth over the data rate) converts SINR to an
//! effective per-bit Eb/N0, so the slower spreading-heavy rates tolerate
//! much lower SINR — this is what makes the 1 Mb/s range ~4× the 11 Mb/s
//! range in the paper's Table 3.
//!
//! The curves are the standard textbook/simulator forms (as used by the
//! ns-2/ns-3 802.11b error models): exact DBPSK, coherent-approximation
//! DQPSK, and union-bound-style CCK approximations. Absolute calibration
//! (noise floor, TX power) lives in `dot11-adhoc::calib`; what matters
//! here is the relative ordering and the steepness of the waterfalls.

/// DSSS chip bandwidth, Hz.
const CHIP_BANDWIDTH_HZ: f64 = 11e6;

/// Modulation schemes of the four 802.11b rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Differential BPSK (1 Mb/s), 11-chip Barker code.
    Dbpsk,
    /// Differential QPSK (2 Mb/s), 11-chip Barker code.
    Dqpsk,
    /// Complementary Code Keying, 4 bits/symbol (5.5 Mb/s).
    Cck5_5,
    /// Complementary Code Keying, 8 bits/symbol (11 Mb/s).
    Cck11,
}

impl Modulation {
    /// The bit rate carried by the modulation, b/s.
    pub fn bit_rate(self) -> f64 {
        match self {
            Modulation::Dbpsk => 1e6,
            Modulation::Dqpsk => 2e6,
            Modulation::Cck5_5 => 5.5e6,
            Modulation::Cck11 => 11e6,
        }
    }

    /// DSSS processing gain: chip bandwidth over bit rate.
    pub fn processing_gain(self) -> f64 {
        CHIP_BANDWIDTH_HZ / self.bit_rate()
    }
}

/// Complementary error function, Abramowitz & Stegun 7.1.26 applied to
/// `erfc(x) = 1 - erf(x)`; absolute error ≤ 1.5e-7, adequate for BER work.
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    if sign_negative {
        1.0 + erf
    } else {
        1.0 - erf
    }
}

/// Gaussian tail probability `Q(x) = erfc(x/√2)/2`.
fn q(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// CCK 5.5 coding gain over uncoded DQPSK: +0.5 dB as a linear factor,
/// i.e. `10^(0.5/10)`. Hoisted to a literal so the BER hot loop does not
/// re-evaluate `powf` per integration segment; a test pins the bits.
const CCK5_5_CODING_GAIN: f64 = 1.122_018_454_301_963_3;

/// CCK 11 per-bit penalty against DQPSK: −5 dB as a linear factor,
/// i.e. `10^(-5/10)`. See [`CCK5_5_CODING_GAIN`] for why it is a literal.
const CCK11_CODING_GAIN: f64 = 0.316_227_766_016_837_94;

/// Bit error probability for `modulation` at linear SINR `sinr`
/// (signal power over noise-plus-interference power, both in the chip
/// bandwidth).
///
/// Returns a value in `[0, 0.5]`; non-positive SINR returns the coin-flip
/// bound 0.5.
///
/// # Example
///
/// ```
/// use dot11_phy::{ber, Modulation};
/// // At equal SINR, faster modulations are strictly more fragile.
/// let sinr = 1.0; // 0 dB
/// assert!(ber(Modulation::Dbpsk, sinr) < ber(Modulation::Cck11, sinr));
/// ```
pub fn ber(modulation: Modulation, sinr: f64) -> f64 {
    if !sinr.is_finite() || sinr <= 0.0 {
        return 0.5;
    }
    let ebn0 = sinr * modulation.processing_gain();
    let pb = match modulation {
        // Exact non-coherent DBPSK.
        Modulation::Dbpsk => 0.5 * (-ebn0).exp(),
        // DQPSK, coherent approximation.
        Modulation::Dqpsk => q((2.0 * ebn0).sqrt()),
        // CCK 5.5: 4 bits per 8-chip symbol. The code's minimum-distance
        // gain buys ~0.5 dB over uncoded DQPSK at equal Eb/N0 (the
        // effective required-SINR then lands where the paper's ~70 m
        // 5.5 Mb/s range implies, given the rate-4/11 processing gain).
        Modulation::Cck5_5 => q((2.0 * ebn0 * CCK5_5_CODING_GAIN).sqrt()),
        // CCK 11: 8 bits per symbol and no spreading margin left; ~5 dB
        // penalty against DQPSK per bit, putting the decode threshold at
        // ~14.6 dB SINR.
        Modulation::Cck11 => q((2.0 * ebn0 * CCK11_CODING_GAIN).sqrt()),
    };
    pb.clamp(0.0, 0.5)
}

/// Probability that `bits` consecutive bits are all received correctly at
/// the given BER (independent-error assumption).
///
/// Computed in log space so a 12 000-bit frame at BER 1e-6 does not lose
/// precision.
pub fn packet_success_prob(bit_error_rate: f64, bits: u64) -> f64 {
    if bit_error_rate <= 0.0 {
        return 1.0;
    }
    if bit_error_rate >= 1.0 {
        return 0.0;
    }
    ((bits as f64) * (1.0 - bit_error_rate).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_points() {
        // erfc(0) = 1, erfc(1) ≈ 0.157299, erfc(-1) ≈ 1.842701.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn ber_is_monotone_decreasing_in_sinr() {
        for m in [
            Modulation::Dbpsk,
            Modulation::Dqpsk,
            Modulation::Cck5_5,
            Modulation::Cck11,
        ] {
            let mut prev = 0.5;
            for i in 0..200 {
                let sinr = 10f64.powf(-3.0 + i as f64 * 0.02); // -30..+10 dB
                let b = ber(m, sinr);
                assert!(b <= prev + 1e-12, "{m:?} BER not monotone at sinr {sinr}");
                assert!((0.0..=0.5).contains(&b));
                prev = b;
            }
        }
    }

    #[test]
    fn faster_modulations_need_more_sinr() {
        // Find the SINR (dB) where BER crosses 1e-5 for each modulation;
        // the thresholds must be strictly increasing with rate.
        let threshold = |m: Modulation| {
            (-300..300)
                .map(|i| i as f64 * 0.1)
                .find(|&db| ber(m, 10f64.powf(db / 10.0)) < 1e-5)
                .expect("threshold within sweep")
        };
        let t1 = threshold(Modulation::Dbpsk);
        let t2 = threshold(Modulation::Dqpsk);
        let t55 = threshold(Modulation::Cck5_5);
        let t11 = threshold(Modulation::Cck11);
        assert!(
            t1 < t2 && t2 < t55 && t55 < t11,
            "thresholds {t1} {t2} {t55} {t11}"
        );
        // The spread between 1 and 11 Mb/s should be roughly 10–16 dB —
        // that is what produces the ~4x range ratio of the paper's Table 3.
        let spread = t11 - t1;
        assert!(
            (8.0..20.0).contains(&spread),
            "1→11 Mb/s SINR spread {spread} dB"
        );
    }

    #[test]
    fn zero_or_negative_sinr_is_coin_flip() {
        assert_eq!(ber(Modulation::Dbpsk, 0.0), 0.5);
        assert_eq!(ber(Modulation::Cck11, -1.0), 0.5);
        assert_eq!(ber(Modulation::Dqpsk, f64::NAN), 0.5);
    }

    #[test]
    fn packet_success_prob_bounds_and_limits() {
        assert_eq!(packet_success_prob(0.0, 10_000), 1.0);
        assert_eq!(packet_success_prob(1.0, 1), 0.0);
        let p = packet_success_prob(1e-6, 12_000);
        assert!((p - (1.0 - 1e-6f64).powi(12_000)).abs() < 1e-9);
        // More bits, lower success.
        assert!(packet_success_prob(1e-4, 2_000) > packet_success_prob(1e-4, 10_000));
    }

    #[test]
    fn high_sinr_frames_are_effectively_error_free() {
        // 20 dB SINR at 11 Mb/s: a 1024-byte frame should survive almost
        // surely.
        let b = ber(Modulation::Cck11, 100.0);
        assert!(packet_success_prob(b, 8192 + 272) > 0.9999);
    }

    #[test]
    fn cck_coding_gain_literals_match_powf_bitwise() {
        // The hoisted constants must be the exact f64s `powf` produces,
        // or every CCK BER (and hence every golden report) would shift.
        assert_eq!(
            CCK5_5_CODING_GAIN.to_bits(),
            10f64.powf(0.5 / 10.0).to_bits(),
            "CCK 5.5 coding-gain literal drifted from 10^(0.5/10)"
        );
        assert_eq!(
            CCK11_CODING_GAIN.to_bits(),
            10f64.powf(-5.0 / 10.0).to_bits(),
            "CCK 11 coding-gain literal drifted from 10^(-5/10)"
        );
    }
}
