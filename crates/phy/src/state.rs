//! Per-station PHY state machine: locking, SINR integration, capture.
//!
//! Each station's receiver is in one of three modes — idle, receiving
//! (locked on one frame), or transmitting. Every signal on the air at the
//! station is tracked, whatever its strength: signals below the
//! carrier-sense threshold still raise the interference floor for the
//! frame being received. Reception success is decided by integrating the
//! bit-error rate over **SINR segments**: every time the interference set
//! changes, the elapsed segment's bits are charged at the segment's SINR.
//! The PLCP portion (always DBPSK at 1 Mb/s) and the body (at the data
//! rate) are accounted separately, so a frame can be "sensed but not
//! decoded" — which the MAC answers with EIFS, a behaviour central to the
//! paper's four-station asymmetries.

use desim::{SimRng, SimTime};
use dot11_trace::{NullSink, TraceRecord, TraceSink};

use crate::ber::{ber, Modulation};
use crate::medium::{TxId, TxSignal};
use crate::radio::RadioConfig;
use crate::rate::PhyRate;
use crate::units::{Dbm, MilliWatts, NodeId};

/// What `signal_start` tells the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyIndication {
    /// The receiver locked onto this frame (directly or by capture).
    pub locked: bool,
}

/// How a locked frame ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcomeKind {
    /// PLCP and body both survived: the MPDU is delivered to the MAC.
    Decoded,
    /// PLCP survived but the body was corrupted (bad FCS at the MAC).
    BodyError,
    /// The PLCP itself was lost: pure noise to the station.
    HeaderError,
}

/// The result of a completed locked reception.
#[derive(Debug, Clone, Copy)]
pub struct RxOutcome {
    /// The transmission that ended.
    pub tx_id: TxId,
    /// Its transmitter.
    pub source: NodeId,
    /// How reception ended.
    pub kind: RxOutcomeKind,
    /// Received signal power.
    pub rx_power: Dbm,
    /// Body rate of the frame.
    pub rate: PhyRate,
}

#[derive(Debug, Clone, Copy)]
struct Lock {
    tx_id: TxId,
    source: NodeId,
    signal: MilliWatts,
    rx_power: Dbm,
    rate: PhyRate,
    plcp_end: SimTime,
    ends_at: SimTime,
    plcp_log_success: f64,
    body_log_success: f64,
    last_integrated: SimTime,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Idle,
    Rx(Lock),
    Tx { until: SimTime },
}

/// Cumulative airtime split for one station, nanoseconds per category.
///
/// The first four categories are measured by the PHY alone: `tx` — own
/// transmissions; `rx` — locked on a frame (decodable or not: the "deaf"
/// time of the paper's exposed stations); `busy` — carrier sensed busy
/// without a lock; `idle` — the rest. The remaining five refine `idle_ns`
/// with the MAC's defer ledger (what the station was *doing* while the
/// radio heard nothing): NAV defer, DIFS/EIFS, backoff counting, frozen
/// backoff, and truly quiet time. The PHY fills only the first four; the
/// world merges the MAC shares in at report time, so an `Airtime` taken
/// straight from a `PhyState` has the refinement fields at zero.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct Airtime {
    /// Nanoseconds spent transmitting.
    pub tx_ns: u64,
    /// Nanoseconds spent locked in reception.
    pub rx_ns: u64,
    /// Nanoseconds carrier-busy without a lock.
    pub busy_ns: u64,
    /// Nanoseconds idle.
    pub idle_ns: u64,
    /// Idle nanoseconds spent deferring under a NAV reservation.
    pub nav_ns: u64,
    /// Idle nanoseconds spent in DIFS/EIFS deferral.
    pub difs_ns: u64,
    /// Idle nanoseconds spent counting backoff slots down.
    pub backoff_ns: u64,
    /// Idle nanoseconds holding a frozen backoff under a reservation.
    pub frozen_ns: u64,
    /// Idle nanoseconds with nothing to do at all.
    pub quiet_ns: u64,
}

/// Prints only the four PHY-measured categories. This exact rendering is
/// pinned byte-for-byte by the golden files (node reports golden through
/// their `Debug` form), so the MAC-refined fields — which partition
/// `idle_ns` rather than extend the total — are deliberately left out;
/// they surface through the accessors and the JSON reports instead.
impl std::fmt::Debug for Airtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Airtime")
            .field("tx_ns", &self.tx_ns)
            .field("rx_ns", &self.rx_ns)
            .field("busy_ns", &self.busy_ns)
            .field("idle_ns", &self.idle_ns)
            .finish()
    }
}

impl Airtime {
    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.tx_ns + self.rx_ns + self.busy_ns + self.idle_ns
    }

    /// Fraction of accounted time in reception (the deafness share).
    pub fn rx_fraction(&self) -> f64 {
        if self.total_ns() == 0 {
            0.0
        } else {
            self.rx_ns as f64 / self.total_ns() as f64
        }
    }

    /// Fraction of accounted time transmitting.
    pub fn tx_fraction(&self) -> f64 {
        if self.total_ns() == 0 {
            0.0
        } else {
            self.tx_ns as f64 / self.total_ns() as f64
        }
    }

    /// Fraction of accounted time the channel was non-idle as seen by
    /// this station (own tx + locked rx + carrier busy).
    pub fn channel_utilization(&self) -> f64 {
        if self.total_ns() == 0 {
            0.0
        } else {
            (self.tx_ns + self.rx_ns + self.busy_ns) as f64 / self.total_ns() as f64
        }
    }

    /// Sum of the MAC-refined idle categories; equals `idle_ns`
    /// bit-exactly once the world has merged the defer ledger in.
    pub fn idle_refined_ns(&self) -> u64 {
        self.nav_ns + self.difs_ns + self.backoff_ns + self.frozen_ns + self.quiet_ns
    }
}

/// Cumulative PHY-level counters for one station.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhyCounters {
    /// Frames the receiver locked onto.
    pub locks: u64,
    /// Locked frames decoded successfully.
    pub decoded: u64,
    /// Locked frames whose body was corrupted.
    pub body_errors: u64,
    /// Locked frames whose PLCP was lost.
    pub header_errors: u64,
    /// Locks stolen by a stronger late frame (capture).
    pub captures: u64,
    /// Above-threshold signals that arrived while the receiver was not
    /// idle (missed preambles — energy only).
    pub missed_preambles: u64,
    /// Frames transmitted.
    pub tx_frames: u64,
}

/// The receiver/transmitter state of one station.
///
/// Generic over a [`TraceSink`]; with the default [`NullSink`] every
/// emission site compiles away.
#[derive(Debug)]
pub struct PhyState<S: TraceSink = NullSink> {
    cfg: RadioConfig,
    rng: SimRng,
    /// Station identity, used only to stamp trace records.
    node: NodeId,
    sink: S,
    mode: Mode,
    /// Signals currently on the air, sorted by [`TxId`], stored as
    /// struct-of-arrays: the id lane indexes, the power lane sums. The
    /// lanes are parallel (same length, same order). Overlap degree is a
    /// handful at most, so flat sorted lanes beat hashing — and unlike a
    /// `HashMap` the iteration order is deterministic. Splitting the
    /// lanes keeps arrival scans and the Neumaier interference math on
    /// dense `f64` memory with no interleaved ids.
    arriving_ids: Vec<TxId>,
    arriving_powers: Vec<f64>,
    /// Running Neumaier (compensated) sum of the arriving powers:
    /// `arriving_sum` is the working sum, `arriving_comp` the accumulated
    /// rounding residual. Updated O(1) on signal start/end, which turns
    /// the O(k) re-sums in `carrier_busy` / `integrate` into adds.
    arriving_sum: f64,
    arriving_comp: f64,
    /// Memoized energy carrier-sense decision: exactly
    /// `total_arriving() >= cs_threshold`, refreshed at every accumulator
    /// mutation, so `carrier_busy` / `account_airtime` read a flag
    /// instead of re-deciding between power changes.
    energy_busy: bool,
    noise: MilliWatts,
    cs_threshold: MilliWatts,
    /// Last `sinr.to_bits()` → BER pair for the DBPSK PLCP charge in
    /// [`PhyState::integrate`]. Segment SINR only moves when the arrival
    /// set changes, so consecutive segments usually hit; keying on the
    /// exact bit pattern keeps results bit-identical to recomputation.
    plcp_ber_memo: Option<(u64, f64)>,
    /// Same memo for the body charge, additionally keyed by modulation
    /// (the body rate varies per locked frame).
    body_ber_memo: Option<(Modulation, u64, f64)>,
    counters: PhyCounters,
    airtime: Airtime,
    airtime_mark: SimTime,
}

impl PhyState {
    /// Creates the PHY for one station. `rng` should be a per-station
    /// substream of the run seed (reception draws consume it).
    pub fn new(cfg: RadioConfig, rng: SimRng) -> PhyState {
        PhyState::with_sink(cfg, rng, NodeId(0), NullSink)
    }
}

impl<S: TraceSink> PhyState<S> {
    /// Like [`PhyState::new`], but PHY-layer events (collisions) are also
    /// emitted into `sink`, stamped with `node`.
    pub fn with_sink(cfg: RadioConfig, rng: SimRng, node: NodeId, sink: S) -> PhyState<S> {
        PhyState {
            noise: cfg.noise_floor.to_milliwatts(),
            cs_threshold: cfg.cs_threshold.to_milliwatts(),
            cfg,
            rng,
            node,
            sink,
            mode: Mode::Idle,
            arriving_ids: Vec::new(),
            arriving_powers: Vec::new(),
            arriving_sum: 0.0,
            arriving_comp: 0.0,
            energy_busy: false,
            plcp_ber_memo: None,
            body_ber_memo: None,
            counters: PhyCounters::default(),
            airtime: Airtime::default(),
            airtime_mark: SimTime::ZERO,
        }
    }

    /// The radio configuration.
    pub fn config(&self) -> &RadioConfig {
        &self.cfg
    }

    /// Cumulative counters.
    pub fn counters(&self) -> PhyCounters {
        self.counters
    }

    /// The airtime split accounted so far (up to the last event; call
    /// [`PhyState::account_airtime`] first to fold in the tail).
    pub fn airtime(&self) -> Airtime {
        self.airtime
    }

    /// Folds the span since the last event into the airtime split —
    /// call once at measurement boundaries (end of run).
    pub fn account_airtime(&mut self, now: SimTime) {
        let span = now.saturating_duration_since(self.airtime_mark).as_nanos();
        self.airtime_mark = now;
        match self.mode {
            Mode::Tx { .. } => self.airtime.tx_ns += span,
            Mode::Rx(_) => self.airtime.rx_ns += span,
            Mode::Idle => {
                if self.energy_busy {
                    self.airtime.busy_ns += span;
                } else {
                    self.airtime.idle_ns += span;
                }
            }
        }
    }

    /// Physical carrier sense: busy while transmitting, receiving, or
    /// while the summed on-air signal power reaches the CS threshold.
    pub fn carrier_busy(&self) -> bool {
        match self.mode {
            Mode::Tx { .. } | Mode::Rx(_) => true,
            Mode::Idle => self.energy_busy,
        }
    }

    /// True while this station is transmitting.
    pub fn is_transmitting(&self) -> bool {
        matches!(self.mode, Mode::Tx { .. })
    }

    /// The transmission currently locked for reception, if any.
    pub fn locked_on(&self) -> Option<TxId> {
        match self.mode {
            Mode::Rx(lock) => Some(lock.tx_id),
            _ => None,
        }
    }

    /// The summed on-air power: the compensated running total, O(1).
    /// The hot paths read the memoized `energy_busy` decision instead;
    /// this accessor remains for the property tests, which compare it
    /// against naive re-sums.
    #[cfg_attr(not(test), allow(dead_code))]
    fn total_arriving(&self) -> MilliWatts {
        MilliWatts(self.arriving_sum + self.arriving_comp)
    }

    /// Folds `x` (a signed power delta, mW) into the running Neumaier
    /// sum: exact two-sum, residual into the compensation term. Also
    /// refreshes the memoized carrier-sense decision, which only moves
    /// when the accumulator does.
    #[inline]
    fn add_arriving_power(&mut self, x: f64) {
        let t = self.arriving_sum + x;
        self.arriving_comp += if self.arriving_sum.abs() >= x.abs() {
            (self.arriving_sum - t) + x
        } else {
            (x - t) + self.arriving_sum
        };
        self.arriving_sum = t;
        self.energy_busy = self.arriving_sum + self.arriving_comp >= self.cs_threshold.0;
    }

    /// A new signal reaches the antenna.
    pub fn signal_start(&mut self, sig: &TxSignal, now: SimTime) -> PhyIndication {
        self.account_airtime(now);
        self.integrate(now);
        let power = sig.rx_power.to_milliwatts();
        match self.arriving_ids.binary_search(&sig.tx_id) {
            Err(i) => {
                self.arriving_ids.insert(i, sig.tx_id);
                self.arriving_powers.insert(i, power.0);
            }
            Ok(i) => {
                // Re-announced TxId (cannot happen from `Medium`, but keep
                // the old map's last-write-wins semantics).
                let old = std::mem::replace(&mut self.arriving_powers[i], power.0);
                self.add_arriving_power(-old);
            }
        }
        self.add_arriving_power(power.0);
        let detectable = sig.rx_power.0 >= self.cfg.cs_threshold.0;
        match self.mode {
            Mode::Idle if detectable => {
                self.lock(sig, power, now);
                PhyIndication { locked: true }
            }
            Mode::Rx(lock)
                if self.cfg.capture_enabled
                    && detectable
                    && now < lock.plcp_end
                    && power.0 >= lock.signal.0 * self.cfg.capture_margin.to_linear() =>
            {
                // The stronger late arrival steals the receiver during the
                // current preamble; the old frame degrades to interference.
                self.counters.captures += 1;
                self.lock(sig, power, now);
                PhyIndication { locked: true }
            }
            _ => {
                if detectable && !matches!(self.mode, Mode::Idle) {
                    self.counters.missed_preambles += 1;
                    if S::ENABLED {
                        self.sink
                            .record(now, &TraceRecord::Collision { node: self.node.0 });
                    }
                }
                PhyIndication { locked: false }
            }
        }
    }

    fn lock(&mut self, sig: &TxSignal, power: MilliWatts, now: SimTime) {
        self.counters.locks += 1;
        self.mode = Mode::Rx(Lock {
            tx_id: sig.tx_id,
            source: sig.source,
            signal: power,
            rx_power: sig.rx_power,
            rate: sig.rate,
            plcp_end: now + sig.preamble.duration(),
            ends_at: sig.ends_at,
            plcp_log_success: 0.0,
            body_log_success: 0.0,
            last_integrated: now,
        });
    }

    /// A signal leaves the air. If it was the locked frame, the reception
    /// outcome is drawn and returned.
    pub fn signal_end(&mut self, tx_id: TxId, now: SimTime) -> Option<RxOutcome> {
        self.account_airtime(now);
        self.integrate(now);
        match self.arriving_ids.binary_search(&tx_id) {
            Ok(i) => {
                self.arriving_ids.remove(i);
                let power = self.arriving_powers.remove(i);
                if self.arriving_ids.is_empty() {
                    // Quiet antenna: pin the accumulator to exactly zero
                    // so residuals can never drift across quiet periods.
                    self.arriving_sum = 0.0;
                    self.arriving_comp = 0.0;
                    self.energy_busy =
                        self.arriving_sum + self.arriving_comp >= self.cs_threshold.0;
                } else {
                    self.add_arriving_power(-power);
                }
            }
            Err(_) => debug_assert!(false, "signal_end for unknown {tx_id:?}"),
        }
        match self.mode {
            Mode::Rx(lock) if lock.tx_id == tx_id => {
                self.mode = Mode::Idle;
                let plcp_ok = self.rng.gen_bool(lock.plcp_log_success.exp());
                let kind = if !plcp_ok {
                    self.counters.header_errors += 1;
                    RxOutcomeKind::HeaderError
                } else if self.rng.gen_bool(lock.body_log_success.exp()) {
                    self.counters.decoded += 1;
                    RxOutcomeKind::Decoded
                } else {
                    self.counters.body_errors += 1;
                    RxOutcomeKind::BodyError
                };
                Some(RxOutcome {
                    tx_id,
                    source: lock.source,
                    kind,
                    rx_power: lock.rx_power,
                    rate: lock.rate,
                })
            }
            _ => None,
        }
    }

    /// The station keys up its own transmitter until `until`.
    ///
    /// Any reception in progress is abandoned (half-duplex radio); the
    /// abandoned frame's energy keeps being tracked.
    pub fn begin_tx(&mut self, until: SimTime, now: SimTime) {
        self.account_airtime(now);
        self.integrate(now);
        self.counters.tx_frames += 1;
        self.mode = Mode::Tx { until };
    }

    /// The station's own transmission ends. Signals still on the air are
    /// energy only (their preambles were missed while transmitting).
    pub fn end_tx(&mut self, now: SimTime) {
        self.account_airtime(now);
        match self.mode {
            Mode::Tx { until } => debug_assert!(now >= until, "end_tx before keyed-up period"),
            _ => debug_assert!(false, "end_tx while not transmitting"),
        }
        self.integrate(now);
        self.mode = Mode::Idle;
    }

    /// Charges the elapsed segment's bits to the locked frame at the
    /// segment SINR.
    fn integrate(&mut self, now: SimTime) {
        let Mode::Rx(ref mut lock) = self.mode else {
            return;
        };
        if now <= lock.last_integrated {
            return;
        }
        // Interference = everything arriving minus the locked signal,
        // taken from the running compensated accumulator in O(1) instead
        // of re-summing the arrival set. The subtraction reuses the
        // Neumaier step so a lone locked signal yields exactly 0.0 and
        // residuals stay within one ulp of the naive re-sum.
        let interference = if self.arriving_ids.len() <= 1 {
            0.0
        } else {
            let x = -lock.signal.0;
            let t = self.arriving_sum + x;
            let comp = self.arriving_comp
                + if self.arriving_sum.abs() >= x.abs() {
                    (self.arriving_sum - t) + x
                } else {
                    (x - t) + self.arriving_sum
                };
            (t + comp).max(0.0)
        };
        let sinr = lock.signal.0 / (interference + self.noise.0);
        let from = lock.last_integrated;
        let to = now.min(lock.ends_at);
        if to > from {
            // PLCP portion: DBPSK at 1 Mb/s (long preamble; the short
            // preamble's 2 Mb/s header tail is approximated at 1 Mb/s).
            if from < lock.plcp_end {
                let seg_end = to.min(lock.plcp_end);
                let bits = (seg_end - from).as_micros_f64() * 1.0;
                // Memoized: segment SINR repeats whenever the arrival set
                // is unchanged between charges, skipping the exp/ln/erfc
                // pipeline with a bit-identical result.
                let b = match self.plcp_ber_memo {
                    Some((key, v)) if key == sinr.to_bits() => v,
                    _ => {
                        let v = ber(Modulation::Dbpsk, sinr);
                        self.plcp_ber_memo = Some((sinr.to_bits(), v));
                        v
                    }
                };
                lock.plcp_log_success += bits * ln_one_minus(b);
            }
            if to > lock.plcp_end {
                let seg_start = from.max(lock.plcp_end);
                let bits = (to - seg_start).as_micros_f64() * lock.rate.bits_per_micro();
                let m = lock.rate.modulation();
                let b = match self.body_ber_memo {
                    Some((sm, key, v)) if sm == m && key == sinr.to_bits() => v,
                    _ => {
                        let v = ber(m, sinr);
                        self.body_ber_memo = Some((m, sinr.to_bits(), v));
                        v
                    }
                };
                lock.body_log_success += bits * ln_one_minus(b);
            }
        }
        lock.last_integrated = now;
    }
}

/// `ln(1 - p)` with the `p → 1` singularity clamped so log-probabilities
/// stay finite.
fn ln_one_minus(p: f64) -> f64 {
    (1.0 - p).max(1e-300).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plcp::Preamble;

    fn phy() -> PhyState {
        PhyState::new(RadioConfig::default(), SimRng::from_seed(9))
    }

    fn signal(tx_id: u64, power_dbm: f64, start_us: u64, bytes: u32, rate: PhyRate) -> TxSignal {
        let starts_at = SimTime::from_micros(start_us);
        let air = crate::plcp::FrameAirtime::new(bytes, rate, Preamble::Long);
        TxSignal {
            tx_id: TxId(tx_id),
            source: NodeId(99),
            rx_power: Dbm(power_dbm),
            rate,
            mpdu_bytes: bytes,
            preamble: Preamble::Long,
            starts_at,
            ends_at: starts_at + air.total(),
        }
    }

    #[test]
    fn strong_clean_frame_decodes() {
        let mut p = phy();
        let sig = signal(0, -60.0, 0, 546, PhyRate::R11);
        assert!(p.signal_start(&sig, sig.starts_at).locked);
        assert!(p.carrier_busy());
        let out = p
            .signal_end(sig.tx_id, sig.ends_at)
            .expect("locked frame yields outcome");
        assert_eq!(out.kind, RxOutcomeKind::Decoded);
        assert_eq!(out.source, NodeId(99));
        assert!(!p.carrier_busy());
        assert_eq!(p.counters().decoded, 1);
    }

    #[test]
    fn sub_cs_threshold_signal_is_not_locked_and_not_busy() {
        let mut p = phy();
        let sig = signal(0, -110.0, 0, 546, PhyRate::R11);
        assert!(!p.signal_start(&sig, sig.starts_at).locked);
        assert!(!p.carrier_busy(), "below CS threshold must stay idle");
        assert!(p.signal_end(sig.tx_id, sig.ends_at).is_none());
    }

    #[test]
    fn sensed_but_undecodable_11mbps_frame_fails_body() {
        // Power above the CS threshold but far below the CCK11 decode
        // level: the spread-spectrum PLCP survives (processing gain 11)
        // while the 11 Mb/s body is hopeless — "sensed but not decoded",
        // which the MAC answers with EIFS.
        let mut p = phy();
        let sig = signal(0, -98.5, 0, 546, PhyRate::R11);
        assert!(p.signal_start(&sig, sig.starts_at).locked);
        assert!(p.carrier_busy());
        let out = p.signal_end(sig.tx_id, sig.ends_at).expect("outcome");
        assert_ne!(out.kind, RxOutcomeKind::Decoded);
    }

    #[test]
    fn preamble_time_interference_gives_header_error() {
        // A weak lock whose preamble is drowned by a 25 dB stronger frame
        // (capture disabled) loses the PLCP itself.
        let cfg = RadioConfig {
            capture_enabled: false,
            ..RadioConfig::default()
        };
        let mut p = PhyState::new(cfg, SimRng::from_seed(9));
        let weak = signal(0, -85.0, 0, 546, PhyRate::R11);
        let strong = signal(1, -60.0, 20, 1024, PhyRate::R11);
        assert!(p.signal_start(&weak, weak.starts_at).locked);
        assert!(!p.signal_start(&strong, strong.starts_at).locked);
        let out = p.signal_end(weak.tx_id, weak.ends_at).expect("outcome");
        assert_eq!(out.kind, RxOutcomeKind::HeaderError);
        assert_eq!(p.counters().header_errors, 1);
    }

    #[test]
    fn weak_body_at_11mbps_strong_plcp_gives_body_error() {
        // SINR ~6 dB: DBPSK (PLCP) is fine, CCK11 is hopeless.
        let mut p = phy();
        let sig = signal(0, -90.5, 0, 546, PhyRate::R11);
        assert!(p.signal_start(&sig, sig.starts_at).locked);
        let out = p.signal_end(sig.tx_id, sig.ends_at).expect("outcome");
        assert_eq!(out.kind, RxOutcomeKind::BodyError);
        // The same power decodes fine at 1 Mb/s.
        let sig2 = signal(1, -90.5, 10_000, 546, PhyRate::R1);
        assert!(p.signal_start(&sig2, sig2.starts_at).locked);
        let out2 = p.signal_end(sig2.tx_id, sig2.ends_at).expect("outcome");
        assert_eq!(out2.kind, RxOutcomeKind::Decoded);
    }

    #[test]
    fn overlapping_equal_power_frames_collide() {
        let mut p = phy();
        let a = signal(0, -70.0, 0, 1024, PhyRate::R11);
        let b = signal(1, -70.0, 100, 1024, PhyRate::R11);
        assert!(p.signal_start(&a, a.starts_at).locked);
        // b arrives during a's body: no capture (same power), pure
        // interference at SINR 0 dB.
        assert!(!p.signal_start(&b, b.starts_at).locked);
        let out = p.signal_end(a.tx_id, a.ends_at).expect("outcome");
        assert_ne!(
            out.kind,
            RxOutcomeKind::Decoded,
            "0 dB SINR body must corrupt"
        );
        assert!(
            p.signal_end(b.tx_id, b.ends_at).is_none(),
            "b was never locked"
        );
        assert_eq!(p.counters().missed_preambles, 1);
    }

    #[test]
    fn capture_during_preamble_steals_lock() {
        let mut p = phy();
        let weak = signal(0, -85.0, 0, 1024, PhyRate::R11);
        let strong = signal(1, -60.0, 50, 546, PhyRate::R11); // +25 dB, within 192 µs preamble
        assert!(p.signal_start(&weak, weak.starts_at).locked);
        assert!(
            p.signal_start(&strong, strong.starts_at).locked,
            "capture expected"
        );
        assert_eq!(p.locked_on(), Some(TxId(1)));
        assert_eq!(p.counters().captures, 1);
        // The strong frame decodes despite the weak one underneath.
        let out = p.signal_end(strong.tx_id, strong.ends_at).expect("outcome");
        assert_eq!(out.kind, RxOutcomeKind::Decoded);
        // The abandoned weak frame produces no outcome.
        assert!(p.signal_end(weak.tx_id, weak.ends_at).is_none());
    }

    #[test]
    fn capture_after_preamble_does_not_steal() {
        let mut p = phy();
        let weak = signal(0, -85.0, 0, 1024, PhyRate::R11);
        let strong = signal(1, -60.0, 300, 546, PhyRate::R11); // past 192 µs preamble
        assert!(p.signal_start(&weak, weak.starts_at).locked);
        assert!(!p.signal_start(&strong, strong.starts_at).locked);
        assert_eq!(p.locked_on(), Some(TxId(0)));
    }

    #[test]
    fn capture_can_be_disabled() {
        let cfg = RadioConfig {
            capture_enabled: false,
            ..RadioConfig::default()
        };
        let mut p = PhyState::new(cfg, SimRng::from_seed(9));
        let weak = signal(0, -85.0, 0, 1024, PhyRate::R11);
        let strong = signal(1, -60.0, 50, 546, PhyRate::R11);
        assert!(p.signal_start(&weak, weak.starts_at).locked);
        assert!(!p.signal_start(&strong, strong.starts_at).locked);
    }

    #[test]
    fn transmitting_station_ignores_preambles_but_keeps_energy() {
        let mut p = phy();
        let now = SimTime::from_micros(0);
        p.begin_tx(now + desim::SimDuration::from_micros(500), now);
        assert!(p.carrier_busy());
        assert!(p.is_transmitting());
        let sig = signal(0, -60.0, 10, 546, PhyRate::R11);
        assert!(!p.signal_start(&sig, sig.starts_at).locked);
        p.end_tx(now + desim::SimDuration::from_micros(500));
        assert!(!p.is_transmitting());
        // Energy of the missed frame still holds CS busy.
        assert!(p.carrier_busy());
        assert!(p.signal_end(sig.tx_id, sig.ends_at).is_none());
        assert!(!p.carrier_busy());
    }

    #[test]
    fn begin_tx_aborts_reception() {
        let mut p = phy();
        let sig = signal(0, -60.0, 0, 1024, PhyRate::R11);
        assert!(p.signal_start(&sig, sig.starts_at).locked);
        p.begin_tx(SimTime::from_micros(400), SimTime::from_micros(100));
        assert_eq!(p.locked_on(), None);
        assert!(
            p.signal_end(sig.tx_id, sig.ends_at).is_none(),
            "aborted rx yields nothing"
        );
    }

    #[test]
    fn airtime_accounting_splits_by_mode() {
        let mut p = phy();
        // 0..1000 µs idle, then a 546-byte 11 Mb/s frame (192+397 = 589 µs rx).
        let sig = signal(0, -60.0, 1_000, 546, PhyRate::R11);
        p.signal_start(&sig, sig.starts_at);
        p.signal_end(sig.tx_id, sig.ends_at);
        // Then transmit 300 µs.
        let t0 = sig.ends_at;
        p.begin_tx(t0 + desim::SimDuration::from_micros(300), t0);
        p.end_tx(t0 + desim::SimDuration::from_micros(300));
        let a = p.airtime();
        assert_eq!(a.idle_ns, 1_000_000, "1 ms idle before the frame");
        assert_eq!(a.rx_ns, (sig.ends_at - sig.starts_at).as_nanos());
        assert_eq!(a.tx_ns, 300_000);
        assert_eq!(a.busy_ns, 0);
        assert!((a.rx_fraction() - a.rx_ns as f64 / a.total_ns() as f64).abs() < 1e-12);
        // Folding in a tail span while idle grows only the idle bucket.
        p.account_airtime(t0 + desim::SimDuration::from_micros(800));
        assert_eq!(p.airtime().idle_ns, 1_500_000);
    }

    #[test]
    fn sub_threshold_energy_counts_as_idle_above_as_busy() {
        let mut p = phy();
        // A sub-CS-threshold signal: not busy.
        let weak = signal(0, -110.0, 0, 546, PhyRate::R1);
        p.signal_start(&weak, weak.starts_at);
        p.account_airtime(SimTime::from_micros(500));
        assert_eq!(p.airtime().busy_ns, 0);
        assert_eq!(p.airtime().idle_ns, 500_000);
        p.signal_end(weak.tx_id, weak.ends_at);
        // A sensed-but-missed frame (arrives while transmitting) leaves
        // energy that counts as busy after tx ends.
        let t0 = weak.ends_at;
        p.begin_tx(t0 + desim::SimDuration::from_micros(100), t0);
        let mid = signal(1, -60.0, t0.as_micros() + 50, 546, PhyRate::R11);
        p.signal_start(&mid, mid.starts_at);
        p.end_tx(t0 + desim::SimDuration::from_micros(100));
        let busy_before = p.airtime().busy_ns;
        p.account_airtime(t0 + desim::SimDuration::from_micros(400));
        assert_eq!(
            p.airtime().busy_ns - busy_before,
            300_000,
            "energy holds CS busy"
        );
    }

    #[test]
    fn interference_only_during_overlap_usually_spares_short_overlap() {
        // A strong frame overlapped only briefly by an equal-power
        // interferer loses only the overlapped bits; with just 1% of the
        // body overlapped at 0 dB SINR the frame still almost surely dies
        // at 0.5 BER — so instead verify the complement: interference
        // *after* the frame ended has no effect.
        let mut p = phy();
        let a = signal(0, -60.0, 0, 546, PhyRate::R11);
        assert!(p.signal_start(&a, a.starts_at).locked);
        let out = p.signal_end(a.tx_id, a.ends_at).expect("outcome");
        assert_eq!(out.kind, RxOutcomeKind::Decoded);
        let b = signal(1, -60.0, 1_000, 546, PhyRate::R11);
        let _ = p.signal_start(&b, b.starts_at);
        assert!(
            p.signal_end(b.tx_id, b.ends_at).is_some(),
            "b locked after a ended"
        );
    }

    /// Reference model of the pre-SoA arrival store: one `Vec` of
    /// `(TxId, power)` tuples plus the identical Neumaier two-sum, and the
    /// identical lock/capture comparisons. The SoA lanes must stay
    /// bitwise-equal to this model under arbitrary interleavings — which
    /// makes every decision the PHY derives from them byte-identical too.
    struct TupleModel {
        arriving: Vec<(TxId, f64)>,
        sum: f64,
        comp: f64,
    }

    impl TupleModel {
        fn add(&mut self, x: f64) {
            let t = self.sum + x;
            self.comp += if self.sum.abs() >= x.abs() {
                (self.sum - t) + x
            } else {
                (x - t) + self.sum
            };
            self.sum = t;
        }

        fn start(&mut self, tx_id: TxId, power: f64) {
            match self.arriving.binary_search_by_key(&tx_id, |e| e.0) {
                Err(i) => self.arriving.insert(i, (tx_id, power)),
                Ok(i) => {
                    let old = std::mem::replace(&mut self.arriving[i].1, power);
                    self.add(-old);
                }
            }
            self.add(power);
        }

        fn end(&mut self, tx_id: TxId) {
            if let Ok(i) = self.arriving.binary_search_by_key(&tx_id, |e| e.0) {
                let (_, power) = self.arriving.remove(i);
                if self.arriving.is_empty() {
                    self.sum = 0.0;
                    self.comp = 0.0;
                } else {
                    self.add(-power);
                }
            }
        }
    }

    #[test]
    fn soa_lanes_match_tuple_model_and_decisions_bitwise() {
        // Randomized add/remove/lock interleavings: the SoA store must
        // (a) keep its compensated sum within 1e-12 of a naive re-sum,
        // (b) hold lanes bitwise-equal to the Vec-of-tuples model, and
        // (c) make byte-identical lock/capture decisions — replicated
        // here from the model's compared quantities alone.
        let cfg = RadioConfig::default();
        let cs_dbm = cfg.cs_threshold.0;
        let capture_margin = cfg.capture_margin.to_linear();
        let mut rng = SimRng::from_seed(0x50a_2026);
        for _case in 0..100 {
            let mut p = phy();
            let mut model = TupleModel {
                arriving: Vec::new(),
                sum: 0.0,
                comp: 0.0,
            };
            // (tx_id, rx_power_dbm, plcp_end, ends_at) of the model's lock.
            let mut model_lock: Option<(TxId, f64, SimTime, SimTime)> = None;
            let mut active: Vec<(u64, f64)> = Vec::new();
            let mut next_id = 0u64;
            let mut now_us = 0u64;
            for _step in 0..80 {
                now_us += 1 + rng.gen_range_u32(0, 120) as u64;
                let now = SimTime::from_micros(now_us);
                // Drop the model's lock when its frame has left the air
                // (signal_end below resets the real PHY the same way).
                let start = active.is_empty() || rng.gen_bool(0.55);
                if start {
                    let dbm = -110.0 + 70.0 * rng.gen_f64();
                    let sig = signal(next_id, dbm, now_us, 546, PhyRate::R11);
                    let ind = p.signal_start(&sig, now);
                    let power = sig.rx_power.to_milliwatts().0;
                    model.start(sig.tx_id, power);
                    // Replicate the decision from compared quantities.
                    let detectable = dbm >= cs_dbm;
                    let expect_locked = match model_lock {
                        None => detectable,
                        Some((_, lock_dbm, plcp_end, _)) => {
                            detectable
                                && now < plcp_end
                                && power >= Dbm(lock_dbm).to_milliwatts().0 * capture_margin
                        }
                    };
                    assert_eq!(ind.locked, expect_locked, "lock/capture decision diverged");
                    if ind.locked {
                        model_lock =
                            Some((sig.tx_id, dbm, now + sig.preamble.duration(), sig.ends_at));
                    }
                    active.push((next_id, dbm));
                    next_id += 1;
                } else {
                    let i = rng.gen_range_u32(0, active.len() as u32) as usize;
                    let (id, _) = active.swap_remove(i);
                    let out = p.signal_end(TxId(id), now);
                    model.end(TxId(id));
                    let was_locked = model_lock.map(|(t, ..)| t) == Some(TxId(id));
                    assert_eq!(out.is_some(), was_locked, "outcome presence diverged");
                    if was_locked {
                        model_lock = None;
                    }
                }
                // Lanes bitwise-equal to the tuple model.
                assert_eq!(p.arriving_ids.len(), model.arriving.len());
                for (k, &(id, w)) in model.arriving.iter().enumerate() {
                    assert_eq!(p.arriving_ids[k], id);
                    assert_eq!(p.arriving_powers[k].to_bits(), w.to_bits());
                }
                assert_eq!(p.arriving_sum.to_bits(), model.sum.to_bits());
                assert_eq!(p.arriving_comp.to_bits(), model.comp.to_bits());
                // Compensated sum within 1e-12 of a naive re-sum.
                let naive: f64 = model.arriving.iter().map(|e| e.1).sum();
                let inc = p.total_arriving().0;
                if model.arriving.is_empty() {
                    assert_eq!(inc, 0.0);
                } else {
                    assert!((inc - naive).abs() <= naive * 1e-12);
                }
                // Memoized CS flag equals the from-scratch decision.
                assert_eq!(
                    p.energy_busy,
                    model.sum + model.comp >= cfg.cs_threshold.to_milliwatts().0
                );
            }
        }
    }

    #[test]
    fn incremental_arriving_sum_tracks_naive_resum() {
        // Property: across randomized signal start/end interleavings the
        // running compensated accumulator stays within a relative 1e-12
        // of a fresh re-sum over the arrival set (each individually
        // rounds at ~2^-52 per element), and pins to exactly 0.0
        // whenever the antenna goes quiet.
        let mut rng = SimRng::from_seed(0x801_2001);
        for _case in 0..200 {
            let mut p = phy();
            let mut active: Vec<(u64, SimTime)> = Vec::new();
            let mut next_id = 0u64;
            let mut now_us = 0u64;
            for _step in 0..60 {
                now_us += 1 + rng.gen_range_u32(0, 50) as u64;
                let start = active.is_empty() || rng.gen_bool(0.55);
                if start {
                    // Powers spanning ~70 dB of dynamic range so the
                    // accumulator sees both absorption (tiny + huge) and
                    // cancellation (removing the dominant term).
                    let dbm = -110.0 + 70.0 * rng.gen_f64();
                    let sig = signal(next_id, dbm, now_us, 546, PhyRate::R11);
                    let _ = p.signal_start(&sig, sig.starts_at);
                    active.push((next_id, sig.ends_at));
                    next_id += 1;
                } else {
                    let i = rng.gen_range_u32(0, active.len() as u32) as usize;
                    let (id, _) = active.swap_remove(i);
                    let _ = p.signal_end(TxId(id), SimTime::from_micros(now_us));
                }
                let naive: f64 = p.arriving_powers.iter().sum();
                let inc = p.total_arriving().0;
                if p.arriving_ids.is_empty() {
                    assert_eq!(inc, 0.0, "quiet antenna must read exactly zero");
                } else {
                    assert!(
                        (inc - naive).abs() <= naive * 1e-12,
                        "incremental {inc:e} drifted from naive {naive:e} \
                         with {} arrivals",
                        p.arriving_ids.len()
                    );
                }
                assert_eq!(p.arriving_ids.len(), p.arriving_powers.len());
            }
        }
    }
}
