//! The four 802.11b DSSS data rates and their modulations.

use desim::SimDuration;
use std::fmt;

use crate::ber::Modulation;

/// An 802.11b physical-layer data rate.
///
/// 802.11b (High-Rate DSSS) adds 5.5 and 11 Mb/s CCK rates to the original
/// 1 and 2 Mb/s DSSS rates. The *basic rate set* — rates every station can
/// decode, used by control frames and broadcast — is {1, 2} Mb/s in the
/// paper's test-bed.
///
/// # Example
///
/// ```
/// use dot11_phy::PhyRate;
/// assert_eq!(PhyRate::R11.bits_per_micro(), 11.0);
/// assert!(PhyRate::R5_5 > PhyRate::R2);
/// assert_eq!(PhyRate::R2.to_string(), "2 Mb/s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhyRate {
    /// 1 Mb/s — DBPSK, 11-chip Barker spreading.
    R1,
    /// 2 Mb/s — DQPSK, 11-chip Barker spreading.
    R2,
    /// 5.5 Mb/s — CCK, 4 bits per 8-chip symbol.
    R5_5,
    /// 11 Mb/s — CCK, 8 bits per 8-chip symbol.
    R11,
}

impl PhyRate {
    /// All rates, slowest first. Iteration order matches the paper's
    /// tables.
    pub const ALL: [PhyRate; 4] = [PhyRate::R1, PhyRate::R2, PhyRate::R5_5, PhyRate::R11];

    /// Data rate in bits per microsecond (equivalently, Mb/s).
    pub fn bits_per_micro(self) -> f64 {
        match self {
            PhyRate::R1 => 1.0,
            PhyRate::R2 => 2.0,
            PhyRate::R5_5 => 5.5,
            PhyRate::R11 => 11.0,
        }
    }

    /// Data rate in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        self.bits_per_micro() * 1e6
    }

    /// The modulation carrying this rate.
    pub fn modulation(self) -> Modulation {
        match self {
            PhyRate::R1 => Modulation::Dbpsk,
            PhyRate::R2 => Modulation::Dqpsk,
            PhyRate::R5_5 => Modulation::Cck5_5,
            PhyRate::R11 => Modulation::Cck11,
        }
    }

    /// Airtime of `bits` payload bits at this rate, rounded to the nearest
    /// nanosecond.
    pub fn duration_of_bits(self, bits: u64) -> SimDuration {
        SimDuration::from_micros_f64(bits as f64 / self.bits_per_micro())
    }

    /// Airtime of `bytes` payload bytes at this rate.
    pub fn duration_of_bytes(self, bytes: u32) -> SimDuration {
        self.duration_of_bits(bytes as u64 * 8)
    }

    /// The highest basic rate not exceeding this rate: the rate a
    /// multirate station uses for control responses (CTS/ACK) to a frame
    /// received at `self`, per the standard's "highest basic-set rate ≤
    /// the received frame's rate" rule with basic set {1, 2} Mb/s.
    pub fn control_rate(self) -> PhyRate {
        match self {
            PhyRate::R1 => PhyRate::R1,
            _ => PhyRate::R2,
        }
    }

    /// The next faster rate, if any (the rate-switching ladder).
    pub fn step_up(self) -> Option<PhyRate> {
        match self {
            PhyRate::R1 => Some(PhyRate::R2),
            PhyRate::R2 => Some(PhyRate::R5_5),
            PhyRate::R5_5 => Some(PhyRate::R11),
            PhyRate::R11 => None,
        }
    }

    /// The next slower rate, if any.
    pub fn step_down(self) -> Option<PhyRate> {
        match self {
            PhyRate::R1 => None,
            PhyRate::R2 => Some(PhyRate::R1),
            PhyRate::R5_5 => Some(PhyRate::R2),
            PhyRate::R11 => Some(PhyRate::R5_5),
        }
    }
}

impl fmt::Display for PhyRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyRate::R1 => write!(f, "1 Mb/s"),
            PhyRate::R2 => write!(f, "2 Mb/s"),
            PhyRate::R5_5 => write!(f, "5.5 Mb/s"),
            PhyRate::R11 => write!(f, "11 Mb/s"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_ordered_slowest_first() {
        let speeds: Vec<f64> = PhyRate::ALL.iter().map(|r| r.bits_per_micro()).collect();
        assert_eq!(speeds, vec![1.0, 2.0, 5.5, 11.0]);
        assert!(
            PhyRate::R1 < PhyRate::R2
                && PhyRate::R2 < PhyRate::R5_5
                && PhyRate::R5_5 < PhyRate::R11
        );
    }

    #[test]
    fn bit_durations_round_to_nanoseconds() {
        // 28 bytes at 11 Mb/s: 224/11 = 20.3636... µs → 20364 ns.
        assert_eq!(PhyRate::R11.duration_of_bytes(28).as_nanos(), 20_364);
        // 512 bytes at 1 Mb/s: exactly 4096 µs.
        assert_eq!(
            PhyRate::R1.duration_of_bytes(512),
            SimDuration::from_micros(4096)
        );
        assert_eq!(
            PhyRate::R2.duration_of_bits(112),
            SimDuration::from_micros(56)
        );
    }

    #[test]
    fn control_rate_is_highest_basic_not_above() {
        assert_eq!(PhyRate::R1.control_rate(), PhyRate::R1);
        assert_eq!(PhyRate::R2.control_rate(), PhyRate::R2);
        assert_eq!(PhyRate::R5_5.control_rate(), PhyRate::R2);
        assert_eq!(PhyRate::R11.control_rate(), PhyRate::R2);
    }

    #[test]
    fn rate_ladder_steps_are_inverse() {
        for &r in &PhyRate::ALL {
            if let Some(up) = r.step_up() {
                assert_eq!(up.step_down(), Some(r));
                assert!(up > r);
            }
            if let Some(down) = r.step_down() {
                assert_eq!(down.step_up(), Some(r));
                assert!(down < r);
            }
        }
        assert_eq!(PhyRate::R11.step_up(), None);
        assert_eq!(PhyRate::R1.step_down(), None);
    }

    #[test]
    fn modulations_match_rates() {
        assert_eq!(PhyRate::R1.modulation(), Modulation::Dbpsk);
        assert_eq!(PhyRate::R2.modulation(), Modulation::Dqpsk);
        assert_eq!(PhyRate::R5_5.modulation(), Modulation::Cck5_5);
        assert_eq!(PhyRate::R11.modulation(), Modulation::Cck11);
    }
}
