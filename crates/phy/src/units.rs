//! Physical units as newtypes: decibels, powers, distances, positions.
//!
//! Power arithmetic mixes two scales — logarithmic (dB/dBm) for link
//! budgets and linear (mW) for interference sums. Newtypes make the scale
//! explicit at every call site so a dB value can never be summed as if it
//! were milliwatts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Identifier of a station in the network (an index into the medium's
/// position table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The station index as a `usize`, for indexing node tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A power ratio in decibels (relative quantity: gains, losses, SNR).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(pub f64);

/// An absolute power level in dB-milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(pub f64);

/// An absolute power in linear milliwatts (non-negative).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MilliWatts(pub f64);

/// A distance in meters (non-negative).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Meters(pub f64);

/// A station position on the 2-D field, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

impl Db {
    /// The zero ratio (0 dB = ×1).
    pub const ZERO: Db = Db(0.0);

    /// The ratio as a linear factor: `10^(dB/10)`.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a ratio from a linear factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn from_linear(factor: f64) -> Db {
        assert!(
            factor > 0.0,
            "dB ratio requires positive factor, got {factor}"
        );
        Db(10.0 * factor.log10())
    }
}

impl Dbm {
    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }
}

impl MilliWatts {
    /// The zero power.
    pub const ZERO: MilliWatts = MilliWatts(0.0);

    /// Converts to dBm.
    ///
    /// # Panics
    ///
    /// Panics on non-positive power — the log scale has no representation
    /// for 0 mW; callers should treat absent signals as absent, not as
    /// `-inf dBm`.
    pub fn to_dbm(self) -> Dbm {
        assert!(self.0 > 0.0, "cannot express {} mW in dBm", self.0);
        Dbm(10.0 * self.0.log10())
    }

    /// True if the power is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Meters {
    /// Zero distance.
    pub const ZERO: Meters = Meters(0.0);
}

impl Position {
    /// Builds a position from east/north coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// A position on the x axis — convenient for the paper's linear
    /// (chain) topologies.
    pub const fn on_line(x: f64) -> Position {
        Position { x, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(self, other: Position) -> Meters {
        Meters(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }
}

// --- dB arithmetic -------------------------------------------------------

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}
impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}
impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}
impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}
impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}
impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

/// Applying a gain to an absolute level yields an absolute level.
impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}
/// Applying a loss to an absolute level yields an absolute level.
impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}
/// The ratio between two absolute levels is a relative quantity.
impl Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

// --- linear power arithmetic ---------------------------------------------

impl Add for MilliWatts {
    type Output = MilliWatts;
    fn add(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts(self.0 + rhs.0)
    }
}
impl AddAssign for MilliWatts {
    fn add_assign(&mut self, rhs: MilliWatts) {
        self.0 += rhs.0;
    }
}
impl Sub for MilliWatts {
    type Output = MilliWatts;
    /// Subtracts, clamping tiny negative residues (float cancellation when
    /// removing a signal from an interference sum) to zero.
    fn sub(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts((self.0 - rhs.0).max(0.0))
    }
}
impl Div for MilliWatts {
    type Output = f64;
    fn div(self, rhs: MilliWatts) -> f64 {
        self.0 / rhs.0
    }
}
impl Sum for MilliWatts {
    fn sum<I: Iterator<Item = MilliWatts>>(iter: I) -> MilliWatts {
        iter.fold(MilliWatts::ZERO, Add::add)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}
impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}
impl fmt::Display for MilliWatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} mW", self.0)
    }
}
impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} m", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_round_trip() {
        for dbm in [-90.0, -30.0, 0.0, 15.0, 20.0] {
            let p = Dbm(dbm).to_milliwatts();
            assert!(
                (p.to_dbm().0 - dbm).abs() < 1e-9,
                "round trip failed at {dbm}"
            );
        }
        assert!((Dbm(0.0).to_milliwatts().0 - 1.0).abs() < 1e-12);
        assert!((Dbm(30.0).to_milliwatts().0 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn db_linear_round_trip() {
        assert!((Db(3.0103).to_linear() - 2.0).abs() < 1e-4);
        assert!((Db::from_linear(10.0).0 - 10.0).abs() < 1e-12);
        assert!((Db::from_linear(Db(-7.5).to_linear()).0 + 7.5).abs() < 1e-9);
    }

    #[test]
    fn mixed_scale_arithmetic() {
        let tx = Dbm(15.0);
        let loss = Db(97.0);
        let rx = tx - loss;
        assert!((rx.0 + 82.0).abs() < 1e-12);
        let snr = rx - Dbm(-96.0);
        assert!((snr.0 - 14.0).abs() < 1e-12);
    }

    #[test]
    fn linear_sum_models_interference() {
        // Two equal interferers add 3 dB.
        let one = Dbm(-80.0).to_milliwatts();
        let total = one + one;
        assert!((total.to_dbm().0 + 77.0).abs() < 0.02);
        // Removing one gets us back without going negative.
        let back = total - one;
        assert!((back.0 - one.0).abs() < 1e-18);
        assert_eq!(one - total, MilliWatts::ZERO);
    }

    #[test]
    fn position_distance() {
        let a = Position::on_line(0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(b).0 - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(a), Meters::ZERO);
        // Symmetric.
        assert_eq!(a.distance_to(b), b.distance_to(a));
    }

    #[test]
    #[should_panic(expected = "cannot express")]
    fn zero_mw_has_no_dbm() {
        let _ = MilliWatts::ZERO.to_dbm();
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "S3");
        assert_eq!(NodeId(3).index(), 3);
    }
}
