//! IEEE 802.11b DSSS physical-layer model.
//!
//! This crate is the radio substrate for the ad hoc testbed reproducing
//! *"IEEE 802.11 Ad Hoc Networks: Performance Measurements"* (ICDCS-W 2003).
//! It models the pieces of the 802.11b PHY whose interplay the paper
//! measures:
//!
//! * the four DSSS/CCK rates (1, 2, 5.5, 11 Mb/s) with their modulations
//!   and, crucially, **rate-dependent receiver sensitivity** — the origin
//!   of the paper's rate-dependent transmission ranges ([`rate`], [`mod@ber`]);
//! * PLCP framing: the long preamble + header always sent at 1 Mb/s,
//!   whatever the body rate ([`plcp`]);
//! * radio propagation: deterministic path loss ([`pathloss`]) plus
//!   time-correlated log-normal shadowing with per-day weather profiles
//!   ([`shadowing`]) — reproducing the paper's time-varying, asymmetric
//!   ranges (their Figures 3–4);
//! * a per-station PHY state machine with SINR-segmented error
//!   accumulation, capture, and a **carrier-sense threshold distinct from
//!   the receive sensitivity**, so that the physical-carrier-sensing range
//!   exceeds the transmission range ([`radio`], [`state`]) — the effect
//!   behind the paper's four-station unfairness results.
//!
//! The crate is pure model: no event scheduling. The simulation driver
//! (crate `dot11-adhoc`) owns the event loop and calls into [`Medium`] and
//! [`PhyState`].
//!
//! # Example
//!
//! ```
//! use dot11_phy::{FrameAirtime, PhyRate, Preamble};
//!
//! // A 1500-byte MPDU at 11 Mb/s behind a long preamble:
//! let air = FrameAirtime::new(1500, PhyRate::R11, Preamble::Long);
//! assert_eq!(air.plcp.as_micros(), 192);
//! assert_eq!(air.total().as_micros(), 192 + 1090); // 12000 bits / 11 Mb/s
//! ```

#![warn(missing_docs)]

pub mod ber;
pub mod medium;
pub mod pathloss;
pub mod plcp;
pub mod radio;
pub mod rate;
pub mod shadowing;
pub mod state;
pub mod units;

pub use ber::{ber, packet_success_prob, Modulation};
pub use medium::{
    CullPolicy, EpochChurn, FrontierReport, Medium, MediumConfig, ScatterJob, ScatterView, TxId,
    TxSignal, CULL_MARGIN_DB,
};
pub use pathloss::{DualSlope, FreeSpace, LogDistance, PathLoss, PathLossModel, TwoRayGround};
pub use plcp::{FrameAirtime, Preamble};
pub use radio::RadioConfig;
pub use rate::PhyRate;
pub use shadowing::{Ar1Memo, DayProfile, ShadowView, Shadowing, DEVIATION_BOUND_DB};
pub use state::{Airtime, PhyIndication, PhyState, RxOutcome, RxOutcomeKind};
pub use units::{Db, Dbm, Meters, MilliWatts, NodeId, Position};
