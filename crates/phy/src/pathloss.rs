//! Deterministic (distance-dependent) path-loss models.
//!
//! The paper's key propagation finding is that real outdoor ranges are
//! 2–3× *shorter* than the ns-2 defaults of the time (250 m). The
//! reproduction uses [`LogDistance`] with an exponent calibrated so the
//! per-rate ranges land on the paper's Table 3 (see `dot11-adhoc::calib`);
//! [`FreeSpace`] and [`TwoRayGround`] are provided to reproduce the
//! ns-2-style assumptions as a comparison baseline.

use crate::units::{Db, Meters};

/// Speed of light, m/s.
const C: f64 = 299_792_458.0;

/// A deterministic path-loss model: attenuation as a function of distance.
///
/// Implementations must be monotone non-decreasing in distance; the range
/// solvers in the experiment layer rely on this.
pub trait PathLoss: std::fmt::Debug + Send + Sync {
    /// The attenuation over `distance`.
    ///
    /// Distances below 1 m are clamped to 1 m: the models' near-field
    /// behavior is unphysical and the test-bed never places stations that
    /// close.
    fn path_loss(&self, distance: Meters) -> Db;

    /// The distance at which attenuation first reaches `loss`, by
    /// bisection over `[1 m, 100 km]`. Returns `None` if the loss is not
    /// reached within that span.
    fn distance_for_loss(&self, loss: Db) -> Option<Meters> {
        let (mut lo, mut hi) = (1.0f64, 100_000.0f64);
        if self.path_loss(Meters(hi)).0 < loss.0 {
            return None;
        }
        if self.path_loss(Meters(lo)).0 >= loss.0 {
            return Some(Meters(lo));
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.path_loss(Meters(mid)).0 < loss.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Meters(hi))
    }
}

fn clamp_distance(d: Meters) -> f64 {
    d.0.max(1.0)
}

/// Free-space (Friis) path loss: `PL(d) = 20 log10(4 π d f / c)`.
///
/// # Example
///
/// ```
/// use dot11_phy::{FreeSpace, Meters, PathLoss};
/// let fs = FreeSpace::at_2_4_ghz();
/// // Free space at 2.4 GHz: ~40 dB at 1 m, +20 dB per decade.
/// assert!((fs.path_loss(Meters(1.0)).0 - 40.05).abs() < 0.1);
/// assert!((fs.path_loss(Meters(10.0)).0 - 60.05).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FreeSpace {
    /// Carrier frequency in Hz.
    pub frequency_hz: f64,
}

impl FreeSpace {
    /// Free space at the 2.4 GHz ISM band used by 802.11b.
    pub fn at_2_4_ghz() -> FreeSpace {
        FreeSpace {
            frequency_hz: 2.412e9,
        }
    }
}

impl PathLoss for FreeSpace {
    fn path_loss(&self, distance: Meters) -> Db {
        let d = clamp_distance(distance);
        Db(20.0 * (4.0 * std::f64::consts::PI * d * self.frequency_hz / C).log10())
    }
}

/// Log-distance path loss: `PL(d) = PL(d0) + 10 n log10(d/d0)`.
///
/// The workhorse model for the calibrated outdoor field. `n ≈ 2` is free
/// space; open outdoor fields with antennas near the ground measure
/// `n ≈ 2.7–3.5`.
#[derive(Debug, Clone, Copy)]
pub struct LogDistance {
    /// Reference loss at `reference_distance`.
    pub reference_loss: Db,
    /// Reference distance, usually 1 m.
    pub reference_distance: Meters,
    /// Path-loss exponent `n`.
    pub exponent: f64,
}

impl LogDistance {
    /// A log-distance model anchored at the free-space loss at 1 m for
    /// 2.4 GHz (≈40 dB), with the given exponent.
    pub fn anchored_at_free_space_1m(exponent: f64) -> LogDistance {
        LogDistance {
            reference_loss: FreeSpace::at_2_4_ghz().path_loss(Meters(1.0)),
            reference_distance: Meters(1.0),
            exponent,
        }
    }
}

impl PathLoss for LogDistance {
    fn path_loss(&self, distance: Meters) -> Db {
        let d = clamp_distance(distance).max(self.reference_distance.0);
        Db(self.reference_loss.0 + 10.0 * self.exponent * (d / self.reference_distance.0).log10())
    }
}

/// Dual-slope log-distance loss: a near region that follows an inner
/// [`LogDistance`] model up to `breakpoint`, then a steeper far region
/// with exponent `far_exponent`, continuous at the breakpoint:
///
/// ```text
/// PL(d) = near(d)                                   d ≤ breakpoint
/// PL(d) = near(breakpoint) + 10 n_far log10(d/bp)   d > breakpoint
/// ```
///
/// The large-topology scenario families use this model: within the
/// breakpoint it is *bit-identical* to the calibrated near model (so the
/// physics of any paper-scale cell is untouched), while the far region's
/// fourth-power-style roll-off gives distant stations a finite horizon —
/// the precondition for the audible-set culling in [`crate::Medium`] to
/// actually cull anything on a multi-kilometre chain.
#[derive(Debug, Clone, Copy)]
pub struct DualSlope {
    /// The model used verbatim inside the breakpoint.
    pub near: LogDistance,
    /// Distance at which the slope steepens.
    pub breakpoint: Meters,
    /// Path-loss exponent beyond the breakpoint.
    pub far_exponent: f64,
}

impl PathLoss for DualSlope {
    fn path_loss(&self, distance: Meters) -> Db {
        let d = clamp_distance(distance);
        if d <= self.breakpoint.0 {
            self.near.path_loss(Meters(d))
        } else {
            Db(self.near.path_loss(self.breakpoint).0
                + 10.0 * self.far_exponent * (d / self.breakpoint.0).log10())
        }
    }
}

/// Two-ray ground-reflection model with a free-space near region — the
/// model ns-2 used for its 250 m default range, kept as the "simulative
/// tools" baseline the paper argues against.
///
/// Beyond the crossover distance `dc = 4 π ht hr / λ` the loss grows with
/// the fourth power of distance: `PL(d) = 40 log10(d) - 10 log10(ht² hr²)`.
#[derive(Debug, Clone, Copy)]
pub struct TwoRayGround {
    /// Carrier frequency in Hz.
    pub frequency_hz: f64,
    /// Transmitter antenna height, m.
    pub tx_height: f64,
    /// Receiver antenna height, m.
    pub rx_height: f64,
}

impl TwoRayGround {
    /// ns-2 style defaults: 1.5 m antennas at 2.4 GHz.
    pub fn ns2_default() -> TwoRayGround {
        TwoRayGround {
            frequency_hz: 2.412e9,
            tx_height: 1.5,
            rx_height: 1.5,
        }
    }

    /// The crossover distance between the free-space and fourth-power
    /// regions.
    pub fn crossover_distance(&self) -> Meters {
        let lambda = C / self.frequency_hz;
        Meters(4.0 * std::f64::consts::PI * self.tx_height * self.rx_height / lambda)
    }
}

impl PathLoss for TwoRayGround {
    fn path_loss(&self, distance: Meters) -> Db {
        let d = clamp_distance(distance);
        let dc = self.crossover_distance().0;
        if d <= dc {
            FreeSpace {
                frequency_hz: self.frequency_hz,
            }
            .path_loss(Meters(d))
        } else {
            let h2 = (self.tx_height * self.rx_height).powi(2);
            Db(40.0 * d.log10() - 10.0 * h2.log10())
        }
    }
}

/// The concrete path-loss models as one `Copy` enum — the devirtualized
/// form the hot path uses.
///
/// `Medium` evaluates path loss once per directed link per frame (and,
/// after PR 3, once per link per *run*); dispatching through
/// `Box<dyn PathLoss>` costs an indirect call and makes the containing
/// config neither `Copy` nor `Send`-friendly. Every model the testbed
/// ships is a small POD struct, so the enum form is both faster and
/// freely cloneable. The [`PathLoss`] trait remains for extension and for
/// the range solvers' generic code; `PathLossModel` implements it.
///
/// # Example
///
/// ```
/// use dot11_phy::{LogDistance, Meters, PathLoss, PathLossModel};
/// let model = PathLossModel::from(LogDistance::anchored_at_free_space_1m(3.0));
/// let boxed: Box<dyn PathLoss> = Box::new(LogDistance::anchored_at_free_space_1m(3.0));
/// assert_eq!(model.path_loss(Meters(25.0)), boxed.path_loss(Meters(25.0)));
/// ```
#[derive(Debug, Clone, Copy)]
pub enum PathLossModel {
    /// Free-space (Friis) loss.
    FreeSpace(FreeSpace),
    /// Log-distance loss (the calibrated outdoor model).
    LogDistance(LogDistance),
    /// Dual-slope log-distance loss (the large-topology model).
    DualSlope(DualSlope),
    /// Two-ray ground reflection (the ns-2 comparison baseline).
    TwoRayGround(TwoRayGround),
}

impl PathLoss for PathLossModel {
    fn path_loss(&self, distance: Meters) -> Db {
        match self {
            PathLossModel::FreeSpace(m) => m.path_loss(distance),
            PathLossModel::LogDistance(m) => m.path_loss(distance),
            PathLossModel::DualSlope(m) => m.path_loss(distance),
            PathLossModel::TwoRayGround(m) => m.path_loss(distance),
        }
    }
}

impl From<FreeSpace> for PathLossModel {
    fn from(m: FreeSpace) -> PathLossModel {
        PathLossModel::FreeSpace(m)
    }
}

impl From<LogDistance> for PathLossModel {
    fn from(m: LogDistance) -> PathLossModel {
        PathLossModel::LogDistance(m)
    }
}

impl From<DualSlope> for PathLossModel {
    fn from(m: DualSlope) -> PathLossModel {
        PathLossModel::DualSlope(m)
    }
}

impl From<TwoRayGround> for PathLossModel {
    fn from(m: TwoRayGround) -> PathLossModel {
        PathLossModel::TwoRayGround(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monotone<M: PathLoss>(model: &M) {
        let mut prev = f64::NEG_INFINITY;
        for d in (1..2000).map(|i| i as f64 * 0.5) {
            let pl = model.path_loss(Meters(d)).0;
            assert!(pl >= prev - 1e-9, "loss decreased at {d} m: {pl} < {prev}");
            prev = pl;
        }
    }

    fn dual_slope() -> DualSlope {
        DualSlope {
            near: LogDistance::anchored_at_free_space_1m(2.42),
            breakpoint: Meters(500.0),
            far_exponent: 4.0,
        }
    }

    #[test]
    fn all_models_monotone_in_distance() {
        monotone(&FreeSpace::at_2_4_ghz());
        monotone(&LogDistance::anchored_at_free_space_1m(3.0));
        monotone(&dual_slope());
        monotone(&TwoRayGround::ns2_default());
    }

    #[test]
    fn dual_slope_matches_near_model_bitwise_inside_breakpoint() {
        let ds = dual_slope();
        for d in [0.5, 1.0, 25.0, 80.0, 250.0, 499.9, 500.0] {
            assert_eq!(
                ds.path_loss(Meters(d)).0.to_bits(),
                ds.near.path_loss(Meters(d)).0.to_bits(),
                "near region must be bit-identical at {d} m"
            );
        }
    }

    #[test]
    fn dual_slope_continuous_at_breakpoint_and_steeper_beyond() {
        let ds = dual_slope();
        let just_below = ds.path_loss(Meters(499.999)).0;
        let just_above = ds.path_loss(Meters(500.001)).0;
        assert!(
            (just_above - just_below).abs() < 0.01,
            "discontinuity at breakpoint"
        );
        let d1 = ds.path_loss(Meters(1000.0)).0;
        let d2 = ds.path_loss(Meters(10_000.0)).0;
        assert!(
            (d2 - d1 - 40.0).abs() < 1e-9,
            "far slope should be 40 dB/decade, got {}",
            d2 - d1
        );
    }

    #[test]
    fn free_space_slope_is_20db_per_decade() {
        let fs = FreeSpace::at_2_4_ghz();
        let d1 = fs.path_loss(Meters(10.0)).0;
        let d2 = fs.path_loss(Meters(100.0)).0;
        assert!((d2 - d1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_slope_matches_exponent() {
        let ld = LogDistance::anchored_at_free_space_1m(3.3);
        let d1 = ld.path_loss(Meters(10.0)).0;
        let d2 = ld.path_loss(Meters(100.0)).0;
        assert!((d2 - d1 - 33.0).abs() < 1e-9);
    }

    #[test]
    fn two_ray_continuous_at_crossover_and_steeper_beyond() {
        let tr = TwoRayGround::ns2_default();
        let dc = tr.crossover_distance().0;
        assert!(
            dc > 100.0 && dc < 300.0,
            "crossover {dc} m out of expected band"
        );
        let just_below = tr.path_loss(Meters(dc * 0.999)).0;
        let just_above = tr.path_loss(Meters(dc * 1.001)).0;
        assert!(
            (just_above - just_below).abs() < 0.5,
            "discontinuity at crossover"
        );
        let d1 = tr.path_loss(Meters(dc * 2.0)).0;
        let d2 = tr.path_loss(Meters(dc * 20.0)).0;
        assert!(
            (d2 - d1 - 40.0).abs() < 1e-6,
            "beyond crossover slope should be 40 dB/decade"
        );
    }

    #[test]
    fn distance_for_loss_inverts_path_loss() {
        let ld = LogDistance::anchored_at_free_space_1m(3.0);
        for d in [5.0, 30.0, 120.0, 400.0] {
            let loss = ld.path_loss(Meters(d));
            let back = ld.distance_for_loss(loss).expect("in range");
            assert!(
                (back.0 - d).abs() / d < 1e-3,
                "inverse failed: {d} -> {}",
                back.0
            );
        }
        assert!(ld.distance_for_loss(Db(1e6)).is_none());
        // Losses already reached at 1 m clamp to 1 m.
        assert_eq!(ld.distance_for_loss(Db(0.0)).map(|m| m.0), Some(1.0));
    }

    #[test]
    fn sub_meter_distances_clamp() {
        let fs = FreeSpace::at_2_4_ghz();
        assert_eq!(fs.path_loss(Meters(0.0)), fs.path_loss(Meters(1.0)));
        assert_eq!(fs.path_loss(Meters(0.5)), fs.path_loss(Meters(1.0)));
    }

    #[test]
    fn enum_dispatch_matches_direct_calls_bitwise() {
        let ds = dual_slope();
        let cases: [(PathLossModel, &dyn PathLoss); 4] = [
            (FreeSpace::at_2_4_ghz().into(), &FreeSpace::at_2_4_ghz()),
            (
                LogDistance::anchored_at_free_space_1m(2.42).into(),
                &LogDistance::anchored_at_free_space_1m(2.42),
            ),
            (ds.into(), &ds),
            (
                TwoRayGround::ns2_default().into(),
                &TwoRayGround::ns2_default(),
            ),
        ];
        for (model, direct) in cases {
            for d in [0.3, 1.0, 25.0, 151.0, 4000.0] {
                assert_eq!(
                    model.path_loss(Meters(d)).0.to_bits(),
                    direct.path_loss(Meters(d)).0.to_bits(),
                    "{model:?} at {d} m"
                );
            }
            assert_eq!(
                model.distance_for_loss(Db(100.0)).map(|m| m.0.to_bits()),
                direct.distance_for_loss(Db(100.0)).map(|m| m.0.to_bits()),
            );
        }
    }
}
