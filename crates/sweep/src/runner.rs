//! The parallel sweep executor.
//!
//! Cells are claimed from a shared cursor (an atomic fetch-add over the
//! pending list) by `jobs` worker threads — work-sharing with the same
//! load-balancing property as work stealing for this workload, since
//! every "task" is one independent `World` run and claiming is a single
//! atomic instruction. Each worker simulates its cells to completion and
//! returns (index, metrics) pairs; results are reassembled **in spec
//! order**, so the aggregated report is bit-identical for any worker
//! count or completion interleaving.
//!
//! With a cache directory configured, cells whose key is already present
//! load instead of simulating; a fully warm sweep simulates zero worlds.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use desim::SimDuration;

use crate::cache::RunCache;
use crate::progress::ProgressSink;
use crate::report::{CellMetrics, CellOutcome, SweepEngine, SweepReport, WorkerStats};
use crate::spec::SweepSpec;

/// How a sweep executes: worker count, (optional) run cache, and
/// (optional) live telemetry.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads. Clamped to ≥ 1; also clamped down to the number
    /// of pending cells, so small sweeps don't spawn idle threads.
    pub jobs: usize,
    /// Run-cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Live JSONL telemetry destination; `None` runs silently. Shared by
    /// `Arc` because every worker thread narrates into it.
    pub progress: Option<Arc<ProgressSink>>,
}

impl SweepOptions {
    /// One worker, no cache — the reference serial configuration.
    pub fn serial() -> SweepOptions {
        SweepOptions {
            jobs: 1,
            cache_dir: None,
            progress: None,
        }
    }

    /// `jobs` workers, no cache.
    pub fn with_jobs(jobs: usize) -> SweepOptions {
        SweepOptions {
            jobs,
            cache_dir: None,
            progress: None,
        }
    }

    /// Sets the cache directory.
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> SweepOptions {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Attaches a live telemetry sink.
    pub fn progress(mut self, sink: Arc<ProgressSink>) -> SweepOptions {
        self.progress = Some(sink);
        self
    }
}

impl Default for SweepOptions {
    /// All available cores, no cache.
    fn default() -> SweepOptions {
        SweepOptions {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_dir: None,
            progress: None,
        }
    }
}

/// Runs every cell of `spec` and aggregates (see module docs).
///
/// # Errors
///
/// Only the cache *directory* failing to open is an error. A failed
/// cache-entry write is reported to stderr and the sweep continues — the
/// cache is an accelerator, not a correctness dependency.
///
/// # Panics
///
/// Panics if a worker thread panics (i.e. a scenario itself panicked).
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> std::io::Result<SweepReport> {
    let start = Instant::now();
    let cells = spec.cells();
    let cache = match &opts.cache_dir {
        Some(dir) => Some(RunCache::open(dir)?),
        None => None,
    };

    // Phase 1: serve what the cache already has.
    let mut outcomes: Vec<Option<CellOutcome>> = Vec::with_capacity(cells.len());
    let mut pending: Vec<usize> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        match cache.as_ref().and_then(|c| c.load(cell)) {
            Some(metrics) => outcomes.push(Some(CellOutcome {
                spec: *cell,
                key: cell.key(),
                metrics,
                cached: true,
            })),
            None => {
                outcomes.push(None);
                pending.push(i);
            }
        }
    }
    let cached = cells.len() - pending.len();

    // Phase 2: fan the pending cells out across workers. When each cell
    // itself runs sharded (`params.threads > 1`), the two levels
    // multiply — clamp jobs so jobs × threads never oversubscribes the
    // machine (per-cell threads win the budget contest: a sharded sweep
    // is asking for fewer, faster runs).
    let mut jobs = opts.jobs.max(1).min(pending.len().max(1));
    let cell_threads = spec.params.threads.max(1);
    if cell_threads > 1 {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        jobs = jobs.min((cores / cell_threads).max(1));
    }
    let progress = opts.progress.as_deref();
    if let Some(p) = progress {
        p.sweep_start(cells.len(), cached, pending.len(), jobs);
    }
    let cursor = AtomicUsize::new(0);
    let mut workers: Vec<WorkerStats> = Vec::with_capacity(jobs);
    let mut computed: Vec<(usize, CellMetrics)> = Vec::with_capacity(pending.len());
    if !pending.is_empty() {
        let per_worker = std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    let (cells, pending, cursor, cache) = (&cells, &pending, &cursor, &cache);
                    s.spawn(move || {
                        let mut stats = WorkerStats {
                            worker: w,
                            cells: 0,
                            events: 0,
                            busy: Duration::ZERO,
                        };
                        let mut results = Vec::new();
                        loop {
                            let n = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&idx) = pending.get(n) else { break };
                            let cell = cells[idx];
                            let key = cell.key().to_string();
                            if let Some(p) = progress {
                                p.run_start(w, &key, &cell.group_label(), cell.seed);
                            }
                            let report = cell.build().run();
                            let metrics = CellMetrics::from_report(&report);
                            if let Some(p) = progress {
                                p.run_finish(w, &key, report.engine.events, report.engine.wall);
                            }
                            stats.cells += 1;
                            stats.events += report.engine.events;
                            stats.busy += report.engine.wall;
                            if let Some(cache) = cache {
                                if let Err(e) = cache.store(&cell, &metrics, w) {
                                    eprintln!(
                                        "dot11-sweep: cache write for cell {}: {e}",
                                        cell.key()
                                    );
                                }
                            }
                            results.push((idx, metrics));
                        }
                        (stats, results)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect::<Vec<_>>()
        });
        for (stats, results) in per_worker {
            workers.push(stats);
            computed.extend(results);
        }
    }

    // Phase 3: reassemble in spec order and aggregate.
    let simulated = computed.len();
    let (mut events, mut sim_ns) = (0u64, 0u64);
    for (idx, metrics) in computed {
        events += metrics.events;
        sim_ns += metrics.sim_elapsed_ns;
        let cell = cells[idx];
        outcomes[idx] = Some(CellOutcome {
            spec: cell,
            key: cell.key(),
            metrics,
            cached: false,
        });
    }
    let cells: Vec<CellOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every cell either cached or simulated"))
        .collect();
    let groups = SweepReport::group(&cells);
    let wall = start.elapsed();
    if let Some(p) = progress {
        p.sweep_finish(wall, simulated, cached, events, &workers);
    }
    Ok(SweepReport {
        groups,
        cells,
        engine: SweepEngine {
            jobs,
            wall,
            simulated,
            cached,
            sim_elapsed: SimDuration::from_nanos(sim_ns),
            events,
            workers,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{RunParams, SweepScenario};
    use dot11_adhoc::analytic::AccessScheme;
    use dot11_adhoc::experiments::four_station::SessionTransport;
    use dot11_phy::PhyRate;

    fn tiny_spec(seeds: std::ops::RangeInclusive<u64>) -> SweepSpec {
        SweepSpec::new(RunParams {
            duration: SimDuration::from_millis(300),
            warmup: SimDuration::from_millis(100),
            threads: 1,
        })
        .scenario(SweepScenario::TwoStation {
            rate: PhyRate::R11,
            distance_m: 10.0,
            transport: SessionTransport::Udp,
            scheme: AccessScheme::Basic,
        })
        .seeds(seeds)
    }

    #[test]
    fn serial_sweep_fills_every_cell_in_order() {
        let spec = tiny_spec(1..=3);
        let report = run_sweep(&spec, &SweepOptions::serial()).expect("sweep");
        assert_eq!(report.cells.len(), 3);
        assert_eq!(
            report.cells.iter().map(|c| c.spec.seed).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(report.engine.simulated, 3);
        assert_eq!(report.engine.cached, 0);
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].total_kbps.n, 3);
        assert!(report.groups[0].total_kbps.mean > 100.0);
        assert!(report.engine.events > 0);
    }

    #[test]
    fn more_jobs_than_cells_is_clamped() {
        let spec = tiny_spec(1..=2);
        let report = run_sweep(&spec, &SweepOptions::with_jobs(16)).expect("sweep");
        assert_eq!(report.engine.jobs, 2, "jobs clamp to pending cells");
        assert_eq!(report.engine.workers.len(), 2);
        let worked: usize = report.engine.workers.iter().map(|w| w.cells).sum();
        assert_eq!(worked, 2);
    }

    #[test]
    fn progress_stream_narrates_without_touching_determinism() {
        use crate::progress::ProgressSink;
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let spec = tiny_spec(1..=3);
        let silent = run_sweep(&spec, &SweepOptions::serial()).expect("sweep");
        let buf = Buf::default();
        let opts =
            SweepOptions::serial().progress(Arc::new(ProgressSink::new(Box::new(buf.clone()))));
        let loud = run_sweep(&spec, &opts).expect("sweep");
        assert_eq!(
            silent.deterministic_json(),
            loud.deterministic_json(),
            "telemetry must not perturb results"
        );
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // sweep_start + (run_start + run_finish) × 3 cells + sweep_finish.
        assert_eq!(lines.len(), 8, "{text}");
        assert!(lines[0].contains("\"event\":\"sweep_start\""));
        assert_eq!(text.matches("\"event\":\"run_start\"").count(), 3);
        assert_eq!(text.matches("\"event\":\"run_finish\"").count(), 3);
        assert!(lines[7].contains("\"event\":\"sweep_finish\""));
    }

    #[test]
    fn empty_spec_yields_an_empty_report() {
        let spec = SweepSpec::new(RunParams::quick());
        let report = run_sweep(&spec, &SweepOptions::serial()).expect("sweep");
        assert!(report.cells.is_empty());
        assert!(report.groups.is_empty());
        assert_eq!(report.engine.simulated + report.engine.cached, 0);
    }
}
