//! Parallel multi-seed sweep engine for the 802.11b testbed.
//!
//! The paper's headline results — Table 2 rates, the Figures 5–12
//! unfairness — are *statistical* effects: a single seed is one channel
//! draw, the way each of the paper's plots is one measurement day. This
//! crate turns "run the experiment" into "run the experiment across a
//! seed population, on every core, without recomputing anything":
//!
//! * [`SweepSpec`] — the cross product of scenario recipes × seeds under
//!   shared run parameters, expanded into flat [`CellSpec`]s;
//! * [`run_sweep`] — a work-sharing thread pool (plain `std::thread`, no
//!   dependencies) that claims cells off an atomic cursor, runs one
//!   independent `World` per cell, and reassembles results in spec order
//!   so the aggregate is **bit-identical for any `--jobs` value**;
//! * [`RunCache`] — content-addressed persistence: each cell's result is
//!   stored under its [`CellKey`] (a stable FNV-1a hash of scenario +
//!   seed + run params, see [`dot11_adhoc::hash`]), so re-runs skip
//!   finished cells and a fully warm sweep simulates zero worlds;
//! * [`SweepReport`] — per-cell metrics plus per-scenario
//!   [`Summary`](dot11_adhoc::Summary) statistics (mean/median/CI95 over
//!   seeds), with sweep-level engine instrumentation (aggregate
//!   sim-vs-wall speedup, per-worker utilization) kept in a separate,
//!   explicitly non-deterministic section.
//!
//! # Example
//!
//! ```
//! use desim::SimDuration;
//! use dot11_sweep::{run_sweep, RunParams, SweepOptions, SweepScenario, SweepSpec};
//!
//! let spec = SweepSpec::new(RunParams {
//!     duration: SimDuration::from_millis(400),
//!     warmup: SimDuration::from_millis(100),
//!     threads: 1,
//! })
//! .scenarios(SweepScenario::figure(7))
//! .seeds(1..=2);
//!
//! let report = run_sweep(&spec, &SweepOptions::with_jobs(2)).expect("sweep runs");
//! assert_eq!(report.cells.len(), 8); // 4 cells × 2 seeds
//! for group in &report.groups {
//!     println!("{}: {:.0} ± {:.0} kb/s", group.label,
//!              group.total_kbps.mean, group.total_kbps.ci95);
//! }
//! ```

#![warn(missing_docs)]

mod cache;
pub mod json;
mod progress;
mod report;
mod runner;
mod spec;

pub use cache::RunCache;
pub use progress::ProgressSink;
pub use report::{CellMetrics, CellOutcome, GroupReport, SweepEngine, SweepReport, WorkerStats};
pub use runner::{run_sweep, SweepOptions};
pub use spec::{CellKey, CellSpec, MacAxis, RunParams, SweepScenario, SweepSpec};
