//! A minimal JSON reader for cache entries.
//!
//! The workspace has no serde (the build container has no crates
//! registry), and the only JSON this crate must *read* is JSON it wrote
//! itself — flat objects of numbers, strings and arrays. This is a small
//! strict recursive-descent parser over that grammar: no comments, no
//! trailing commas, numbers parsed as `f64` (exact for every integer the
//! testbed emits, all < 2⁵³).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks a field up in an object's fields.
pub fn get<'a>(obj: &'a [(String, JsonValue)], name: &str) -> Option<&'a JsonValue> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// A string field.
pub fn get_str<'a>(obj: &'a [(String, JsonValue)], name: &str) -> Option<&'a str> {
    get(obj, name)?.as_str()
}

/// A numeric field.
pub fn get_f64(obj: &[(String, JsonValue)], name: &str) -> Option<f64> {
    get(obj, name)?.as_f64()
}

/// An all-numbers array field.
pub fn get_f64_array(obj: &[(String, JsonValue)], name: &str) -> Option<Vec<f64>> {
    match get(obj, name)? {
        JsonValue::Arr(items) => items.iter().map(JsonValue::as_f64).collect(),
        _ => None,
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        // \b \f \uXXXX never appear in our own output.
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or_else(|| "empty".to_owned())?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_cache_shaped_document() {
        let doc = r#"{"version":"dot11-sweep/v1","key":"00ff","seed":42,
            "metrics":{"flows_kbps":[599.0368,2714.0],"fairness":0.75,"events":123}}"#;
        let v = parse(doc).expect("parse");
        let obj = v.as_object().expect("object");
        assert_eq!(get_str(obj, "version"), Some("dot11-sweep/v1"));
        assert_eq!(get_f64(obj, "seed"), Some(42.0));
        let m = get(obj, "metrics")
            .and_then(JsonValue::as_object)
            .expect("metrics");
        assert_eq!(get_f64_array(m, "flows_kbps"), Some(vec![599.0368, 2714.0]));
        assert_eq!(get_f64(m, "events"), Some(123.0));
    }

    #[test]
    fn shortest_float_formatting_round_trips() {
        for &x in &[599.0368f64, 0.1, 1.0 / 3.0, 2714.125, -0.0, 1e-300] {
            let v = parse(&format!("{x}")).expect("parse");
            assert_eq!(v.as_f64().map(f64::to_bits), Some(x.to_bits()));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn handles_empty_containers_and_literals() {
        assert_eq!(parse("{}").expect("parse"), JsonValue::Obj(vec![]));
        assert_eq!(parse("[]").expect("parse"), JsonValue::Arr(vec![]));
        assert_eq!(
            parse("[null,true,false]").expect("parse"),
            JsonValue::Arr(vec![
                JsonValue::Null,
                JsonValue::Bool(true),
                JsonValue::Bool(false)
            ])
        );
    }

    #[test]
    fn decodes_basic_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\nd""#).expect("parse"),
            JsonValue::Str("a\"b\\c\nd".to_owned())
        );
    }
}
