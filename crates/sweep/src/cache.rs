//! Content-addressed run caching.
//!
//! Every finished cell persists as one JSON line in
//! `<cache_dir>/<cell-key>.json`, where the filename is the cell's
//! [`CellKey`] — a stable hash of (scenario, MAC axis,
//! seed, run params). A re-run looks the key up before simulating: cache hits cost
//! one file read, and a fully warm sweep simulates **zero** worlds.
//!
//! Invariants the determinism tests pin:
//!
//! * a cache file's bytes depend only on the cell spec and its
//!   (deterministic) metrics — never on worker count or timing, so files
//!   written by `--jobs 1` and `--jobs 8` runs are byte-identical;
//! * floats are serialized with Rust's shortest-round-trip formatting and
//!   re-parsed bit-exactly, so a cached result aggregates identically to
//!   a recomputed one;
//! * entries carry a format-version tag; a mismatch (or any parse
//!   failure) is treated as a miss and the cell is recomputed, never an
//!   error.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::json;
use crate::report::CellMetrics;
use crate::spec::{CellKey, CellSpec};

/// The cache entry format version. Bump on any change to the entry
/// layout *or* to the engine-side numbers a cached cell carries (v1 → v2:
/// timer coalescing and signal batching shrank `events` and
/// `queue_high_water`; pre-coalescing entries must read as misses so
/// sweeps never mix old and new engine counts; v2 → v3: entries gained
/// the `chan_util`/`tx_util` airtime fractions, which v2 files lack;
/// v3 → v4: cell keys and group labels picked up the MAC axis —
/// policy/CW/retry/slot — so pre-axis entries must not serve axis-aware
/// lookups; v4 → v5: mobile recipes entered the scenario space and the
/// epoch-versioned medium landed — static results are bit-identical, but
/// the key space is re-salted in lockstep so the two version tags never
/// drift apart).
const FORMAT: &str = "dot11-sweep/v5";

/// A directory of cached cell results (see module docs).
#[derive(Debug, Clone)]
pub struct RunCache {
    dir: PathBuf,
}

impl RunCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<RunCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RunCache { dir })
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a cell's result lives at.
    pub fn path_for(&self, key: CellKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Looks a cell up. Any miss, version mismatch, stale key or parse
    /// failure returns `None` — the caller simply recomputes.
    pub fn load(&self, spec: &CellSpec) -> Option<CellMetrics> {
        let key = spec.key();
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let value = json::parse(&text).ok()?;
        let obj = value.as_object()?;
        if json::get_str(obj, "version")? != FORMAT {
            return None;
        }
        if json::get_str(obj, "key")? != key.to_string() {
            return None;
        }
        let metrics = json::get(obj, "metrics")?.as_object()?;
        Some(CellMetrics {
            flows_kbps: json::get_f64_array(metrics, "flows_kbps")?,
            loss_rates: json::get_f64_array(metrics, "loss_rates")?,
            fairness: json::get_f64(metrics, "fairness")?,
            chan_util: json::get_f64(metrics, "chan_util")?,
            tx_util: json::get_f64(metrics, "tx_util")?,
            events: json::get_f64(metrics, "events")? as u64,
            queue_high_water: json::get_f64(metrics, "queue_high_water")? as u64,
            sim_elapsed_ns: json::get_f64(metrics, "sim_elapsed_ns")? as u64,
        })
    }

    /// The exact bytes stored for a cell — a pure function of the spec
    /// and metrics, which is what makes cache files comparable across
    /// runs and worker counts.
    pub fn entry_bytes(spec: &CellSpec, metrics: &CellMetrics) -> String {
        format!(
            "{{\"version\":\"{FORMAT}\",\"key\":\"{}\",\"scenario\":\"{}\",\"seed\":{},\
             \"duration_ns\":{},\"warmup_ns\":{},\"metrics\":{}}}\n",
            spec.key(),
            spec.group_label(),
            spec.seed,
            spec.params.duration.as_nanos(),
            spec.params.warmup.as_nanos(),
            metrics.to_json()
        )
    }

    /// Persists a cell's result. The write is atomic (temp file + rename)
    /// so concurrent workers — or concurrent sweeps sharing a cache dir —
    /// never expose a torn entry; the rename's last-writer-wins race is
    /// harmless because both writers produce identical bytes.
    pub fn store(
        &self,
        spec: &CellSpec,
        metrics: &CellMetrics,
        worker: usize,
    ) -> std::io::Result<()> {
        let key = spec.key();
        let tmp = self
            .dir
            .join(format!(".{key}.w{worker}.p{}.tmp", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(Self::entry_bytes(spec, metrics).as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path_for(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MacAxis, RunParams, SweepScenario};
    use desim::SimDuration;

    fn spec() -> CellSpec {
        CellSpec {
            scenario: SweepScenario::figure(7)[0],
            mac: MacAxis::table1(),
            seed: 42,
            params: RunParams {
                duration: SimDuration::from_secs(1),
                warmup: SimDuration::from_millis(100),
                threads: 1,
            },
        }
    }

    fn metrics() -> CellMetrics {
        CellMetrics {
            flows_kbps: vec![599.03680000001, 2714.0],
            loss_rates: vec![0.25, 0.0],
            fairness: 0.7512341,
            chan_util: 0.84218750000001,
            tx_util: 0.2109375,
            events: 123_456_789,
            queue_high_water: 77,
            sim_elapsed_ns: 20_000_000_000,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dot11-sweep-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_then_load_round_trips_bit_exactly() {
        let cache = RunCache::open(tmp_dir("roundtrip")).expect("open cache");
        let (s, m) = (spec(), metrics());
        assert!(cache.load(&s).is_none(), "cold cache misses");
        cache.store(&s, &m, 0).expect("store");
        let back = cache.load(&s).expect("warm cache hits");
        assert_eq!(back, m, "floats survive the JSON round trip bit-exactly");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn entry_bytes_are_a_pure_function() {
        let (s, m) = (spec(), metrics());
        assert_eq!(RunCache::entry_bytes(&s, &m), RunCache::entry_bytes(&s, &m));
        assert!(RunCache::entry_bytes(&s, &m).contains(&s.key().to_string()));
    }

    #[test]
    fn different_spec_is_a_miss() {
        let cache = RunCache::open(tmp_dir("miss")).expect("open cache");
        let (s, m) = (spec(), metrics());
        cache.store(&s, &m, 1).expect("store");
        let other = CellSpec { seed: 43, ..s };
        assert!(cache.load(&other).is_none());
        let other_axis = CellSpec {
            mac: MacAxis {
                cw_min: 8,
                ..MacAxis::table1()
            },
            ..s
        };
        assert!(cache.load(&other_axis).is_none(), "axis is part of the key");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_entry_reads_as_miss() {
        let cache = RunCache::open(tmp_dir("corrupt")).expect("open cache");
        let s = spec();
        std::fs::write(cache.path_for(s.key()), b"{not json").expect("write");
        assert!(cache.load(&s).is_none());
        std::fs::write(cache.path_for(s.key()), b"{\"version\":\"other/v9\"}").expect("write");
        assert!(cache.load(&s).is_none());
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}
