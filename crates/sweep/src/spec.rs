//! Sweep specifications: which scenarios, which seeds, which run length.
//!
//! A [`SweepSpec`] is the cross product of scenario recipes × seeds under
//! shared [`RunParams`]; [`SweepSpec::cells`] expands it into the flat
//! list of [`CellSpec`]s the runner executes. Every cell has a
//! [`CellKey`] — a stable content hash of everything that determines its
//! result — which names its cache entry and pins determinism tests.

use desim::SimDuration;
use dot11_adhoc::analytic::AccessScheme;
use dot11_adhoc::experiments::four_station::{self, FourStationLayout, SessionTransport};
use dot11_adhoc::experiments::{hidden, ExpConfig};
use dot11_adhoc::hash::StableHasher;
use dot11_adhoc::{MobilityConfig, Scenario, ScenarioBuilder, Traffic};
use dot11_mac::{BackoffConfig, MacConfig};
use dot11_phy::PhyRate;

/// One scenario recipe a sweep can run.
///
/// Variants are *declarative* — plain data, cheap to copy across worker
/// threads — and each expands to a [`Scenario`] via [`SweepScenario::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepScenario {
    /// The paper's four-station, two-session topology (Figures 5–12).
    FourStation {
        /// NIC data rate.
        rate: PhyRate,
        /// Station geometry.
        layout: FourStationLayout,
        /// Transport used by both sessions.
        transport: SessionTransport,
        /// Access scheme.
        scheme: AccessScheme,
    },
    /// A single saturated link: two stations `distance_m` apart.
    TwoStation {
        /// NIC data rate.
        rate: PhyRate,
        /// Station separation, meters.
        distance_m: f64,
        /// Transport of the single flow.
        transport: SessionTransport,
        /// Access scheme.
        scheme: AccessScheme,
    },
    /// Large topology: an `n`-station chain with `spacing_m` pitch, chain
    /// routing, dual-slope path loss, and one saturated UDP flow end to
    /// end (PR 5's scaling family).
    Chain {
        /// Number of stations.
        n: u32,
        /// Inter-station spacing, meters.
        spacing_m: f64,
        /// NIC data rate.
        rate: PhyRate,
    },
    /// Large topology: a `rows × cols` grid with `spacing_m` pitch,
    /// west→east row routes, and one saturated UDP flow per row.
    Grid {
        /// Grid rows.
        rows: u32,
        /// Grid columns.
        cols: u32,
        /// Grid pitch, meters.
        spacing_m: f64,
        /// NIC data rate.
        rate: PhyRate,
    },
    /// Large topology: `n` stations uniform on a disk of `radius_m`
    /// (field drawn from `topo_seed`, independent of the run seed), with
    /// three saturated UDP flows between the first six stations.
    RandomDisk {
        /// Number of stations (≥ 6).
        n: u32,
        /// Disk radius, meters.
        radius_m: f64,
        /// Seed of the dedicated topology stream.
        topo_seed: u64,
        /// NIC data rate.
        rate: PhyRate,
    },
    /// Mobile large topology: a [`SweepScenario::RandomDisk`] field whose
    /// stations walk the random-waypoint model (PR 10's mobility family).
    /// Epoch commits re-derive only the moved stations' link state; the
    /// run report is bitwise-independent of the incremental-vs-rebuild
    /// commit mode, so neither the mode nor the thread count enters the
    /// cell key.
    MobileDisk {
        /// Number of stations (≥ 6).
        n: u32,
        /// Disk radius, meters.
        radius_m: f64,
        /// Seed of the dedicated topology stream.
        topo_seed: u64,
        /// NIC data rate.
        rate: PhyRate,
        /// Random-waypoint walking speed, m/s.
        speed_mps: f64,
        /// Mobility epoch — the interval between link-state commits, ms.
        epoch_ms: u32,
    },
    /// The hidden-terminal triple: two mutually inaudible saturated
    /// senders aimed at one middle receiver
    /// ([`hidden::hidden_triple`]), with the access scheme as the
    /// collapse-and-recovery axis.
    HiddenTriple {
        /// NIC data rate (the proven geometry is at 2 Mb/s).
        rate: PhyRate,
        /// Access scheme — `Basic` collapses, `RtsCts` recovers.
        scheme: AccessScheme,
        /// UDP payload per datagram, bytes.
        payload_bytes: u32,
    },
}

fn rate_kbps(rate: PhyRate) -> u32 {
    (rate.bits_per_sec() / 1000.0) as u32
}

fn transport_tag(t: SessionTransport) -> &'static str {
    match t {
        SessionTransport::Udp => "udp",
        SessionTransport::Tcp => "tcp",
    }
}

fn scheme_tag(s: AccessScheme) -> &'static str {
    match s {
        AccessScheme::Basic => "basic",
        AccessScheme::RtsCts => "rts",
    }
}

fn layout_tag(l: FourStationLayout) -> &'static str {
    match l {
        FourStationLayout::AsymmetricAt11 => "asym11",
        FourStationLayout::AsymmetricAt2 => "asym2",
        FourStationLayout::Symmetric => "sym",
    }
}

impl SweepScenario {
    /// A stable, human-readable name: doubles as the grouping label in
    /// reports and as part of the cache key.
    pub fn name(&self) -> String {
        match *self {
            SweepScenario::FourStation {
                rate,
                layout,
                transport,
                scheme,
            } => format!(
                "four_station/{}/{}k/{}/{}",
                layout_tag(layout),
                rate_kbps(rate),
                transport_tag(transport),
                scheme_tag(scheme)
            ),
            SweepScenario::TwoStation {
                rate,
                distance_m,
                transport,
                scheme,
            } => format!(
                "two_station/{}m/{}k/{}/{}",
                distance_m,
                rate_kbps(rate),
                transport_tag(transport),
                scheme_tag(scheme)
            ),
            SweepScenario::Chain { n, spacing_m, rate } => {
                format!("chain/{}x{}m/{}k/udp", n, spacing_m, rate_kbps(rate))
            }
            SweepScenario::Grid {
                rows,
                cols,
                spacing_m,
                rate,
            } => format!(
                "grid/{}x{}x{}m/{}k/udp",
                rows,
                cols,
                spacing_m,
                rate_kbps(rate)
            ),
            SweepScenario::RandomDisk {
                n,
                radius_m,
                topo_seed,
                rate,
            } => format!(
                "disk/{}@{}m/t{}/{}k/udp",
                n,
                radius_m,
                topo_seed,
                rate_kbps(rate)
            ),
            SweepScenario::MobileDisk {
                n,
                radius_m,
                topo_seed,
                rate,
                speed_mps,
                epoch_ms,
            } => format!(
                "mobile-disk/{}@{}m/t{}/v{}mps/e{}ms/{}k/udp",
                n,
                radius_m,
                topo_seed,
                speed_mps,
                epoch_ms,
                rate_kbps(rate)
            ),
            SweepScenario::HiddenTriple {
                rate,
                scheme,
                payload_bytes,
            } => format!(
                "hidden3/{}B/{}k/udp/{}",
                payload_bytes,
                rate_kbps(rate),
                scheme_tag(scheme)
            ),
        }
    }

    /// Feeds the scenario's identity into a stable hasher.
    pub fn encode(&self, h: &mut StableHasher) {
        match *self {
            SweepScenario::FourStation {
                rate,
                layout,
                transport,
                scheme,
            } => {
                h.write_str("four_station");
                h.write_u32(rate_kbps(rate));
                h.write_str(layout_tag(layout));
                h.write_str(transport_tag(transport));
                h.write_str(scheme_tag(scheme));
            }
            SweepScenario::TwoStation {
                rate,
                distance_m,
                transport,
                scheme,
            } => {
                h.write_str("two_station");
                h.write_u32(rate_kbps(rate));
                h.write_f64(distance_m);
                h.write_str(transport_tag(transport));
                h.write_str(scheme_tag(scheme));
            }
            SweepScenario::Chain { n, spacing_m, rate } => {
                h.write_str("chain");
                h.write_u32(n);
                h.write_f64(spacing_m);
                h.write_u32(rate_kbps(rate));
            }
            SweepScenario::Grid {
                rows,
                cols,
                spacing_m,
                rate,
            } => {
                h.write_str("grid");
                h.write_u32(rows);
                h.write_u32(cols);
                h.write_f64(spacing_m);
                h.write_u32(rate_kbps(rate));
            }
            SweepScenario::RandomDisk {
                n,
                radius_m,
                topo_seed,
                rate,
            } => {
                h.write_str("random_disk");
                h.write_u32(n);
                h.write_f64(radius_m);
                h.write_u64(topo_seed);
                h.write_u32(rate_kbps(rate));
            }
            SweepScenario::MobileDisk {
                n,
                radius_m,
                topo_seed,
                rate,
                speed_mps,
                epoch_ms,
            } => {
                h.write_str("mobile_disk");
                h.write_u32(n);
                h.write_f64(radius_m);
                h.write_u64(topo_seed);
                h.write_u32(rate_kbps(rate));
                h.write_f64(speed_mps);
                h.write_u32(epoch_ms);
            }
            SweepScenario::HiddenTriple {
                rate,
                scheme,
                payload_bytes,
            } => {
                h.write_str("hidden_triple");
                h.write_u32(rate_kbps(rate));
                h.write_str(scheme_tag(scheme));
                h.write_u32(payload_bytes);
            }
        }
    }

    /// Expands the recipe into a runnable [`Scenario`].
    pub fn build(&self, params: RunParams, seed: u64) -> Scenario {
        match *self {
            SweepScenario::FourStation {
                rate,
                layout,
                transport,
                scheme,
            } => {
                let cfg = ExpConfig {
                    seed,
                    duration: params.duration,
                    warmup: params.warmup,
                    threads: params.threads,
                };
                four_station::scenario(cfg, rate, layout, transport, scheme)
            }
            SweepScenario::TwoStation {
                rate,
                distance_m,
                transport,
                scheme,
            } => {
                let traffic = match transport {
                    SessionTransport::Udp => Traffic::SaturatedUdp {
                        payload_bytes: 512,
                        backlog: 10,
                    },
                    SessionTransport::Tcp => Traffic::BulkTcp { mss: 512 },
                };
                ScenarioBuilder::new(rate)
                    .line(&[0.0, distance_m])
                    .rts(scheme == AccessScheme::RtsCts)
                    .seed(seed)
                    .duration(params.duration)
                    .warmup(params.warmup)
                    .flow(0, 1, traffic)
                    .build()
            }
            SweepScenario::Chain { n, spacing_m, rate } => ScenarioBuilder::new(rate)
                .chain(n, spacing_m)
                .seed(seed)
                .duration(params.duration)
                .warmup(params.warmup)
                .flow(
                    0,
                    n - 1,
                    Traffic::SaturatedUdp {
                        payload_bytes: 512,
                        backlog: 10,
                    },
                )
                .build(),
            SweepScenario::Grid {
                rows,
                cols,
                spacing_m,
                rate,
            } => {
                let mut b = ScenarioBuilder::new(rate)
                    .grid(rows, cols, spacing_m)
                    .seed(seed)
                    .duration(params.duration)
                    .warmup(params.warmup);
                for r in 0..rows {
                    b = b.flow(
                        r * cols,
                        r * cols + cols - 1,
                        Traffic::SaturatedUdp {
                            payload_bytes: 512,
                            backlog: 10,
                        },
                    );
                }
                b.build()
            }
            SweepScenario::RandomDisk {
                n,
                radius_m,
                topo_seed,
                rate,
            } => {
                assert!(n >= 6, "random_disk needs ≥ 6 stations for its flows");
                let mut b = ScenarioBuilder::new(rate)
                    .random_disk(n, radius_m, topo_seed)
                    .seed(seed)
                    .duration(params.duration)
                    .warmup(params.warmup);
                for (src, dst) in [(0, 1), (2, 3), (4, 5)] {
                    b = b.flow(
                        src,
                        dst,
                        Traffic::SaturatedUdp {
                            payload_bytes: 512,
                            backlog: 10,
                        },
                    );
                }
                b.build()
            }
            SweepScenario::MobileDisk {
                n,
                radius_m,
                topo_seed,
                rate,
                speed_mps,
                epoch_ms,
            } => {
                assert!(n >= 6, "mobile_disk needs ≥ 6 stations for its flows");
                let mut b = ScenarioBuilder::new(rate)
                    .random_disk(n, radius_m, topo_seed)
                    .seed(seed)
                    .duration(params.duration)
                    .warmup(params.warmup)
                    .mobility(
                        MobilityConfig::waypoint(speed_mps)
                            .with_epoch(SimDuration::from_millis(epoch_ms as u64)),
                    );
                for (src, dst) in [(0, 1), (2, 3), (4, 5)] {
                    b = b.flow(
                        src,
                        dst,
                        Traffic::SaturatedUdp {
                            payload_bytes: 512,
                            backlog: 10,
                        },
                    );
                }
                b.build()
            }
            SweepScenario::HiddenTriple {
                rate,
                scheme,
                payload_bytes,
            } => {
                let cfg = ExpConfig {
                    seed,
                    duration: params.duration,
                    warmup: params.warmup,
                    threads: params.threads,
                };
                hidden::hidden_triple(cfg, rate, scheme, payload_bytes)
            }
        }
    }

    /// The four cells (both transports × both schemes) of one paper
    /// four-station figure: 7, 9, 11 or 12.
    ///
    /// # Panics
    ///
    /// Panics on a figure number the paper does not have.
    pub fn figure(figure: u32) -> Vec<SweepScenario> {
        let (rate, layout) = match figure {
            7 => (PhyRate::R11, FourStationLayout::AsymmetricAt11),
            9 => (PhyRate::R2, FourStationLayout::AsymmetricAt2),
            11 => (PhyRate::R11, FourStationLayout::Symmetric),
            12 => (PhyRate::R2, FourStationLayout::Symmetric),
            other => panic!("no four-station figure {other} in the paper (7, 9, 11, 12)"),
        };
        let mut v = Vec::with_capacity(4);
        for transport in [SessionTransport::Udp, SessionTransport::Tcp] {
            for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
                v.push(SweepScenario::FourStation {
                    rate,
                    layout,
                    transport,
                    scheme,
                });
            }
        }
        v
    }

    /// The canonical mobile cell: 64 stations random-waypoint walking at
    /// `speed_mps` on a 120 m disk — the disk20 scale, where
    /// single-hop flows actually deliver at the calibrated 2 Mb/s data
    /// range (topology stream 7, 2 Mb/s, 250 ms
    /// epochs). The `repro --group mobile-disk64` family sweeps this
    /// recipe over a speed ladder.
    pub fn mobile_disk64(speed_mps: f64) -> SweepScenario {
        SweepScenario::MobileDisk {
            n: 64,
            radius_m: 120.0,
            topo_seed: 7,
            rate: PhyRate::R2,
            speed_mps,
            epoch_ms: 250,
        }
    }

    /// The hidden-terminal pair of cells — basic access (collapse) and
    /// RTS/CTS (recovery) — at 2 Mb/s with the paper's 512 B payload.
    pub fn hidden3() -> Vec<SweepScenario> {
        [AccessScheme::Basic, AccessScheme::RtsCts]
            .into_iter()
            .map(|scheme| SweepScenario::HiddenTriple {
                rate: PhyRate::R2,
                scheme,
                payload_bytes: 512,
            })
            .collect()
    }
}

/// One point of the MAC-parameter grid: a backoff policy plus the
/// sweepable Table 1 constants. Plain `Copy` data — workers copy cells
/// across threads, and the axis is hashed into every [`CellKey`].
///
/// The default ([`MacAxis::table1`]) is physics-neutral: applying it to
/// a scenario reproduces the pre-axis behaviour bit for bit, so sweeps
/// that never mention the axis keep their golden results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacAxis {
    /// Contention-window policy.
    pub policy: BackoffConfig,
    /// CWmin, slots.
    pub cw_min: u32,
    /// CWmax, slots.
    pub cw_max: u32,
    /// dot11ShortRetryLimit.
    pub short_retry: u32,
    /// dot11LongRetryLimit.
    pub long_retry: u32,
    /// Slot time, µs (DIFS re-derives as SIFS + 2·slot).
    pub slot_us: u32,
}

impl MacAxis {
    /// The paper's Table 1 defaults under binary exponential backoff —
    /// the identity axis.
    pub fn table1() -> MacAxis {
        MacAxis {
            policy: BackoffConfig::Beb,
            cw_min: 32,
            cw_max: 1024,
            short_retry: 7,
            long_retry: 4,
            slot_us: 20,
        }
    }

    /// Whether this is the identity axis.
    pub fn is_table1(&self) -> bool {
        *self == MacAxis::table1()
    }

    /// A compact label of the dimensions that differ from Table 1
    /// (empty for the identity axis), e.g. `"fixed64/cw8-1024"`.
    pub fn label(&self) -> String {
        let def = MacAxis::table1();
        let mut parts: Vec<String> = Vec::new();
        match self.policy {
            BackoffConfig::Beb => {}
            BackoffConfig::FixedCw(cw) => parts.push(format!("fixed{cw}")),
            BackoffConfig::CtAdapt(c) => {
                let d = dot11_mac::CtAdaptConfig::default();
                if c == d {
                    parts.push("ctadapt".to_string());
                } else {
                    parts.push(format!("ctadapt(t{},g{},w{})", c.target, c.gain, c.window));
                }
            }
        }
        if (self.cw_min, self.cw_max) != (def.cw_min, def.cw_max) {
            parts.push(format!("cw{}-{}", self.cw_min, self.cw_max));
        }
        if (self.short_retry, self.long_retry) != (def.short_retry, def.long_retry) {
            parts.push(format!("retry{}-{}", self.short_retry, self.long_retry));
        }
        if self.slot_us != def.slot_us {
            parts.push(format!("slot{}us", self.slot_us));
        }
        parts.join("/")
    }

    /// Feeds the axis into a stable hasher (part of every cell key).
    pub fn encode(&self, h: &mut StableHasher) {
        match self.policy {
            BackoffConfig::Beb => h.write_str("beb"),
            BackoffConfig::FixedCw(cw) => {
                h.write_str("fixed");
                h.write_u32(cw);
            }
            BackoffConfig::CtAdapt(c) => {
                h.write_str("ctadapt");
                h.write_f64(c.target);
                h.write_f64(c.gain);
                h.write_u32(c.window);
            }
        }
        h.write_u32(self.cw_min);
        h.write_u32(self.cw_max);
        h.write_u32(self.short_retry);
        h.write_u32(self.long_retry);
        h.write_u32(self.slot_us);
    }

    /// Applies the axis to a scenario's MAC configuration.
    pub fn apply(&self, mac: &mut MacConfig) {
        mac.backoff = self.policy;
        *mac = mac
            .with_cw(self.cw_min, self.cw_max)
            .with_retry_limits(self.short_retry, self.long_retry)
            .with_slot_us(self.slot_us);
    }
}

impl Default for MacAxis {
    fn default() -> MacAxis {
        MacAxis::table1()
    }
}

/// Run length and warm-up shared by every cell of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Simulated session length.
    pub duration: SimDuration,
    /// Warm-up excluded from throughput windows.
    pub warmup: SimDuration,
    /// Worker threads per cell run (sharded executor above 1; see
    /// `World::run_sharded`). Execution-only — a cell's report is
    /// byte-identical at any thread count, so this field is deliberately
    /// **excluded from the cell key**: cached results stay valid across
    /// thread budgets.
    pub threads: usize,
}

impl RunParams {
    /// The `repro` binary's full-fidelity settings: 20 s sessions, 2 s
    /// warm-up (matches [`ExpConfig::full`]), serial execution.
    pub fn full() -> RunParams {
        let c = ExpConfig::full();
        RunParams {
            duration: c.duration,
            warmup: c.warmup,
            threads: 1,
        }
    }

    /// Reduced settings (4 s sessions) matching [`ExpConfig::quick`].
    pub fn quick() -> RunParams {
        let c = ExpConfig::quick();
        RunParams {
            duration: c.duration,
            warmup: c.warmup,
            threads: 1,
        }
    }

    /// This parameter set with the given per-run worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> RunParams {
        self.threads = threads.max(1);
        self
    }

    fn encode(&self, h: &mut StableHasher) {
        // `threads` intentionally absent: it cannot change the result.
        h.write_u64(self.duration.as_nanos());
        h.write_u64(self.warmup.as_nanos());
    }
}

/// The content hash naming one cell: stable across processes, platforms
/// and worker counts, and therefore safe to use as a cache filename.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u64);

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One unit of sweep work: a scenario recipe at one MAC-axis point and
/// one seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// The scenario recipe.
    pub scenario: SweepScenario,
    /// The MAC-parameter/policy point this cell runs under.
    pub mac: MacAxis,
    /// The master seed of this run.
    pub seed: u64,
    /// Run length and warm-up.
    pub params: RunParams,
}

impl CellSpec {
    /// The cell's content hash over (format version, scenario, MAC axis,
    /// seed, params). The version tag is bumped whenever the *meaning*
    /// of a cached result changes, invalidating old cache dirs
    /// wholesale; `v4` added the MAC axis, `v5` the mobility recipes.
    pub fn key(&self) -> CellKey {
        let mut h = StableHasher::new();
        h.write_str("dot11-sweep/v5");
        self.scenario.encode(&mut h);
        self.mac.encode(&mut h);
        h.write_u64(self.seed);
        self.params.encode(&mut h);
        CellKey(h.finish())
    }

    /// The label cells aggregate under: everything but the seed — the
    /// scenario name, with `@axis` appended off the identity MAC axis.
    pub fn group_label(&self) -> String {
        if self.mac.is_table1() {
            self.scenario.name()
        } else {
            format!("{}@{}", self.scenario.name(), self.mac.label())
        }
    }

    /// Expands the cell into a runnable [`Scenario`]: the recipe at this
    /// cell's seed, re-tuned to this cell's MAC axis.
    pub fn build(&self) -> Scenario {
        self.scenario
            .build(self.params, self.seed)
            .tune_mac(|mac| self.mac.apply(mac))
            .with_threads(self.params.threads)
    }
}

/// The cross product a sweep runs: scenarios × MAC axes × seeds under
/// one [`RunParams`].
///
/// # Examples
///
/// A CWmin ladder over the hidden-terminal pair — 2 scenarios ×
/// 3 axes × 4 seeds = 24 cells, each with a distinct [`CellKey`]:
///
/// ```
/// use dot11_sweep::{MacAxis, RunParams, SweepScenario, SweepSpec};
///
/// let spec = SweepSpec::new(RunParams::quick())
///     .scenarios(SweepScenario::hidden3())
///     .mac_axes([8, 32, 128].map(|cw_min| MacAxis {
///         cw_min,
///         ..MacAxis::table1()
///     }))
///     .seeds(1..=4);
/// let cells = spec.cells();
/// assert_eq!(cells.len(), 24);
/// let keys: std::collections::HashSet<_> = cells.iter().map(|c| c.key()).collect();
/// assert_eq!(keys.len(), 24);
/// // Non-default axes surface in the grouping label:
/// assert_eq!(cells[0].group_label(), "hidden3/512B/2000k/udp/basic@cw8-1024");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Scenario recipes, in report order.
    pub scenarios: Vec<SweepScenario>,
    /// MAC-parameter/policy grid every scenario runs under. Defaults to
    /// the single identity axis ([`MacAxis::table1`]).
    pub mac_axes: Vec<MacAxis>,
    /// Seeds every (scenario, axis) pair is run at.
    pub seeds: Vec<u64>,
    /// Shared run parameters.
    pub params: RunParams,
}

impl SweepSpec {
    /// An empty spec with the given run parameters and the identity MAC
    /// axis.
    pub fn new(params: RunParams) -> SweepSpec {
        SweepSpec {
            scenarios: Vec::new(),
            mac_axes: vec![MacAxis::table1()],
            seeds: Vec::new(),
            params,
        }
    }

    /// Adds one scenario recipe.
    pub fn scenario(mut self, s: SweepScenario) -> SweepSpec {
        self.scenarios.push(s);
        self
    }

    /// Adds several scenario recipes.
    pub fn scenarios(mut self, s: impl IntoIterator<Item = SweepScenario>) -> SweepSpec {
        self.scenarios.extend(s);
        self
    }

    /// Replaces the MAC grid (e.g. a CWmin ladder). An empty iterator
    /// falls back to the identity axis.
    pub fn mac_axes(mut self, axes: impl IntoIterator<Item = MacAxis>) -> SweepSpec {
        self.mac_axes = axes.into_iter().collect();
        if self.mac_axes.is_empty() {
            self.mac_axes.push(MacAxis::table1());
        }
        self
    }

    /// Sets the seed list from any iterator (e.g. `1..=30`).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> SweepSpec {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Expands the cross product, scenario-major then axis-major: all
    /// seeds of the first (scenario, axis) pair, then the next axis, …
    /// Cell order is part of the report contract (groups keep
    /// first-appearance order).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells =
            Vec::with_capacity(self.scenarios.len() * self.mac_axes.len() * self.seeds.len());
        for &scenario in &self.scenarios {
            for &mac in &self.mac_axes {
                for &seed in &self.seeds {
                    cells.push(CellSpec {
                        scenario,
                        mac,
                        seed,
                        params: self.params,
                    });
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RunParams {
        RunParams {
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(200),
            threads: 1,
        }
    }

    #[test]
    fn cross_product_is_scenario_major() {
        let spec = SweepSpec::new(params())
            .scenarios(SweepScenario::figure(7))
            .seeds(1..=3);
        let cells = spec.cells();
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[2].seed, 3);
        assert_eq!(cells[0].scenario, cells[2].scenario);
        assert_ne!(cells[0].scenario, cells[3].scenario);
    }

    #[test]
    fn keys_separate_every_dimension() {
        let base = CellSpec {
            scenario: SweepScenario::figure(7)[0],
            mac: MacAxis::table1(),
            seed: 1,
            params: params(),
        };
        let other_seed = CellSpec { seed: 2, ..base };
        let other_scenario = CellSpec {
            scenario: SweepScenario::figure(9)[0],
            ..base
        };
        let other_params = CellSpec {
            params: RunParams {
                duration: SimDuration::from_secs(3),
                warmup: base.params.warmup,
                threads: 1,
            },
            ..base
        };
        let other_axis = CellSpec {
            mac: MacAxis {
                cw_min: 16,
                ..MacAxis::table1()
            },
            ..base
        };
        let other_policy = CellSpec {
            mac: MacAxis {
                policy: BackoffConfig::FixedCw(32),
                ..MacAxis::table1()
            },
            ..base
        };
        let keys = [
            base.key(),
            other_seed.key(),
            other_scenario.key(),
            other_params.key(),
            other_axis.key(),
            other_policy.key(),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "cells {i} and {j} collide");
            }
        }
    }

    #[test]
    fn mac_axis_labels_only_what_differs_from_table1() {
        let identity = MacAxis::table1();
        assert!(identity.is_table1());
        assert_eq!(identity.label(), "");
        let cw = MacAxis {
            cw_min: 8,
            ..identity
        };
        assert_eq!(cw.label(), "cw8-1024");
        let fixed = MacAxis {
            policy: BackoffConfig::FixedCw(64),
            slot_us: 9,
            ..identity
        };
        assert_eq!(fixed.label(), "fixed64/slot9us");
        let ct = MacAxis {
            policy: BackoffConfig::CtAdapt(dot11_mac::CtAdaptConfig::default()),
            short_retry: 5,
            long_retry: 3,
            ..identity
        };
        assert_eq!(ct.label(), "ctadapt/retry5-3");
        let cell = CellSpec {
            scenario: SweepScenario::figure(7)[0],
            mac: cw,
            seed: 1,
            params: params(),
        };
        assert_eq!(
            cell.group_label(),
            "four_station/asym11/11000k/udp/basic@cw8-1024"
        );
    }

    #[test]
    fn mac_axis_applies_to_a_built_scenario() {
        let cell = CellSpec {
            scenario: SweepScenario::TwoStation {
                rate: PhyRate::R11,
                distance_m: 10.0,
                transport: SessionTransport::Udp,
                scheme: AccessScheme::Basic,
            },
            mac: MacAxis {
                policy: BackoffConfig::FixedCw(16),
                cw_min: 16,
                cw_max: 64,
                short_retry: 5,
                long_retry: 3,
                slot_us: 9,
            },
            seed: 5,
            params: RunParams {
                duration: SimDuration::from_millis(400),
                warmup: SimDuration::from_millis(100),
                threads: 1,
            },
        };
        // The tuned scenario still runs, and the axis reached the MAC.
        let report = cell.build().run();
        assert!(report.flow(dot11_net::FlowId(0)).throughput_kbps > 100.0);
        let mut mac = MacConfig::new(PhyRate::R11);
        cell.mac.apply(&mut mac);
        assert_eq!(mac.backoff, BackoffConfig::FixedCw(16));
        assert_eq!(mac.timing.cw_min, 16);
        assert_eq!(mac.timing.cw_max, 64);
        assert_eq!(mac.short_retry_limit, 5);
        assert_eq!(mac.long_retry_limit, 3);
        assert_eq!(mac.timing.slot.as_micros(), 9);
        // DIFS re-derives from the swept slot.
        assert_eq!(mac.timing.difs.as_micros(), 10 + 2 * 9);
    }

    #[test]
    fn hidden_triple_cells_are_named_and_run() {
        let pair = SweepScenario::hidden3();
        assert_eq!(pair[0].name(), "hidden3/512B/2000k/udp/basic");
        assert_eq!(pair[1].name(), "hidden3/512B/2000k/udp/rts");
        let cell = CellSpec {
            scenario: pair[0],
            mac: MacAxis::table1(),
            seed: 5,
            params: RunParams {
                duration: SimDuration::from_millis(400),
                warmup: SimDuration::from_millis(100),
                threads: 1,
            },
        };
        let report = cell.build().run();
        assert!(report.engine.events > 0);
    }

    #[test]
    fn names_are_stable_and_seed_free() {
        let spec = SweepScenario::figure(12)[3];
        assert_eq!(spec.name(), "four_station/sym/2000k/tcp/rts");
        let cell = CellSpec {
            scenario: spec,
            mac: MacAxis::table1(),
            seed: 7,
            params: params(),
        };
        assert_eq!(cell.group_label(), spec.name());
    }

    #[test]
    #[should_panic(expected = "no four-station figure")]
    fn unknown_figure_panics() {
        SweepScenario::figure(8);
    }

    #[test]
    fn built_scenarios_run() {
        let cell = CellSpec {
            scenario: SweepScenario::TwoStation {
                rate: PhyRate::R11,
                distance_m: 10.0,
                transport: SessionTransport::Udp,
                scheme: AccessScheme::Basic,
            },
            mac: MacAxis::table1(),
            seed: 5,
            params: RunParams {
                duration: SimDuration::from_millis(400),
                warmup: SimDuration::from_millis(100),
                threads: 1,
            },
        };
        let report = cell.build().run();
        assert!(report.flow(dot11_net::FlowId(0)).throughput_kbps > 100.0);
    }

    #[test]
    fn large_topology_names_are_stable() {
        let cases = [
            (
                SweepScenario::Chain {
                    n: 16,
                    spacing_m: 80.0,
                    rate: PhyRate::R2,
                },
                "chain/16x80m/2000k/udp",
            ),
            (
                SweepScenario::Grid {
                    rows: 4,
                    cols: 4,
                    spacing_m: 80.0,
                    rate: PhyRate::R2,
                },
                "grid/4x4x80m/2000k/udp",
            ),
            (
                SweepScenario::RandomDisk {
                    n: 20,
                    radius_m: 120.0,
                    topo_seed: 7,
                    rate: PhyRate::R2,
                },
                "disk/20@120m/t7/2000k/udp",
            ),
            (
                SweepScenario::mobile_disk64(20.0),
                "mobile-disk/64@120m/t7/v20mps/e250ms/2000k/udp",
            ),
        ];
        for (scenario, name) in cases {
            assert_eq!(scenario.name(), name);
        }
    }

    #[test]
    fn large_topology_keys_separate_every_dimension() {
        let base = SweepScenario::Chain {
            n: 16,
            spacing_m: 80.0,
            rate: PhyRate::R2,
        };
        let variants = [
            base,
            SweepScenario::Chain {
                n: 17,
                spacing_m: 80.0,
                rate: PhyRate::R2,
            },
            SweepScenario::Chain {
                n: 16,
                spacing_m: 81.0,
                rate: PhyRate::R2,
            },
            // Same 16 stations, 80 m pitch — but arranged as a grid.
            SweepScenario::Grid {
                rows: 2,
                cols: 8,
                spacing_m: 80.0,
                rate: PhyRate::R2,
            },
            SweepScenario::Grid {
                rows: 8,
                cols: 2,
                spacing_m: 80.0,
                rate: PhyRate::R2,
            },
            SweepScenario::RandomDisk {
                n: 16,
                radius_m: 80.0,
                topo_seed: 1,
                rate: PhyRate::R2,
            },
            SweepScenario::RandomDisk {
                n: 16,
                radius_m: 80.0,
                topo_seed: 2,
                rate: PhyRate::R2,
            },
            // The same field, mobile — and each mobility dimension keys
            // apart too.
            SweepScenario::MobileDisk {
                n: 16,
                radius_m: 80.0,
                topo_seed: 2,
                rate: PhyRate::R2,
                speed_mps: 10.0,
                epoch_ms: 250,
            },
            SweepScenario::MobileDisk {
                n: 16,
                radius_m: 80.0,
                topo_seed: 2,
                rate: PhyRate::R2,
                speed_mps: 20.0,
                epoch_ms: 250,
            },
            SweepScenario::MobileDisk {
                n: 16,
                radius_m: 80.0,
                topo_seed: 2,
                rate: PhyRate::R2,
                speed_mps: 10.0,
                epoch_ms: 100,
            },
        ];
        let keys: Vec<_> = variants
            .iter()
            .map(|&scenario| {
                CellSpec {
                    scenario,
                    mac: MacAxis::table1(),
                    seed: 1,
                    params: params(),
                }
                .key()
            })
            .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "cells {i} and {j} collide");
            }
        }
    }

    #[test]
    fn built_chain_and_disk_scenarios_run() {
        let params = RunParams {
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            threads: 1,
        };
        // A 4-station chain moves end-to-end traffic over its static route.
        let chain = SweepScenario::Chain {
            n: 4,
            spacing_m: 80.0,
            rate: PhyRate::R2,
        };
        let report = chain.build(params, 5).run();
        assert!(report.flow(dot11_net::FlowId(0)).delivered_packets > 0);
        // A random disk's three single-hop flows all move packets: with
        // only 40 m radius every pair is mutually audible.
        let disk = SweepScenario::RandomDisk {
            n: 6,
            radius_m: 40.0,
            topo_seed: 3,
            rate: PhyRate::R2,
        };
        let report = disk.build(params, 5).run();
        for flow in 0..3 {
            assert!(
                report.flow(dot11_net::FlowId(flow)).delivered_packets > 0,
                "disk flow {flow} starved"
            );
        }
        // A mobile disk commits epochs and still moves packets.
        let mobile = SweepScenario::MobileDisk {
            n: 6,
            radius_m: 40.0,
            topo_seed: 3,
            rate: PhyRate::R2,
            speed_mps: 15.0,
            epoch_ms: 100,
        };
        let report = mobile.build(params, 5).run();
        assert!(report.engine.mobility.epochs > 0, "no epochs committed");
        assert!(
            report.flow(dot11_net::FlowId(0)).delivered_packets > 0,
            "mobile disk flow 0 starved"
        );
    }
}
