//! Sweep results: per-cell metrics, seed-aggregated groups, engine stats.
//!
//! A [`SweepReport`] has two layers with different determinism contracts:
//!
//! * [`SweepReport::cells`] and [`SweepReport::groups`] depend only on
//!   the spec — identical for any worker count, cache state or machine.
//!   [`SweepReport::deterministic_json`] serializes exactly this layer,
//!   and the determinism tests compare it byte-for-byte across
//!   `--jobs 1` / `--jobs 8` / warm-cache runs.
//! * [`SweepReport::engine`] is wall-clock instrumentation (sweep
//!   speedup, per-worker utilization) and is *expected* to differ
//!   between runs; [`SweepReport::to_json`] appends it.

use std::time::Duration;

use desim::SimDuration;
use dot11_adhoc::{RunReport, Summary};

use crate::spec::{CellKey, CellSpec};

/// Number formatting for report JSON: Rust's shortest-round-trip `f64`
/// `Display`, so a value survives serialize → parse → serialize with
/// identical bytes (the cache byte-identity contract).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; metrics are finite by construction, but
        // never emit invalid JSON if that invariant breaks.
        "null".to_owned()
    }
}

/// The deterministic, cacheable outcome of one cell run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Per-flow application throughput inside the measurement window,
    /// kb/s, in flow-id order.
    pub flows_kbps: Vec<f64>,
    /// Per-flow end-to-end loss rate, in flow-id order.
    pub loss_rates: Vec<f64>,
    /// Jain's fairness index over the cell's flows.
    pub fairness: f64,
    /// Mean over stations of the channel-utilization fraction (share of
    /// the run each station saw the channel non-idle: own tx, locked rx,
    /// or carrier busy). From the airtime ledger — deterministic physics,
    /// so it caches and compares like the throughputs.
    pub chan_util: f64,
    /// Mean over stations of the transmitting share of the run.
    pub tx_util: f64,
    /// Events the simulator dispatched.
    pub events: u64,
    /// Event-queue high-water mark.
    pub queue_high_water: u64,
    /// Simulated time covered, nanoseconds.
    pub sim_elapsed_ns: u64,
}

impl CellMetrics {
    /// Extracts the deterministic metrics from a finished run (drops the
    /// wall-clock side of [`dot11_adhoc::EngineStats`], which may not be
    /// cached or compared).
    pub fn from_report(report: &RunReport) -> CellMetrics {
        let stations = report.nodes.len().max(1) as f64;
        CellMetrics {
            flows_kbps: report.flows.iter().map(|f| f.throughput_kbps).collect(),
            loss_rates: report.flows.iter().map(|f| f.loss_rate).collect(),
            fairness: report.fairness(),
            chan_util: report
                .nodes
                .iter()
                .map(|n| n.airtime.channel_utilization())
                .sum::<f64>()
                / stations,
            tx_util: report
                .nodes
                .iter()
                .map(|n| n.airtime.tx_fraction())
                .sum::<f64>()
                / stations,
            events: report.engine.events,
            queue_high_water: report.engine.queue_high_water as u64,
            sim_elapsed_ns: report.engine.sim_elapsed.as_nanos(),
        }
    }

    /// Sum of the per-flow throughputs, kb/s.
    pub fn total_kbps(&self) -> f64 {
        self.flows_kbps.iter().sum()
    }

    /// Serializes to one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let flows: Vec<String> = self.flows_kbps.iter().map(|&v| fmt_f64(v)).collect();
        let losses: Vec<String> = self.loss_rates.iter().map(|&v| fmt_f64(v)).collect();
        format!(
            "{{\"flows_kbps\":[{}],\"loss_rates\":[{}],\"fairness\":{},\
             \"chan_util\":{},\"tx_util\":{},\
             \"events\":{},\"queue_high_water\":{},\"sim_elapsed_ns\":{}}}",
            flows.join(","),
            losses.join(","),
            fmt_f64(self.fairness),
            fmt_f64(self.chan_util),
            fmt_f64(self.tx_util),
            self.events,
            self.queue_high_water,
            self.sim_elapsed_ns
        )
    }
}

/// One cell of a finished sweep: its spec, key, metrics, and whether the
/// result came out of the cache instead of a fresh simulation.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// What was run.
    pub spec: CellSpec,
    /// The cell's content hash (cache identity).
    pub key: CellKey,
    /// The deterministic result.
    pub metrics: CellMetrics,
    /// True if the result was loaded from the run cache.
    pub cached: bool,
}

/// Seed-aggregated statistics for one scenario recipe.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// The scenario's [`CellSpec::group_label`].
    pub label: String,
    /// Seeds aggregated, in spec order.
    pub seeds: Vec<u64>,
    /// Per-flow throughput summaries over seeds, in flow-id order.
    pub flows_kbps: Vec<Summary>,
    /// Total (all-flow) throughput summary over seeds.
    pub total_kbps: Summary,
    /// Fairness-index summary over seeds.
    pub fairness: Summary,
    /// Channel-utilization summary over seeds (station-mean non-idle
    /// share per cell, from [`CellMetrics::chan_util`]).
    pub chan_util: Summary,
}

impl GroupReport {
    /// Mean second-flow over mean first-flow throughput — the paper's
    /// session-2/session-1 imbalance — when the group has ≥ 2 flows and
    /// flow 0 did not starve on average.
    pub fn imbalance(&self) -> Option<f64> {
        match self.flows_kbps.as_slice() {
            [first, second, ..] if first.mean > 0.0 => Some(second.mean / first.mean),
            _ => None,
        }
    }

    fn summary_json(s: &Summary) -> String {
        format!(
            "{{\"n\":{},\"mean\":{},\"median\":{},\"std_dev\":{},\"ci95\":{},\
             \"min\":{},\"max\":{}}}",
            s.n,
            fmt_f64(s.mean),
            fmt_f64(s.median),
            fmt_f64(s.std_dev),
            fmt_f64(s.ci95),
            fmt_f64(s.min),
            fmt_f64(s.max)
        )
    }

    fn to_json(&self) -> String {
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        let flows: Vec<String> = self.flows_kbps.iter().map(Self::summary_json).collect();
        format!(
            "{{\"label\":\"{}\",\"seeds\":[{}],\"flows_kbps\":[{}],\
             \"total_kbps\":{},\"fairness\":{},\"chan_util\":{}}}",
            self.label,
            seeds.join(","),
            flows.join(","),
            Self::summary_json(&self.total_kbps),
            Self::summary_json(&self.fairness),
            Self::summary_json(&self.chan_util)
        )
    }
}

/// What one worker thread did during the sweep.
#[derive(Debug, Clone, Copy)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Cells this worker simulated.
    pub cells: usize,
    /// Events dispatched across those cells.
    pub events: u64,
    /// Wall-clock time spent inside `World::run`.
    pub busy: Duration,
}

impl WorkerStats {
    /// Share of the sweep's wall time this worker spent simulating.
    pub fn utilization(&self, sweep_wall: Duration) -> f64 {
        let w = sweep_wall.as_secs_f64();
        if w > 0.0 {
            (self.busy.as_secs_f64() / w).min(1.0)
        } else {
            0.0
        }
    }
}

/// Sweep-level engine instrumentation (wall-clock; varies run to run).
#[derive(Debug, Clone)]
pub struct SweepEngine {
    /// Worker threads requested.
    pub jobs: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Cells simulated this run.
    pub simulated: usize,
    /// Cells answered from the run cache.
    pub cached: usize,
    /// Simulated time covered by the cells simulated *this run*.
    pub sim_elapsed: SimDuration,
    /// Events dispatched by the cells simulated this run.
    pub events: u64,
    /// Per-worker breakdown (workers that simulated at least one cell).
    pub workers: Vec<WorkerStats>,
}

impl SweepEngine {
    /// Aggregate simulated-seconds per wall-second across all workers —
    /// with N busy workers this exceeds any single run's speedup.
    pub fn speedup(&self) -> f64 {
        let w = self.wall.as_secs_f64();
        if w > 0.0 {
            self.sim_elapsed.as_secs_f64() / w
        } else {
            0.0
        }
    }

    /// Mean worker utilization (busy share of sweep wall time).
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers
            .iter()
            .map(|w| w.utilization(self.wall))
            .sum::<f64>()
            / self.workers.len() as f64
    }

    fn to_json(&self) -> String {
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"worker\":{},\"cells\":{},\"events\":{},\"busy_ns\":{},\
                     \"utilization\":{}}}",
                    w.worker,
                    w.cells,
                    w.events,
                    w.busy.as_nanos(),
                    fmt_f64(w.utilization(self.wall))
                )
            })
            .collect();
        format!(
            "{{\"jobs\":{},\"wall_ns\":{},\"simulated\":{},\"cached\":{},\
             \"sim_elapsed_ns\":{},\"events\":{},\"speedup\":{},\
             \"mean_utilization\":{},\"workers\":[{}]}}",
            self.jobs,
            self.wall.as_nanos(),
            self.simulated,
            self.cached,
            self.sim_elapsed.as_nanos(),
            self.events,
            fmt_f64(self.speedup()),
            fmt_f64(self.mean_utilization()),
            workers.join(",")
        )
    }
}

/// A finished sweep (see module docs for the determinism contract).
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Every cell, in spec order.
    pub cells: Vec<CellOutcome>,
    /// Seed-aggregated groups, in first-appearance order.
    pub groups: Vec<GroupReport>,
    /// Wall-clock instrumentation of this particular run.
    pub engine: SweepEngine,
}

impl SweepReport {
    /// Groups `cells` (already in spec order) by scenario label and
    /// aggregates each metric over seeds.
    pub(crate) fn group(cells: &[CellOutcome]) -> Vec<GroupReport> {
        let mut groups: Vec<GroupReport> = Vec::new();
        for cell in cells {
            let label = cell.spec.group_label();
            if !groups.iter().any(|g| g.label == label) {
                let members: Vec<&CellOutcome> = cells
                    .iter()
                    .filter(|c| c.spec.group_label() == label)
                    .collect();
                let flow_count = members
                    .iter()
                    .map(|c| c.metrics.flows_kbps.len())
                    .max()
                    .unwrap_or(0);
                let flows_kbps = (0..flow_count)
                    .map(|i| {
                        let samples: Vec<f64> = members
                            .iter()
                            .filter_map(|c| c.metrics.flows_kbps.get(i).copied())
                            .collect();
                        Summary::of(&samples).expect("group has at least one member")
                    })
                    .collect();
                let totals: Vec<f64> = members.iter().map(|c| c.metrics.total_kbps()).collect();
                let fairness: Vec<f64> = members.iter().map(|c| c.metrics.fairness).collect();
                let chan_util: Vec<f64> = members.iter().map(|c| c.metrics.chan_util).collect();
                groups.push(GroupReport {
                    label,
                    seeds: members.iter().map(|c| c.spec.seed).collect(),
                    flows_kbps,
                    total_kbps: Summary::of(&totals).expect("non-empty"),
                    fairness: Summary::of(&fairness).expect("non-empty"),
                    chan_util: Summary::of(&chan_util).expect("non-empty"),
                });
            }
        }
        groups
    }

    /// Serializes only the worker-count-independent layer: cells (spec,
    /// key, metrics) and groups. Byte-identical for any `jobs` value and
    /// any cache state.
    pub fn deterministic_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"key\":\"{}\",\"scenario\":\"{}\",\"seed\":{},\
                     \"duration_ns\":{},\"metrics\":{}}}",
                    c.key,
                    c.spec.group_label(),
                    c.spec.seed,
                    c.spec.params.duration.as_nanos(),
                    c.metrics.to_json()
                )
            })
            .collect();
        let groups: Vec<String> = self.groups.iter().map(|g| g.to_json()).collect();
        format!(
            "{{\"cells\":[{}],\"groups\":[{}]}}",
            cells.join(","),
            groups.join(",")
        )
    }

    /// Full report: the deterministic layer plus this run's engine
    /// instrumentation.
    pub fn to_json(&self) -> String {
        let det = self.deterministic_json();
        // Splice the engine object into the outer JSON object.
        debug_assert!(det.ends_with('}'));
        format!(
            "{},\"engine\":{}}}\n",
            &det[..det.len() - 1],
            self.engine.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MacAxis, RunParams, SweepScenario};

    fn outcome(scenario: SweepScenario, seed: u64, kbps: Vec<f64>) -> CellOutcome {
        let spec = CellSpec {
            scenario,
            mac: MacAxis::table1(),
            seed,
            params: RunParams {
                duration: SimDuration::from_secs(1),
                warmup: SimDuration::from_millis(100),
                threads: 1,
            },
        };
        CellOutcome {
            key: spec.key(),
            spec,
            metrics: CellMetrics {
                loss_rates: kbps.iter().map(|_| 0.0).collect(),
                fairness: 1.0,
                chan_util: 0.5,
                tx_util: 0.25,
                events: 100,
                queue_high_water: 5,
                sim_elapsed_ns: 1_000_000_000,
                flows_kbps: kbps,
            },
            cached: false,
        }
    }

    #[test]
    fn groups_aggregate_across_seeds_only() {
        let figs = SweepScenario::figure(7);
        let cells = vec![
            outcome(figs[0], 1, vec![100.0, 300.0]),
            outcome(figs[0], 2, vec![200.0, 500.0]),
            outcome(figs[1], 1, vec![50.0, 60.0]),
        ];
        let groups = SweepReport::group(&cells);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].seeds, vec![1, 2]);
        assert!((groups[0].flows_kbps[0].mean - 150.0).abs() < 1e-12);
        assert!((groups[0].flows_kbps[1].mean - 400.0).abs() < 1e-12);
        assert!((groups[0].total_kbps.mean - 550.0).abs() < 1e-12);
        assert!((groups[0].imbalance().expect("two flows") - 400.0 / 150.0).abs() < 1e-12);
        assert_eq!(groups[1].seeds, vec![1]);
    }

    #[test]
    fn metrics_json_round_trips_shortest_floats() {
        let m = CellMetrics {
            flows_kbps: vec![599.0368, 2714.125],
            loss_rates: vec![0.1, 0.0],
            fairness: 0.7512341,
            chan_util: 0.8421875,
            tx_util: 0.2109375,
            events: 12345,
            queue_high_water: 77,
            sim_elapsed_ns: 20_000_000_000,
        };
        let json = m.to_json();
        assert!(
            json.contains("\"flows_kbps\":[599.0368,2714.125]"),
            "{json}"
        );
        assert!(json.contains("\"fairness\":0.7512341"), "{json}");
        assert!(
            json.contains("\"chan_util\":0.8421875,\"tx_util\":0.2109375"),
            "{json}"
        );
    }

    #[test]
    fn non_finite_values_never_emit_invalid_json() {
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(2.5), "2.5");
    }

    #[test]
    fn full_json_extends_deterministic_json() {
        let figs = SweepScenario::figure(11);
        let cells = vec![outcome(figs[0], 1, vec![10.0])];
        let groups = SweepReport::group(&cells);
        let report = SweepReport {
            cells,
            groups,
            engine: SweepEngine {
                jobs: 2,
                wall: Duration::from_millis(10),
                simulated: 1,
                cached: 0,
                sim_elapsed: SimDuration::from_secs(1),
                events: 100,
                workers: vec![WorkerStats {
                    worker: 0,
                    cells: 1,
                    events: 100,
                    busy: Duration::from_millis(5),
                }],
            },
        };
        let det = report.deterministic_json();
        let full = report.to_json();
        assert!(full.starts_with(&det[..det.len() - 1]));
        assert!(full.contains("\"engine\":{\"jobs\":2"));
        // 1 simulated second in 10 ms of wall: 100x aggregate speedup.
        assert!((report.engine.speedup() - 100.0).abs() < 1e-9);
        assert!((report.engine.mean_utilization() - 0.5).abs() < 1e-9);
    }
}
