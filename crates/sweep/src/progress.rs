//! Live sweep telemetry: a JSONL progress stream.
//!
//! A [`ProgressSink`] is an optional, shared (thread-safe) destination
//! the sweep runner narrates into while it works: one `sweep_start` line
//! after the cache pass, one `run_start`/`run_finish` pair per simulated
//! cell (emitted by whichever worker claimed it), and one `sweep_finish`
//! line with per-worker utilization. Each line is a self-contained JSON
//! object whose first key is `"event"`, so a consumer can `tail -f` the
//! stream and dispatch on that key alone.
//!
//! The stream is *telemetry*, not results: it carries wall-clock numbers
//! and worker interleavings that legitimately differ between runs. The
//! deterministic side of a sweep
//! ([`SweepReport::deterministic_json`](crate::SweepReport::deterministic_json))
//! is unaffected by whether a
//! sink is attached, and write errors are deliberately swallowed — a full
//! disk on the telemetry path must never fail the sweep.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

use crate::report::{fmt_f64, WorkerStats};

/// A thread-safe JSONL telemetry destination (see module docs).
pub struct ProgressSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink").finish_non_exhaustive()
    }
}

/// Events per wall-clock second, `null`-safe for zero wall time.
fn events_per_sec(events: u64, wall: Duration) -> String {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        fmt_f64(events as f64 / secs)
    } else {
        "null".to_string()
    }
}

impl ProgressSink {
    /// Wraps any writer (a file, stderr, a pipe, a test buffer).
    pub fn new(out: Box<dyn Write + Send>) -> ProgressSink {
        ProgressSink {
            out: Mutex::new(out),
        }
    }

    /// A sink writing to standard error — the conventional choice when
    /// standard output must stay machine-readable.
    pub fn stderr() -> ProgressSink {
        ProgressSink::new(Box::new(std::io::stderr()))
    }

    /// Writes one line and flushes so `tail -f` consumers see it
    /// immediately. Errors are swallowed (telemetry must not fail runs).
    fn emit(&self, line: &str) {
        let mut out = self.out.lock().expect("progress sink poisoned");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    /// The sweep is about to fan out: total cells, how many the cache
    /// already served, how many remain, and the worker count.
    pub(crate) fn sweep_start(&self, cells: usize, cached: usize, pending: usize, jobs: usize) {
        self.emit(&format!(
            "{{\"event\":\"sweep_start\",\"cells\":{cells},\"cached\":{cached},\
             \"pending\":{pending},\"jobs\":{jobs}}}"
        ));
    }

    /// A worker claimed a cell and is about to simulate it.
    pub(crate) fn run_start(&self, worker: usize, key: &str, scenario: &str, seed: u64) {
        self.emit(&format!(
            "{{\"event\":\"run_start\",\"worker\":{worker},\"cell\":\"{key}\",\
             \"scenario\":\"{scenario}\",\"seed\":{seed}}}"
        ));
    }

    /// A worker finished a cell: events dispatched, wall time inside
    /// `World::run`, and the resulting events/s.
    pub(crate) fn run_finish(&self, worker: usize, key: &str, events: u64, wall: Duration) {
        self.emit(&format!(
            "{{\"event\":\"run_finish\",\"worker\":{worker},\"cell\":\"{key}\",\
             \"events\":{events},\"wall_ns\":{},\"events_per_sec\":{}}}",
            wall.as_nanos(),
            events_per_sec(events, wall)
        ));
    }

    /// The sweep is done: totals plus one utilization entry per worker
    /// (busy time inside `World::run` over sweep wall time).
    pub(crate) fn sweep_finish(
        &self,
        wall: Duration,
        simulated: usize,
        cached: usize,
        events: u64,
        workers: &[WorkerStats],
    ) {
        let per_worker: Vec<String> = workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"worker\":{},\"cells\":{},\"events\":{},\"busy_ns\":{},\
                     \"utilization\":{}}}",
                    w.worker,
                    w.cells,
                    w.events,
                    w.busy.as_nanos(),
                    fmt_f64(w.utilization(wall))
                )
            })
            .collect();
        self.emit(&format!(
            "{{\"event\":\"sweep_finish\",\"wall_ns\":{},\"simulated\":{simulated},\
             \"cached\":{cached},\"events\":{events},\"events_per_sec\":{},\
             \"workers\":[{}]}}",
            wall.as_nanos(),
            events_per_sec(events, wall),
            per_worker.join(",")
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A writer the test can read back after the sink is done with it.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_json_object_per_event() {
        let buf = Shared::default();
        let sink = ProgressSink::new(Box::new(buf.clone()));
        sink.sweep_start(4, 1, 3, 2);
        sink.run_start(0, "abc123", "udp-basic-11mb", 7);
        sink.run_finish(0, "abc123", 1000, Duration::from_millis(2));
        sink.sweep_finish(
            Duration::from_millis(10),
            3,
            1,
            3000,
            &[WorkerStats {
                worker: 0,
                cells: 3,
                events: 3000,
                busy: Duration::from_millis(5),
            }],
        );
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].starts_with("{\"event\":\"sweep_start\",\"cells\":4,\"cached\":1"));
        assert!(lines[1].contains("\"scenario\":\"udp-basic-11mb\",\"seed\":7"));
        assert!(lines[2].contains("\"events\":1000,\"wall_ns\":2000000"));
        assert!(lines[2].contains("\"events_per_sec\":500000"));
        assert!(lines[3].contains("\"utilization\":0.5"));
        for line in lines {
            assert!(
                crate::json::parse(line).is_ok(),
                "every telemetry line parses as JSON: {line}"
            );
        }
    }

    #[test]
    fn zero_wall_time_emits_null_rate() {
        assert_eq!(events_per_sec(10, Duration::ZERO), "null");
    }
}
