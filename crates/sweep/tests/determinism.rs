//! The sweep engine's three load-bearing contracts, pinned:
//!
//! 1. **Key stability** — cell hashes are golden values. If one of these
//!    assertions fails, every existing cache directory in the world has
//!    been silently invalidated: either restore the encoding or bump the
//!    format-version tag in `CellSpec::key` *deliberately*.
//! 2. **Determinism under parallelism** — the aggregated report is
//!    byte-identical for `--jobs 1` and `--jobs 8`, and the cache files
//!    each run writes are byte-identical too.
//! 3. **Warm-cache short-circuit** — a re-run over a populated cache
//!    simulates zero worlds and still reproduces the same report.

use desim::SimDuration;
use dot11_adhoc::analytic::AccessScheme;
use dot11_adhoc::experiments::four_station::SessionTransport;
use dot11_mac::BackoffConfig;
use dot11_phy::PhyRate;
use dot11_sweep::{
    run_sweep, CellSpec, MacAxis, RunParams, SweepOptions, SweepScenario, SweepSpec,
};

/// PR 7's MAC axis entered every key (`dot11-sweep/v1` → `v4`) and PR
/// 10's mobility recipes re-salted the space again (`v4` → `v5`,
/// matching the cache-entry format), so every golden below was
/// deliberately re-pinned at each bump; the labels are unchanged
/// throughout.
#[test]
fn cell_keys_are_golden() {
    let full = RunParams::full();
    let expected = [
        ("four_station/asym11/11000k/udp/basic", "18b6ee39e5080f48"),
        ("four_station/asym11/11000k/udp/rts", "bca147e70c6dd6d9"),
        ("four_station/asym11/11000k/tcp/basic", "3d596780d0eef8e0"),
        ("four_station/asym11/11000k/tcp/rts", "e0e9a305de37c761"),
    ];
    for (scenario, (label, key)) in SweepScenario::figure(7).into_iter().zip(expected) {
        let cell = CellSpec {
            scenario,
            mac: MacAxis::table1(),
            seed: 105,
            params: full,
        };
        assert_eq!(cell.group_label(), label);
        assert_eq!(
            cell.key().to_string(),
            key,
            "stable hash of {label} moved — existing caches are invalidated"
        );
    }
    let two = CellSpec {
        scenario: SweepScenario::TwoStation {
            rate: PhyRate::R2,
            distance_m: 40.0,
            transport: SessionTransport::Tcp,
            scheme: AccessScheme::RtsCts,
        },
        mac: MacAxis::table1(),
        seed: 7,
        params: RunParams {
            duration: SimDuration::from_secs(2),
            warmup: SimDuration::from_millis(250),
            threads: 1,
        },
    };
    assert_eq!(two.key().to_string(), "1040f6d12c452992");
}

/// The PR 7 additions hash to stable keys as well: the hidden-terminal
/// pair and non-identity MAC axes (a CWmin point and a policy swap on
/// the same fig7 cell must key apart from the identity axis and from
/// each other).
#[test]
fn mac_axis_and_hidden_triple_keys_are_golden() {
    let params = RunParams {
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    };
    let hidden: Vec<CellSpec> = SweepScenario::hidden3()
        .into_iter()
        .map(|scenario| CellSpec {
            scenario,
            mac: MacAxis::table1(),
            seed: 1,
            params,
        })
        .collect();
    assert_eq!(hidden[0].group_label(), "hidden3/512B/2000k/udp/basic");
    assert_eq!(hidden[0].key().to_string(), "0bbca52583b6f9bb");
    assert_eq!(hidden[1].group_label(), "hidden3/512B/2000k/udp/rts");
    assert_eq!(hidden[1].key().to_string(), "1d747a32e1e98376");

    let base = CellSpec {
        scenario: SweepScenario::figure(7)[0],
        mac: MacAxis::table1(),
        seed: 1,
        params,
    };
    let cw8 = CellSpec {
        mac: MacAxis {
            cw_min: 8,
            ..MacAxis::table1()
        },
        ..base
    };
    assert_eq!(
        cw8.group_label(),
        "four_station/asym11/11000k/udp/basic@cw8-1024"
    );
    assert_eq!(cw8.key().to_string(), "b25cb8c28c218a3d");
    let fixed = CellSpec {
        mac: MacAxis {
            policy: BackoffConfig::FixedCw(64),
            ..MacAxis::table1()
        },
        ..base
    };
    assert_eq!(
        fixed.group_label(),
        "four_station/asym11/11000k/udp/basic@fixed64"
    );
    assert_eq!(fixed.key().to_string(), "a787c091c319be58");
}

/// The large-topology recipes added in PR 5 — and PR 10's mobile disk —
/// hash to stable keys too (re-pinned at the v5 bump like everything
/// else; labels unchanged).
#[test]
fn large_topology_cell_keys_are_golden() {
    let params = RunParams {
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    };
    let expected = [
        (
            SweepScenario::Chain {
                n: 16,
                spacing_m: 80.0,
                rate: PhyRate::R2,
            },
            "chain/16x80m/2000k/udp",
            "2b98d9024c7013e6",
        ),
        (
            SweepScenario::Chain {
                n: 64,
                spacing_m: 80.0,
                rate: PhyRate::R2,
            },
            "chain/64x80m/2000k/udp",
            "4d575701cb68b2f6",
        ),
        (
            SweepScenario::Grid {
                rows: 4,
                cols: 4,
                spacing_m: 80.0,
                rate: PhyRate::R2,
            },
            "grid/4x4x80m/2000k/udp",
            "fd45cba009f3183e",
        ),
        (
            SweepScenario::RandomDisk {
                n: 20,
                radius_m: 120.0,
                topo_seed: 7,
                rate: PhyRate::R2,
            },
            "disk/20@120m/t7/2000k/udp",
            "0a8bcc26db81fedf",
        ),
        (
            SweepScenario::mobile_disk64(20.0),
            "mobile-disk/64@120m/t7/v20mps/e250ms/2000k/udp",
            "5c31812870056ea0",
        ),
    ];
    for (scenario, label, key) in expected {
        let cell = CellSpec {
            scenario,
            mac: MacAxis::table1(),
            seed: 1,
            params,
        };
        assert_eq!(cell.group_label(), label);
        assert_eq!(
            cell.key().to_string(),
            key,
            "stable hash of {label} moved — existing caches are invalidated"
        );
    }
}

/// The chain16 family honours the same determinism contracts as the
/// paper cells: jobs-1 and jobs-8 reports byte-identical, warm cache
/// simulates nothing.
#[test]
fn chain16_sweep_is_deterministic_and_caches() {
    let spec = SweepSpec::new(RunParams {
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    })
    .scenario(SweepScenario::Chain {
        n: 16,
        spacing_m: 80.0,
        rate: PhyRate::R2,
    })
    .seeds(1..=2);
    let dir = fresh_dir("chain16");
    let serial = run_sweep(&spec, &SweepOptions::serial()).expect("serial chain sweep");
    let opts = SweepOptions {
        jobs: 8,
        cache_dir: Some(dir.clone()),
        progress: None,
    };
    let parallel = run_sweep(&spec, &opts).expect("parallel chain sweep");
    assert_eq!(parallel.engine.simulated, 2);
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "chain16 report depends on the worker count"
    );
    let warm = run_sweep(&spec, &opts).expect("warm chain sweep");
    assert_eq!(warm.engine.simulated, 0);
    assert_eq!(warm.engine.cached, 2);
    assert_eq!(warm.deterministic_json(), serial.deterministic_json());
    std::fs::remove_dir_all(&dir).ok();
}

/// The mobile disk honours the same contracts: epoch-committing cells
/// are byte-identical across worker counts, cache byte-identically, and
/// a warm re-run simulates zero worlds — mobility state never leaks
/// into the cache bytes.
#[test]
fn mobile_disk_sweep_is_deterministic_and_caches() {
    let spec = SweepSpec::new(RunParams {
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    })
    .scenario(SweepScenario::MobileDisk {
        n: 12,
        radius_m: 1_500.0,
        topo_seed: 7,
        rate: PhyRate::R2,
        speed_mps: 30.0,
        epoch_ms: 100,
    })
    .seeds(1..=2);
    let dir = fresh_dir("mobiledisk");
    let serial = run_sweep(&spec, &SweepOptions::serial()).expect("serial mobile sweep");
    let opts = SweepOptions {
        jobs: 8,
        cache_dir: Some(dir.clone()),
        progress: None,
    };
    let parallel = run_sweep(&spec, &opts).expect("parallel mobile sweep");
    assert_eq!(parallel.engine.simulated, 2);
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "mobile-disk report depends on the worker count"
    );
    let warm = run_sweep(&spec, &opts).expect("warm mobile sweep");
    assert_eq!(warm.engine.simulated, 0, "warm cache must skip every cell");
    assert_eq!(warm.engine.cached, 2);
    assert_eq!(warm.deterministic_json(), serial.deterministic_json());
    std::fs::remove_dir_all(&dir).ok();
}

/// The MAC-policy grid honours the same contracts: a hidden-terminal ×
/// (CWmin ladder + policy swap) grid is byte-identical across worker
/// counts and fully served by a warm cache — every axis point keys its
/// own cache entry.
#[test]
fn mac_grid_sweep_is_deterministic_and_caches() {
    let axes = [
        MacAxis::table1(),
        MacAxis {
            cw_min: 8,
            ..MacAxis::table1()
        },
        MacAxis {
            policy: BackoffConfig::FixedCw(64),
            ..MacAxis::table1()
        },
    ];
    let spec = SweepSpec::new(RunParams {
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    })
    .scenarios(SweepScenario::hidden3())
    .mac_axes(axes)
    .seeds(1..=2);
    assert_eq!(spec.cells().len(), 12, "2 scenarios × 3 axes × 2 seeds");

    let dir = fresh_dir("macgrid");
    let serial = run_sweep(&spec, &SweepOptions::serial()).expect("serial mac-grid sweep");
    // Every (scenario, axis) pair aggregates under its own label.
    assert_eq!(serial.groups.len(), 6);
    let opts = SweepOptions {
        jobs: 8,
        cache_dir: Some(dir.clone()),
        progress: None,
    };
    let parallel = run_sweep(&spec, &opts).expect("parallel mac-grid sweep");
    assert_eq!(parallel.engine.simulated, 12);
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "mac-grid report depends on the worker count"
    );
    let warm = run_sweep(&spec, &opts).expect("warm mac-grid sweep");
    assert_eq!(warm.engine.simulated, 0, "warm cache must skip every cell");
    assert_eq!(warm.engine.cached, 12);
    assert_eq!(warm.deterministic_json(), serial.deterministic_json());
    std::fs::remove_dir_all(&dir).ok();
}

/// 8 scenario recipes × 4 seeds = 32 cells, kept short (300 ms sims) so
/// the whole test runs in seconds.
fn spec_32_cells() -> SweepSpec {
    let mut scenarios = SweepScenario::figure(7);
    scenarios.extend(SweepScenario::figure(12));
    SweepSpec::new(RunParams {
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(100),
        threads: 1,
    })
    .scenarios(scenarios)
    .seeds(1..=4)
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("dot11-sweep-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Sorted (filename, bytes) snapshot of a cache directory.
fn cache_entries(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("cache file readable"),
            )
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn jobs_1_and_jobs_8_agree_and_warm_cache_simulates_nothing() {
    let spec = spec_32_cells();
    assert_eq!(spec.cells().len(), 32);
    let dir_serial = fresh_dir("serial");
    let dir_parallel = fresh_dir("parallel");

    // Cold, one worker.
    let serial_opts = SweepOptions {
        jobs: 1,
        cache_dir: Some(dir_serial.clone()),
        progress: None,
    };
    let serial = run_sweep(&spec, &serial_opts).expect("serial sweep");
    assert_eq!(serial.engine.simulated, 32);
    assert_eq!(serial.engine.cached, 0);

    // Cold, eight workers, separate cache.
    let parallel_opts = SweepOptions {
        jobs: 8,
        cache_dir: Some(dir_parallel.clone()),
        progress: None,
    };
    let parallel = run_sweep(&spec, &parallel_opts).expect("parallel sweep");
    assert_eq!(parallel.engine.simulated, 32);
    assert_eq!(parallel.engine.jobs, 8);

    // Contract 2a: identical aggregated reports, byte for byte.
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "aggregated SweepReport depends on the worker count"
    );

    // Contract 2b: the cache files themselves are byte-identical.
    let a = cache_entries(&dir_serial);
    let b = cache_entries(&dir_parallel);
    assert_eq!(a.len(), 32);
    assert_eq!(a, b, "cached cells written by --jobs 1 and --jobs 8 differ");

    // Contract 3: warm cache → zero worlds simulated, same report.
    let warm = run_sweep(&spec, &parallel_opts).expect("warm sweep");
    assert_eq!(warm.engine.simulated, 0, "warm cache must skip every cell");
    assert_eq!(warm.engine.cached, 32);
    assert!(warm.cells.iter().all(|c| c.cached));
    assert_eq!(warm.deterministic_json(), serial.deterministic_json());

    // And a partially warm cache simulates exactly the missing cells.
    let extra = {
        let mut s = spec.clone();
        s.seeds.push(5);
        s
    };
    let partial = run_sweep(&extra, &parallel_opts).expect("partial sweep");
    assert_eq!(partial.engine.cached, 32);
    assert_eq!(partial.engine.simulated, 8, "only the new seed's cells run");

    std::fs::remove_dir_all(&dir_serial).ok();
    std::fs::remove_dir_all(&dir_parallel).ok();
}

/// The smoke grid's total dispatched-event count is a tracked golden.
///
/// PR 4's timer coalescing + signal-delivery batching cut this grid from
/// 248,758 events to 84,805 (2.93×). The pin has a small band so an
/// innocent new timer doesn't trip it, but reintroducing per-slot
/// backoff ticks or per-receiver signal events (which roughly triples
/// the count) must fail loudly rather than silently eat the win back.
#[test]
fn smoke_grid_event_budget_is_pinned() {
    const GOLDEN_EVENTS: u64 = 84_805;
    const TOLERANCE: f64 = 0.05;

    let report = run_sweep(&spec_32_cells(), &SweepOptions::serial()).expect("sweep");
    let total: u64 = report.cells.iter().map(|c| c.metrics.events).sum();
    let lo = (GOLDEN_EVENTS as f64 * (1.0 - TOLERANCE)) as u64;
    let hi = (GOLDEN_EVENTS as f64 * (1.0 + TOLERANCE)) as u64;
    assert!(
        (lo..=hi).contains(&total),
        "smoke grid dispatched {total} events, outside the pinned budget \
         {GOLDEN_EVENTS} ± 5% [{lo}, {hi}] — if the change is a deliberate \
         engine-schedule change, re-pin the golden and state the new count"
    );
}
