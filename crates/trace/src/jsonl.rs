//! JSON-lines export.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use desim::SimTime;

use crate::record::TraceRecord;
use crate::sink::TraceSink;

/// Streams every record as one JSON object per line.
///
/// Serialization is hand-rolled (see [`TraceRecord::write_jsonl`]) with a
/// fixed key order, so two same-seed runs produce **byte-identical** files —
/// the trace-layer extension of the engine's bit-identical-runs guarantee.
///
/// The writer is generic: `BufWriter<File>` for real traces (see
/// [`JsonlSink::create`]), `Vec<u8>` for in-memory comparison in tests.
///
/// I/O errors are sticky: the first failure stops further writing and is
/// reported by [`JsonlSink::into_inner`] / [`JsonlSink::error`], since the
/// sink trait itself has no error channel.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Opens (truncating) `path` for buffered JSONL output.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error hit, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer, or the first error encountered.
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, at: SimTime, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        match rec.write_jsonl(at, &mut self.writer) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn finish(&mut self, _now: SimTime) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FrameClass;

    #[test]
    fn writes_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(SimTime::ZERO, &TraceRecord::QueueDrop { node: 1 });
        sink.record(
            SimTime::from_micros(3),
            &TraceRecord::FrameRxOk {
                node: 2,
                src: 1,
                kind: FrameClass::Data,
                bytes: 512,
            },
        );
        assert_eq!(sink.lines(), 2);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn io_error_is_sticky() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.record(SimTime::ZERO, &TraceRecord::QueueDrop { node: 0 });
        sink.record(SimTime::ZERO, &TraceRecord::QueueDrop { node: 0 });
        assert_eq!(sink.lines(), 0);
        assert!(sink.error().is_some());
        assert!(sink.into_inner().is_err());
    }
}
