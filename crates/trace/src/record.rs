//! The typed event vocabulary shared by all layers.

use std::io::{self, Write};

use desim::SimTime;

/// Over-the-air frame class, as seen by the MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// A data MPDU.
    Data,
    /// Request-to-send control frame.
    Rts,
    /// Clear-to-send control frame.
    Cts,
    /// MAC-level acknowledgement.
    Ack,
}

impl FrameClass {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            FrameClass::Data => "data",
            FrameClass::Rts => "rts",
            FrameClass::Cts => "cts",
            FrameClass::Ack => "ack",
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxErrorCause {
    /// The PLCP preamble/header was corrupted: the radio never locked a
    /// valid length/rate, so only EIFS-style deferral is possible.
    Header,
    /// The PLCP decoded but the MPDU body failed its check (FCS error).
    Body,
}

impl RxErrorCause {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            RxErrorCause::Header => "header",
            RxErrorCause::Body => "body",
        }
    }
}

/// One traced simulation event.
///
/// Node and flow identities are plain `u32`s (the inner values of
/// `dot11_phy::NodeId` / `dot11_net::FlowId`) so this crate stays below
/// every protocol layer in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceRecord {
    /// A station started radiating a frame.
    FrameTxStart {
        /// Transmitting station.
        node: u32,
        /// Frame class.
        kind: FrameClass,
        /// Destination station.
        dst: u32,
        /// MPDU size on air, bytes.
        bytes: u32,
        /// PHY data rate used for the MPDU body, kb/s.
        rate_kbps: u32,
        /// Total airtime (preamble + body), ns.
        air_ns: u64,
    },
    /// The frame's airtime elapsed at the transmitter.
    FrameTxEnd {
        /// Transmitting station.
        node: u32,
    },
    /// A frame decoded successfully at a receiver.
    FrameRxOk {
        /// Receiving station.
        node: u32,
        /// Originating station.
        src: u32,
        /// Frame class.
        kind: FrameClass,
        /// MPDU size, bytes.
        bytes: u32,
    },
    /// A locked-onto frame failed to decode.
    FrameRxErr {
        /// Receiving station.
        node: u32,
        /// Which decoding stage failed.
        cause: RxErrorCause,
    },
    /// A detectable preamble arrived while the radio was already locked or
    /// transmitting — the classic collision/missed-preamble event.
    Collision {
        /// Station that missed the preamble.
        node: u32,
    },
    /// The MAC drew a fresh backoff.
    BackoffChosen {
        /// Station.
        node: u32,
        /// Slots drawn, uniform in `[0, cw)`.
        slots: u32,
        /// Contention window the draw came from.
        cw: u32,
    },
    /// A transmission attempt failed (no CTS/ACK) and will be retried.
    FrameRetry {
        /// Station.
        node: u32,
        /// Retry count after this failure (1 = first retry pending).
        retry: u32,
    },
    /// The NAV (virtual carrier sense) was extended.
    NavUpdate {
        /// Station.
        node: u32,
        /// New NAV expiry, absolute sim time in ns.
        until_ns: u64,
    },
    /// An undecodable frame forced an EIFS deferral instead of DIFS.
    EifsDefer {
        /// Station.
        node: u32,
    },
    /// ARF switched the station's data rate.
    RateSwitch {
        /// Station.
        node: u32,
        /// Previous data rate, kb/s.
        from_kbps: u32,
        /// New data rate, kb/s.
        to_kbps: u32,
    },
    /// The MAC interface queue overflowed and dropped a packet.
    QueueDrop {
        /// Station.
        node: u32,
    },
    /// The TCP sender emitted a segment.
    TcpSend {
        /// Sending station.
        node: u32,
        /// Flow identity.
        flow: u32,
        /// First sequence byte of the segment.
        seq: u64,
        /// Payload bytes.
        bytes: u32,
        /// True if this is a retransmission.
        retransmit: bool,
    },
    /// The TCP retransmission timer fired.
    TcpRto {
        /// Sending station.
        node: u32,
        /// Flow identity.
        flow: u32,
    },
    /// The TCP congestion window changed.
    TcpCwndChange {
        /// Sending station.
        node: u32,
        /// Flow identity.
        flow: u32,
        /// New congestion window, bytes.
        cwnd: u64,
        /// New slow-start threshold, bytes.
        ssthresh: u64,
    },
    /// Application payload reached the flow's final destination.
    FlowDeliver {
        /// Flow identity.
        flow: u32,
        /// Destination station.
        dst: u32,
        /// Application payload bytes delivered.
        bytes: u32,
    },
}

impl TraceRecord {
    /// Stable snake_case event name used in JSONL output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceRecord::FrameTxStart { .. } => "frame_tx_start",
            TraceRecord::FrameTxEnd { .. } => "frame_tx_end",
            TraceRecord::FrameRxOk { .. } => "frame_rx_ok",
            TraceRecord::FrameRxErr { .. } => "frame_rx_err",
            TraceRecord::Collision { .. } => "collision",
            TraceRecord::BackoffChosen { .. } => "backoff_chosen",
            TraceRecord::FrameRetry { .. } => "frame_retry",
            TraceRecord::NavUpdate { .. } => "nav_update",
            TraceRecord::EifsDefer { .. } => "eifs_defer",
            TraceRecord::RateSwitch { .. } => "rate_switch",
            TraceRecord::QueueDrop { .. } => "queue_drop",
            TraceRecord::TcpSend { .. } => "tcp_send",
            TraceRecord::TcpRto { .. } => "tcp_rto",
            TraceRecord::TcpCwndChange { .. } => "tcp_cwnd",
            TraceRecord::FlowDeliver { .. } => "flow_deliver",
        }
    }

    /// Writes the record as one JSON object terminated by `\n`.
    ///
    /// Every field is numeric or a fixed enum name, so no string escaping is
    /// needed; the serialization is hand-rolled and deterministic (fixed key
    /// order), which is what makes byte-identical trace comparison possible.
    pub fn write_jsonl<W: Write>(&self, at: SimTime, w: &mut W) -> io::Result<()> {
        let t = at.as_nanos();
        let ev = self.kind_name();
        match *self {
            TraceRecord::FrameTxStart { node, kind, dst, bytes, rate_kbps, air_ns } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"kind\":\"{}\",\"dst\":{dst},\"bytes\":{bytes},\"rate_kbps\":{rate_kbps},\"air_ns\":{air_ns}}}",
                kind.name()
            ),
            TraceRecord::FrameTxEnd { node } => {
                writeln!(w, "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node}}}")
            }
            TraceRecord::FrameRxOk { node, src, kind, bytes } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"src\":{src},\"kind\":\"{}\",\"bytes\":{bytes}}}",
                kind.name()
            ),
            TraceRecord::FrameRxErr { node, cause } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"cause\":\"{}\"}}",
                cause.name()
            ),
            TraceRecord::Collision { node } => {
                writeln!(w, "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node}}}")
            }
            TraceRecord::BackoffChosen { node, slots, cw } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"slots\":{slots},\"cw\":{cw}}}"
            ),
            TraceRecord::FrameRetry { node, retry } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"retry\":{retry}}}"
            ),
            TraceRecord::NavUpdate { node, until_ns } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"until_ns\":{until_ns}}}"
            ),
            TraceRecord::EifsDefer { node } => {
                writeln!(w, "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node}}}")
            }
            TraceRecord::RateSwitch { node, from_kbps, to_kbps } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"from_kbps\":{from_kbps},\"to_kbps\":{to_kbps}}}"
            ),
            TraceRecord::QueueDrop { node } => {
                writeln!(w, "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node}}}")
            }
            TraceRecord::TcpSend { node, flow, seq, bytes, retransmit } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"flow\":{flow},\"seq\":{seq},\"bytes\":{bytes},\"retx\":{retransmit}}}"
            ),
            TraceRecord::TcpRto { node, flow } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"flow\":{flow}}}"
            ),
            TraceRecord::TcpCwndChange { node, flow, cwnd, ssthresh } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"node\":{node},\"flow\":{flow},\"cwnd\":{cwnd},\"ssthresh\":{ssthresh}}}"
            ),
            TraceRecord::FlowDeliver { flow, dst, bytes } => writeln!(
                w,
                "{{\"t\":{t},\"ev\":\"{ev}\",\"flow\":{flow},\"dst\":{dst},\"bytes\":{bytes}}}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_single_objects() {
        let recs = [
            TraceRecord::FrameTxStart {
                node: 0,
                kind: FrameClass::Rts,
                dst: 1,
                bytes: 20,
                rate_kbps: 2000,
                air_ns: 272_000,
            },
            TraceRecord::FrameRxErr {
                node: 1,
                cause: RxErrorCause::Body,
            },
            TraceRecord::TcpSend {
                node: 2,
                flow: 0,
                seq: 512,
                bytes: 512,
                retransmit: true,
            },
        ];
        for r in recs {
            let mut buf = Vec::new();
            r.write_jsonl(SimTime::from_micros(5), &mut buf).unwrap();
            let line = String::from_utf8(buf).unwrap();
            assert!(line.ends_with('}') || line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1);
            assert!(line.starts_with("{\"t\":5000,\"ev\":\""));
            assert!(line.contains(r.kind_name()));
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FrameClass::Data.name(), "data");
        assert_eq!(RxErrorCause::Header.name(), "header");
        assert_eq!(TraceRecord::Collision { node: 3 }.kind_name(), "collision");
    }
}
