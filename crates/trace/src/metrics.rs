//! Interval-windowed metrics: paper-style throughput-vs-time series.

use std::collections::BTreeMap;

use desim::{SimDuration, SimTime};

use crate::record::TraceRecord;
use crate::sink::TraceSink;

/// One flow's delivery inside one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowWindow {
    /// Flow identity.
    pub flow: u32,
    /// Application payload bytes delivered in the window.
    pub bytes: u64,
    /// Delivered throughput over the window span, kb/s.
    pub kbps: f64,
}

/// One station's MAC/PHY activity inside one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeWindow {
    /// Station.
    pub node: u32,
    /// Frames the station started transmitting (data + control).
    pub tx_frames: u64,
    /// Failed attempts that went back to retry.
    pub retries: u64,
    /// Airtime spent transmitting, ns.
    pub tx_air_ns: u64,
}

/// One closed window of the series.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRow {
    /// Zero-based window index (window k spans `[k·interval, (k+1)·interval)`).
    pub index: u64,
    /// Inclusive window start.
    pub start: SimTime,
    /// Exclusive window end (clamped to the final clock for a partial
    /// last window).
    pub end: SimTime,
    /// Per-flow delivery, ordered by flow id. Every flow ever seen gets a
    /// row in every subsequent window, zeros included, so series stay
    /// rectangular for plotting.
    pub flows: Vec<FlowWindow>,
    /// Per-station activity, ordered by node id, same carry-forward rule.
    pub nodes: Vec<NodeWindow>,
}

impl IntervalRow {
    /// Hand-rolled JSON rendering of the row (used by `repro --json`).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"index\":{},\"start_ns\":{},\"end_ns\":{},\"flows\":[",
            self.index,
            self.start.as_nanos(),
            self.end.as_nanos()
        );
        for (i, f) in self.flows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"flow\":{},\"bytes\":{},\"kbps\":{:.3}}}",
                f.flow, f.bytes, f.kbps
            ));
        }
        s.push_str("],\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"node\":{},\"tx_frames\":{},\"retries\":{},\"tx_air_ns\":{}}}",
                n.node, n.tx_frames, n.retries, n.tx_air_ns
            ));
        }
        s.push_str("]}");
        s
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct NodeAcc {
    tx_frames: u64,
    retries: u64,
    tx_air_ns: u64,
}

/// Aggregates records into fixed windows aligned to `t = 0`.
///
/// Window `k` covers the half-open span `[k·interval, (k+1)·interval)`; a
/// record stamped exactly on a boundary opens the next window. Windows with
/// no activity between two active ones are still emitted (as zeros) so the
/// series has no gaps, and [`TraceSink::finish`] closes the trailing
/// partial window using the real elapsed span for its rate.
#[derive(Debug, Clone)]
pub struct IntervalMetricsSink {
    interval: SimDuration,
    cur: u64,
    any: bool,
    flow_bytes: BTreeMap<u32, u64>,
    node_acc: BTreeMap<u32, NodeAcc>,
    rows: Vec<IntervalRow>,
}

impl IntervalMetricsSink {
    /// Creates a sink with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(interval.as_nanos() > 0, "metrics interval must be positive");
        IntervalMetricsSink {
            interval,
            cur: 0,
            any: false,
            flow_bytes: BTreeMap::new(),
            node_acc: BTreeMap::new(),
            rows: Vec::new(),
        }
    }

    /// The configured window length.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Closed windows so far (the current window is still accumulating
    /// until [`TraceSink::finish`]).
    pub fn rows(&self) -> &[IntervalRow] {
        &self.rows
    }

    /// Consumes the sink, returning all closed windows.
    pub fn into_rows(self) -> Vec<IntervalRow> {
        self.rows
    }

    fn window_start(&self, index: u64) -> SimTime {
        SimTime::from_nanos(index * self.interval.as_nanos())
    }

    /// Closes window `self.cur` with the given end time and resets the
    /// accumulators (keeping the key sets, so quiet flows show as zeros).
    fn flush(&mut self, end: SimTime) {
        let start = self.window_start(self.cur);
        let span_s = (end.as_nanos().saturating_sub(start.as_nanos())) as f64 / 1e9;
        let flows = self
            .flow_bytes
            .iter_mut()
            .map(|(&flow, bytes)| {
                let b = std::mem::take(bytes);
                let kbps = if span_s > 0.0 {
                    b as f64 * 8.0 / span_s / 1e3
                } else {
                    0.0
                };
                FlowWindow {
                    flow,
                    bytes: b,
                    kbps,
                }
            })
            .collect();
        let nodes = self
            .node_acc
            .iter_mut()
            .map(|(&node, acc)| {
                let a = std::mem::take(acc);
                NodeWindow {
                    node,
                    tx_frames: a.tx_frames,
                    retries: a.retries,
                    tx_air_ns: a.tx_air_ns,
                }
            })
            .collect();
        self.rows.push(IntervalRow {
            index: self.cur,
            start,
            end,
            flows,
            nodes,
        });
    }

    /// Closes every full window strictly before the one containing `at`.
    fn roll_to(&mut self, at: SimTime) {
        let idx = at.as_nanos() / self.interval.as_nanos();
        while self.cur < idx {
            let end = self.window_start(self.cur + 1);
            self.flush(end);
            self.cur += 1;
        }
    }
}

impl TraceSink for IntervalMetricsSink {
    fn record(&mut self, at: SimTime, rec: &TraceRecord) {
        self.roll_to(at);
        self.any = true;
        match *rec {
            TraceRecord::FlowDeliver { flow, bytes, .. } => {
                *self.flow_bytes.entry(flow).or_insert(0) += bytes as u64;
            }
            TraceRecord::FrameTxStart { node, air_ns, .. } => {
                let acc = self.node_acc.entry(node).or_default();
                acc.tx_frames += 1;
                acc.tx_air_ns += air_ns;
            }
            TraceRecord::FrameRetry { node, .. } => {
                self.node_acc.entry(node).or_default().retries += 1;
            }
            _ => {}
        }
    }

    fn finish(&mut self, now: SimTime) {
        if !self.any {
            return;
        }
        self.roll_to(now);
        // Close the trailing partial window over its real span; skip it
        // entirely if the run ended exactly on a boundary.
        let start = self.window_start(self.cur);
        if now > start {
            self.flush(now);
            self.cur += 1;
        }
        self.any = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(flow: u32, bytes: u32) -> TraceRecord {
        TraceRecord::FlowDeliver {
            flow,
            dst: 1,
            bytes,
        }
    }

    fn sec(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9).round() as u64)
    }

    #[test]
    fn boundary_record_opens_next_window() {
        // A delivery stamped exactly at t = interval belongs to window 1 —
        // the warm-up boundary case: measurement windows aligned to the
        // warm-up edge never double-count the edge event.
        let mut m = IntervalMetricsSink::new(SimDuration::from_secs(1));
        m.record(sec(0.5), &deliver(0, 100));
        m.record(sec(1.0), &deliver(0, 200));
        m.finish(sec(2.0));
        let rows = m.into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].flows[0].bytes, 100);
        assert_eq!(rows[1].flows[0].bytes, 200);
        assert_eq!(rows[1].start, sec(1.0));
    }

    #[test]
    fn partial_final_window_uses_real_span() {
        let mut m = IntervalMetricsSink::new(SimDuration::from_secs(1));
        m.record(sec(0.1), &deliver(0, 1000));
        m.record(sec(1.2), &deliver(0, 1000));
        m.finish(sec(1.5)); // final window spans only 0.5 s
        let rows = m.into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].end, sec(1.5));
        // 1000 bytes over 0.5 s = 16 kb/s (not 8 kb/s over a full window).
        assert!((rows[1].flows[0].kbps - 16.0).abs() < 1e-9);
    }

    #[test]
    fn finish_on_exact_boundary_emits_no_empty_window() {
        let mut m = IntervalMetricsSink::new(SimDuration::from_secs(1));
        m.record(sec(0.3), &deliver(0, 100));
        m.finish(sec(1.0));
        let rows = m.into_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].end, sec(1.0));
    }

    #[test]
    fn quiet_windows_are_emitted_as_zeros() {
        let mut m = IntervalMetricsSink::new(SimDuration::from_secs(1));
        m.record(sec(0.2), &deliver(7, 100));
        m.record(sec(3.5), &deliver(7, 50));
        m.finish(sec(4.0));
        let rows = m.into_rows();
        assert_eq!(rows.len(), 4, "windows 1 and 2 present despite no traffic");
        assert_eq!(
            rows[1].flows,
            vec![FlowWindow {
                flow: 7,
                bytes: 0,
                kbps: 0.0
            }]
        );
        assert_eq!(rows[2].flows[0].bytes, 0);
        assert_eq!(rows[3].flows[0].bytes, 50);
    }

    #[test]
    fn node_activity_is_windowed() {
        let mut m = IntervalMetricsSink::new(SimDuration::from_millis(100));
        m.record(
            sec(0.01),
            &TraceRecord::FrameTxStart {
                node: 2,
                kind: crate::FrameClass::Data,
                dst: 3,
                bytes: 512,
                rate_kbps: 11_000,
                air_ns: 500_000,
            },
        );
        m.record(sec(0.02), &TraceRecord::FrameRetry { node: 2, retry: 1 });
        m.finish(sec(0.1));
        let rows = m.into_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].nodes,
            vec![NodeWindow {
                node: 2,
                tx_frames: 1,
                retries: 1,
                tx_air_ns: 500_000
            }]
        );
    }

    #[test]
    fn empty_sink_emits_nothing() {
        let mut m = IntervalMetricsSink::new(SimDuration::from_secs(1));
        m.finish(sec(10.0));
        assert!(m.rows().is_empty());
    }

    #[test]
    fn row_json_shape() {
        let mut m = IntervalMetricsSink::new(SimDuration::from_secs(1));
        m.record(sec(0.5), &deliver(0, 125));
        m.finish(sec(1.0));
        let json = m.rows()[0].to_json();
        assert_eq!(
            json,
            "{\"index\":0,\"start_ns\":0,\"end_ns\":1000000000,\
             \"flows\":[{\"flow\":0,\"bytes\":125,\"kbps\":1.000}],\"nodes\":[]}"
        );
    }
}
