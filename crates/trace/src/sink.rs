//! The sink trait and the in-memory sinks.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use desim::SimTime;

use crate::record::TraceRecord;

/// A consumer of trace records.
///
/// Layers are generic over `S: TraceSink` and guard every emission site with
/// `if S::ENABLED { ... }`. With the default [`NullSink`], `ENABLED` is
/// `false` and the whole site — including record construction — is removed
/// at monomorphization time, so untraced simulations pay zero cost.
pub trait TraceSink {
    /// Whether this sink observes records at all. Leave at the default
    /// `true` for any sink that does work.
    const ENABLED: bool = true;

    /// Observes one record stamped with the current simulation time.
    fn record(&mut self, at: SimTime, rec: &TraceRecord);

    /// Called once when the simulation ends, with the final clock value.
    /// Sinks that aggregate (e.g. interval metrics) flush partial state here.
    fn finish(&mut self, _now: SimTime) {}
}

/// The default sink: discards everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _at: SimTime, _rec: &TraceRecord) {}
}

/// A shared handle so one sink can be wired through PHY, MAC, transport and
/// world at once.
///
/// `Clone` hands out another reference to the same underlying sink.
/// Interior mutability is `RefCell`: the event loop is single-threaded and
/// emissions never re-enter the sink.
#[derive(Debug, Default)]
pub struct SharedSink<S> {
    inner: Rc<RefCell<S>>,
}

impl<S> SharedSink<S> {
    /// Wraps a sink for sharing.
    pub fn new(sink: S) -> Self {
        SharedSink {
            inner: Rc::new(RefCell::new(sink)),
        }
    }

    /// Recovers the inner sink once every layer's handle has been dropped
    /// (i.e. after the `World` that borrowed it is consumed).
    ///
    /// # Panics
    ///
    /// Panics if other handles are still alive.
    pub fn take(self) -> S {
        Rc::try_unwrap(self.inner)
            .map(RefCell::into_inner)
            .unwrap_or_else(|_| panic!("SharedSink::take with live clones"))
    }

    /// Runs `f` with a borrow of the inner sink (for inspection mid-run).
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.inner.borrow())
    }
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn record(&mut self, at: SimTime, rec: &TraceRecord) {
        self.inner.borrow_mut().record(at, rec);
    }

    fn finish(&mut self, now: SimTime) {
        self.inner.borrow_mut().finish(now);
    }
}

/// Bounded in-memory history: keeps the **most recent** `capacity` records,
/// evicting the oldest. The workhorse for unit tests and post-mortem
/// debugging of short windows.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<(SimTime, TraceRecord)>,
    /// Total records ever offered, including evicted ones.
    seen: u64,
}

impl RingBufferSink {
    /// Creates a sink holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &(SimTime, TraceRecord)> {
        self.buf.iter()
    }

    /// Number of records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever offered, including those evicted since.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, at: SimTime, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((at, *rec));
        self.seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32) -> TraceRecord {
        TraceRecord::Collision { node }
    }

    #[test]
    fn null_sink_is_disabled() {
        // Read through a generic helper so the flag is not a literal
        // constant at the assertion site.
        fn enabled<S: TraceSink>(_: &S) -> bool {
            S::ENABLED
        }
        assert!(!enabled(&NullSink));
        assert!(enabled(&RingBufferSink::new(1)));
        // And recording through it is still safe if called unconditionally.
        NullSink.record(SimTime::ZERO, &rec(0));
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let mut s = RingBufferSink::new(3);
        for i in 0..5 {
            s.record(SimTime::from_micros(i), &rec(i as u32));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_seen(), 5);
        let nodes: Vec<u32> = s
            .records()
            .map(|(_, r)| match r {
                TraceRecord::Collision { node } => *node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![2, 3, 4], "oldest two evicted");
    }

    #[test]
    fn ring_buffer_under_capacity_keeps_all() {
        let mut s = RingBufferSink::new(8);
        s.record(SimTime::ZERO, &rec(1));
        s.record(SimTime::from_micros(1), &rec(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_seen(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RingBufferSink::new(0);
    }

    #[test]
    fn shared_sink_routes_to_one_buffer() {
        let shared = SharedSink::new(RingBufferSink::new(4));
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.record(SimTime::ZERO, &rec(0));
        b.record(SimTime::from_micros(1), &rec(1));
        drop(a);
        drop(b);
        let inner = shared.take();
        assert_eq!(inner.len(), 2);
    }
}
