//! Structured simulation tracing.
//!
//! The paper's headline artifacts (Figures 5–12) are *time-resolved*
//! throughput traces; end-of-run aggregates cannot show the capture and
//! unfairness dynamics they plot. This crate adds the missing observability
//! layer: every protocol layer emits typed [`TraceRecord`]s into a
//! [`TraceSink`] chosen by the caller.
//!
//! Sinks shipped here:
//!
//! * [`NullSink`] — the default; `ENABLED = false` lets every emission site
//!   compile away, so an untraced simulation pays nothing.
//! * [`RingBufferSink`] — bounded in-memory history, for tests and debugging.
//! * [`JsonlSink`] — one JSON object per line, hand-rolled serialization
//!   (no serde), byte-identical across same-seed runs.
//! * [`IntervalMetricsSink`] — aggregates per-flow throughput and per-node
//!   retry/airtime into fixed windows: paper-style throughput-vs-time series.
//!
//! Layers are generic over `S: TraceSink` and a simulation wires **one**
//! sink through all of them with [`SharedSink`], a cheap `Rc<RefCell<_>>`
//! handle.
//!
//! Records deliberately use plain integers (`u32` node and flow ids,
//! `rate_kbps`) rather than phy/net newtypes, so the crate sits next to
//! `desim` at the bottom of the dependency graph and every layer above can
//! emit into it.

#![warn(missing_docs)]

mod jsonl;
mod metrics;
mod record;
mod sink;

pub use jsonl::JsonlSink;
pub use metrics::{FlowWindow, IntervalMetricsSink, IntervalRow, NodeWindow};
pub use record::{FrameClass, RxErrorCause, TraceRecord};
pub use sink::{NullSink, RingBufferSink, SharedSink, TraceSink};
