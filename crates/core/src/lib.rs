//! Reproduction core for *"IEEE 802.11 Ad Hoc Networks: Performance
//! Measurements"* (Anastasi, Borgia, Conti, Gregori — ICDCS-W 2003).
//!
//! This crate assembles the substrates ([`desim`], [`dot11_phy`],
//! [`dot11_mac`], [`dot11_net`]) into a full-stack 802.11b ad hoc
//! simulation and implements:
//!
//! * the paper's **analytical throughput model** — Table 1 parameters,
//!   Equations (1)/(2), and a variant calibrated to reproduce the printed
//!   Table 2 to three decimals ([`analytic`]);
//! * the **calibrated outdoor radio model** whose per-rate transmission
//!   ranges land on the paper's Table 3 ([`calib`]);
//! * the **simulation world**: nodes with app/TCP-UDP/MAC/PHY stacks on a
//!   shared medium ([`node`], [`world`]), built from declarative
//!   scenarios ([`scenario`]);
//! * **one experiment module per table/figure** of the paper
//!   ([`experiments`]), each returning structured rows used by the
//!   `repro` binary, the integration tests, and the benches.
//!
//! # Example
//!
//! ```
//! use dot11_adhoc::analytic::{max_throughput_paper, AccessScheme};
//! use dot11_phy::PhyRate;
//!
//! // Table 2, top-left cell: 11 Mb/s, m = 512 B, basic access.
//! let mbps = max_throughput_paper(512, PhyRate::R11, AccessScheme::Basic);
//! assert!((mbps - 3.06).abs() < 0.005);
//! ```

#![warn(missing_docs)]

pub mod analytic;
pub mod calib;
pub mod experiments;
pub mod hash;
pub mod mobility;
pub mod node;
pub mod range;
pub mod scenario;
pub mod shard;
pub mod stats;
pub mod world;

pub use calib::{calibrated_medium_config, calibrated_path_loss};
pub use mobility::{MobilityConfig, MovementModel, TracePoint};
pub use range::{estimate_crossing, LossCurve};
pub use scenario::{Scenario, ScenarioBuilder, Traffic};
pub use shard::ShardMap;
pub use stats::{EngineStats, FlowReport, MobilityStats, NodeReport, RunReport, Summary};
pub use world::World;

pub use dot11_trace as trace;
