//! Encapsulation overheads — the paper's Figure 1.
//!
//! A stream of `m` application bytes accretes TCP/UDP, IP, MAC and PLCP
//! overhead on the way to the antenna; at 11 Mb/s the fixed-rate PLCP is
//! the dominant airtime cost, which is why the usable fraction of the
//! nominal bandwidth is so low (Table 2).

use dot11_phy::{PhyRate, Preamble};

/// Transport protocol wrapping the application bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// UDP (the paper's CBR workload): 8-byte header.
    Udp,
    /// TCP (the paper's ftp workload): 20-byte header.
    Tcp,
}

impl TransportKind {
    /// Header size, bytes.
    pub fn header_bytes(self) -> u32 {
        match self {
            TransportKind::Udp => 8,
            TransportKind::Tcp => 20,
        }
    }
}

/// The per-layer sizes and airtimes of one data frame (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncapsulationBreakdown {
    /// Application payload, bytes (`m`).
    pub app_bytes: u32,
    /// TCP/UDP segment, bytes.
    pub transport_bytes: u32,
    /// IP datagram, bytes.
    pub ip_bytes: u32,
    /// MAC frame (MPDU incl. header+FCS), bytes.
    pub mpdu_bytes: u32,
    /// PLCP preamble + header airtime, µs.
    pub plcp_us: f64,
    /// MPDU airtime at the data rate, µs.
    pub mpdu_us: f64,
    /// Airtime of the payload bits alone at the data rate, µs.
    pub payload_us: f64,
}

impl EncapsulationBreakdown {
    /// Total airtime of the frame, µs.
    pub fn total_us(&self) -> f64 {
        self.plcp_us + self.mpdu_us
    }

    /// Fraction of the frame's airtime carrying application bytes.
    pub fn payload_airtime_fraction(&self) -> f64 {
        self.payload_us / self.total_us()
    }
}

/// Computes Figure 1's encapsulation for `m` application bytes.
///
/// # Example
///
/// ```
/// use dot11_adhoc::analytic::{overhead_breakdown, TransportKind};
/// use dot11_phy::{PhyRate, Preamble};
///
/// let b = overhead_breakdown(512, TransportKind::Udp, PhyRate::R11, Preamble::Long);
/// assert_eq!(b.ip_bytes, 540);
/// assert_eq!(b.mpdu_bytes, 574);
/// // At 11 Mb/s, barely 45% of this frame's airtime is application data.
/// assert!(b.payload_airtime_fraction() < 0.65);
/// ```
pub fn overhead_breakdown(
    app_bytes: u32,
    transport: TransportKind,
    rate: PhyRate,
    preamble: Preamble,
) -> EncapsulationBreakdown {
    let transport_bytes = app_bytes + transport.header_bytes();
    let ip_bytes = transport_bytes + dot11_net::IP_HEADER_BYTES;
    let mpdu_bytes = ip_bytes + dot11_mac::DATA_HEADER_BYTES;
    let plcp_us = preamble.duration().as_micros_f64();
    let mpdu_us = mpdu_bytes as f64 * 8.0 / rate.bits_per_micro();
    let payload_us = app_bytes as f64 * 8.0 / rate.bits_per_micro();
    EncapsulationBreakdown {
        app_bytes,
        transport_bytes,
        ip_bytes,
        mpdu_bytes,
        plcp_us,
        mpdu_us,
        payload_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_sizes_accumulate() {
        let b = overhead_breakdown(1024, TransportKind::Tcp, PhyRate::R2, Preamble::Long);
        assert_eq!(b.transport_bytes, 1044);
        assert_eq!(b.ip_bytes, 1064);
        assert_eq!(b.mpdu_bytes, 1098);
        assert_eq!(b.plcp_us, 192.0);
        assert!((b.mpdu_us - 1098.0 * 8.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn payload_fraction_improves_with_packet_size_and_worsens_with_rate() {
        let small = overhead_breakdown(512, TransportKind::Udp, PhyRate::R11, Preamble::Long);
        let large = overhead_breakdown(1024, TransportKind::Udp, PhyRate::R11, Preamble::Long);
        assert!(large.payload_airtime_fraction() > small.payload_airtime_fraction());
        let slow = overhead_breakdown(512, TransportKind::Udp, PhyRate::R1, Preamble::Long);
        assert!(
            slow.payload_airtime_fraction() > small.payload_airtime_fraction(),
            "fixed-rate PLCP hurts relatively more at high data rates"
        );
    }

    #[test]
    fn udp_vs_tcp_header_cost() {
        let udp = overhead_breakdown(512, TransportKind::Udp, PhyRate::R11, Preamble::Long);
        let tcp = overhead_breakdown(512, TransportKind::Tcp, PhyRate::R11, Preamble::Long);
        assert_eq!(tcp.mpdu_bytes - udp.mpdu_bytes, 12);
        assert!(tcp.total_us() > udp.total_us());
    }
}
