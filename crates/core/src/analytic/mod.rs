//! The paper's analytical model: parameters (Table 1), encapsulation
//! overheads (Figure 1), and maximum-throughput equations (1)/(2) with
//! their Table 2 results.

mod bianchi;
mod overhead;
mod params;
mod throughput;

pub use bianchi::{bianchi, BianchiPoint};
pub use overhead::{overhead_breakdown, EncapsulationBreakdown, TransportKind};
pub use params::Dot11bParams;
pub use throughput::{
    max_throughput_eq, max_throughput_eq_with, max_throughput_paper, table2, AccessScheme,
    Table2Row,
};
