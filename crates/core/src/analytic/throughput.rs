//! Maximum-throughput model: Equations (1) and (2), and Table 2.
//!
//! Two variants are provided:
//!
//! * [`max_throughput_eq`] transcribes the printed equations faithfully:
//!   `Th = m·8 / (DIFS + T_DATA + SIFS + T_ACK + CWmin/2·Slot)` — the
//!   printed Eq. (1) is the payload-airtime fraction; multiplying by the
//!   data rate (equivalently, putting the payload *bits* on top) yields
//!   the Mb/s the paper tabulates — for
//!   basic access, plus `T_RTS + T_CTS + 2·SIFS` under RTS/CTS, with the
//!   MPDU (header and payload) at the data rate and control frames at the
//!   control rate.
//! * [`max_throughput_paper`] reproduces the paper's **printed Table 2
//!   numbers** to three decimals. Fitting those numbers shows the
//!   authors' spreadsheet deviated from their own equations in three
//!   ways (documented in EXPERIMENTS.md): the SIFS term is absent, the
//!   MAC header is charged at the *control* rate min(data rate, 2 Mb/s),
//!   and the RTS/CTS surcharge equals `T_CTS + 2·SIFS ≈ 268 µs`
//!   (constant, with the RTS term missing). One cell (1 Mb/s, m = 512,
//!   RTS/CTS, printed 0.738) is inconsistent with every other cell and is
//!   treated as a typo.
//!
//! Both use the Table 1 parameters and the Figure 1 encapsulation
//! (IP + UDP headers on the MAC payload).

use dot11_phy::{PhyRate, Preamble};

use super::params::Dot11bParams;

/// Channel-access scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessScheme {
    /// DCF basic access (no RTS/CTS).
    Basic,
    /// DCF with the RTS/CTS exchange.
    RtsCts,
}

impl std::fmt::Display for AccessScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessScheme::Basic => write!(f, "no RTS/CTS"),
            AccessScheme::RtsCts => write!(f, "RTS/CTS"),
        }
    }
}

fn control_rate_mbps(data_rate: PhyRate) -> f64 {
    data_rate.control_rate().bits_per_micro()
}

/// Equations (1)/(2) as printed: maximum throughput in Mb/s for
/// `m`-byte application packets at the given data rate.
///
/// # Example
///
/// ```
/// use dot11_adhoc::analytic::{max_throughput_eq, AccessScheme};
/// use dot11_phy::PhyRate;
///
/// let th = max_throughput_eq(1024, PhyRate::R11, AccessScheme::Basic);
/// // The faithful equation lands within ~7% of Table 2's 4.788 (the
/// // printed table omits the SIFS and slows the MAC header — see
/// // [`max_throughput_paper`]).
/// assert!((th - 4.788).abs() < 0.35);
/// ```
pub fn max_throughput_eq(m_bytes: u32, data_rate: PhyRate, scheme: AccessScheme) -> f64 {
    max_throughput_eq_with(m_bytes, data_rate, scheme, Preamble::Long)
}

/// [`max_throughput_eq`] generalized over the PLCP preamble format — the
/// short preamble (96 µs instead of 192 µs on every frame) is the
/// standard's own lever against the overhead the paper quantifies.
pub fn max_throughput_eq_with(
    m_bytes: u32,
    data_rate: PhyRate,
    scheme: AccessScheme,
    preamble: Preamble,
) -> f64 {
    let p = Dot11bParams::table1();
    let rate = data_rate.bits_per_micro();
    let ctrl = control_rate_mbps(data_rate);
    let phy_hdr_us = preamble.duration().as_micros_f64();
    let payload_bits = m_bytes as f64 * 8.0;
    let t_data =
        phy_hdr_us + (p.mac_hdr_bits + (m_bytes as f64 + p.ip_udp_header_bytes) * 8.0) / rate;
    let t_ack = phy_hdr_us + p.ack_bits / ctrl;
    let mut denom = p.difs_us + t_data + p.sifs_us + t_ack + p.mean_backoff_us();
    if scheme == AccessScheme::RtsCts {
        let t_rts = phy_hdr_us + p.rts_bits / ctrl;
        let t_cts = phy_hdr_us + p.cts_bits / ctrl;
        denom += t_rts + t_cts + 2.0 * p.sifs_us;
    }
    payload_bits / denom
}

/// The paper's printed Table 2 values, reproduced exactly (see module
/// docs for the three documented deviations from the printed equations).
pub fn max_throughput_paper(m_bytes: u32, data_rate: PhyRate, scheme: AccessScheme) -> f64 {
    let p = Dot11bParams::table1();
    let rate = data_rate.bits_per_micro();
    // The MAC header is charged at min(data rate, 2 Mb/s)…
    let hdr_rate = rate.min(2.0);
    // …and the ACK always at 2 Mb/s, even for 1 Mb/s data.
    let payload_bits = m_bytes as f64 * 8.0;
    let t_ack = p.phy_hdr_bits + p.ack_bits / 2.0;
    let denom_basic = p.difs_us
        + p.phy_hdr_bits
        + p.mac_hdr_bits / hdr_rate
        + (m_bytes as f64 + p.ip_udp_header_bytes) * 8.0 / rate
        + t_ack
        + p.mean_backoff_us();
    let denom = match scheme {
        AccessScheme::Basic => denom_basic,
        // T_CTS at 2 Mb/s + 2 SIFS = 248 + 20 = 268 µs, independent of the
        // data rate.
        AccessScheme::RtsCts => denom_basic + (p.phy_hdr_bits + p.cts_bits / 2.0) + 2.0 * p.sifs_us,
    };
    payload_bits / denom
}

/// One row of Table 2 (one data rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// The NIC data rate.
    pub rate: PhyRate,
    /// m = 512 B, basic access, Mb/s.
    pub m512_basic: f64,
    /// m = 512 B, RTS/CTS, Mb/s.
    pub m512_rts: f64,
    /// m = 1024 B, basic access, Mb/s.
    pub m1024_basic: f64,
    /// m = 1024 B, RTS/CTS, Mb/s.
    pub m1024_rts: f64,
}

/// Regenerates Table 2 (paper-calibrated variant), fastest rate first as
/// printed.
pub fn table2() -> Vec<Table2Row> {
    PhyRate::ALL
        .iter()
        .rev()
        .map(|&rate| Table2Row {
            rate,
            m512_basic: max_throughput_paper(512, rate, AccessScheme::Basic),
            m512_rts: max_throughput_paper(512, rate, AccessScheme::RtsCts),
            m1024_basic: max_throughput_paper(1024, rate, AccessScheme::Basic),
            m1024_rts: max_throughput_paper(1024, rate, AccessScheme::RtsCts),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The printed Table 2, row-major: (rate, m512 basic, m512 rts,
    /// m1024 basic, m1024 rts). The m=512/1 Mb/s RTS cell is the paper's
    /// internal typo; our model's value (0.722) is listed beside it.
    const PRINTED: [(PhyRate, f64, f64, f64, f64); 4] = [
        (PhyRate::R11, 3.06, 2.549, 4.788, 4.139),
        (PhyRate::R5_5, 2.366, 2.049, 3.308, 2.985),
        (PhyRate::R2, 1.319, 1.214, 1.589, 1.511),
        (
            PhyRate::R1,
            0.758,
            f64::NAN, /* printed 0.738, typo */
            0.862,
            0.839,
        ),
    ];

    #[test]
    fn paper_variant_reproduces_every_consistent_cell() {
        for &(rate, b512, r512, b1024, r1024) in &PRINTED {
            let check = |printed: f64, m: u32, s: AccessScheme| {
                if printed.is_nan() {
                    return;
                }
                let ours = max_throughput_paper(m, rate, s);
                assert!(
                    (ours - printed).abs() < 0.0015,
                    "{rate} m={m} {s}: ours {ours:.4} vs printed {printed}"
                );
            };
            check(b512, 512, AccessScheme::Basic);
            check(r512, 512, AccessScheme::RtsCts);
            check(b1024, 1024, AccessScheme::Basic);
            check(r1024, 1024, AccessScheme::RtsCts);
        }
    }

    #[test]
    fn the_typo_cell_is_actually_inconsistent() {
        // Fitting the other 15 cells implies a constant ~268 µs RTS/CTS
        // surcharge; the printed 0.738 would need ~148 µs instead. Our
        // model gives ~0.722.
        let ours = max_throughput_paper(512, PhyRate::R1, AccessScheme::RtsCts);
        assert!((ours - 0.7224).abs() < 0.001, "got {ours:.4}");
    }

    #[test]
    fn faithful_equations_are_close_but_not_equal_to_table2() {
        // Eq. (1) includes the SIFS and charges the MAC header at the data
        // rate, so it comes out slightly different from the printed table —
        // within 5% everywhere.
        for &rate in &PhyRate::ALL {
            for &m in &[512u32, 1024] {
                for s in [AccessScheme::Basic, AccessScheme::RtsCts] {
                    let eq = max_throughput_eq(m, rate, s);
                    let paper = max_throughput_paper(m, rate, s);
                    let rel = (eq - paper).abs() / paper;
                    assert!(
                        rel < 0.12,
                        "{rate} m={m} {s}: eq {eq:.3} vs paper {paper:.3}"
                    );
                }
            }
        }
    }

    #[test]
    fn throughput_increases_with_m_and_rate_and_drops_with_rts() {
        for &rate in &PhyRate::ALL {
            assert!(
                max_throughput_paper(1024, rate, AccessScheme::Basic)
                    > max_throughput_paper(512, rate, AccessScheme::Basic)
            );
            assert!(
                max_throughput_paper(512, rate, AccessScheme::Basic)
                    > max_throughput_paper(512, rate, AccessScheme::RtsCts)
            );
        }
        assert!(
            max_throughput_paper(512, PhyRate::R11, AccessScheme::Basic)
                > max_throughput_paper(512, PhyRate::R5_5, AccessScheme::Basic)
        );
    }

    #[test]
    fn short_preamble_buys_back_overhead() {
        // 96 µs saved on every frame: data + ACK in the basic exchange.
        let long = max_throughput_eq_with(512, PhyRate::R11, AccessScheme::Basic, Preamble::Long);
        let short = max_throughput_eq_with(512, PhyRate::R11, AccessScheme::Basic, Preamble::Short);
        assert!(short > long * 1.12, "short {short:.3} vs long {long:.3}");
        // Four PLCPs under RTS/CTS: the gain is even larger there.
        let long_rts =
            max_throughput_eq_with(512, PhyRate::R11, AccessScheme::RtsCts, Preamble::Long);
        let short_rts =
            max_throughput_eq_with(512, PhyRate::R11, AccessScheme::RtsCts, Preamble::Short);
        assert!(short_rts / long_rts > short / long);
        // At 1 Mb/s the preamble is a small share: the gain shrinks.
        let long1 = max_throughput_eq_with(512, PhyRate::R1, AccessScheme::Basic, Preamble::Long);
        let short1 = max_throughput_eq_with(512, PhyRate::R1, AccessScheme::Basic, Preamble::Short);
        assert!(short1 / long1 < 1.07);
    }

    #[test]
    fn bandwidth_utilization_stays_below_44_percent() {
        // The paper's headline: even with m = 1024 B the usable fraction
        // of the 11 Mb/s nominal bandwidth is below 44%.
        let th = max_throughput_paper(1024, PhyRate::R11, AccessScheme::Basic);
        assert!(th / 11.0 < 0.44, "utilization {:.3}", th / 11.0);
        // …and with m = 512 B below 28%.
        let th = max_throughput_paper(512, PhyRate::R11, AccessScheme::Basic);
        assert!(th / 11.0 < 0.28);
    }

    #[test]
    fn table2_helper_matches_cellwise_calls() {
        let rows = table2();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].rate, PhyRate::R11, "fastest rate first, as printed");
        let r2 = &rows[2];
        assert_eq!(r2.rate, PhyRate::R2);
        assert_eq!(
            r2.m512_rts,
            max_throughput_paper(512, PhyRate::R2, AccessScheme::RtsCts)
        );
    }
}
