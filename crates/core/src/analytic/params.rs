//! Protocol parameters — the paper's Table 1.

/// IEEE 802.11b parameter values (Table 1 of the paper), expressed in
/// microseconds and bits so the throughput equations can be computed in
/// closed form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dot11bParams {
    /// Slot time, µs.
    pub slot_us: f64,
    /// Propagation delay τ, µs.
    pub tau_us: f64,
    /// PLCP preamble + header, bits (sent at 1 Mb/s, so also µs).
    pub phy_hdr_bits: f64,
    /// MAC header + FCS of a data frame, bits.
    pub mac_hdr_bits: f64,
    /// SIFS, µs.
    pub sifs_us: f64,
    /// DIFS, µs.
    pub difs_us: f64,
    /// ACK frame body, bits (PHY header excluded).
    pub ack_bits: f64,
    /// RTS frame body, bits.
    pub rts_bits: f64,
    /// CTS frame body, bits.
    pub cts_bits: f64,
    /// Minimum contention window, slots.
    pub cw_min: f64,
    /// Maximum contention window, slots.
    pub cw_max: f64,
    /// IP + UDP headers added by the legacy Internet stack, bytes
    /// (Figure 1's network/transport encapsulation for the CBR workload).
    pub ip_udp_header_bytes: f64,
}

impl Dot11bParams {
    /// The values of Table 1.
    pub fn table1() -> Dot11bParams {
        Dot11bParams {
            slot_us: 20.0,
            tau_us: 1.0,
            phy_hdr_bits: 192.0,
            mac_hdr_bits: 272.0,
            sifs_us: 10.0,
            difs_us: 50.0,
            ack_bits: 112.0,
            rts_bits: 160.0,
            cts_bits: 112.0,
            cw_min: 32.0,
            cw_max: 1024.0,
            ip_udp_header_bytes: 28.0,
        }
    }

    /// Mean backoff charged per packet: `CWmin/2 · SlotTime`, µs.
    pub fn mean_backoff_us(&self) -> f64 {
        self.cw_min / 2.0 * self.slot_us
    }
}

impl Default for Dot11bParams {
    fn default() -> Self {
        Dot11bParams::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reference_values() {
        let p = Dot11bParams::table1();
        assert_eq!(p.slot_us, 20.0);
        assert_eq!(p.phy_hdr_bits, 192.0);
        // Table 1 writes PHYhdr as 9.6 slot times.
        assert_eq!(p.phy_hdr_bits, 9.6 * p.slot_us);
        assert_eq!(p.mac_hdr_bits, 272.0);
        assert_eq!(p.difs_us, 50.0);
        assert_eq!(p.sifs_us, 10.0);
        assert_eq!(p.ack_bits, 112.0);
        assert_eq!((p.cw_min, p.cw_max), (32.0, 1024.0));
    }

    #[test]
    fn mean_backoff_is_320_us() {
        assert_eq!(Dot11bParams::table1().mean_backoff_us(), 320.0);
    }
}
