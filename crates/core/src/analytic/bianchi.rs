//! Multi-station saturation throughput (Bianchi's DCF model).
//!
//! The paper's Eq. (1) covers a *single* active sender (no collisions).
//! Its natural companion for n saturated contenders is Bianchi's model
//! (G. Bianchi, "Performance Analysis of the IEEE 802.11 Distributed
//! Coordination Function", JSAC 2000): each station transmits in a
//! generic slot with probability τ, found as the fixed point of
//!
//! ```text
//! τ = 2(1-2p) / ((1-2p)(W+1) + pW(1-(2p)^m))
//! p = 1 - (1-τ)^(n-1)
//! ```
//!
//! with W = CWmin and m backoff stages (CWmax = 2^m · CWmin). Saturation
//! throughput then follows from the per-slot probabilities and the
//! success/collision slot durations built from the same Table 1 timings
//! and Figure 1 encapsulation as Eq. (1).
//!
//! For n = 1 the model degenerates to (almost) Eq. (1) — p = 0,
//! τ = 2/(W+1) — and for growing n it quantifies the collision overhead
//! the paper's single-pair experiments deliberately avoid. The
//! integration test `bianchi_matches_simulation` checks the simulator
//! against it for n = 1..4.

use dot11_phy::PhyRate;

use super::params::Dot11bParams;

/// The result of evaluating the model for one station count.
#[derive(Debug, Clone, Copy)]
pub struct BianchiPoint {
    /// Saturated contenders.
    pub stations: u32,
    /// Per-slot transmission probability τ.
    pub tau: f64,
    /// Conditional collision probability p.
    pub collision_prob: f64,
    /// Aggregate application-level saturation throughput, Mb/s.
    pub throughput_mbps: f64,
}

/// Evaluates Bianchi's saturation model for `n` stations sending
/// `m_bytes` application payloads at `data_rate` with basic access.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn bianchi(n: u32, m_bytes: u32, data_rate: PhyRate) -> BianchiPoint {
    assert!(n > 0, "at least one station");
    let p_tbl = Dot11bParams::table1();
    let w = p_tbl.cw_min;
    // CWmax = 2^m · CWmin: 1024 = 2^5 · 32.
    let stages = (p_tbl.cw_max / p_tbl.cw_min).log2().round();

    // Fixed point by damped iteration (contraction for all n of interest).
    let mut tau = 2.0 / (w + 1.0);
    let mut p = 0.0;
    for _ in 0..10_000 {
        p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
        let two_p = 2.0 * p;
        let tau_next = if p == 0.0 {
            2.0 / (w + 1.0)
        } else {
            2.0 * (1.0 - two_p) / ((1.0 - two_p) * (w + 1.0) + p * w * (1.0 - two_p.powf(stages)))
        };
        let new = 0.5 * tau + 0.5 * tau_next;
        if (new - tau).abs() < 1e-12 {
            tau = new;
            break;
        }
        tau = new;
    }

    let rate = data_rate.bits_per_micro();
    let ctrl = data_rate.control_rate().bits_per_micro();
    let payload_bits = m_bytes as f64 * 8.0;
    let t_data = p_tbl.phy_hdr_bits
        + (p_tbl.mac_hdr_bits + (m_bytes as f64 + p_tbl.ip_udp_header_bytes) * 8.0) / rate;
    let t_ack = p_tbl.phy_hdr_bits + p_tbl.ack_bits / ctrl;
    // Successful-slot and collision-slot durations (basic access).
    let t_success = t_data + p_tbl.sifs_us + t_ack + p_tbl.difs_us + 2.0 * p_tbl.tau_us;
    let t_collision = t_data + p_tbl.difs_us + p_tbl.tau_us;

    let n_f = n as f64;
    let p_tr = 1.0 - (1.0 - tau).powi(n as i32);
    let p_s = if p_tr > 0.0 {
        n_f * tau * (1.0 - tau).powi(n as i32 - 1) / p_tr
    } else {
        0.0
    };
    let denom =
        (1.0 - p_tr) * p_tbl.slot_us + p_tr * p_s * t_success + p_tr * (1.0 - p_s) * t_collision;
    let throughput_mbps = p_tr * p_s * payload_bits / denom;

    BianchiPoint {
        stations: n,
        tau,
        collision_prob: p,
        throughput_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{max_throughput_eq, AccessScheme};

    #[test]
    fn single_station_approaches_eq1() {
        let b = bianchi(1, 512, PhyRate::R11);
        assert_eq!(b.collision_prob, 0.0, "no collisions alone");
        // τ = 2/(W+1) ⇒ mean 15.5 idle slots per frame vs Eq. (1)'s
        // CWmin/2 = 16: within a few percent.
        let eq1 = max_throughput_eq(512, PhyRate::R11, AccessScheme::Basic);
        let rel = (b.throughput_mbps - eq1).abs() / eq1;
        assert!(
            rel < 0.03,
            "bianchi n=1 {:.3} vs Eq.(1) {:.3}",
            b.throughput_mbps,
            eq1
        );
    }

    #[test]
    fn collisions_grow_with_n_and_erode_throughput() {
        let pts: Vec<BianchiPoint> = (1..=10).map(|n| bianchi(n, 512, PhyRate::R11)).collect();
        for w in pts.windows(2) {
            assert!(w[1].collision_prob > w[0].collision_prob);
            assert!(w[1].tau < w[0].tau, "per-station aggressiveness drops");
        }
        // Aggregate throughput first *rises* (contenders fill each other's
        // idle backoff slots) to a peak around n≈5, then collision cost
        // takes over — the classic DCF hump.
        let peak = pts.iter().map(|p| p.throughput_mbps).fold(0.0, f64::max);
        assert!(
            peak > pts[0].throughput_mbps,
            "peak {peak:.3} above n=1 {:.3}",
            pts[0].throughput_mbps
        );
        let far = bianchi(50, 512, PhyRate::R11);
        assert!(
            far.throughput_mbps < peak,
            "large n erodes: {:.3} < {peak:.3}",
            far.throughput_mbps
        );
        assert!(
            far.throughput_mbps > pts[0].throughput_mbps * 0.7,
            "but does not collapse"
        );
    }

    #[test]
    fn fixed_point_is_stable_across_rates_and_sizes() {
        for &rate in &PhyRate::ALL {
            for &m in &[512u32, 1024] {
                for n in [1u32, 2, 5, 20] {
                    let b = bianchi(n, m, rate);
                    assert!(b.tau > 0.0 && b.tau < 1.0, "{rate} n={n}: tau {}", b.tau);
                    assert!((0.0..1.0).contains(&b.collision_prob));
                    assert!(b.throughput_mbps > 0.0);
                    assert!(b.throughput_mbps < rate.bits_per_micro());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_panics() {
        let _ = bianchi(0, 512, PhyRate::R11);
    }
}
