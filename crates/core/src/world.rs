//! The simulation world: event dispatch across nodes and the medium.
//!
//! The [`World`] owns the simulator, the medium, and every station. Each
//! popped event is routed to the owning station's PHY/MAC/transport; the
//! actions they emit (transmissions, timers, deliveries) are executed
//! immediately, possibly recursing (a delivered TCP segment produces an
//! ACK, which enqueues at the MAC, which may arm a DIFS timer…).
//!
//! Determinism: all state mutation happens in event order; all randomness
//! flows from per-component substreams of the scenario seed. Two runs of
//! the same scenario are bit-identical.

use std::collections::HashMap;

use desim::{
    EventHandle, NoProbe, Probe, SharedMut, SimDuration, SimRng, SimTime, Simulator, WorkerPool,
};
use dot11_mac::{DcfMac, FrameKind, MacAction, MacFrame, MacSdu, TimerKind};
use dot11_net::{CbrSource, SaturatedSource, TcpConfig};
use dot11_net::{FlowId, Packet, Segment, StaticRoutes, TcpOutput, TcpReceiver, TcpSender};
use dot11_phy::{
    Ar1Memo, CullPolicy, Medium, MediumConfig, NodeId, PhyState, RxOutcome, RxOutcomeKind,
    Shadowing, TxId, TxSignal, CULL_MARGIN_DB,
};
use dot11_trace::{FrameClass, NullSink, RxErrorCause, TraceRecord, TraceSink};

use crate::mobility::MobilityEngine;
use crate::node::{Node, UdpSink};
use crate::scenario::{FlowSpec, Scenario, Traffic};
use crate::shard::ShardMap;
use crate::stats::{
    EngineStats, EventKindCounts, FlowReport, MobilityStats, NodeReport, RunReport,
};

fn frame_class(kind: FrameKind) -> FrameClass {
    match kind {
        FrameKind::Data => FrameClass::Data,
        FrameKind::Rts => FrameClass::Rts,
        FrameKind::Cts => FrameClass::Cts,
        FrameKind::Ack => FrameClass::Ack,
    }
}

/// Events flowing through the simulator.
#[derive(Debug)]
pub enum Event {
    /// A traffic source starts.
    FlowStart {
        /// Which flow.
        flow: FlowId,
    },
    /// A transmitted signal reaches every receiver's antenna. One event
    /// per transmission: propagation delay is uniform, so all receivers
    /// share the arrival instant and the handler fans out over the
    /// in-flight delivery list in station order — the same order the
    /// per-receiver events of the unbatched scheme popped in.
    SignalStart {
        /// The transmission.
        tx_id: TxId,
    },
    /// The signal leaves every receiver's antenna (one event per
    /// transmission; see [`Event::SignalStart`]).
    SignalEnd {
        /// The transmission.
        tx_id: TxId,
    },
    /// The transmitter finishes keying the frame out.
    TxAirEnd {
        /// The transmitter.
        node: NodeId,
        /// The transmission.
        tx_id: TxId,
    },
    /// A MAC timer fires.
    MacTimer {
        /// The station.
        node: NodeId,
        /// Which timer.
        kind: TimerKind,
    },
    /// A TCP retransmission timer fires.
    RtoTimer {
        /// The sending station.
        node: NodeId,
        /// The flow.
        flow: FlowId,
    },
    /// A TCP delayed-ACK timer fires.
    DelackTimer {
        /// The receiving station.
        node: NodeId,
        /// The flow.
        flow: FlowId,
    },
    /// A paced CBR source is due to emit.
    CbrTick {
        /// The source station.
        node: NodeId,
        /// The flow.
        flow: FlowId,
    },
    /// Warm-up over: snapshot delivered-byte counters.
    MeasureStart,
    /// A mobility epoch boundary: advance the movement model and commit
    /// the moved stations to the medium (incremental link maintenance).
    /// Scheduled in the trailing event class so an epoch's topology
    /// change lands after every ordinary event of the same instant.
    TopologyUpdate,
}

/// The profiler's scope table: one scope per [`Event`] kind (indices
/// `0..17`, matching
/// [`EventKindCounts::iter_named`](crate::stats::EventKindCounts::iter_named)
/// order so per-scope counts can be cross-checked against the kind
/// histogram), then the hot-path phase scopes.
///
/// Kind scopes partition the dispatch loop: each popped event's handling
/// is charged to exactly one. Phase scopes are *inclusive sub-regions*
/// nested inside kind scopes and may overlap each other (a MAC action
/// that transmits charges its scatter to both `phase_mac_actions` and
/// `phase_scatter`), so they explain where kind time goes but do not sum
/// with it.
pub const PROBE_SCOPES: [&str; 22] = [
    "flow_start",
    "signal_start",
    "signal_end",
    "tx_air_end",
    "mac_difs",
    "mac_backoff_bulk",
    "mac_backoff_slot",
    "mac_cts_timeout",
    "mac_ack_timeout",
    "mac_sifs_response",
    "mac_sifs_data",
    "mac_nav_end",
    "rto_timer",
    "delack_timer",
    "cbr_tick",
    "measure_start",
    "topology_update",
    "phase_scatter",
    "phase_arrival_scan",
    "phase_ber_eval",
    "phase_mac_actions",
    "phase_response_build",
];

/// Phase-scope indices into [`PROBE_SCOPES`] (the kind scopes occupy
/// `0..17`).
const SCOPE_SCATTER: usize = 17;
const SCOPE_ARRIVAL_SCAN: usize = 18;
const SCOPE_BER_EVAL: usize = 19;
const SCOPE_MAC_ACTIONS: usize = 20;
const SCOPE_RESPONSE_BUILD: usize = 21;

/// Dense per-station timer-slot count: one slot per [`TimerKind`].
const MAC_TIMER_SLOTS: usize = 8;

/// The dense timer-table slot of a [`TimerKind`] (same order as the MAC
/// kind scopes in [`PROBE_SCOPES`]).
fn timer_slot(kind: TimerKind) -> usize {
    match kind {
        TimerKind::Difs => 0,
        TimerKind::BackoffBulk => 1,
        TimerKind::BackoffSlot => 2,
        TimerKind::CtsTimeout => 3,
        TimerKind::AckTimeout => 4,
        TimerKind::SifsResponse => 5,
        TimerKind::SifsData => 6,
        TimerKind::NavEnd => 7,
    }
}

/// Minimum per-event fan-out before the parallel paths engage. Below
/// this the fork-join dispatch (~a few hundred ns even with spinning
/// workers) costs more than the per-receiver physics it distributes, so
/// small events run the serial loops inline — which also keeps the
/// paper-scale four-station scenarios effectively serial under any
/// thread count.
const PAR_MIN_ITEMS: usize = 8;

/// Slots per scatter work unit: workers claim strided chunks of the
/// audible slice, large enough to amortize the claim arithmetic and keep
/// each worker's link-cache/shadowing writes contiguous.
const SCATTER_CHUNK: usize = 16;

/// Per-run state of the sharded executor (present only during
/// [`World::run_sharded`]).
///
/// The conservative unit of parallelism is a **single event**: the
/// coordinator pops events one at a time in exactly the serial order and
/// fans the independent per-receiver physics *inside* each event across
/// the pool — per-receiver PHY state is disjoint (a receiver appears at
/// most once in a delivery list), and signal-event commits never mutate
/// another station's PHY or the medium, so prework commutes and the
/// serial commit loop reproduces the serial schedule byte for byte (the
/// full argument lives in ARCHITECTURE.md, "Sharded execution").
struct ParCtx<P> {
    pool: WorkerPool,
    /// Spatial shard of each station ([`ShardMap`]); a receiver's worker
    /// is `shard_of[rx] % threads` — deterministic, affinity-stable, and
    /// contiguous in the state arrays.
    shard_of: Vec<u32>,
    /// One probe per worker lane (lane 0 is the coordinator inside
    /// broadcasts). Workers record only the phase scopes; the merged
    /// totals fold into the main probe's report after the run.
    probes: Vec<P>,
    /// Per-delivery outcome slots for the signal-end prework (PHY decode
    /// consumes per-station randomness, so outcomes must be recorded,
    /// then committed in delivery order).
    results: Vec<Option<RxOutcome>>,
}

struct InFlight {
    frame: MacFrame<Packet>,
    /// Per-receiver signals, in station order. Walked by the batched
    /// signal-start/end handlers; the buffer is recycled through
    /// `delivery_pool` when the transmission ends.
    deliveries: Vec<(NodeId, TxSignal)>,
}

/// A stack of recycled `Vec`s for the per-event action/output buffers.
///
/// The event handlers recurse (a delivered segment produces an ACK, which
/// enqueues at the MAC, …), so one scratch buffer is not enough: each
/// recursion depth checks a buffer out and returns it cleared when done.
/// The pool grows to the maximum recursion depth within the first few
/// events and allocates nothing after that.
struct BufPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> BufPool<T> {
    fn new() -> BufPool<T> {
        BufPool { free: Vec::new() }
    }

    fn get(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.free.push(buf);
    }
}

/// The assembled simulation (see module docs).
///
/// Generic over a [`TraceSink`]; the default [`NullSink`] compiles every
/// emission site away. Pass a real sink (usually a
/// [`dot11_trace::SharedSink`], which is `Clone`) via
/// [`World::with_sink`] to observe the run. Likewise generic over a
/// [`Probe`]; the default [`NoProbe`] compiles the timing scopes away,
/// and [`World::with_probe`] accepts an armed [`desim::WallProbe`] over
/// [`PROBE_SCOPES`] to measure where the engine's wall time goes.
pub struct World<S: TraceSink + Clone = NullSink, P: Probe = NoProbe> {
    sim: Simulator<Event>,
    medium: Medium,
    nodes: Vec<Node<S>>,
    sink: S,
    probe: P,
    /// Recursion depth of `apply_mac_actions`: only the outermost call
    /// records the `phase_mac_actions` scope, so nested action cascades
    /// are not double-counted.
    mac_actions_depth: u32,
    flows: Vec<FlowSpec>,
    /// Transmissions on the air, sorted by [`TxId`]. Ids are handed out
    /// monotonically by the medium, so insertion is a push-back and
    /// lookup a binary search over a handful of concurrent entries — no
    /// hashing on the signal-start/end hot path.
    in_flight: Vec<(TxId, InFlight)>,
    /// Dense per-station timer table: slot `node * MAC_TIMER_SLOTS +
    /// timer_slot(kind)`. Replaces a `HashMap` keyed on `(node, kind)` —
    /// MAC timers are armed/cancelled several times per frame exchange,
    /// making this one of the hottest state tables in the world.
    mac_timers: Vec<Option<EventHandle>>,
    rto_timers: HashMap<(u32, u32), EventHandle>,
    delack_timers: HashMap<(u32, u32), EventHandle>,
    next_tag: u64,
    snapshot: HashMap<FlowId, u64>,
    routes: StaticRoutes,
    duration: SimDuration,
    warmup: SimDuration,
    /// Recycled buffers for the hot-path handlers (see [`BufPool`]).
    mac_action_pool: BufPool<MacAction<Packet>>,
    tcp_out_pool: BufPool<TcpOutput>,
    /// Recycled scatter buffers for [`Medium::transmit_into`]; each lives
    /// inside an [`InFlight`] entry while its transmission is on the air.
    delivery_pool: BufPool<(NodeId, TxSignal)>,
    /// Reused output buffer for saturated-source refills.
    packet_scratch: Vec<Packet>,
    /// Dispatched events broken down by kind.
    kind_counts: EventKindCounts,
    /// The movement model plus its epoch period and commit mode
    /// (`Some` only on mobile scenarios).
    mobility: Option<(MobilityEngine, SimDuration, bool)>,
    /// Link churn accumulated over the run's mobility epochs.
    mobility_stats: MobilityStats,
    /// Recycled per-epoch move buffer.
    move_scratch: Vec<(NodeId, dot11_phy::Position)>,
    /// Sharded-executor state; `Some` only inside
    /// [`World::run_sharded`], which guarantees `S: Send + Sync` and
    /// `P: Send` before constructing it (the parallel handlers move node
    /// and probe state across threads through [`SharedMut`]).
    par: Option<ParCtx<P>>,
}

impl World {
    /// Assembles a world from a scenario with tracing disabled.
    pub fn new(scenario: Scenario) -> World {
        World::with_sink(scenario, NullSink)
    }
}

impl<S: TraceSink + Clone> World<S> {
    /// Assembles a world from a scenario, wiring `sink` through every
    /// layer (PHY, MAC, TCP, and the world's own frame/flow events).
    pub fn with_sink(scenario: Scenario, sink: S) -> World<S> {
        World::with_probe(scenario, sink, NoProbe)
    }
}

impl<S: TraceSink + Clone, P: Probe> World<S, P> {
    /// Assembles a world from a scenario with both a trace sink and a
    /// timing probe (usually a [`desim::WallProbe`] over
    /// [`PROBE_SCOPES`]).
    pub fn with_probe(scenario: Scenario, sink: S, probe: P) -> World<S, P> {
        let Scenario {
            positions,
            radio,
            mac,
            day,
            path_loss,
            flows,
            routes,
            seed,
            duration,
            warmup,
            full_fanout,
            threads: _,
            mobility,
        } = scenario;
        let master = SimRng::from_seed(seed);
        let shadowing = Shadowing::new(day.clone(), master.substream(b"shadowing"));
        // Audible-set culling: the world knows every station transmits at
        // the radio's (single) TX power, so it can bound each link's
        // best-case received power at construction and skip receivers
        // that can never rise above noise_floor − CULL_MARGIN_DB. On the
        // paper-scale scenarios no link is culled (regression-tested), so
        // reports are bit-identical with or without the policy.
        let cull = if full_fanout {
            CullPolicy::Full
        } else {
            CullPolicy::Audible {
                tx_power: radio.tx_power,
                noise_floor: radio.noise_floor,
                margin: dot11_phy::Db(CULL_MARGIN_DB),
            }
        };
        let medium = Medium::new(
            positions.clone(),
            shadowing,
            MediumConfig {
                path_loss,
                day,
                propagation_delay: desim::SimDuration::from_micros(1),
                cull,
            },
        );
        let mut radio = radio;
        radio.preamble = mac.preamble;
        let mut nodes = Vec::with_capacity(positions.len());
        for i in 0..positions.len() {
            let id = NodeId(i as u32);
            let phy = PhyState::with_sink(
                radio,
                master.substream(format!("phy/{i}").as_bytes()),
                id,
                sink.clone(),
            );
            let dcf: DcfMac<Packet, S> = DcfMac::with_sink(
                id,
                mac,
                master.substream(format!("mac/{i}").as_bytes()),
                sink.clone(),
            );
            nodes.push(Node::new(id, phy, dcf));
        }
        let mut sim = Simulator::new();
        // Pending events are bounded by a few timers per station plus a
        // few per transmission and flow; pre-size the queue so a late
        // population peak never reallocates mid-run.
        sim.reserve(16 * (nodes.len() + flows.len()).max(4));
        for f in &flows {
            sim.schedule_at(SimTime::ZERO + f.start, Event::FlowStart { flow: f.id });
        }
        sim.schedule_at(SimTime::ZERO + warmup, Event::MeasureStart);
        // Mobile scenario: build the movement engine over its dedicated
        // substream and arm the first epoch. Trailing class: an epoch's
        // topology change follows every ordinary event of its instant.
        let mobility = mobility.map(|m| {
            let engine = MobilityEngine::new(&m, &positions, &master.substream(b"mobility"));
            sim.schedule_in_trailing(m.epoch, Event::TopologyUpdate);
            (engine, m.epoch, m.rebuild_epochs)
        });
        // Pre-warm the delivery pool: at most one in-flight transmission
        // per station (a keyed-up radio cannot start another), each
        // scattering to at most max_audible_count() receivers — the
        // audible sets shrink the pooled buffers along with the fan-out.
        // Sizing it up front keeps the steady state allocation-free even
        // when the first deep overlap happens late in a run.
        let mut delivery_pool = BufPool::new();
        let n_stations = nodes.len();
        let delivery_capacity = medium.max_audible_count();
        for _ in 0..n_stations {
            delivery_pool.put(Vec::with_capacity(delivery_capacity));
        }
        let mut world = World {
            sim,
            medium,
            nodes,
            sink,
            probe,
            mac_actions_depth: 0,
            flows,
            in_flight: Vec::new(),
            mac_timers: vec![None; n_stations * MAC_TIMER_SLOTS],
            rto_timers: HashMap::new(),
            delack_timers: HashMap::new(),
            next_tag: 1,
            snapshot: HashMap::new(),
            routes,
            duration,
            warmup,
            mac_action_pool: BufPool::new(),
            tcp_out_pool: BufPool::new(),
            delivery_pool,
            packet_scratch: Vec::new(),
            kind_counts: EventKindCounts::default(),
            mobility,
            mobility_stats: MobilityStats::default(),
            move_scratch: Vec::new(),
            par: None,
        };
        world.install_endpoints();
        world
    }

    fn install_endpoints(&mut self) {
        for f in self.flows.clone() {
            match f.traffic {
                Traffic::SaturatedUdp {
                    payload_bytes,
                    backlog,
                } => {
                    self.nodes[f.src.index()].saturated_sources.insert(
                        f.id,
                        SaturatedSource::new(f.id, f.src, f.dst, payload_bytes, backlog),
                    );
                    self.nodes[f.src.index()].saturated_flows.push(f.id);
                    self.nodes[f.dst.index()]
                        .udp_sinks
                        .insert(f.id, UdpSink::default());
                }
                Traffic::CbrUdp {
                    payload_bytes,
                    interval,
                    limit,
                } => {
                    self.nodes[f.src.index()].cbr_sources.insert(
                        f.id,
                        CbrSource::new(f.id, f.src, f.dst, payload_bytes, interval, limit),
                    );
                    self.nodes[f.dst.index()]
                        .udp_sinks
                        .insert(f.id, UdpSink::default());
                }
                Traffic::BulkTcp { mss } => {
                    let cfg = TcpConfig::new(mss);
                    self.nodes[f.src.index()].tcp_senders.insert(
                        f.id,
                        TcpSender::with_sink(f.id, f.src, f.dst, cfg, self.sink.clone()),
                    );
                    self.nodes[f.dst.index()]
                        .tcp_receivers
                        .insert(f.id, TcpReceiver::new(f.id, f.dst, f.src, cfg));
                }
            }
        }
    }

    /// Runs the scenario to its configured duration and reports.
    pub fn run(mut self) -> RunReport {
        let wall_start = std::time::Instant::now();
        let end = SimTime::ZERO + self.duration;
        self.step_until(end);
        if S::ENABLED {
            // Close at the configured end so the final metrics window
            // spans to the run boundary, not the last event.
            self.sink.finish(end);
        }
        self.report(wall_start.elapsed())
    }

    /// Runs the scenario on `threads` cooperating threads, producing a
    /// report **byte-identical** to [`World::run`].
    ///
    /// The event loop stays serial — one event popped at a time, in
    /// exactly the serial order — and the pool parallelizes the
    /// independent physics *inside* each event (frame scatter, arrival
    /// scans, BER decodes), with all state commits and event scheduling
    /// performed by the coordinator in the serial order. See
    /// ARCHITECTURE.md, "Sharded execution", for the equivalence
    /// argument; the determinism suite asserts it on every golden seed.
    ///
    /// Falls back to the serial executor when it can't help or can't be
    /// used: `threads <= 1`, fewer than two stations, or an enabled
    /// trace sink (trace emission inside the parallel sections would
    /// interleave nondeterministically; probes are fine — each worker
    /// records into its own, merged afterwards).
    pub fn run_sharded(mut self, threads: usize) -> RunReport
    where
        S: Send + Sync,
        P: Send,
    {
        if threads <= 1 || S::ENABLED || self.nodes.len() < 2 {
            return self.run();
        }
        let wall_start = std::time::Instant::now();
        // A handful of shards per worker keeps the strided shard→worker
        // assignment balanced even when shard populations are uneven.
        let shards = ShardMap::spatial(&self.medium, threads * 4);
        self.par = Some(ParCtx {
            pool: WorkerPool::new(threads),
            shard_of: shards.into_assignment(),
            probes: (0..threads).map(|_| self.probe.fresh()).collect(),
            results: Vec::new(),
        });
        let end = SimTime::ZERO + self.duration;
        self.step_until(end);
        let par = self.par.take().expect("parallel context set above");
        for p in &par.probes {
            self.probe.merge(p);
        }
        drop(par); // parks, stops, and joins the worker pool
        self.report(wall_start.elapsed())
    }

    /// The assembled medium — lets tests and benchmarks inspect the
    /// audible sets (e.g. assert that a paper scenario culled nothing, or
    /// report the fan-out a topology actually produces).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Dispatches events until the next one would land after `end`.
    ///
    /// [`World::run`] drives the whole scenario through this; it is public
    /// so instrumentation (e.g. the allocation-profiling tests) can advance
    /// a world in segments and observe it between them.
    pub fn step_until(&mut self, end: SimTime) {
        while let Some(t) = self.sim.peek_time() {
            if t > end {
                break;
            }
            let tick = self.probe.tick();
            let (now, ev) = self.sim.pop().expect("peeked event");
            let scope = Self::kind_scope(&ev);
            self.handle(now, ev);
            self.probe.record(scope, tick);
        }
    }

    /// Maps an event to its profiler scope index — the same order as
    /// [`EventKindCounts::iter_named`] and the head of [`PROBE_SCOPES`]
    /// (cross-checked by the `probe_scope_counts_match_kind_histogram`
    /// integration test).
    fn kind_scope(ev: &Event) -> usize {
        match ev {
            Event::FlowStart { .. } => 0,
            Event::SignalStart { .. } => 1,
            Event::SignalEnd { .. } => 2,
            Event::TxAirEnd { .. } => 3,
            Event::MacTimer { kind, .. } => match kind {
                TimerKind::Difs => 4,
                TimerKind::BackoffBulk => 5,
                TimerKind::BackoffSlot => 6,
                TimerKind::CtsTimeout => 7,
                TimerKind::AckTimeout => 8,
                TimerKind::SifsResponse => 9,
                TimerKind::SifsData => 10,
                TimerKind::NavEnd => 11,
            },
            Event::RtoTimer { .. } => 12,
            Event::DelackTimer { .. } => 13,
            Event::CbrTick { .. } => 14,
            Event::MeasureStart => 15,
            Event::TopologyUpdate => 16,
        }
    }

    /// Tallies one dispatched event into the per-kind histogram.
    fn count_kind(&mut self, ev: &Event) {
        let k = &mut self.kind_counts;
        match ev {
            Event::FlowStart { .. } => k.flow_start += 1,
            Event::SignalStart { .. } => k.signal_start += 1,
            Event::SignalEnd { .. } => k.signal_end += 1,
            Event::TxAirEnd { .. } => k.tx_air_end += 1,
            Event::MacTimer { kind, .. } => match kind {
                TimerKind::Difs => k.mac_difs += 1,
                TimerKind::BackoffBulk => k.mac_backoff_bulk += 1,
                TimerKind::BackoffSlot => k.mac_backoff_slot += 1,
                TimerKind::CtsTimeout => k.mac_cts_timeout += 1,
                TimerKind::AckTimeout => k.mac_ack_timeout += 1,
                TimerKind::SifsResponse => k.mac_sifs_response += 1,
                TimerKind::SifsData => k.mac_sifs_data += 1,
                TimerKind::NavEnd => k.mac_nav_end += 1,
            },
            Event::RtoTimer { .. } => k.rto_timer += 1,
            Event::DelackTimer { .. } => k.delack_timer += 1,
            Event::CbrTick { .. } => k.cbr_tick += 1,
            Event::MeasureStart => k.measure_start += 1,
            Event::TopologyUpdate => k.topology_update += 1,
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        self.count_kind(&ev);
        match ev {
            Event::FlowStart { flow } => self.start_flow(flow, now),
            Event::SignalStart { tx_id } => self.on_signal_start(tx_id, now),
            Event::SignalEnd { tx_id } => self.on_signal_end(tx_id, now),
            Event::TxAirEnd { node, tx_id } => self.on_tx_air_end(node, tx_id, now),
            Event::MacTimer { node, kind } => {
                self.mac_timers[node.index() * MAC_TIMER_SLOTS + timer_slot(kind)] = None;
                let mut actions = self.mac_action_pool.get();
                if kind == TimerKind::SifsResponse {
                    // The SIFS-response build (precomputed CTS/ACK frame
                    // handed to the transmit path) gets its own phase
                    // scope so `engine.profile` keeps it visible.
                    let tick = self.probe.tick();
                    self.nodes[node.index()]
                        .mac
                        .on_timer(kind, now, &mut actions);
                    self.probe.record(SCOPE_RESPONSE_BUILD, tick);
                } else {
                    self.nodes[node.index()]
                        .mac
                        .on_timer(kind, now, &mut actions);
                }
                self.apply_mac_actions(node.index(), actions, now);
            }
            Event::RtoTimer { node, flow } => {
                self.rto_timers.remove(&(node.0, flow.0));
                let mut outs = self.tcp_out_pool.get();
                if let Some(s) = self.nodes[node.index()].tcp_senders.get_mut(&flow) {
                    s.on_rto(now, &mut outs);
                }
                self.apply_tcp_outputs(node.index(), flow, outs, now);
            }
            Event::DelackTimer { node, flow } => {
                self.delack_timers.remove(&(node.0, flow.0));
                let mut outs = self.tcp_out_pool.get();
                if let Some(r) = self.nodes[node.index()].tcp_receivers.get_mut(&flow) {
                    r.on_delack_timer(now, &mut outs);
                }
                self.apply_tcp_outputs(node.index(), flow, outs, now);
            }
            Event::CbrTick { node, flow } => self.on_cbr_tick(node, flow, now),
            Event::MeasureStart => {
                for f in &self.flows {
                    let bytes = self.delivered_bytes(f);
                    self.snapshot.insert(f.id, bytes);
                }
            }
            Event::TopologyUpdate => self.on_topology_update(now),
        }
    }

    /// One mobility epoch: advance the movement model to `now`, commit
    /// the moved stations to the medium (incrementally, or by full
    /// rebuild when the scenario asked for the reference mode), re-bin
    /// the spatial shard map if the sharded executor is live, and arm the
    /// next epoch.
    ///
    /// Carrier-locked receivers are unaffected on purpose: an in-flight
    /// transmission sampled its per-receiver powers at launch (the
    /// block-fading assumption every signal already follows), so a move
    /// mid-flight changes only *future* transmissions — which is exactly
    /// what the epoch commit invalidates.
    fn on_topology_update(&mut self, now: SimTime) {
        let (mut engine, epoch, rebuild) = self.mobility.take().expect("mobile scenario");
        let mut moves = std::mem::take(&mut self.move_scratch);
        moves.clear();
        engine.advance(
            now.saturating_duration_since(SimTime::ZERO),
            self.medium.positions(),
            &mut moves,
        );
        let churn = if rebuild {
            self.medium.commit_epoch_rebuild(&moves)
        } else {
            self.medium.commit_epoch(&moves)
        };
        self.mobility_stats.accumulate(churn);
        if churn.moved > 0 {
            if let Some(par) = self.par.as_mut() {
                // Re-bin the spatial shards: worker affinity should keep
                // following the geometry (pure function of positions, so
                // this does not perturb the schedule — only which lane
                // does which receiver's prework).
                let threads = par.pool.threads();
                par.shard_of = ShardMap::spatial(&self.medium, threads * 4).into_assignment();
            }
        }
        self.move_scratch = moves;
        self.mobility = Some((engine, epoch, rebuild));
        self.sim.schedule_in_trailing(epoch, Event::TopologyUpdate);
    }

    // --- traffic ---------------------------------------------------------

    fn start_flow(&mut self, flow: FlowId, now: SimTime) {
        let spec = *self
            .flows
            .iter()
            .find(|f| f.id == flow)
            .expect("known flow");
        match spec.traffic {
            Traffic::SaturatedUdp { .. } => self.refill_saturated(spec.src.index(), now),
            Traffic::CbrUdp { .. } => self.on_cbr_tick(spec.src, flow, now),
            Traffic::BulkTcp { .. } => {
                let mut outs = self.tcp_out_pool.get();
                self.nodes[spec.src.index()]
                    .tcp_senders
                    .get_mut(&flow)
                    .expect("sender installed")
                    .start(now, &mut outs);
                self.apply_tcp_outputs(spec.src.index(), flow, outs, now);
            }
        }
    }

    fn on_cbr_tick(&mut self, node: NodeId, flow: FlowId, now: SimTime) {
        let idx = node.index();
        let Some(src) = self.nodes[idx].cbr_sources.get_mut(&flow) else {
            return;
        };
        if let Some((packet, next)) = src.tick(now) {
            if let Some(next) = next {
                self.sim.schedule_at(next, Event::CbrTick { node, flow });
            }
            self.enqueue_packet(idx, packet, now);
        }
    }

    fn refill_saturated(&mut self, idx: usize, now: SimTime) {
        for fi in 0..self.nodes[idx].saturated_flows.len() {
            let flow = self.nodes[idx].saturated_flows[fi];
            // One top-up per invocation: the source emits enough datagrams
            // to restore its backlog given the current queue depth. (A
            // loop would never terminate if the backlog exceeded the MAC
            // queue capacity — drops would be "re-filled" forever.)
            let queued = self.nodes[idx].mac.queue_len();
            let mut packets = std::mem::take(&mut self.packet_scratch);
            self.nodes[idx]
                .saturated_sources
                .get_mut(&flow)
                .expect("source present")
                .refill(queued, now, &mut packets);
            for p in packets.drain(..) {
                self.enqueue_packet(idx, p, now);
            }
            self.packet_scratch = packets;
        }
    }

    // --- packet plumbing ---------------------------------------------------

    fn enqueue_packet(&mut self, idx: usize, packet: Packet, now: SimTime) {
        let tag = self.next_tag;
        self.next_tag += 1;
        let at = self.nodes[idx].id;
        // Multi-hop: the MAC-level receiver is the configured next hop
        // toward the packet's final destination (or the destination
        // itself when no route is installed).
        let hop = self.routes.next_hop(at, packet.dst).unwrap_or(packet.dst);
        let sdu = MacSdu {
            dst: hop,
            bytes: packet.wire_bytes(),
            tag,
            payload: packet,
        };
        let mut actions = self.mac_action_pool.get();
        self.nodes[idx].mac.enqueue(sdu, now, &mut actions);
        self.apply_mac_actions(idx, actions, now);
    }

    fn deliver_packet(&mut self, idx: usize, packet: Packet, now: SimTime) {
        if packet.dst != self.nodes[idx].id {
            // We are an intermediate hop: forward toward the destination.
            self.enqueue_packet(idx, packet, now);
            return;
        }
        match packet.seg {
            Segment::Udp { seq } => {
                if let Some(sink) = self.nodes[idx].udp_sinks.get_mut(&packet.flow) {
                    sink.datagrams += 1;
                    sink.payload_bytes += packet.payload_bytes as u64;
                    sink.max_seq = sink.max_seq.max(seq);
                    let delay = now.saturating_duration_since(packet.sent_at).as_nanos();
                    sink.delay_sum_ns += delay;
                    sink.delay_max_ns = sink.delay_max_ns.max(delay);
                    if S::ENABLED {
                        self.sink.record(
                            now,
                            &TraceRecord::FlowDeliver {
                                flow: packet.flow.0,
                                dst: packet.dst.0,
                                bytes: packet.payload_bytes,
                            },
                        );
                    }
                }
            }
            Segment::Tcp { seq, ack } => {
                let flow = packet.flow;
                let mut outs = self.tcp_out_pool.get();
                if packet.payload_bytes > 0 {
                    if let Some(r) = self.nodes[idx].tcp_receivers.get_mut(&flow) {
                        let before = r.delivered_bytes();
                        r.on_segment(seq, packet.payload_bytes, now, &mut outs);
                        // In-order delivery progress, not raw segment
                        // arrival: out-of-order segments count only once
                        // the hole closes.
                        let delta = r.delivered_bytes() - before;
                        if S::ENABLED && delta > 0 {
                            self.sink.record(
                                now,
                                &TraceRecord::FlowDeliver {
                                    flow: flow.0,
                                    dst: packet.dst.0,
                                    bytes: delta as u32,
                                },
                            );
                        }
                    }
                } else if let Some(s) = self.nodes[idx].tcp_senders.get_mut(&flow) {
                    s.on_ack(ack, now, &mut outs);
                }
                self.apply_tcp_outputs(idx, flow, outs, now);
            }
        }
    }

    fn apply_tcp_outputs(
        &mut self,
        idx: usize,
        flow: FlowId,
        mut outs: Vec<TcpOutput>,
        now: SimTime,
    ) {
        for out in outs.drain(..) {
            match out {
                TcpOutput::Send(packet) => self.enqueue_packet(idx, packet, now),
                TcpOutput::ArmRto(delay) => {
                    let node = self.nodes[idx].id;
                    let h = self.sim.schedule_in(delay, Event::RtoTimer { node, flow });
                    if let Some(old) = self.rto_timers.insert((node.0, flow.0), h) {
                        self.sim.cancel(old);
                    }
                }
                TcpOutput::CancelRto => {
                    let node = self.nodes[idx].id;
                    if let Some(h) = self.rto_timers.remove(&(node.0, flow.0)) {
                        self.sim.cancel(h);
                    }
                }
                TcpOutput::ArmDelack(delay) => {
                    let node = self.nodes[idx].id;
                    let h = self
                        .sim
                        .schedule_in(delay, Event::DelackTimer { node, flow });
                    if let Some(old) = self.delack_timers.insert((node.0, flow.0), h) {
                        self.sim.cancel(old);
                    }
                }
                TcpOutput::CancelDelack => {
                    let node = self.nodes[idx].id;
                    if let Some(h) = self.delack_timers.remove(&(node.0, flow.0)) {
                        self.sim.cancel(h);
                    }
                }
            }
        }
        self.tcp_out_pool.put(outs);
    }

    // --- MAC/PHY plumbing ----------------------------------------------------

    fn apply_mac_actions(&mut self, idx: usize, mut actions: Vec<MacAction<Packet>>, now: SimTime) {
        let tick = self.probe.tick();
        let outermost = self.mac_actions_depth == 0;
        self.mac_actions_depth += 1;
        for action in actions.drain(..) {
            match action {
                MacAction::Transmit { frame, rate } => {
                    self.start_transmission(idx, frame, rate, now)
                }
                MacAction::StartTimer { kind, delay } => {
                    let node = self.nodes[idx].id;
                    let ev = Event::MacTimer { node, kind };
                    // The bulk-backoff timer stands in for the *last* tick
                    // of a per-slot chain, which would have been the oldest
                    // pending event at its instant — so it goes in the
                    // trailing class (fires after every ordinary event at
                    // that instant; see `Simulator::schedule_in_trailing`).
                    let h = if kind == TimerKind::BackoffBulk {
                        self.sim.schedule_in_trailing(delay, ev)
                    } else {
                        self.sim.schedule_in(delay, ev)
                    };
                    let slot = idx * MAC_TIMER_SLOTS + timer_slot(kind);
                    if let Some(old) = self.mac_timers[slot].replace(h) {
                        self.sim.cancel(old);
                    }
                }
                MacAction::CancelTimer { kind } => {
                    let slot = idx * MAC_TIMER_SLOTS + timer_slot(kind);
                    if let Some(h) = self.mac_timers[slot].take() {
                        self.sim.cancel(h);
                    }
                }
                MacAction::Deliver { src: _, payload } => self.deliver_packet(idx, payload, now),
                MacAction::TxStatus { .. } => self.refill_saturated(idx, now),
            }
        }
        self.mac_action_pool.put(actions);
        self.mac_actions_depth -= 1;
        if outermost {
            self.probe.record(SCOPE_MAC_ACTIONS, tick);
        }
    }

    fn start_transmission(
        &mut self,
        idx: usize,
        frame: MacFrame<Packet>,
        rate: dot11_phy::PhyRate,
        now: SimTime,
    ) {
        let source = self.nodes[idx].id;
        let radio = *self.nodes[idx].phy.config();
        // Scatter into a pooled buffer; it rides inside the `InFlight`
        // entry until the transmission's SignalEnd returns it.
        let mut deliveries = self.delivery_pool.get();
        let (tx_id, airtime) =
            if self.par.is_some() && self.medium.audible_count(source) >= PAR_MIN_ITEMS {
                self.par_scatter(source, &radio, rate, frame.mpdu_bytes, now, &mut deliveries)
            } else {
                let tick = self.probe.tick();
                let out = self.medium.transmit_into(
                    source,
                    radio.tx_power,
                    rate,
                    frame.mpdu_bytes,
                    radio.preamble,
                    now,
                    &mut deliveries,
                );
                self.probe.record(SCOPE_SCATTER, tick);
                out
            };
        let until = now + airtime.total();
        if S::ENABLED {
            self.sink.record(
                now,
                &TraceRecord::FrameTxStart {
                    node: source.0,
                    kind: frame_class(frame.kind),
                    dst: frame.dst.0,
                    bytes: frame.mpdu_bytes,
                    rate_kbps: (rate.bits_per_sec() / 1000.0) as u32,
                    air_ns: airtime.total().as_nanos(),
                },
            );
        }
        self.nodes[idx].phy.begin_tx(until, now);
        self.sync_cs(idx, now);
        self.sim.schedule_at(
            until,
            Event::TxAirEnd {
                node: source,
                tx_id,
            },
        );
        if deliveries.is_empty() {
            // Nobody in range: no signal events, no in-flight entry.
            self.delivery_pool.put(deliveries);
            return;
        }
        // Uniform propagation delay: every receiver shares the arrival and
        // departure instants, so one event each covers the whole fan-out.
        let (starts_at, ends_at) = (deliveries[0].1.starts_at, deliveries[0].1.ends_at);
        debug_assert!(deliveries
            .iter()
            .all(|(_, s)| s.starts_at == starts_at && s.ends_at == ends_at));
        self.sim
            .schedule_at(starts_at, Event::SignalStart { tx_id });
        self.sim.schedule_at(ends_at, Event::SignalEnd { tx_id });
        debug_assert!(
            self.in_flight.last().is_none_or(|(last, _)| *last < tx_id),
            "medium tx ids must be monotonic for sorted push-back"
        );
        self.in_flight.push((tx_id, InFlight { frame, deliveries }));
    }

    // --- sharded-executor parallel sections --------------------------------
    //
    // Each helper fans one event's independent per-receiver physics
    // across the pool and leaves every state commit (MAC input, event
    // scheduling, carrier-sense edges) to the coordinator in delivery
    // order. Soundness rests on two structural facts, both asserted by
    // the determinism suite and argued in ARCHITECTURE.md:
    //
    // 1. a receiver appears at most once per delivery list (audible sets
    //    are sets), so per-receiver PHY mutations are disjoint;
    // 2. commits during signal events never mutate another station's PHY
    //    or the medium (`MacAction::Transmit` only arises from timer
    //    events), so prework outputs equal what the serial interleaving
    //    would have produced.
    //
    // The `SharedMut` accesses below all follow the same pattern: worker
    // `w` touches only `probes[w]` plus state owned by receivers whose
    // shard is congruent to `w` mod threads — statically disjoint — and
    // the fork-join barrier in `broadcast` ends every borrow before the
    // coordinator resumes.

    /// Parallel form of the [`Medium::transmit_into`] scatter: workers
    /// fill strided chunks of the audible slice directly into the
    /// delivery buffer's spare capacity. Bitwise identical to the serial
    /// loop (same shared fill/sampling helpers; per-worker AR(1) memos
    /// only skip recomputing a pure function of the time delta).
    fn par_scatter(
        &mut self,
        source: NodeId,
        radio: &dot11_phy::RadioConfig,
        rate: dot11_phy::PhyRate,
        mpdu_bytes: u32,
        now: SimTime,
        deliveries: &mut Vec<(NodeId, TxSignal)>,
    ) -> (TxId, dot11_phy::FrameAirtime) {
        debug_assert!(deliveries.is_empty());
        let (job, airtime) = self.medium.begin_scatter(
            source,
            radio.tx_power,
            rate,
            mpdu_bytes,
            radio.preamble,
            now,
        );
        let n = job.end_slot - job.start_slot;
        deliveries.reserve(n);
        let par = self.par.as_mut().expect("parallel context");
        let threads = par.pool.threads();
        let probes = SharedMut::new(par.probes.as_mut_slice());
        let spare = SharedMut::new(deliveries.spare_capacity_mut());
        let view = self.medium.scatter_view();
        let chunks = n.div_ceil(SCATTER_CHUNK);
        par.pool.broadcast(&|w| {
            // SAFETY: lane w's probe, touched by lane w alone.
            let probe = unsafe { &mut (*probes.get())[w] };
            let tick = probe.tick();
            let mut memo = Ar1Memo::new();
            // SAFETY: chunks are disjoint slot ranges; each writes its
            // own delivery indices of the spare capacity.
            let base = unsafe { (*spare.get()).as_mut_ptr() as *mut (NodeId, TxSignal) };
            let mut c = w;
            while c < chunks {
                let lo = job.start_slot + c * SCATTER_CHUNK;
                let hi = (lo + SCATTER_CHUNK).min(job.end_slot);
                // SAFETY: disjoint ranges (strided chunks), capacity n.
                unsafe { view.fill(&job, lo..hi, base, &mut memo) };
                c += threads;
            }
            probe.record(SCOPE_SCATTER, tick);
        });
        // SAFETY: the chunks cover 0..n exactly once and the barrier has
        // completed, so all n elements are initialized.
        unsafe { deliveries.set_len(n) };
        (job.tx_id, airtime)
    }

    /// Parallel arrival prework for [`World::on_signal_start`]: every
    /// receiver's interference bookkeeping runs on its shard's worker.
    /// Receivers' PHY states are disjoint, so this equals the serial
    /// interleaving; the carrier-sense commits follow serially.
    fn par_signal_start_prework(&mut self, deliveries: &[(NodeId, TxSignal)], now: SimTime) {
        let par = self.par.as_mut().expect("parallel context");
        let threads = par.pool.threads();
        let shard_of: &[u32] = &par.shard_of;
        let nodes = SharedMut::new(self.nodes.as_mut_slice());
        let probes = SharedMut::new(par.probes.as_mut_slice());
        par.pool.broadcast(&|w| {
            // SAFETY: lane w's probe, touched by lane w alone.
            let probe = unsafe { &mut (*probes.get())[w] };
            for &(rx, ref sig) in deliveries {
                if shard_of[rx.index()] as usize % threads != w {
                    continue;
                }
                let tick = probe.tick();
                // SAFETY: rx appears once in the list and its shard maps
                // to exactly one lane — no other thread touches it.
                let node = unsafe { &mut (*nodes.get())[rx.index()] };
                node.phy.signal_start(sig, now);
                probe.record(SCOPE_ARRIVAL_SCAN, tick);
            }
        });
    }

    /// Parallel decode prework for [`World::on_signal_end`]: the PHY
    /// outcome of every receiver resolves on its shard's worker and is
    /// recorded per delivery index (decoding consumes the receiver's own
    /// randomness, so outcomes can't be recomputed at commit time). The
    /// coordinator then commits them in delivery order.
    fn par_signal_end_prework(
        &mut self,
        deliveries: &[(NodeId, TxSignal)],
        tx_id: TxId,
        now: SimTime,
    ) {
        let par = self.par.as_mut().expect("parallel context");
        par.results.clear();
        par.results.resize(deliveries.len(), None);
        let threads = par.pool.threads();
        let shard_of: &[u32] = &par.shard_of;
        let nodes = SharedMut::new(self.nodes.as_mut_slice());
        let probes = SharedMut::new(par.probes.as_mut_slice());
        let results = SharedMut::new(par.results.as_mut_slice());
        par.pool.broadcast(&|w| {
            // SAFETY: lane w's probe, touched by lane w alone.
            let probe = unsafe { &mut (*probes.get())[w] };
            for (di, &(rx, _)) in deliveries.iter().enumerate() {
                if shard_of[rx.index()] as usize % threads != w {
                    continue;
                }
                let tick = probe.tick();
                // SAFETY: as in the arrival prework — one lane per rx.
                let node = unsafe { &mut (*nodes.get())[rx.index()] };
                let out = node.phy.signal_end(tx_id, now);
                // SAFETY: delivery index di belongs to rx's lane only.
                unsafe { (*results.get())[di] = out };
                probe.record(SCOPE_BER_EVAL, tick);
            }
        });
    }

    /// Index of a live transmission in the sorted `in_flight` table.
    fn in_flight_idx(&self, tx_id: TxId) -> usize {
        self.in_flight
            .binary_search_by_key(&tx_id, |e| e.0)
            .expect("in-flight entry lives until its own signal end")
    }

    fn on_signal_start(&mut self, tx_id: TxId, now: SimTime) {
        // Take the delivery list out of its entry for the walk: `sync_cs`
        // can recurse into `apply_mac_actions` and push new in-flight
        // entries, so no borrow of the table may be held across receivers
        // — but nothing in that recursion can touch *this* transmission's
        // deliveries, so an owned take is safe and replaces the two map
        // lookups per receiver of the old scheme with none. The buffer
        // goes back afterwards; `on_signal_end` walks the same one.
        let i = self.in_flight_idx(tx_id);
        let deliveries = std::mem::take(&mut self.in_flight[i].1.deliveries);
        if self.par.is_some() && deliveries.len() >= PAR_MIN_ITEMS {
            // Sharded mode: interference bookkeeping per receiver is
            // independent (disjoint PHY states, schedules nothing), so it
            // fans out; the carrier-sense commits — which can reach the
            // MAC and the event queue — replay serially in delivery
            // order, as the serial loop interleaved them.
            self.par_signal_start_prework(&deliveries, now);
            for &(rx, _) in &deliveries {
                self.sync_cs(rx.index(), now);
            }
        } else {
            for &(rx, ref sig) in &deliveries {
                // Scope only the PHY arrival bookkeeping: `sync_cs` may
                // cascade into MAC actions, which time themselves.
                let tick = self.probe.tick();
                self.nodes[rx.index()].phy.signal_start(sig, now);
                self.probe.record(SCOPE_ARRIVAL_SCAN, tick);
                self.sync_cs(rx.index(), now);
            }
        }
        let i = self.in_flight_idx(tx_id);
        self.in_flight[i].1.deliveries = deliveries;
    }

    fn on_signal_end(&mut self, tx_id: TxId, now: SimTime) {
        let i = self.in_flight_idx(tx_id);
        let deliveries = std::mem::take(&mut self.in_flight[i].1.deliveries);
        if self.par.is_some() && deliveries.len() >= PAR_MIN_ITEMS {
            // Sharded mode: resolve every receiver's decode outcome in
            // parallel (it consumes the receiver's own randomness, hence
            // the per-index result capture), then commit serially in
            // delivery order — the exact serial interleaving.
            self.par_signal_end_prework(&deliveries, tx_id, now);
            let mut results = std::mem::take(&mut self.par.as_mut().expect("ctx").results);
            for (di, &(rx, _)) in deliveries.iter().enumerate() {
                self.commit_signal_end(rx, tx_id, results[di].take(), now);
            }
            self.par.as_mut().expect("ctx").results = results;
        } else {
            for &(rx, _) in &deliveries {
                self.signal_end_at(rx, tx_id, now);
            }
        }
        let i = self.in_flight_idx(tx_id);
        self.in_flight.remove(i);
        self.delivery_pool.put(deliveries);
    }

    /// One receiver's share of a transmission's end: resolve the PHY
    /// outcome, feed the MAC, re-sync carrier sense. Runs in station
    /// order from [`World::on_signal_end`], exactly like the unbatched
    /// per-receiver events did.
    fn signal_end_at(&mut self, rx: NodeId, tx_id: TxId, now: SimTime) {
        let idx = rx.index();
        // `signal_end` is where interference integration and BER
        // evaluation happen — the per-receiver decode cost.
        let tick = self.probe.tick();
        let outcome = self.nodes[idx].phy.signal_end(tx_id, now);
        self.probe.record(SCOPE_BER_EVAL, tick);
        self.commit_signal_end(rx, tx_id, outcome, now);
    }

    /// The state-committing half of a receiver's signal end: feed the MAC
    /// any decode outcome, re-sync carrier sense. Shared by the serial
    /// walk ([`World::signal_end_at`]) and the sharded commit loop.
    fn commit_signal_end(
        &mut self,
        rx: NodeId,
        tx_id: TxId,
        outcome: Option<RxOutcome>,
        now: SimTime,
    ) {
        let idx = rx.index();
        // Only the (rare) locked receiver can produce MAC input: skip the
        // action-buffer round-trip entirely for the other members of the
        // fan-out.
        if let Some(out) = outcome {
            let mut actions = self.mac_action_pool.get();
            match out.kind {
                RxOutcomeKind::Decoded => {
                    let i = self.in_flight_idx(tx_id);
                    let frame = self.in_flight[i].1.frame.clone();
                    if S::ENABLED {
                        self.sink.record(
                            now,
                            &TraceRecord::FrameRxOk {
                                node: rx.0,
                                src: frame.src.0,
                                kind: frame_class(frame.kind),
                                bytes: frame.mpdu_bytes,
                            },
                        );
                    }
                    self.nodes[idx].mac.on_rx_frame(frame, now, &mut actions);
                }
                RxOutcomeKind::BodyError | RxOutcomeKind::HeaderError => {
                    if S::ENABLED {
                        let cause = if matches!(out.kind, RxOutcomeKind::BodyError) {
                            RxErrorCause::Body
                        } else {
                            RxErrorCause::Header
                        };
                        self.sink
                            .record(now, &TraceRecord::FrameRxErr { node: rx.0, cause });
                    }
                    self.nodes[idx].mac.on_rx_error(now, &mut actions);
                }
            }
            self.apply_mac_actions(idx, actions, now);
        }
        self.sync_cs(idx, now);
    }

    fn on_tx_air_end(&mut self, node: NodeId, tx_id: TxId, now: SimTime) {
        let _ = tx_id;
        let idx = node.index();
        if S::ENABLED {
            self.sink
                .record(now, &TraceRecord::FrameTxEnd { node: node.0 });
        }
        self.nodes[idx].phy.end_tx(now);
        let mut actions = self.mac_action_pool.get();
        self.nodes[idx].mac.on_tx_end(now, &mut actions);
        self.apply_mac_actions(idx, actions, now);
        self.sync_cs(idx, now);
    }

    /// Reports carrier-sense edges to the MAC.
    fn sync_cs(&mut self, idx: usize, now: SimTime) {
        let busy = self.nodes[idx].phy.carrier_busy();
        if busy != self.nodes[idx].cs_reported {
            self.nodes[idx].cs_reported = busy;
            let mut actions = self.mac_action_pool.get();
            if busy {
                self.nodes[idx].mac.on_channel_busy(now, &mut actions);
            } else {
                self.nodes[idx].mac.on_channel_idle(now, &mut actions);
            }
            self.apply_mac_actions(idx, actions, now);
        }
    }

    // --- reporting -------------------------------------------------------------

    fn delivered_bytes(&self, spec: &FlowSpec) -> u64 {
        match spec.traffic {
            Traffic::SaturatedUdp { .. } | Traffic::CbrUdp { .. } => self.nodes[spec.dst.index()]
                .udp_sinks
                .get(&spec.id)
                .map(|s| s.payload_bytes)
                .unwrap_or(0),
            Traffic::BulkTcp { .. } => self.nodes[spec.dst.index()]
                .tcp_receivers
                .get(&spec.id)
                .map(|r| r.delivered_bytes())
                .unwrap_or(0),
        }
    }

    fn report(&mut self, wall: std::time::Duration) -> RunReport {
        // Fold the tail span into each station's airtime ledgers (the
        // PHY's radio-state split and the MAC's defer refinement).
        let end = (SimTime::ZERO + self.duration).max(self.sim.now());
        for n in &mut self.nodes {
            n.phy.account_airtime(end);
            n.mac.account_airtime(end);
        }
        let window = (self.duration - self.warmup).as_secs_f64();
        let flows = self
            .flows
            .iter()
            .map(|f| {
                let delivered_bytes = self.delivered_bytes(f);
                let measured =
                    delivered_bytes.saturating_sub(*self.snapshot.get(&f.id).unwrap_or(&0));
                let (mean_delay_ms, max_delay_ms) = self.nodes[f.dst.index()]
                    .udp_sinks
                    .get(&f.id)
                    .map(|s| (s.mean_delay_ms(), s.delay_max_ns as f64 / 1e6))
                    .unwrap_or((0.0, 0.0));
                let (offered, delivered_packets, loss) = match f.traffic {
                    Traffic::SaturatedUdp { .. } | Traffic::CbrUdp { .. } => {
                        let offered = self.nodes[f.src.index()]
                            .saturated_sources
                            .get(&f.id)
                            .map(|s| s.emitted())
                            .or_else(|| {
                                self.nodes[f.src.index()]
                                    .cbr_sources
                                    .get(&f.id)
                                    .map(|s| s.emitted())
                            })
                            .unwrap_or(0);
                        let got = self.nodes[f.dst.index()]
                            .udp_sinks
                            .get(&f.id)
                            .map(|s| s.datagrams)
                            .unwrap_or(0);
                        let loss = if offered > 0 {
                            1.0 - got as f64 / offered as f64
                        } else {
                            0.0
                        };
                        (offered, got, loss)
                    }
                    Traffic::BulkTcp { mss } => {
                        let offered = self.nodes[f.src.index()]
                            .tcp_senders
                            .get(&f.id)
                            .map(|s| s.stats().segments_sent)
                            .unwrap_or(0);
                        (offered, delivered_bytes / mss as u64, 0.0)
                    }
                };
                FlowReport {
                    flow: f.id,
                    src: f.src,
                    dst: f.dst,
                    offered_packets: offered,
                    delivered_bytes,
                    delivered_packets,
                    measured_bytes: measured,
                    throughput_kbps: measured as f64 * 8.0 / window / 1000.0,
                    loss_rate: loss.clamp(0.0, 1.0),
                    mean_delay_ms,
                    max_delay_ms,
                }
            })
            .collect();
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                // Merge the MAC's defer ledger into the PHY's airtime
                // split: the five refinement categories partition the
                // PHY's idle share (bit-exactly — asserted by the
                // airtime conservation tests), giving the exhaustive
                // channel-state accounting in one struct.
                let mut airtime = n.phy.airtime();
                let ledger = n.mac.airtime_ledger();
                airtime.nav_ns = ledger.nav_ns;
                airtime.difs_ns = ledger.difs_ns;
                airtime.backoff_ns = ledger.backoff_ns;
                airtime.frozen_ns = ledger.frozen_ns;
                airtime.quiet_ns = ledger.quiet_ns;
                NodeReport {
                    node: n.id,
                    mac: n.mac.counters(),
                    phy: n.phy.counters(),
                    arf: n.mac.arf_counters(),
                    final_data_rate: n.mac.current_data_rate(),
                    airtime,
                }
            })
            .collect();
        RunReport {
            duration: self.duration,
            warmup: self.warmup,
            flows,
            nodes,
            events: self.sim.events_dispatched(),
            engine: EngineStats {
                events: self.sim.events_dispatched(),
                kinds: self.kind_counts,
                mobility: self.mobility_stats,
                queue_high_water: self.sim.queue_high_water(),
                // The accounted horizon (same `end` the airtime ledgers
                // fold to), not the last event's timestamp: how far the
                // run simulated must not depend on whether the final
                // pending events happened to land before the boundary.
                sim_elapsed: end.saturating_duration_since(SimTime::ZERO),
                wall,
                profile: self.probe.report(),
            },
        }
    }
}

impl<S: TraceSink + Clone, P: Probe> std::fmt::Debug for World<S, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("stations", &self.nodes.len())
            .field("flows", &self.flows.len())
            .field("now", &self.sim.now())
            .field("pending", &self.sim.pending())
            .finish()
    }
}
