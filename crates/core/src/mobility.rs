//! Movement models driving the epoch-versioned medium.
//!
//! A [`MobilityConfig`] on a scenario makes station positions functions of
//! time: the world schedules a `TopologyUpdate` event every epoch, asks
//! the model where each station now stands, and commits the moved set to
//! the medium's incremental epoch path
//! ([`Medium::commit_epoch`](dot11_phy::Medium::commit_epoch)). Everything
//! here is a pure, seeded function of the scenario — two runs of the same
//! mobile scenario are bit-identical, and (asserted by the identity
//! suite) indistinguishable from re-building the whole medium at every
//! epoch.
//!
//! Two models, matching the mobile ad hoc literature the paper's
//! related-work axis points at:
//!
//! * **random waypoint on the disk** — each station walks at a fixed
//!   speed toward a target drawn area-uniformly on the deployment disk,
//!   drawing the next target the instant it arrives (no pause time). Each
//!   station consumes its own RNG substream (`mobility/<i>`), so the
//!   walk of station *i* is independent of the station count and of
//!   every other model draw.
//! * **linear trace playback** — piecewise-linear interpolation through
//!   `(t, node, x, y)` waypoints loaded from a file, for replaying
//!   externally generated mobility (ns-2 style setdest output, measured
//!   GPS tracks) under this stack.

use desim::{SimDuration, SimRng};
use dot11_phy::{NodeId, Position};

/// How stations move between epochs.
#[derive(Debug, Clone, PartialEq)]
pub enum MovementModel {
    /// Random waypoint on a disk (no pause time).
    Waypoint {
        /// Walking speed, m/s (every station moves at this speed).
        speed_mps: f64,
        /// Deployment-disk radius, meters. `None` derives it from the
        /// initial positions (the smallest centroid-centered disk that
        /// contains them), which keeps waypoint mobility meaningful on
        /// chains and grids too.
        radius_m: Option<f64>,
    },
    /// Linear playback of an explicit waypoint list (see
    /// [`parse_trace`]). Stations without waypoints never move; before
    /// its first waypoint a station holds its scenario position, after
    /// its last it holds the final one.
    Trace {
        /// The waypoints, in any order (sorted per node internally).
        points: Vec<TracePoint>,
    },
}

/// One `(time, node, position)` sample of a mobility trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// When the node is at this position, relative to the run start.
    pub at: SimDuration,
    /// Which node.
    pub node: NodeId,
    /// Position, meters.
    pub x: f64,
    /// Position, meters.
    pub y: f64,
}

/// Scenario-level mobility: a movement model sampled every `epoch`.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityConfig {
    /// The movement model.
    pub model: MovementModel,
    /// Topology-update period: positions are piecewise-constant between
    /// epoch commits (the standard discrete-epoch mobility approximation;
    /// shrink it to tighten the approximation).
    pub epoch: SimDuration,
    /// Diagnostics/testing: commit every epoch by tearing down and
    /// rebuilding the medium instead of the incremental path. Produces
    /// bit-identical runs (that equivalence *is* the incremental path's
    /// correctness proof) at O(N·degree) per epoch instead of O(moved).
    pub rebuild_epochs: bool,
}

impl MobilityConfig {
    /// Random-waypoint mobility at `speed_mps` with a 1 s epoch, disk
    /// derived from the initial positions.
    pub fn waypoint(speed_mps: f64) -> MobilityConfig {
        MobilityConfig {
            model: MovementModel::Waypoint {
                speed_mps,
                radius_m: None,
            },
            epoch: SimDuration::from_secs(1),
            rebuild_epochs: false,
        }
    }

    /// Trace-playback mobility with a 1 s epoch.
    pub fn trace(points: Vec<TracePoint>) -> MobilityConfig {
        MobilityConfig {
            model: MovementModel::Trace { points },
            epoch: SimDuration::from_secs(1),
            rebuild_epochs: false,
        }
    }

    /// Sets the epoch period.
    pub fn with_epoch(mut self, epoch: SimDuration) -> MobilityConfig {
        self.epoch = epoch;
        self
    }

    /// Selects rebuild-per-epoch commits (see
    /// [`MobilityConfig::rebuild_epochs`]).
    pub fn with_rebuild_epochs(mut self, rebuild: bool) -> MobilityConfig {
        self.rebuild_epochs = rebuild;
        self
    }
}

/// Parses a mobility trace: one `seconds node x y` record per line,
/// whitespace-separated; blank lines and `#` comments ignored.
///
/// # Example
///
/// ```
/// use dot11_adhoc::mobility::parse_trace;
/// let points = parse_trace("# t node x y\n0.0 1 10.0 0.0\n2.5 1 60.0 0.0\n").unwrap();
/// assert_eq!(points.len(), 2);
/// assert_eq!(points[1].at.as_micros(), 2_500_000);
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TracePoint>, String> {
    let mut points = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let mut field = |what: &str| {
            fields
                .next()
                .ok_or_else(|| format!("trace line {}: missing {what}", ln + 1))
        };
        let at: f64 = field("time")?
            .parse()
            .map_err(|e| format!("trace line {}: bad time: {e}", ln + 1))?;
        let node: u32 = field("node id")?
            .parse()
            .map_err(|e| format!("trace line {}: bad node id: {e}", ln + 1))?;
        let x: f64 = field("x")?
            .parse()
            .map_err(|e| format!("trace line {}: bad x: {e}", ln + 1))?;
        let y: f64 = field("y")?
            .parse()
            .map_err(|e| format!("trace line {}: bad y: {e}", ln + 1))?;
        if !(at >= 0.0 && at.is_finite()) {
            return Err(format!(
                "trace line {}: time must be finite and >= 0",
                ln + 1
            ));
        }
        if !x.is_finite() || !y.is_finite() {
            return Err(format!("trace line {}: coordinates must be finite", ln + 1));
        }
        points.push(TracePoint {
            at: SimDuration::from_nanos((at * 1e9).round() as u64),
            node: NodeId(node),
            x,
            y,
        });
    }
    Ok(points)
}

/// One station's current random-waypoint leg.
#[derive(Debug, Clone, Copy)]
struct Leg {
    /// Where the leg ends.
    target: Position,
}

/// The runtime form of a [`MovementModel`]: per-station state plus the
/// sampled-position query the world's epoch handler drives.
#[derive(Debug)]
pub(crate) struct MobilityEngine {
    model: ModelState,
    /// Simulated time the engine last advanced to (waypoint walks are
    /// integrated leg by leg from here).
    advanced_to: SimDuration,
}

#[derive(Debug)]
enum ModelState {
    Waypoint {
        speed: f64,
        center: Position,
        radius: f64,
        /// Per-station leg + RNG substream (`mobility/<i>` of the
        /// scenario's mobility stream — stable across epochs, untouched
        /// by every other consumer of the run seed).
        legs: Vec<(Leg, SimRng)>,
    },
    Trace {
        /// Per-node waypoint tracks, each sorted by time (stable sort:
        /// duplicate timestamps keep file order, last one wins at the
        /// sample instant).
        tracks: Vec<Vec<(SimDuration, Position)>>,
    },
}

impl MobilityEngine {
    /// Builds the runtime model over the scenario's initial positions.
    /// `rng` is the run's dedicated mobility stream.
    pub(crate) fn new(
        config: &MobilityConfig,
        positions: &[Position],
        rng: &SimRng,
    ) -> MobilityEngine {
        let model = match &config.model {
            MovementModel::Waypoint {
                speed_mps,
                radius_m,
            } => {
                let n = positions.len().max(1) as f64;
                let center = Position {
                    x: positions.iter().map(|p| p.x).sum::<f64>() / n,
                    y: positions.iter().map(|p| p.y).sum::<f64>() / n,
                };
                let radius = radius_m.unwrap_or_else(|| {
                    positions
                        .iter()
                        .map(|p| distance(*p, center))
                        .fold(0.0_f64, f64::max)
                        .max(1.0)
                });
                let legs = positions
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let mut sub = rng.substream(format!("mobility/{i}").as_bytes());
                        let target = draw_on_disk(&mut sub, center, radius);
                        (Leg { target }, sub)
                    })
                    .collect();
                ModelState::Waypoint {
                    speed: *speed_mps,
                    center,
                    radius,
                    legs,
                }
            }
            MovementModel::Trace { points } => {
                let mut tracks: Vec<Vec<(SimDuration, Position)>> =
                    vec![Vec::new(); positions.len()];
                for p in points {
                    if let Some(track) = tracks.get_mut(p.node.index()) {
                        track.push((p.at, Position { x: p.x, y: p.y }));
                    }
                }
                for track in &mut tracks {
                    track.sort_by_key(|(t, _)| *t);
                }
                ModelState::Trace { tracks }
            }
        };
        MobilityEngine {
            model,
            advanced_to: SimDuration::ZERO,
        }
    }

    /// Advances the model to `now` and pushes a `(node, new position)`
    /// move for every station whose position actually changed (bitwise).
    /// `positions` are the medium's current (pre-epoch) positions.
    pub(crate) fn advance(
        &mut self,
        now: SimDuration,
        positions: &[Position],
        moves: &mut Vec<(NodeId, Position)>,
    ) {
        let dt = now.saturating_sub(self.advanced_to).as_secs_f64();
        self.advanced_to = now;
        match &mut self.model {
            ModelState::Waypoint {
                speed,
                center,
                radius,
                legs,
            } => {
                if *speed <= 0.0 || dt <= 0.0 {
                    return;
                }
                for (i, (leg, rng)) in legs.iter_mut().enumerate() {
                    let mut at = positions[i];
                    let mut travel = *speed * dt;
                    // Walk whole legs until the travel budget runs out;
                    // each arrival draws the next waypoint immediately.
                    loop {
                        let to_target = distance(at, leg.target);
                        if to_target > travel {
                            let f = travel / to_target;
                            at = Position {
                                x: at.x + (leg.target.x - at.x) * f,
                                y: at.y + (leg.target.y - at.y) * f,
                            };
                            break;
                        }
                        travel -= to_target;
                        at = leg.target;
                        leg.target = draw_on_disk(rng, *center, *radius);
                        if travel <= 0.0 {
                            break;
                        }
                    }
                    push_if_moved(moves, i, positions[i], at);
                }
            }
            ModelState::Trace { tracks } => {
                for (i, track) in tracks.iter().enumerate() {
                    if track.is_empty() {
                        continue;
                    }
                    let at = sample_track(track, positions[i], now);
                    push_if_moved(moves, i, positions[i], at);
                }
            }
        }
    }
}

/// Area-uniform waypoint draw on the disk (`r = R·√u` — same sampling as
/// [`ScenarioBuilder::random_disk`](crate::ScenarioBuilder::random_disk)).
fn draw_on_disk(rng: &mut SimRng, center: Position, radius: f64) -> Position {
    let r = radius * rng.gen_f64().sqrt();
    let theta = 2.0 * std::f64::consts::PI * rng.gen_f64();
    Position {
        x: center.x + r * theta.cos(),
        y: center.y + r * theta.sin(),
    }
}

fn distance(a: Position, b: Position) -> f64 {
    let (dx, dy) = (a.x - b.x, a.y - b.y);
    (dx * dx + dy * dy).sqrt()
}

fn push_if_moved(moves: &mut Vec<(NodeId, Position)>, i: usize, from: Position, to: Position) {
    if from.x.to_bits() != to.x.to_bits() || from.y.to_bits() != to.y.to_bits() {
        moves.push((NodeId(i as u32), to));
    }
}

/// Piecewise-linear position at `now` on a sorted track. `fallback` is
/// the station's scenario position (held before the first waypoint).
fn sample_track(
    track: &[(SimDuration, Position)],
    fallback: Position,
    now: SimDuration,
) -> Position {
    // Index of the first waypoint strictly after `now`.
    let after = track.partition_point(|(t, _)| *t <= now);
    match (after.checked_sub(1).map(|i| track[i]), track.get(after)) {
        (None, Some(_)) => fallback,
        (Some((_, p)), None) => p,
        (Some((t0, p0)), Some(&(t1, p1))) => {
            let span = (t1 - t0).as_secs_f64();
            if span <= 0.0 {
                return p0;
            }
            let f = (now - t0).as_secs_f64() / span;
            Position {
                x: p0.x + (p1.x - p0.x) * f,
                y: p0.y + (p1.y - p0.y) * f,
            }
        }
        (None, None) => unreachable!("empty tracks are skipped by the caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(xs: &[f64]) -> Vec<Position> {
        xs.iter().map(|&x| Position::on_line(x)).collect()
    }

    #[test]
    fn parse_trace_accepts_comments_and_rejects_garbage() {
        let points = parse_trace("# header\n\n0 0 1.5 -2.5 # inline\n1.25 3 0 0\n").unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].node, NodeId(0));
        assert_eq!(points[0].y, -2.5);
        assert_eq!(points[1].at, SimDuration::from_nanos(1_250_000_000));
        assert!(parse_trace("0 0 1.5").unwrap_err().contains("missing y"));
        assert!(parse_trace("x 0 1 2").unwrap_err().contains("bad time"));
        assert!(parse_trace("-1 0 1 2").unwrap_err().contains(">= 0"));
        assert!(parse_trace("0 0 inf 2").unwrap_err().contains("finite"));
    }

    #[test]
    fn trace_playback_interpolates_linearly() {
        let positions = line(&[0.0, 100.0]);
        let cfg = MobilityConfig::trace(parse_trace("1 1 100 0\n3 1 300 40\n").unwrap());
        let rng = SimRng::from_seed(1);
        let mut eng = MobilityEngine::new(&cfg, &positions, &rng);
        let mut moves = Vec::new();
        // Before the first waypoint: held at the scenario position.
        eng.advance(SimDuration::from_millis(500), &positions, &mut moves);
        assert!(moves.is_empty(), "{moves:?}");
        // Midway between the waypoints: linear interpolation.
        eng.advance(SimDuration::from_secs(2), &positions, &mut moves);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].0, NodeId(1));
        assert_eq!((moves[0].1.x, moves[0].1.y), (200.0, 20.0));
        // Past the last waypoint: parked there.
        moves.clear();
        eng.advance(SimDuration::from_secs(50), &positions, &mut moves);
        assert_eq!((moves[0].1.x, moves[0].1.y), (300.0, 40.0));
    }

    #[test]
    fn waypoint_walk_is_deterministic_and_speed_bounded() {
        let positions = line(&[0.0, 50.0, 100.0, 150.0]);
        let cfg = MobilityConfig::waypoint(10.0);
        let rng = SimRng::from_seed(9).substream(b"mobility");
        let mut a = MobilityEngine::new(&cfg, &positions, &rng);
        let mut b = MobilityEngine::new(&cfg, &positions, &rng);
        let mut pos_a = positions.clone();
        let mut pos_b = positions.clone();
        for step in 1..=20u64 {
            let now = SimDuration::from_millis(step * 500);
            for (eng, pos) in [(&mut a, &mut pos_a), (&mut b, &mut pos_b)] {
                let mut moves = Vec::new();
                eng.advance(now, pos, &mut moves);
                for (node, p) in moves {
                    // 10 m/s over 0.5 s: never more than 5 m (+ε) per step.
                    assert!(distance(pos[node.index()], p) <= 5.0 + 1e-9);
                    pos[node.index()] = p;
                }
            }
            for (pa, pb) in pos_a.iter().zip(&pos_b) {
                assert_eq!(pa.x.to_bits(), pb.x.to_bits());
                assert_eq!(pa.y.to_bits(), pb.y.to_bits());
            }
        }
        // Everybody actually went somewhere.
        for (p0, p) in positions.iter().zip(&pos_a) {
            assert!(distance(*p0, *p) > 0.0);
        }
    }

    #[test]
    fn waypoint_disk_derives_from_initial_positions() {
        let positions = line(&[0.0, 1_000.0]);
        let cfg = MobilityConfig::waypoint(400.0);
        let rng = SimRng::from_seed(4).substream(b"mobility");
        let mut eng = MobilityEngine::new(&cfg, &positions, &rng);
        let mut pos = positions.clone();
        let center = Position::on_line(500.0);
        for step in 1..=40u64 {
            let mut moves = Vec::new();
            eng.advance(SimDuration::from_secs(step), &pos, &mut moves);
            for (node, p) in moves {
                pos[node.index()] = p;
            }
            for p in &pos {
                // Derived disk: centroid (500, 0), radius 500. Walkers
                // stay on it (legs connect points of a convex set).
                assert!(distance(*p, center) <= 500.0 + 1e-9);
            }
        }
    }
}
