//! One module per table/figure of the paper.
//!
//! Every experiment function returns structured rows; the `repro` binary
//! renders them as text, the integration tests assert their shape against
//! the paper, and the benches in `dot11-bench` time their regeneration.
//!
//! | paper artifact | function |
//! |---|---|
//! | Table 1 | [`crate::analytic::Dot11bParams::table1`] |
//! | Table 2 | [`crate::analytic::table2`] |
//! | Figure 1 | [`crate::analytic::overhead_breakdown`] |
//! | Figure 2 | [`figure2::figure2`] |
//! | Figure 3 | [`figure3::figure3`] |
//! | Figure 4 | [`figure4::figure4`] |
//! | Table 3 | [`table3::table3`] |
//! | Figures 6–7 | [`four_station::figure7`] |
//! | Figures 8–9 | [`four_station::figure9`] |
//! | Figures 10–11 | [`four_station::figure11`] |
//! | Figure 12 | [`four_station::figure12`] |
//!
//! Extensions (not in the paper, motivated by its §1–2):
//! [`arf::arf_sweep`] compares dynamic rate switching against the fixed
//! rates; [`multihop::chain_throughput`] composes the single-hop
//! building block into forwarding chains; [`hidden::hidden_triple`] is
//! the classic hidden-terminal collapse-and-recovery study.

pub mod arf;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod four_station;
pub mod hidden;
pub mod multihop;
pub mod table3;

use desim::SimDuration;

/// Shared run parameters for the simulation-backed experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Master random seed.
    pub seed: u64,
    /// Length of each simulated measurement session.
    pub duration: SimDuration,
    /// Warm-up excluded from throughput windows.
    pub warmup: SimDuration,
    /// Worker threads per run: 1 (the default) runs serial, more selects
    /// the sharded executor ([`crate::World::run_sharded`]) — results
    /// are byte-identical either way.
    pub threads: usize,
}

impl ExpConfig {
    /// Full-fidelity settings used by the `repro` binary: 20 s sessions.
    ///
    /// Seed 105 is the documented reference channel state: like the paper's
    /// own single measurement days, the four-station results depend on
    /// the session's channel draw (see EXPERIMENTS.md §sensitivity).
    pub fn full() -> ExpConfig {
        ExpConfig {
            seed: 105,
            duration: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(2),
            threads: 1,
        }
    }

    /// Reduced settings for tests and benches: 4 s sessions. The paper's
    /// qualitative shapes are stable well below this.
    pub fn quick() -> ExpConfig {
        ExpConfig {
            seed: 105,
            duration: SimDuration::from_secs(4),
            warmup: SimDuration::from_millis(500),
            threads: 1,
        }
    }

    /// The same configuration with another seed.
    pub fn with_seed(mut self, seed: u64) -> ExpConfig {
        self.seed = seed;
        self
    }

    /// The same configuration with another worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> ExpConfig {
        self.threads = threads.max(1);
        self
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig::full()
    }
}
