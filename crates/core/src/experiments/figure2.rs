//! Figure 2: theoretical maximum vs measured TCP/UDP throughput.
//!
//! Two stations well inside transmission range at 11 Mb/s with 512-byte
//! application packets, with and without RTS/CTS. The paper's findings:
//! UDP measures close to the analytic maximum; TCP measures clearly
//! below it because every data segment also costs TCP-ACK transmissions
//! on the same channel.

use dot11_net::FlowId;
use dot11_phy::PhyRate;

use crate::analytic::{max_throughput_eq, AccessScheme};
use crate::scenario::{ScenarioBuilder, Traffic};

use super::ExpConfig;

/// One bar group of Figure 2.
#[derive(Debug, Clone, Copy)]
pub struct Figure2Row {
    /// Access scheme (basic / RTS-CTS).
    pub scheme: AccessScheme,
    /// Analytic maximum throughput (Eq. (1)/(2)), Mb/s.
    pub ideal_mbps: f64,
    /// Measured saturated-UDP throughput, Mb/s.
    pub udp_mbps: f64,
    /// Measured bulk-TCP throughput, Mb/s.
    pub tcp_mbps: f64,
}

/// The per-figure experiment: `m` = 512 B at 11 Mb/s, both schemes.
pub fn figure2(cfg: ExpConfig) -> Vec<Figure2Row> {
    figure2_at(cfg, PhyRate::R11, 512)
}

/// The generalized experiment the paper alludes to ("similar results…
/// when the NIC data rate is set to 1, 2 or 5.5 Mbps").
pub fn figure2_at(cfg: ExpConfig, rate: PhyRate, payload: u32) -> Vec<Figure2Row> {
    [AccessScheme::Basic, AccessScheme::RtsCts]
        .into_iter()
        .map(|scheme| {
            let rts = scheme == AccessScheme::RtsCts;
            let udp = measure(
                cfg,
                rate,
                rts,
                Traffic::SaturatedUdp {
                    payload_bytes: payload,
                    backlog: 10,
                },
            );
            let tcp = measure(cfg, rate, rts, Traffic::BulkTcp { mss: payload });
            Figure2Row {
                scheme,
                ideal_mbps: max_throughput_eq(payload, rate, scheme),
                udp_mbps: udp,
                tcp_mbps: tcp,
            }
        })
        .collect()
}

fn measure(cfg: ExpConfig, rate: PhyRate, rts: bool, traffic: Traffic) -> f64 {
    let report = ScenarioBuilder::new(rate)
        .line(&[0.0, 10.0])
        .rts(rts)
        .seed(cfg.seed)
        .duration(cfg.duration)
        .warmup(cfg.warmup)
        .threads(cfg.threads)
        .flow(0, 1, traffic)
        .run();
    report.flow(FlowId(0)).throughput_kbps / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_close_to_ideal_tcp_below() {
        let rows = figure2(ExpConfig::quick());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // UDP within 10% of the analytic maximum.
            let udp_gap = (row.udp_mbps - row.ideal_mbps).abs() / row.ideal_mbps;
            assert!(
                udp_gap < 0.10,
                "{:?}: UDP {udp_gap:.3} off ideal",
                row.scheme
            );
            // TCP at least 15% below UDP (TCP-ACK airtime cost).
            assert!(
                row.tcp_mbps < row.udp_mbps * 0.85,
                "{:?}: TCP {:.3} not below UDP {:.3}",
                row.scheme,
                row.tcp_mbps,
                row.udp_mbps
            );
            assert!(row.tcp_mbps > 0.5, "TCP should still move data");
        }
        // RTS/CTS costs throughput for both transports.
        assert!(rows[1].udp_mbps < rows[0].udp_mbps);
        assert!(rows[1].tcp_mbps < rows[0].tcp_mbps);
    }
}
