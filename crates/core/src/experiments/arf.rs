//! Extension experiment: ARF dynamic rate switching vs the fixed rates.
//!
//! The paper's §2 notes that real 802.11b cards "may implement a dynamic
//! rate switching with the objective of improving performance", but the
//! test-bed pinned the NIC rate to isolate per-rate behaviour. This
//! experiment completes the picture: a distance sweep comparing classic
//! ARF (Kamerman & Monteban) against each fixed rate, showing that ARF
//! tracks the envelope of the fixed-rate curves — it rides 11 Mb/s near
//! the transmitter and degrades through 5.5/2/1 Mb/s where the paper's
//! Figure 3 waterfalls say those rates stop working.

use dot11_net::FlowId;
use dot11_phy::PhyRate;

use crate::scenario::{ScenarioBuilder, Traffic};

use super::ExpConfig;

/// One distance point of the ARF sweep.
#[derive(Debug, Clone, Copy)]
pub struct ArfSweepRow {
    /// Link distance, m.
    pub distance_m: f64,
    /// Saturated-UDP throughput with ARF enabled, kb/s.
    pub arf_kbps: f64,
    /// The rate ARF was using when the run ended.
    pub arf_final_rate: PhyRate,
    /// Throughput of the best *fixed* rate at this distance, kb/s.
    pub best_fixed_kbps: f64,
    /// Which fixed rate was best.
    pub best_fixed_rate: PhyRate,
}

/// The default sweep distances, m.
pub const DISTANCES_M: [f64; 8] = [10.0, 25.0, 45.0, 60.0, 80.0, 95.0, 110.0, 125.0];

/// Sessions averaged per (distance, mode) point: every session is a
/// fresh channel draw, as in the Figure 3 sweeps.
pub const SESSIONS_PER_POINT: u64 = 3;

/// Runs the ARF-vs-fixed sweep. ARF starts from 2 Mb/s so both upward
/// probing (near) and downward fallback (far) are exercised.
pub fn arf_sweep(cfg: ExpConfig, distances: &[f64]) -> Vec<ArfSweepRow> {
    distances
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let (arf_kbps, arf_final_rate) = measure(cfg, PhyRate::R2, d, true, i as u64);
            let (best_fixed_kbps, best_fixed_rate) = PhyRate::ALL
                .iter()
                .map(|&r| {
                    let (kbps, _) = measure(cfg, r, d, false, i as u64);
                    (kbps, r)
                })
                .max_by(|a, b| a.0.total_cmp(&b.0))
                .expect("four rates probed");
            ArfSweepRow {
                distance_m: d,
                arf_kbps,
                arf_final_rate,
                best_fixed_kbps,
                best_fixed_rate,
            }
        })
        .collect()
}

/// Mean throughput over the per-point sessions and the last session's
/// closing rate. ARF and the fixed rates see the *same* per-session
/// channel draws, so the comparison is paired.
fn measure(cfg: ExpConfig, rate: PhyRate, distance: f64, arf: bool, salt: u64) -> (f64, PhyRate) {
    let mut sum = 0.0;
    let mut final_rate = rate;
    for session in 0..SESSIONS_PER_POINT {
        let report = ScenarioBuilder::new(rate)
            .line(&[0.0, distance])
            .arf(arf)
            .seed(
                cfg.seed
                    .wrapping_mul(7321)
                    .wrapping_add(salt * SESSIONS_PER_POINT + session),
            )
            .threads(cfg.threads)
            .duration(cfg.duration)
            .warmup(cfg.warmup)
            .flow(
                0,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            )
            .run();
        sum += report.flow(FlowId(0)).throughput_kbps;
        final_rate = report.nodes[0].final_data_rate;
    }
    (sum / SESSIONS_PER_POINT as f64, final_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn arf_tracks_the_fixed_rate_envelope() {
        let cfg = ExpConfig {
            duration: SimDuration::from_secs(4),
            warmup: SimDuration::from_millis(500),
            ..ExpConfig::quick()
        };
        let rows = arf_sweep(cfg, &[10.0, 60.0, 120.0]);
        // Near: ARF must climb from its 2 Mb/s start to 11 Mb/s and land
        // within a factor of the best fixed rate.
        let near = &rows[0];
        assert_eq!(near.best_fixed_rate, PhyRate::R11);
        assert_eq!(
            near.arf_final_rate,
            PhyRate::R11,
            "ARF should climb at 10 m"
        );
        assert!(
            near.arf_kbps > near.best_fixed_kbps * 0.75,
            "ARF {:.0} vs best fixed {:.0} at 10 m",
            near.arf_kbps,
            near.best_fixed_kbps
        );
        // Mid: 11 Mb/s is dead at 60 m; ARF must avoid it.
        let mid = &rows[1];
        assert!(
            mid.arf_final_rate <= PhyRate::R5_5,
            "ARF at 60 m picked {}",
            mid.arf_final_rate
        );
        assert!(mid.arf_kbps > mid.best_fixed_kbps * 0.4);
        // Far: only the basic rates survive; ARF must be on one of them
        // and deliver a meaningful share of what the best fixed rate gets
        // (which may itself be small if the sessions drew bad channels).
        let far = &rows[2];
        assert!(
            far.arf_final_rate <= PhyRate::R2,
            "ARF at 120 m picked {}",
            far.arf_final_rate
        );
        assert!(
            far.arf_kbps > far.best_fixed_kbps * 0.25,
            "ARF {:.1} vs best fixed {:.1} at 120 m",
            far.arf_kbps,
            far.best_fixed_kbps
        );
    }
}
