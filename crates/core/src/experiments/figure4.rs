//! Figure 4: the 1 Mb/s transmission range on two different days.
//!
//! The paper measured the same loss-vs-distance sweep on 2002-12-06 and
//! 2002-12-09 and found visibly different ranges ("the variability of the
//! transmission ranges depending on the weather conditions"). We rerun
//! the 1 Mb/s sweep under the two [`DayProfile`]s.

use dot11_phy::{DayProfile, PhyRate};

use crate::range::LossCurve;

use super::figure3::loss_curve;
use super::ExpConfig;

/// The probed distances of Figure 4, meters (the paper sweeps 50–160 m
/// for this figure).
pub const DISTANCES_M: [f64; 12] = [
    50.0, 60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0, 130.0, 140.0, 150.0, 160.0,
];

/// One curve of Figure 4.
#[derive(Debug, Clone)]
pub struct DayLossCurve {
    /// Day label (e.g. `"2002-12-06 (clear)"`).
    pub day: String,
    /// Loss vs distance at 1 Mb/s.
    pub curve: LossCurve,
}

/// Runs Figure 4: the 1 Mb/s sweep on both measurement days.
pub fn figure4(cfg: ExpConfig) -> Vec<DayLossCurve> {
    [DayProfile::clear(), DayProfile::rainy()]
        .into_iter()
        .map(|day| DayLossCurve {
            day: day.name.clone(),
            curve: loss_curve(cfg, PhyRate::R1, day, &DISTANCES_M),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::estimate_crossing;
    use desim::SimDuration;

    #[test]
    fn damp_day_shortens_the_range() {
        let cfg = ExpConfig {
            duration: SimDuration::from_secs(6),
            ..ExpConfig::quick()
        };
        let curves = figure4(cfg);
        assert_eq!(curves.len(), 2);
        let clear = estimate_crossing(&curves[0].curve, 0.5).expect("clear day crosses");
        let damp = estimate_crossing(&curves[1].curve, 0.5).expect("damp day crosses");
        assert!(
            damp < clear - 5.0,
            "damp-day range {damp:.0} m should sit visibly below clear-day {clear:.0} m"
        );
        // Both in the paper's 1 Mb/s band.
        assert!(
            (95.0..140.0).contains(&clear),
            "clear-day range {clear:.0} m"
        );
        assert!((80.0..130.0).contains(&damp), "damp-day range {damp:.0} m");
    }
}
