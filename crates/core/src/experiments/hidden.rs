//! The hidden-terminal triple: two senders that cannot hear each other,
//! one receiver that hears both.
//!
//! Three stations on a line at 2 Mb/s: A at 0 m, B at 95 m, C at 190 m,
//! under the calibrated outdoor path loss with shadowing frozen
//! ([`DayProfile::still`]) so the geometry is exact. B is inside both
//! senders' ~104 m data range; A and C sit ~190 m apart, far beyond the
//! ~150 m carrier-sense range, so each is deaf to the other's
//! transmissions. Both senders push saturated UDP at B.
//!
//! Under basic access, A's and C's data frames collide at B for their
//! full airtime and throughput collapses; with RTS/CTS enabled, B's CTS
//! sets the NAV at whichever sender lost the handshake and only the
//! short RTS frames collide — the classic collapse-and-recovery result
//! the mechanism was designed for. `repro analyze` attributes the
//! collisions via the trace path; the sweep layer exposes the scheme
//! (and any MAC-parameter grid) as axes over this scenario.

use dot11_phy::{DayProfile, PhyRate};

use crate::analytic::AccessScheme;
use crate::scenario::{Scenario, ScenarioBuilder, Traffic};

use super::ExpConfig;

/// Station x-coordinates, meters: both senders in range of the middle
/// receiver, mutually hidden from each other.
pub const HIDDEN_TRIPLE_POSITIONS: [f64; 3] = [0.0, 95.0, 190.0];

/// Builds the hidden-terminal triple without running it.
///
/// `payload_bytes` is the UDP payload per datagram — the paper's
/// test-bed payloads (512 B and up) all reproduce the collapse; larger
/// data frames widen the vulnerable window and deepen it.
pub fn hidden_triple(
    cfg: ExpConfig,
    rate: PhyRate,
    scheme: AccessScheme,
    payload_bytes: u32,
) -> Scenario {
    let traffic = Traffic::SaturatedUdp {
        payload_bytes,
        backlog: 10,
    };
    ScenarioBuilder::new(rate)
        .line(&HIDDEN_TRIPLE_POSITIONS)
        .day(DayProfile::still())
        .rts(scheme == AccessScheme::RtsCts)
        .seed(cfg.seed)
        .duration(cfg.duration)
        .warmup(cfg.warmup)
        .threads(cfg.threads)
        .flow(0, 1, traffic)
        .flow(2, 1, traffic)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn triple_is_built_with_both_flows_aimed_at_the_middle() {
        let cfg = ExpConfig {
            seed: 5,
            duration: SimDuration::from_secs(1),
            warmup: SimDuration::from_millis(100),
            threads: 1,
        };
        let s = hidden_triple(cfg, PhyRate::R2, AccessScheme::Basic, 512);
        assert_eq!(s.positions.len(), 3);
        assert_eq!(s.flows.len(), 2);
        assert!(!s.mac.rts_enabled);
        let r = hidden_triple(cfg, PhyRate::R2, AccessScheme::RtsCts, 512);
        assert!(r.mac.rts_enabled);
    }
}
