//! Figure 3: packet-loss rate vs distance, one curve per data rate.
//!
//! Two stations, a paced CBR/UDP probe stream, distance swept from 20 m
//! to 150 m. The datagram loss rate (MAC retries included, as in the real
//! test-bed) rises from ~0 to 1 across each rate's transmission range:
//! first the 11 Mb/s curve (~30 m), last the 1 Mb/s curve (~120 m).

use desim::SimDuration;
use dot11_net::FlowId;
use dot11_phy::{DayProfile, PhyRate};

use crate::range::LossCurve;
use crate::scenario::{ScenarioBuilder, Traffic};

use super::ExpConfig;

/// The probed distances of the paper's Figure 3, meters.
pub const DISTANCES_M: [f64; 14] = [
    20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0, 130.0, 140.0, 150.0,
];

/// One curve of Figure 3.
#[derive(Debug, Clone)]
pub struct RateLossCurve {
    /// The NIC data rate.
    pub rate: PhyRate,
    /// Loss vs distance.
    pub curve: LossCurve,
}

/// Runs the full Figure 3 sweep on the clear-day profile.
pub fn figure3(cfg: ExpConfig) -> Vec<RateLossCurve> {
    PhyRate::ALL
        .iter()
        .map(|&rate| RateLossCurve {
            rate,
            curve: loss_curve(cfg, rate, DayProfile::clear(), &DISTANCES_M),
        })
        .collect()
}

/// Probe sessions averaged per distance point. The paper repeated its
/// outdoor sessions; averaging a few channel draws keeps the curves
/// monotone enough for crossing estimation while preserving the
/// session-to-session scatter visible in the paper's plots.
pub const SESSIONS_PER_POINT: u64 = 3;

/// Measures the loss-vs-distance curve for one rate and day profile.
///
/// Each distance is probed by [`SESSIONS_PER_POINT`] independent sessions
/// (fresh channel draw each, like the paper's separate measurement days):
/// a 512-byte CBR datagram every 60 ms for the session duration; the
/// reported loss is the mean across sessions.
pub fn loss_curve(cfg: ExpConfig, rate: PhyRate, day: DayProfile, distances: &[f64]) -> LossCurve {
    let mut curve = LossCurve::new();
    for (i, &d) in distances.iter().enumerate() {
        let mut loss_sum = 0.0;
        for session in 0..SESSIONS_PER_POINT {
            let report = ScenarioBuilder::new(rate)
                .line(&[0.0, d])
                .day(day.clone())
                // Distinct seed per (distance, session) so shadowing
                // re-draws, as a fresh outdoor session would.
                .seed(
                    cfg.seed
                        .wrapping_mul(1009)
                        .wrapping_add(i as u64 * SESSIONS_PER_POINT + session),
                )
                .threads(cfg.threads)
                .duration(cfg.duration)
                .warmup(SimDuration::ZERO)
                .flow(
                    0,
                    1,
                    Traffic::CbrUdp {
                        payload_bytes: 512,
                        interval: SimDuration::from_millis(60),
                        limit: None,
                    },
                )
                .run();
            loss_sum += report.flow(FlowId(0)).loss_rate;
        }
        curve.push(d, loss_sum / SESSIONS_PER_POINT as f64);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::estimate_crossing;

    #[test]
    fn curves_transition_in_rate_order() {
        let cfg = ExpConfig {
            duration: SimDuration::from_secs(6),
            ..ExpConfig::quick()
        };
        let curves = figure3(cfg);
        assert_eq!(curves.len(), 4);
        let crossing = |rate: PhyRate| {
            let c = curves
                .iter()
                .find(|c| c.rate == rate)
                .expect("rate present");
            estimate_crossing(&c.curve, 0.5)
        };
        let r11 = crossing(PhyRate::R11).expect("11 Mb/s dies within 150 m");
        let r55 = crossing(PhyRate::R5_5).expect("5.5 Mb/s dies within 150 m");
        let r2 = crossing(PhyRate::R2).expect("2 Mb/s dies within 150 m");
        let r1 = crossing(PhyRate::R1).expect("1 Mb/s dies within 150 m");
        assert!(
            r11 < r55 && r55 < r2 && r2 < r1,
            "ranges {r11:.0} {r55:.0} {r2:.0} {r1:.0}"
        );
        // Near-field loss is small, far-field loss is near-total.
        for c in &curves {
            assert!(
                c.curve.first_loss().expect("has points") < 0.35,
                "{}: lossy at 20 m",
                c.rate
            );
        }
        let far = curves
            .iter()
            .find(|c| c.rate == PhyRate::R11)
            .expect("11 Mb/s curve")
            .curve
            .last_loss()
            .expect("has points");
        assert!(far > 0.95, "11 Mb/s at 150 m should be dead, loss {far}");
    }
}
