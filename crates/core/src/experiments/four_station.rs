//! Figures 5–12: the four-station, two-session experiments.
//!
//! Four stations on a line (Figure 5): Session 1 flows S1→S2, Session 2
//! flows S3→S4, both saturated, with the middle distance d(2,3) chosen
//! per configuration:
//!
//! * **Figures 6–7** — 11 Mb/s, d = 25 / 80–85 / 25 m. S1–S3 are far
//!   outside the 11 Mb/s data range yet inside carrier-sense range, and
//!   S2 sits inside the interference range of S4's (2 Mb/s) ACKs: the
//!   sessions interact strongly and asymmetrically.
//! * **Figures 8–9** — 2 Mb/s, d = 25 / 90–95 / 25 m. All stations share
//!   a more uniform view of the channel; the system balances.
//! * **Figures 10–12** — the symmetric scenario, d = 25 / 60–65 / 25 m,
//!   at 11 Mb/s (Fig. 11) and 2 Mb/s (Fig. 12).
//!
//! The paper's figure legends flip between "3→4" and "4→3" for the second
//! session; the reference scenario (Figure 5) has data flowing S3→S4 and
//! that is what we simulate throughout.

use dot11_net::FlowId;
use dot11_phy::PhyRate;

use crate::analytic::AccessScheme;
use crate::scenario::{ScenarioBuilder, Traffic};
use crate::stats::RunReport;

use super::ExpConfig;

/// Transport used by both sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionTransport {
    /// Saturated CBR over UDP.
    Udp,
    /// Asymptotic ftp over TCP.
    Tcp,
}

impl std::fmt::Display for SessionTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionTransport::Udp => write!(f, "UDP"),
            SessionTransport::Tcp => write!(f, "TCP"),
        }
    }
}

/// The four-station topologies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FourStationLayout {
    /// Figure 6: 25 / 82.5 / 25 m at 11 Mb/s.
    AsymmetricAt11,
    /// Figure 8: 25 / 92.5 / 25 m at 2 Mb/s.
    AsymmetricAt2,
    /// Figure 10: 25 / 62.5 / 25 m (run at either rate).
    Symmetric,
}

impl FourStationLayout {
    /// Station x-coordinates, meters.
    pub fn positions(self) -> [f64; 4] {
        let gap = match self {
            FourStationLayout::AsymmetricAt11 => 82.5,
            FourStationLayout::AsymmetricAt2 => 92.5,
            FourStationLayout::Symmetric => 62.5,
        };
        [0.0, 25.0, 25.0 + gap, 50.0 + gap]
    }
}

/// One bar pair of a four-station figure.
#[derive(Debug, Clone, Copy)]
pub struct FourStationCell {
    /// Transport used by both sessions.
    pub transport: SessionTransport,
    /// Access scheme.
    pub scheme: AccessScheme,
    /// Session 1 (S1→S2) application throughput, kb/s.
    pub session1_kbps: f64,
    /// Session 2 (S3→S4) application throughput, kb/s.
    pub session2_kbps: f64,
}

impl FourStationCell {
    /// Session-2-over-session-1 throughput ratio (∞-safe: returns
    /// `f64::INFINITY` when session 1 starved completely).
    pub fn imbalance(&self) -> f64 {
        if self.session1_kbps <= 0.0 {
            f64::INFINITY
        } else {
            self.session2_kbps / self.session1_kbps
        }
    }
}

/// Runs one four-station configuration: both transports × both schemes.
pub fn four_station(
    cfg: ExpConfig,
    rate: PhyRate,
    layout: FourStationLayout,
) -> Vec<FourStationCell> {
    let mut cells = Vec::with_capacity(4);
    for transport in [SessionTransport::Udp, SessionTransport::Tcp] {
        for scheme in [AccessScheme::Basic, AccessScheme::RtsCts] {
            let report = run_once(cfg, rate, layout, transport, scheme);
            cells.push(FourStationCell {
                transport,
                scheme,
                session1_kbps: report.flow(FlowId(0)).throughput_kbps,
                session2_kbps: report.flow(FlowId(1)).throughput_kbps,
            });
        }
    }
    cells
}

/// Builds the scenario for one four-station cell without running it —
/// callers that want a trace or time-series attach a sink via
/// [`crate::Scenario::run_with`].
pub fn scenario(
    cfg: ExpConfig,
    rate: PhyRate,
    layout: FourStationLayout,
    transport: SessionTransport,
    scheme: AccessScheme,
) -> crate::Scenario {
    let traffic = match transport {
        SessionTransport::Udp => Traffic::SaturatedUdp {
            payload_bytes: 512,
            backlog: 10,
        },
        SessionTransport::Tcp => Traffic::BulkTcp { mss: 512 },
    };
    ScenarioBuilder::new(rate)
        .line(&layout.positions())
        .rts(scheme == AccessScheme::RtsCts)
        .seed(cfg.seed)
        .duration(cfg.duration)
        .warmup(cfg.warmup)
        .threads(cfg.threads)
        .flow(0, 1, traffic)
        .flow(2, 3, traffic)
        .build()
}

fn run_once(
    cfg: ExpConfig,
    rate: PhyRate,
    layout: FourStationLayout,
    transport: SessionTransport,
    scheme: AccessScheme,
) -> RunReport {
    scenario(cfg, rate, layout, transport, scheme).run()
}

/// Figure 7: asymmetric scenario at 11 Mb/s.
pub fn figure7(cfg: ExpConfig) -> Vec<FourStationCell> {
    four_station(cfg, PhyRate::R11, FourStationLayout::AsymmetricAt11)
}

/// Figure 9: asymmetric scenario at 2 Mb/s.
pub fn figure9(cfg: ExpConfig) -> Vec<FourStationCell> {
    four_station(cfg, PhyRate::R2, FourStationLayout::AsymmetricAt2)
}

/// Figure 11: symmetric scenario at 11 Mb/s.
pub fn figure11(cfg: ExpConfig) -> Vec<FourStationCell> {
    four_station(cfg, PhyRate::R11, FourStationLayout::Symmetric)
}

/// Figure 12: symmetric scenario at 2 Mb/s.
pub fn figure12(cfg: ExpConfig) -> Vec<FourStationCell> {
    four_station(cfg, PhyRate::R2, FourStationLayout::Symmetric)
}

/// Convenience: the cell for a given transport and scheme.
pub fn cell(
    cells: &[FourStationCell],
    transport: SessionTransport,
    scheme: AccessScheme,
) -> &FourStationCell {
    cells
        .iter()
        .find(|c| c.transport == transport && c.scheme == scheme)
        .expect("all four cells present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_match_the_papers_geometry() {
        assert_eq!(
            FourStationLayout::AsymmetricAt11.positions(),
            [0.0, 25.0, 107.5, 132.5]
        );
        assert_eq!(
            FourStationLayout::AsymmetricAt2.positions(),
            [0.0, 25.0, 117.5, 142.5]
        );
        assert_eq!(
            FourStationLayout::Symmetric.positions(),
            [0.0, 25.0, 87.5, 112.5]
        );
    }

    #[test]
    fn imbalance_handles_starvation() {
        let c = FourStationCell {
            transport: SessionTransport::Udp,
            scheme: AccessScheme::Basic,
            session1_kbps: 0.0,
            session2_kbps: 100.0,
        };
        assert!(c.imbalance().is_infinite());
    }
}
