//! Table 3: transmission-range estimates per data rate.
//!
//! Distills the Figure 3 sweeps into the paper's range table: the
//! distance at which the datagram loss crosses 50%, for data frames at
//! every rate, plus the control-frame ranges (control frames travel at
//! the basic rates, so their range is the corresponding basic-rate data
//! range — the paper's 90 m / 120 m entries).

use dot11_phy::PhyRate;

use crate::range::estimate_crossing;

use super::figure3::figure3;
use super::ExpConfig;

/// One column of Table 3.
#[derive(Debug, Clone, Copy)]
pub struct Table3Entry {
    /// The NIC data rate.
    pub rate: PhyRate,
    /// Estimated data-frame transmission range, m (`None` = beyond the
    /// 150 m sweep).
    pub data_range_m: Option<f64>,
    /// Estimated control-frame transmission range, m — the range of the
    /// basic rate (`min(rate, 2 Mb/s)`) the NIC uses for RTS/CTS/ACK.
    pub control_range_m: Option<f64>,
}

/// Regenerates Table 3 from the Figure 3 sweeps.
pub fn table3(cfg: ExpConfig) -> Vec<Table3Entry> {
    let curves = figure3(cfg);
    let range = |rate: PhyRate| {
        curves
            .iter()
            .find(|c| c.rate == rate)
            .and_then(|c| estimate_crossing(&c.curve, 0.5))
    };
    PhyRate::ALL
        .iter()
        .map(|&rate| Table3Entry {
            rate,
            data_range_m: range(rate),
            control_range_m: range(rate.control_rate()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn ranges_land_in_the_papers_bands() {
        let cfg = ExpConfig {
            duration: SimDuration::from_secs(6),
            ..ExpConfig::quick()
        };
        let entries = table3(cfg);
        let get = |rate: PhyRate| {
            entries
                .iter()
                .find(|e| e.rate == rate)
                .expect("rate present")
                .data_range_m
                .expect("within sweep")
        };
        // Paper's Table 3 bands, slightly widened for simulation noise.
        assert!(
            (22.0..42.0).contains(&get(PhyRate::R11)),
            "11 Mb/s: {}",
            get(PhyRate::R11)
        );
        assert!(
            (50.0..85.0).contains(&get(PhyRate::R5_5)),
            "5.5 Mb/s: {}",
            get(PhyRate::R5_5)
        );
        assert!(
            (80.0..110.0).contains(&get(PhyRate::R2)),
            "2 Mb/s: {}",
            get(PhyRate::R2)
        );
        assert!(
            (100.0..140.0).contains(&get(PhyRate::R1)),
            "1 Mb/s: {}",
            get(PhyRate::R1)
        );
        // Control range at 11 Mb/s equals the 2 Mb/s data range: much
        // larger than the 11 Mb/s data range (the paper's key point).
        let e11 = entries
            .iter()
            .find(|e| e.rate == PhyRate::R11)
            .expect("11 Mb/s entry");
        let ctrl = e11.control_range_m.expect("control range in sweep");
        let data = e11.data_range_m.expect("data range in sweep");
        assert!(ctrl > 2.0 * data, "control {ctrl:.0} m vs data {data:.0} m");
        // At 1 Mb/s data and control travel identically.
        let e1 = entries
            .iter()
            .find(|e| e.rate == PhyRate::R1)
            .expect("1 Mb/s entry");
        assert_eq!(e1.data_range_m, e1.control_range_m);
    }
}
