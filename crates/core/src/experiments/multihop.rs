//! Extension experiment: multi-hop chains.
//!
//! The paper's introduction motivates multi-hop ad hoc networking and
//! cites Xu & Saadawi's finding that 802.11 struggles in multi-hop use
//! (its refs \[2,3\]); the measurements themselves stay single-hop. This
//! experiment composes the measured single-hop building block into
//! static chains (stations forward over [`dot11_net::StaticRoutes`]) and
//! reproduces the classic result that end-to-end throughput collapses
//! with hop count: every relay competes with its own neighbours for the
//! same channel (intra-flow contention), so a 2-hop chain delivers
//! roughly half and a 3+-hop chain roughly a third of the single-hop
//! rate.

use dot11_net::FlowId;
use dot11_phy::{DayProfile, PhyRate};

use crate::scenario::{ScenarioBuilder, Traffic};

use super::ExpConfig;

/// One chain length of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct MultihopRow {
    /// Number of radio hops between source and sink.
    pub hops: u32,
    /// Saturated-UDP end-to-end throughput, kb/s.
    pub udp_kbps: f64,
    /// Bulk-TCP end-to-end throughput, kb/s.
    pub tcp_kbps: f64,
}

/// Sweeps chain length 1..=`max_hops` at the given rate and hop spacing.
///
/// Uses the still channel: the point is the MAC-level contention
/// structure, not channel luck.
pub fn chain_throughput(
    cfg: ExpConfig,
    rate: PhyRate,
    hop_spacing_m: f64,
    max_hops: u32,
) -> Vec<MultihopRow> {
    (1..=max_hops)
        .map(|hops| MultihopRow {
            hops,
            udp_kbps: run_chain(
                cfg,
                rate,
                hop_spacing_m,
                hops,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 10,
                },
            ),
            tcp_kbps: run_chain(
                cfg,
                rate,
                hop_spacing_m,
                hops,
                Traffic::BulkTcp { mss: 512 },
            ),
        })
        .collect()
}

fn run_chain(
    cfg: ExpConfig,
    rate: PhyRate,
    hop_spacing_m: f64,
    hops: u32,
    traffic: Traffic,
) -> f64 {
    let xs: Vec<f64> = (0..=hops).map(|i| i as f64 * hop_spacing_m).collect();
    let report = ScenarioBuilder::new(rate)
        .line(&xs)
        .day(DayProfile::still())
        .chain_routes()
        .seed(cfg.seed)
        .duration(cfg.duration)
        .warmup(cfg.warmup)
        .threads(cfg.threads)
        .flow(0, hops, traffic)
        .run();
    report.flow(FlowId(0)).throughput_kbps
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn throughput_collapses_with_hop_count() {
        let cfg = ExpConfig {
            duration: SimDuration::from_secs(5),
            warmup: SimDuration::from_secs(1),
            ..ExpConfig::quick()
        };
        let rows = chain_throughput(cfg, PhyRate::R2, 80.0, 3);
        assert_eq!(rows.len(), 3);
        let one = rows[0].udp_kbps;
        let two = rows[1].udp_kbps;
        let three = rows[2].udp_kbps;
        assert!(
            one > 1000.0,
            "single hop should approach the 2 Mb/s bound, got {one:.0}"
        );
        // Classic chain collapse: ~1/2 at two hops, ~1/3 at three.
        assert!(
            (0.30..0.65).contains(&(two / one)),
            "2-hop/1-hop ratio {:.2} ({two:.0}/{one:.0})",
            two / one
        );
        assert!(
            three < two,
            "3-hop {three:.0} should not beat 2-hop {two:.0}"
        );
        assert!(
            three / one > 0.15,
            "3-hop should still flow: {three:.0} vs {one:.0}"
        );
        // TCP survives the chain end to end.
        for r in &rows {
            assert!(
                r.tcp_kbps > 100.0,
                "{}-hop TCP too low: {:.0}",
                r.hops,
                r.tcp_kbps
            );
            assert!(r.tcp_kbps < r.udp_kbps, "{}-hop TCP above UDP?", r.hops);
        }
    }
}
