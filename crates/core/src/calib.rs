//! The calibrated outdoor radio model.
//!
//! The paper's test-bed was an open field with D-Link DWL-650 cards. We
//! calibrate a log-distance model so the simulated per-rate transmission
//! ranges land on the paper's Table 3:
//!
//! | quantity | paper | calibrated model |
//! |---|---|---|
//! | data TX_range @ 11 Mb/s | ~30 m | 30 m |
//! | data TX_range @ 5.5 Mb/s | ~70 m | ~67 m |
//! | data TX_range @ 2 Mb/s | 90–100 m | ~98 m |
//! | data TX_range @ 1 Mb/s | 110–130 m | ~121 m |
//! | control TX_range (2 Mb/s) | 90–120 m | ~98 m |
//! | PCS_range | > all of the above | ~151 m |
//!
//! Derivation: the ranges the paper measures are *datagram* ranges — the
//! MAC retries each frame up to 7 times, so a datagram is lost only when
//! every attempt fails, i.e. when the per-attempt frame error rate
//! reaches 0.5^(1/7) ≈ 0.906. The SINR thresholds where that happens on a
//! 546-byte MPDU (from the BER curves over a −96.6 dBm noise floor) are
//! ≈12.3 dB at 11 Mb/s, ≈3.8 dB at 5.5, ≈−0.1 dB at 2 and ≈−2.1 dB at
//! 1 Mb/s. With 15 dBm TX power, hitting ~33 m at 11 Mb/s and ~129 m at
//! 1 Mb/s requires `PL(d) = 62.6 + 24.2·log10(d)` — exponent 2.42 with a
//! ~22.5 dB clutter/antenna offset over free space at 1 m. The offset
//! models the near-ground antennas of laptops on an open field; the
//! exponent is the value the paper's own range ratios imply. The anchor
//! sits ~10% above the paper's printed 30 m so that the four-station
//! 25 m links keep the ~3 dB median margin the paper's own experiments
//! evidently had (their Figure 7 sessions move megabits).

use desim::SimDuration;
use dot11_phy::{CullPolicy, DayProfile, Db, DualSlope, LogDistance, MediumConfig, Meters};

/// The calibrated path-loss model (see module docs).
pub fn calibrated_path_loss() -> LogDistance {
    LogDistance {
        reference_loss: Db(62.6),
        reference_distance: Meters(1.0),
        exponent: 2.42,
    }
}

/// The large-topology path-loss model: the calibrated log-distance model
/// up to a 500 m breakpoint (bit-identical there — every paper-scale cell
/// sits well inside it), then fourth-power roll-off, the far-field slope
/// of the two-ray ground regime. The exponent-2.42 near model alone never
/// reaches ~128 dB of extra loss within any earthly field, so without the
/// far slope the audible-set culling in `Medium` would have an infinite
/// horizon; with it, stations beyond a couple of kilometres fall below
/// `noise_floor − CULL_MARGIN_DB` and drop out of the fan-out.
pub fn calibrated_dual_slope() -> DualSlope {
    DualSlope {
        near: calibrated_path_loss(),
        breakpoint: Meters(500.0),
        far_exponent: 4.0,
    }
}

/// A ready-to-use medium configuration: calibrated path loss, the given
/// day profile, the paper's τ = 1 µs propagation delay, and no culling
/// (standalone `Medium` users have no TX power bound on record; `World`
/// installs the radio-aware audible-set policy itself).
pub fn calibrated_medium_config(day: DayProfile) -> MediumConfig {
    MediumConfig {
        path_loss: calibrated_path_loss().into(),
        day,
        propagation_delay: SimDuration::from_micros(1),
        cull: CullPolicy::Full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dot11_phy::{ber, packet_success_prob, Dbm, PathLoss, PhyRate, RadioConfig};

    /// Distance at which a *datagram* of `bits` at `rate` — up to 7 MAC
    /// attempts per datagram — has 50% delivery over the calibrated
    /// deterministic channel (no shadowing).
    fn median_range(rate: PhyRate, bits: u64) -> f64 {
        let radio = RadioConfig::dwl650();
        let pl = calibrated_path_loss();
        let noise = radio.noise_floor.to_milliwatts();
        let mut lo = 1.0f64;
        let mut hi = 1000.0;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            let rx: Dbm = radio.tx_power - pl.path_loss(Meters(mid));
            let sinr = rx.to_milliwatts().0 / noise.0;
            let frame_ok = packet_success_prob(ber(rate.modulation(), sinr), bits);
            let p = 1.0 - (1.0 - frame_ok).powi(7);
            if p > 0.5 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    #[test]
    fn data_ranges_match_table3() {
        // 546-byte MPDU (512-byte packets) per the paper's experiments.
        let bits = 546 * 8;
        let r11 = median_range(PhyRate::R11, bits);
        let r55 = median_range(PhyRate::R5_5, bits);
        let r2 = median_range(PhyRate::R2, bits);
        let r1 = median_range(PhyRate::R1, bits);
        // Bands: the paper's Table 3 values +10% (the deliberate anchor
        // shift documented in the module docs).
        assert!(
            (27.0..38.0).contains(&r11),
            "11 Mb/s range {r11:.0} m (paper: 30 m)"
        );
        assert!(
            (60.0..85.0).contains(&r55),
            "5.5 Mb/s range {r55:.0} m (paper: 70 m)"
        );
        assert!(
            (90.0..115.0).contains(&r2),
            "2 Mb/s range {r2:.0} m (paper: 90-100 m)"
        );
        assert!(
            (115.0..140.0).contains(&r1),
            "1 Mb/s range {r1:.0} m (paper: 110-130 m)"
        );
        assert!(r11 < r55 && r55 < r2 && r2 < r1);
    }

    #[test]
    fn control_frames_reach_3x_further_than_11mbps_data() {
        let data = median_range(PhyRate::R11, 546 * 8);
        let ctrl = median_range(PhyRate::R2, 112);
        assert!(
            ctrl / data > 2.5,
            "control range {ctrl:.0} m vs data range {data:.0} m"
        );
    }

    #[test]
    fn pcs_range_exceeds_every_tx_range() {
        let radio = RadioConfig::dwl650();
        let pl = calibrated_path_loss();
        let budget = radio.tx_power - radio.cs_threshold;
        let pcs = pl.distance_for_loss(Db(budget.0)).expect("within sweep").0;
        assert!((135.0..175.0).contains(&pcs), "PCS range {pcs:.0} m");
        assert!(pcs > median_range(PhyRate::R1, 546 * 8));
    }

    #[test]
    fn ns2_assumption_is_2_to_3x_our_2mbps_range() {
        // The paper: ns-2/GloMoSim assume TX_range = 250 m at 2 Mb/s,
        // "2-3 times higher than the values measured in practice".
        let measured = median_range(PhyRate::R2, 546 * 8);
        let ratio = 250.0 / measured;
        assert!((2.0..3.2).contains(&ratio), "ns-2 ratio {ratio:.2}");
    }
}
