//! A station: PHY + MAC + transport endpoints + traffic sources.

use std::collections::HashMap;

use dot11_mac::DcfMac;
use dot11_net::{CbrSource, FlowId, Packet, SaturatedSource, TcpReceiver, TcpSender};
use dot11_phy::{NodeId, PhyState};
use dot11_trace::{NullSink, TraceSink};

/// Receiver-side accounting for a UDP flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct UdpSink {
    /// Datagrams delivered.
    pub datagrams: u64,
    /// Application payload bytes delivered.
    pub payload_bytes: u64,
    /// Highest datagram sequence number seen (for reordering diagnostics).
    pub max_seq: u64,
    /// Sum of end-to-end delays (source emission → delivery), ns.
    pub delay_sum_ns: u64,
    /// Largest end-to-end delay observed, ns.
    pub delay_max_ns: u64,
}

impl UdpSink {
    /// Mean end-to-end datagram delay, milliseconds.
    pub fn mean_delay_ms(&self) -> f64 {
        if self.datagrams == 0 {
            0.0
        } else {
            self.delay_sum_ns as f64 / self.datagrams as f64 / 1e6
        }
    }
}

/// One station's full protocol stack.
///
/// Fields are crate-internal; the [`crate::world::World`] event loop is
/// the only driver. Reports expose the interesting state.
#[derive(Debug)]
pub struct Node<S: TraceSink = NullSink> {
    pub(crate) id: NodeId,
    pub(crate) phy: PhyState<S>,
    pub(crate) mac: DcfMac<Packet, S>,
    /// Last carrier-sense state reported to the MAC (edge detection).
    pub(crate) cs_reported: bool,
    pub(crate) tcp_senders: HashMap<FlowId, TcpSender<S>>,
    pub(crate) tcp_receivers: HashMap<FlowId, TcpReceiver>,
    pub(crate) cbr_sources: HashMap<FlowId, CbrSource>,
    pub(crate) saturated_sources: HashMap<FlowId, SaturatedSource>,
    /// Saturated-source flow ids in install order: the refill path walks
    /// this instead of collecting `saturated_sources.keys()` per event,
    /// which would both allocate and iterate in hash order.
    pub(crate) saturated_flows: Vec<FlowId>,
    pub(crate) udp_sinks: HashMap<FlowId, UdpSink>,
}

impl<S: TraceSink> Node<S> {
    pub(crate) fn new(id: NodeId, phy: PhyState<S>, mac: DcfMac<Packet, S>) -> Node<S> {
        Node {
            id,
            phy,
            mac,
            cs_reported: false,
            tcp_senders: HashMap::new(),
            tcp_receivers: HashMap::new(),
            cbr_sources: HashMap::new(),
            saturated_sources: HashMap::new(),
            saturated_flows: Vec::new(),
            udp_sinks: HashMap::new(),
        }
    }

    /// The station's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// PHY-layer counters.
    pub fn phy_counters(&self) -> dot11_phy::state::PhyCounters {
        self.phy.counters()
    }

    /// MAC-layer counters.
    pub fn mac_counters(&self) -> dot11_mac::MacCounters {
        self.mac.counters()
    }

    /// The UDP sink state for `flow`, if this node terminates it.
    pub fn udp_sink(&self, flow: FlowId) -> Option<&UdpSink> {
        self.udp_sinks.get(&flow)
    }

    /// The TCP receiving endpoint for `flow`, if this node terminates it.
    pub fn tcp_receiver(&self, flow: FlowId) -> Option<&TcpReceiver> {
        self.tcp_receivers.get(&flow)
    }

    /// The TCP sending endpoint for `flow`, if this node originates it.
    pub fn tcp_sender(&self, flow: FlowId) -> Option<&TcpSender<S>> {
        self.tcp_senders.get(&flow)
    }
}
