//! Run reports: per-flow throughput/loss and per-node counters.

use desim::SimDuration;
use dot11_mac::{ArfCounters, MacCounters};
use dot11_net::FlowId;
use dot11_phy::{state::PhyCounters, Airtime, NodeId, PhyRate};

/// Measured results for one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowReport {
    /// The flow.
    pub flow: FlowId,
    /// Data source station.
    pub src: NodeId,
    /// Data sink station.
    pub dst: NodeId,
    /// Packets (UDP datagrams / TCP data segments) emitted by the source,
    /// including TCP retransmissions.
    pub offered_packets: u64,
    /// Application payload bytes delivered in order over the whole run.
    pub delivered_bytes: u64,
    /// UDP datagrams delivered (TCP: delivered bytes / MSS).
    pub delivered_packets: u64,
    /// Payload bytes delivered inside the measurement window
    /// (after warm-up).
    pub measured_bytes: u64,
    /// Application-level throughput over the measurement window, kb/s.
    pub throughput_kbps: f64,
    /// End-to-end datagram loss over the whole run (UDP flows;
    /// 0 for TCP, which retransmits).
    pub loss_rate: f64,
    /// Mean end-to-end datagram delay, ms (UDP flows; 0 for TCP).
    pub mean_delay_ms: f64,
    /// Maximum end-to-end datagram delay, ms (UDP flows; 0 for TCP).
    pub max_delay_ms: f64,
}

/// Per-station counters after a run.
#[derive(Debug, Clone, Copy)]
pub struct NodeReport {
    /// The station.
    pub node: NodeId,
    /// MAC counters.
    pub mac: MacCounters,
    /// PHY counters.
    pub phy: PhyCounters,
    /// ARF rate-switching counters (zero when ARF is off).
    pub arf: ArfCounters,
    /// The data rate in effect when the run ended (moves only under ARF).
    pub final_data_rate: PhyRate,
    /// How this station's airtime split between transmitting, receiving
    /// (locked — the "deaf" share), sensing-busy and idle.
    pub airtime: Airtime,
}

/// How many events of each kind the simulator dispatched during a run.
///
/// One counter per [`Event`](crate::world::Event) variant, with MAC timers
/// broken out per [`TimerKind`](dot11_mac::TimerKind) — the per-kind view
/// is what makes an event-count regression diagnosable (e.g. a change that
/// silently reintroduces per-slot backoff events shows up as a
/// `mac_backoff_slot` explosion while everything else holds still).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventKindCounts {
    /// Traffic-source starts.
    pub flow_start: u64,
    /// Signal batches arriving at the receivers (one per transmission).
    pub signal_start: u64,
    /// Signal batches leaving the receivers (one per transmission).
    pub signal_end: u64,
    /// Transmitter finished keying a frame out.
    pub tx_air_end: u64,
    /// DIFS/EIFS deferral expiries.
    pub mac_difs: u64,
    /// Coalesced bulk-backoff expiries (all but the final slot).
    pub mac_backoff_bulk: u64,
    /// Final backoff-slot expiries.
    pub mac_backoff_slot: u64,
    /// CTS timeouts.
    pub mac_cts_timeout: u64,
    /// ACK timeouts.
    pub mac_ack_timeout: u64,
    /// SIFS-before-response expiries.
    pub mac_sifs_response: u64,
    /// SIFS-before-data expiries.
    pub mac_sifs_data: u64,
    /// NAV reservation expiries.
    pub mac_nav_end: u64,
    /// TCP retransmission timer expiries.
    pub rto_timer: u64,
    /// TCP delayed-ACK timer expiries.
    pub delack_timer: u64,
    /// Paced CBR source emissions.
    pub cbr_tick: u64,
    /// Warm-up boundary snapshots (one per run).
    pub measure_start: u64,
    /// Mobility epoch commits (zero on static scenarios).
    pub topology_update: u64,
}

impl EventKindCounts {
    /// Every counter with its stable snake_case name, in declaration
    /// order — the single source of truth for JSON emission and tests.
    pub fn iter_named(&self) -> [(&'static str, u64); 17] {
        [
            ("flow_start", self.flow_start),
            ("signal_start", self.signal_start),
            ("signal_end", self.signal_end),
            ("tx_air_end", self.tx_air_end),
            ("mac_difs", self.mac_difs),
            ("mac_backoff_bulk", self.mac_backoff_bulk),
            ("mac_backoff_slot", self.mac_backoff_slot),
            ("mac_cts_timeout", self.mac_cts_timeout),
            ("mac_ack_timeout", self.mac_ack_timeout),
            ("mac_sifs_response", self.mac_sifs_response),
            ("mac_sifs_data", self.mac_sifs_data),
            ("mac_nav_end", self.mac_nav_end),
            ("rto_timer", self.rto_timer),
            ("delack_timer", self.delack_timer),
            ("cbr_tick", self.cbr_tick),
            ("measure_start", self.measure_start),
            ("topology_update", self.topology_update),
        ]
    }

    /// Sum over all kinds; equals the engine's total dispatched-event
    /// count when every dispatch is classified.
    pub fn total(&self) -> u64 {
        self.iter_named().iter().map(|(_, v)| v).sum()
    }
}

/// Link-churn totals over a run's mobility epochs — how much topology
/// actually changed, and how much link state the incremental epoch path
/// had to touch to track it. All zero on static scenarios.
///
/// Each counter is the sum over epochs of the matching
/// [`EpochChurn`](dot11_phy::EpochChurn) field. The one `EpochChurn`
/// field deliberately *not* mirrored here is `compactions`: it reports an
/// allocation strategy of the incremental path (the rebuild reference
/// never compacts), and the incremental-vs-rebuild identity suite asserts
/// whole reports — including these counters — bitwise equal across the
/// two commit modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MobilityStats {
    /// Mobility epochs committed.
    pub epochs: u64,
    /// Stations whose position changed, summed over epochs.
    pub stations_moved: u64,
    /// Audible slices recomputed (movers' own plus dirty neighbours').
    pub slices_recomputed: u64,
    /// Directed links invalidated (a mover at either end).
    pub links_dirtied: u64,
    /// Directed links recomputed (dirtied and still audible, plus new).
    pub links_recomputed: u64,
    /// Audible-set entries that appeared (links that came into range).
    pub audible_added: u64,
    /// Audible-set entries that vanished (links that fell out of range).
    pub audible_removed: u64,
}

impl MobilityStats {
    /// Folds one epoch's churn into the run totals.
    pub fn accumulate(&mut self, churn: dot11_phy::EpochChurn) {
        self.epochs += 1;
        self.stations_moved += churn.moved as u64;
        self.slices_recomputed += churn.slices_recomputed as u64;
        self.links_dirtied += churn.links_dirtied as u64;
        self.links_recomputed += churn.links_recomputed as u64;
        self.audible_added += churn.audible_added as u64;
        self.audible_removed += churn.audible_removed as u64;
    }
}

/// Engine self-instrumentation for one run: how hard the simulator worked
/// and how fast it went relative to simulated time.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Events dispatched by the simulator.
    pub events: u64,
    /// Dispatched events broken down by kind (sums to `events`).
    pub kinds: EventKindCounts,
    /// Link churn across mobility epochs (all zero on static scenarios).
    pub mobility: MobilityStats,
    /// Largest number of pending events ever queued at once.
    pub queue_high_water: usize,
    /// Simulated time covered by the run.
    pub sim_elapsed: SimDuration,
    /// Wall-clock time the run took.
    pub wall: std::time::Duration,
    /// Per-scope wall-time histogram, present only when the world ran
    /// with an armed [`desim::Probe`] (see
    /// [`PROBE_SCOPES`](crate::world::PROBE_SCOPES) for the scope table).
    pub profile: Option<desim::ProbeReport>,
}

impl EngineStats {
    /// Simulated-seconds per wall-second (0 when the wall clock did not
    /// observably advance).
    pub fn speedup(&self) -> f64 {
        let w = self.wall.as_secs_f64();
        if w > 0.0 {
            self.sim_elapsed.as_secs_f64() / w
        } else {
            0.0
        }
    }

    /// Events dispatched per wall-second (0 when the wall clock did not
    /// observably advance).
    pub fn events_per_sec(&self) -> f64 {
        let w = self.wall.as_secs_f64();
        if w > 0.0 {
            self.events as f64 / w
        } else {
            0.0
        }
    }

    /// Wall nanoseconds the profiler attributed to per-event-kind scopes
    /// (the dispatch-loop partition — phase scopes overlap these and are
    /// excluded). `None` without an armed probe.
    pub fn attributed_ns(&self) -> Option<u64> {
        let profile = self.profile.as_ref()?;
        Some(
            self.kinds
                .iter_named()
                .iter()
                .filter_map(|(name, _)| profile.scope(name))
                .map(|s| s.total_ns)
                .sum(),
        )
    }

    /// Fraction of the run's wall clock attributed to per-kind scopes
    /// (0 when the wall clock did not observably advance). `None` without
    /// an armed probe.
    pub fn attributed_fraction(&self) -> Option<f64> {
        let attributed = self.attributed_ns()? as f64;
        let wall = self.wall.as_nanos() as f64;
        Some(if wall > 0.0 { attributed / wall } else { 0.0 })
    }
}

/// Jain's fairness index over per-flow throughputs:
/// `(Σx)² / (n·Σx²)` — 1.0 is perfectly fair, 1/n is a single winner.
///
/// # Example
///
/// ```
/// use dot11_adhoc::stats::jain_index;
/// assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
/// ```
pub fn jain_index(throughputs: &[f64]) -> f64 {
    if throughputs.is_empty() {
        return 1.0;
    }
    let sum: f64 = throughputs.iter().sum();
    let sq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (throughputs.len() as f64 * sq)
}

/// Distribution summary of one metric across repeated runs (seeds).
///
/// The sweep engine aggregates every cell metric with this: the paper's
/// own numbers are single measurement sessions, and the four-station
/// magnitudes are channel-draw dependent, so any quoted value should come
/// with its spread over seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (midpoint of the two central samples for even `n`).
    pub median: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96·σ/√n`; 0 for n < 2).
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`. Returns `None` for an empty slice.
    ///
    /// Samples are summed in sorted order, so the result is identical
    /// regardless of the order runs completed in — a requirement for
    /// sweep reports being independent of worker scheduling.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric samples are never NaN"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let (std_dev, ci95) = if n > 1 {
            let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            let sd = var.sqrt();
            (sd, 1.96 * sd / (n as f64).sqrt())
        } else {
            (0.0, 0.0)
        };
        Some(Summary {
            n,
            mean,
            median,
            std_dev,
            ci95,
            min: sorted[0],
            max: sorted[n - 1],
        })
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total simulated time.
    pub duration: SimDuration,
    /// Warm-up excluded from throughput measurement.
    pub warmup: SimDuration,
    /// Per-flow results, in flow-id order.
    pub flows: Vec<FlowReport>,
    /// Per-station counters, in station order.
    pub nodes: Vec<NodeReport>,
    /// Events dispatched by the simulator (diagnostic; mirrors
    /// `engine.events`).
    pub events: u64,
    /// Engine self-instrumentation.
    pub engine: EngineStats,
}

impl RunReport {
    /// The report for `flow`.
    ///
    /// # Panics
    ///
    /// Panics if the flow does not exist in this run.
    pub fn flow(&self, flow: FlowId) -> &FlowReport {
        self.flows
            .iter()
            .find(|f| f.flow == flow)
            .unwrap_or_else(|| panic!("no such flow {flow}"))
    }

    /// Sum of all flows' measured throughput, kb/s.
    pub fn total_throughput_kbps(&self) -> f64 {
        self.flows.iter().map(|f| f.throughput_kbps).sum()
    }

    /// Jain's fairness index across this run's flows.
    pub fn fairness(&self) -> f64 {
        let t: Vec<f64> = self.flows.iter().map(|f| f.throughput_kbps).collect();
        jain_index(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            duration: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(1),
            flows: vec![
                FlowReport {
                    flow: FlowId(0),
                    src: NodeId(0),
                    dst: NodeId(1),
                    offered_packets: 100,
                    delivered_bytes: 51_200,
                    delivered_packets: 100,
                    measured_bytes: 46_080,
                    throughput_kbps: 40.96,
                    loss_rate: 0.0,
                    mean_delay_ms: 1.5,
                    max_delay_ms: 9.0,
                },
                FlowReport {
                    flow: FlowId(1),
                    src: NodeId(2),
                    dst: NodeId(3),
                    offered_packets: 100,
                    delivered_bytes: 25_600,
                    delivered_packets: 50,
                    measured_bytes: 23_040,
                    throughput_kbps: 20.48,
                    loss_rate: 0.5,
                    mean_delay_ms: 3.0,
                    max_delay_ms: 30.0,
                },
            ],
            nodes: vec![],
            events: 1234,
            engine: EngineStats {
                events: 1234,
                kinds: EventKindCounts::default(),
                mobility: MobilityStats::default(),
                queue_high_water: 7,
                sim_elapsed: SimDuration::from_secs(10),
                wall: std::time::Duration::from_millis(20),
                profile: None,
            },
        }
    }

    #[test]
    fn flow_lookup_and_totals() {
        let r = report();
        assert_eq!(r.flow(FlowId(1)).delivered_packets, 50);
        assert!((r.total_throughput_kbps() - 61.44).abs() < 1e-9);
    }

    #[test]
    fn fairness_index() {
        let r = report();
        // 40.96 vs 20.48: (61.44)^2 / (2*(40.96^2+20.48^2)) = 0.9.
        assert!((r.fairness() - 0.9).abs() < 1e-9);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no such flow")]
    fn missing_flow_panics() {
        let r = report();
        let _ = r.flow(FlowId(9));
    }

    #[test]
    fn engine_rates() {
        let e = report().engine;
        // 10 simulated seconds in 20 ms of wall time.
        assert!((e.speedup() - 500.0).abs() < 1e-9);
        assert!((e.events_per_sec() - 61_700.0).abs() < 1e-6);
    }

    #[test]
    fn kind_counts_total_and_names_stay_in_sync() {
        let mut kinds = EventKindCounts::default();
        assert_eq!(kinds.total(), 0);
        kinds.signal_start = 3;
        kinds.mac_backoff_bulk = 5;
        kinds.measure_start = 1;
        assert_eq!(kinds.total(), 9);
        let named = kinds.iter_named();
        assert_eq!(named.len(), 17, "every Event kind has a named counter");
        let mut names: Vec<&str> = named.iter().map(|(n, _)| *n).collect();
        names.dedup();
        assert_eq!(names.len(), 17, "counter names are unique");
        assert_eq!(
            named.iter().find(|(n, _)| *n == "mac_backoff_bulk"),
            Some(&("mac_backoff_bulk", 5))
        );
    }

    #[test]
    fn summary_over_known_samples() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).expect("non-empty");
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.median - 4.5).abs() < 1e-12);
        // Sample std dev of this classic set: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((s.ci95 - 1.96 * s.std_dev / 8.0f64.sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (2.0, 9.0));
    }

    #[test]
    fn summary_is_order_independent() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).expect("non-empty");
        let b = Summary::of(&[1.0, 2.0, 3.0]).expect("non-empty");
        assert_eq!(a, b);
    }

    #[test]
    fn summary_single_sample_has_zero_spread() {
        let s = Summary::of(&[42.0]).expect("non-empty");
        assert_eq!(s.median, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn engine_rates_guard_zero_wall() {
        let e = EngineStats {
            events: 10,
            kinds: EventKindCounts::default(),
            mobility: MobilityStats::default(),
            queue_high_water: 1,
            sim_elapsed: SimDuration::from_secs(1),
            wall: std::time::Duration::ZERO,
            profile: None,
        };
        assert_eq!(e.speedup(), 0.0);
        assert_eq!(e.events_per_sec(), 0.0);
        assert_eq!(e.attributed_ns(), None);
        assert_eq!(e.attributed_fraction(), None);
    }

    #[test]
    fn attribution_sums_kind_scopes_only() {
        let kinds = EventKindCounts {
            signal_start: 2,
            ..EventKindCounts::default()
        };
        let scope = |name, total_ns| desim::ScopeStats {
            name,
            count: 1,
            total_ns,
            min_ns: total_ns,
            max_ns: total_ns,
        };
        let e = EngineStats {
            events: 2,
            kinds,
            mobility: MobilityStats::default(),
            queue_high_water: 1,
            sim_elapsed: SimDuration::from_secs(1),
            wall: std::time::Duration::from_nanos(200),
            profile: Some(desim::ProbeReport {
                scopes: vec![
                    scope("signal_start", 120),
                    scope("mac_difs", 30),
                    // Phase scopes overlap the kind partition and must not
                    // double-count into the attributed total.
                    scope("phase_scatter", 999),
                ],
            }),
        };
        assert_eq!(e.attributed_ns(), Some(150));
        assert!((e.attributed_fraction().expect("probed") - 0.75).abs() < 1e-12);
    }
}
