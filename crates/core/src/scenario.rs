//! Declarative experiment descriptions.
//!
//! A [`Scenario`] is the full recipe for one measurement run: station
//! positions, radio and MAC configuration, channel/day profile, traffic
//! flows, seed and timing. [`ScenarioBuilder`] assembles it fluently; the
//! result turns into a [`crate::World`] and runs.
//!
//! # Example
//!
//! ```
//! use dot11_adhoc::{ScenarioBuilder, Traffic};
//! use dot11_phy::PhyRate;
//! use desim::SimDuration;
//!
//! // Two stations 10 m apart, saturated UDP, 11 Mb/s, basic access.
//! let report = ScenarioBuilder::new(PhyRate::R11)
//!     .line(&[0.0, 10.0])
//!     .duration(SimDuration::from_secs(2))
//!     .flow(0, 1, Traffic::SaturatedUdp { payload_bytes: 512, backlog: 10 })
//!     .run();
//! assert!(report.flow(dot11_net::FlowId(0)).throughput_kbps > 1000.0);
//! ```

use desim::{SimDuration, SimRng};
use dot11_mac::MacConfig;
use dot11_net::{FlowId, StaticRoutes};
use dot11_phy::{DayProfile, NodeId, PathLossModel, PhyRate, Position, RadioConfig};
use dot11_trace::TraceSink;

use crate::calib::{calibrated_dual_slope, calibrated_path_loss};
use crate::mobility::MobilityConfig;
use crate::stats::RunReport;
use crate::world::World;

/// Traffic carried by one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traffic {
    /// Asymptotic UDP: the source keeps `backlog` datagrams queued at the
    /// interface — the paper's saturated-CBR condition.
    SaturatedUdp {
        /// Application payload per datagram, bytes.
        payload_bytes: u32,
        /// Interface-queue backlog to maintain, packets.
        backlog: usize,
    },
    /// Paced CBR over UDP (used for the loss-vs-distance probes).
    CbrUdp {
        /// Application payload per datagram, bytes.
        payload_bytes: u32,
        /// Inter-datagram interval.
        interval: SimDuration,
        /// Stop after this many datagrams (`None` = run forever).
        limit: Option<u64>,
    },
    /// Asymptotic bulk transfer over TCP (the paper's ftp).
    BulkTcp {
        /// Maximum segment size (application payload per segment), bytes.
        mss: u32,
    },
}

/// One unidirectional session.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Flow identifier (builder-assigned, dense from 0).
    pub id: FlowId,
    /// Data source station.
    pub src: NodeId,
    /// Data sink station.
    pub dst: NodeId,
    /// Workload.
    pub traffic: Traffic,
    /// When the source starts, relative to the run start.
    pub start: SimDuration,
}

/// A complete experiment description.
pub struct Scenario {
    pub(crate) positions: Vec<Position>,
    pub(crate) radio: RadioConfig,
    pub(crate) mac: MacConfig,
    pub(crate) day: DayProfile,
    pub(crate) path_loss: PathLossModel,
    pub(crate) flows: Vec<FlowSpec>,
    pub(crate) routes: StaticRoutes,
    pub(crate) seed: u64,
    pub(crate) duration: SimDuration,
    pub(crate) warmup: SimDuration,
    pub(crate) full_fanout: bool,
    pub(crate) threads: usize,
    pub(crate) mobility: Option<MobilityConfig>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("stations", &self.positions.len())
            .field("data_rate", &self.mac.data_rate)
            .field("rts", &self.mac.rts_enabled)
            .field("flows", &self.flows.len())
            .field("seed", &self.seed)
            .field("duration", &self.duration)
            .finish()
    }
}

impl Scenario {
    /// Re-tunes the MAC configuration of an already-built scenario —
    /// the hook the sweep layer's MAC axis uses to move CW bounds, retry
    /// limits, slot time or backoff policy on top of a scenario recipe
    /// without re-deriving its geometry or traffic.
    pub fn tune_mac(mut self, f: impl FnOnce(&mut MacConfig)) -> Scenario {
        f(&mut self.mac);
        self
    }

    /// Attaches (or replaces) a mobility configuration on an
    /// already-built scenario — the hook the `repro --mobility` flag uses
    /// to set the paper's static topologies in motion without
    /// re-deriving geometry or traffic.
    pub fn with_mobility(mut self, config: MobilityConfig) -> Scenario {
        assert!(!config.epoch.is_zero(), "mobility epoch must be positive");
        self.mobility = Some(config);
        self
    }

    /// Builds the simulation world.
    pub fn into_world(self) -> World {
        World::new(self)
    }

    /// Requests the sharded executor with this many worker threads for
    /// [`Scenario::run`] (see [`World::run_sharded`]). `1` (the default)
    /// keeps the run serial; any value yields a report byte-identical to
    /// the serial one.
    pub fn with_threads(mut self, threads: usize) -> Scenario {
        self.threads = threads.max(1);
        self
    }

    /// Builds and runs to completion, sharded across the scenario's
    /// configured thread count (serial when that is 1).
    pub fn run(self) -> RunReport {
        let threads = self.threads;
        self.into_world().run_sharded(threads)
    }

    /// Builds the world with a trace sink attached (see
    /// [`World::with_sink`]).
    pub fn into_world_with<S: TraceSink + Clone>(self, sink: S) -> World<S> {
        World::with_sink(self, sink)
    }

    /// Builds and runs to completion with a trace sink attached.
    pub fn run_with<S: TraceSink + Clone>(self, sink: S) -> RunReport {
        self.into_world_with(sink).run()
    }

    /// Builds the world with both a trace sink and a timing probe (see
    /// [`World::with_probe`]).
    pub fn into_world_probed<S: TraceSink + Clone, P: desim::Probe>(
        self,
        sink: S,
        probe: P,
    ) -> World<S, P> {
        World::with_probe(self, sink, probe)
    }

    /// Builds and runs to completion with a timing probe attached; an
    /// armed probe's histogram lands in `RunReport.engine.profile`.
    pub fn run_probed<S: TraceSink + Clone, P: desim::Probe>(self, sink: S, probe: P) -> RunReport {
        self.into_world_probed(sink, probe).run()
    }
}

/// Fluent constructor for [`Scenario`].
///
/// # Examples
///
/// The hidden-terminal triple from EXPERIMENTS.md Chapter 7 — two
/// senders out of carrier-sense range of each other, one receiver in
/// the middle, shadowing frozen so the geometry is exact:
///
/// ```
/// use desim::SimDuration;
/// use dot11_adhoc::{ScenarioBuilder, Traffic};
/// use dot11_phy::{DayProfile, PhyRate};
///
/// let report = ScenarioBuilder::new(PhyRate::R2)
///     .line(&[0.0, 95.0, 190.0])
///     .day(DayProfile::still())
///     .rts(true)
///     .seed(5)
///     .duration(SimDuration::from_secs(2))
///     .warmup(SimDuration::from_millis(200))
///     .flow(0, 1, Traffic::SaturatedUdp { payload_bytes: 512, backlog: 10 })
///     .flow(2, 1, Traffic::SaturatedUdp { payload_bytes: 512, backlog: 10 })
///     .run();
/// // Both hidden senders get real goodput once RTS/CTS protects the
/// // data frames; same-seed runs reproduce these numbers bit-exactly.
/// assert!(report.flow(dot11_net::FlowId(0)).throughput_kbps > 100.0);
/// assert!(report.flow(dot11_net::FlowId(1)).throughput_kbps > 100.0);
/// ```
///
/// `tune_mac` opens the full [`MacConfig`] — contention window, retry
/// limits, slot time, backoff policy — without widening the builder:
///
/// ```
/// use dot11_adhoc::{ScenarioBuilder, Traffic};
/// use dot11_phy::PhyRate;
///
/// let scenario = ScenarioBuilder::new(PhyRate::R11)
///     .line(&[0.0, 10.0])
///     .flow(0, 1, Traffic::SaturatedUdp { payload_bytes: 512, backlog: 10 })
///     .build()
///     .tune_mac(|mac| *mac = mac.with_cw(64, 1024));
/// # let _ = scenario;
/// ```
pub struct ScenarioBuilder {
    scenario: Scenario,
    next_flow: u32,
}

impl ScenarioBuilder {
    /// Starts a scenario at the given NIC data rate with the calibrated
    /// radio/channel defaults: DWL-650 radio, clear-day shadowing,
    /// calibrated outdoor path loss, basic access, 10 s runs with 1 s
    /// warm-up, seed 1.
    pub fn new(data_rate: PhyRate) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                positions: Vec::new(),
                radio: RadioConfig::dwl650(),
                mac: MacConfig::new(data_rate),
                day: DayProfile::clear(),
                path_loss: calibrated_path_loss().into(),
                flows: Vec::new(),
                routes: StaticRoutes::new(),
                seed: 1,
                duration: SimDuration::from_secs(10),
                warmup: SimDuration::from_secs(1),
                full_fanout: false,
                threads: 1,
                mobility: None,
            },
            next_flow: 0,
        }
    }

    /// Adds a station at `position`; returns its id (dense from 0).
    pub fn station(&mut self, position: Position) -> NodeId {
        self.scenario.positions.push(position);
        NodeId(self.scenario.positions.len() as u32 - 1)
    }

    /// Adds stations on the x-axis at the given coordinates (meters) —
    /// the paper's chain topologies.
    pub fn line(mut self, xs: &[f64]) -> ScenarioBuilder {
        for &x in xs {
            self.scenario.positions.push(Position::on_line(x));
        }
        self
    }

    /// Large-topology generator: `n` stations on the x-axis, `spacing_m`
    /// apart, with chain routing installed and the dual-slope path-loss
    /// model (bit-identical to the calibrated model inside its 500 m
    /// breakpoint, fourth-power roll-off beyond — so distant chain
    /// segments have a finite interference horizon and audible-set
    /// culling has something to cull).
    pub fn chain(mut self, n: u32, spacing_m: f64) -> ScenarioBuilder {
        assert!(n >= 2, "a chain needs at least 2 stations");
        for i in 0..n {
            self.scenario
                .positions
                .push(Position::on_line(i as f64 * spacing_m));
        }
        self.scenario.routes = StaticRoutes::chain(n);
        self.scenario.path_loss = calibrated_dual_slope().into();
        self
    }

    /// Large-topology generator: `rows × cols` stations on a square grid
    /// with `spacing_m` pitch, west→east next-hop routes installed along
    /// each row, and the dual-slope path-loss model (see
    /// [`ScenarioBuilder::chain`]). Station ids are row-major from 0.
    pub fn grid(mut self, rows: u32, cols: u32, spacing_m: f64) -> ScenarioBuilder {
        assert!(rows >= 1 && cols >= 2, "a grid needs at least 1×2 stations");
        let mut routes = StaticRoutes::new();
        for r in 0..rows {
            for c in 0..cols {
                self.scenario.positions.push(Position {
                    x: c as f64 * spacing_m,
                    y: r as f64 * spacing_m,
                });
            }
            // Row r's eastmost station is every row flow's destination;
            // each hop forwards one station east.
            let east = NodeId(r * cols + (cols - 1));
            for c in 0..cols - 1 {
                let at = NodeId(r * cols + c);
                let next = NodeId(r * cols + c + 1);
                routes.add(at, east, next);
            }
        }
        self.scenario.routes = routes;
        self.scenario.path_loss = calibrated_dual_slope().into();
        self
    }

    /// Large-topology generator: `n` stations placed uniformly at random
    /// on a disk of radius `radius_m` (area-uniform: `r = R√u`), from the
    /// dedicated topology stream `topo_seed` — independent of the run
    /// seed so the same field can be simulated under many channel seeds.
    /// Uses the dual-slope path-loss model; installs no routes (add flows
    /// between mutually audible stations, or [`ScenarioBuilder::routes`]).
    pub fn random_disk(mut self, n: u32, radius_m: f64, topo_seed: u64) -> ScenarioBuilder {
        let mut rng = SimRng::from_seed(topo_seed).substream(b"topology/disk");
        for _ in 0..n {
            let r = radius_m * rng.gen_f64().sqrt();
            let theta = 2.0 * std::f64::consts::PI * rng.gen_f64();
            self.scenario.positions.push(Position {
                x: r * theta.cos(),
                y: r * theta.sin(),
            });
        }
        self.scenario.path_loss = calibrated_dual_slope().into();
        self
    }

    /// Disables audible-set culling: every frame is delivered to all
    /// other stations regardless of received power, as before PR 5. Used
    /// by the A/B equivalence tests and the scaling benchmark's
    /// full-fanout baseline.
    pub fn full_fanout(mut self) -> ScenarioBuilder {
        self.scenario.full_fanout = true;
        self
    }

    /// Puts the stations in motion (see [`crate::mobility`]): the world
    /// commits a topology epoch to the medium every
    /// [`MobilityConfig::epoch`], updating only the moved stations'
    /// neighborhoods. Mobile runs are exactly as deterministic as static
    /// ones — the model draws from its own substream of the run seed.
    pub fn mobility(mut self, config: MobilityConfig) -> ScenarioBuilder {
        self.scenario.mobility = Some(config);
        self
    }

    /// Worker-thread budget for [`Scenario::run`]: values above 1 select
    /// the sharded executor (see [`World::run_sharded`]), whose schedule
    /// is byte-identical to the serial one.
    pub fn threads(mut self, threads: usize) -> ScenarioBuilder {
        self.scenario.threads = threads.max(1);
        self
    }

    /// Enables the RTS/CTS mechanism.
    pub fn rts(mut self, enabled: bool) -> ScenarioBuilder {
        self.scenario.mac.rts_enabled = enabled;
        self
    }

    /// Enables classic ARF dynamic rate switching (starting from the
    /// scenario's data rate).
    pub fn arf(mut self, enabled: bool) -> ScenarioBuilder {
        self.scenario.mac.arf = if enabled {
            dot11_mac::ArfConfig::classic()
        } else {
            dot11_mac::ArfConfig::disabled()
        };
        self
    }

    /// Installs a static next-hop table; stations forward packets that
    /// are not addressed to them along it (multi-hop operation).
    pub fn routes(mut self, routes: StaticRoutes) -> ScenarioBuilder {
        self.scenario.routes = routes;
        self
    }

    /// Convenience: chain routing over all stations added so far, in
    /// index order (call after the stations are in place).
    pub fn chain_routes(mut self) -> ScenarioBuilder {
        self.scenario.routes = StaticRoutes::chain(self.scenario.positions.len() as u32);
        self
    }

    /// Replaces the MAC configuration wholesale (ablations).
    pub fn mac_config(mut self, mac: MacConfig) -> ScenarioBuilder {
        self.scenario.mac = mac;
        self
    }

    /// Replaces the radio configuration (ablations).
    pub fn radio(mut self, radio: RadioConfig) -> ScenarioBuilder {
        self.scenario.radio = radio;
        self
    }

    /// Selects the day/weather profile.
    pub fn day(mut self, day: DayProfile) -> ScenarioBuilder {
        self.scenario.day = day;
        self
    }

    /// Replaces the path-loss model (e.g. ns-2 style two-ray ground).
    pub fn path_loss(mut self, model: impl Into<PathLossModel>) -> ScenarioBuilder {
        self.scenario.path_loss = model.into();
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> ScenarioBuilder {
        self.scenario.seed = seed;
        self
    }

    /// Sets the run length.
    pub fn duration(mut self, duration: SimDuration) -> ScenarioBuilder {
        self.scenario.duration = duration;
        self
    }

    /// Sets the warm-up excluded from throughput measurements.
    pub fn warmup(mut self, warmup: SimDuration) -> ScenarioBuilder {
        self.scenario.warmup = warmup;
        self
    }

    /// Adds a flow from station `src` to station `dst` (indices into the
    /// stations added so far). Returns the builder for chaining; flow ids
    /// are assigned densely from 0 in call order.
    pub fn flow(mut self, src: u32, dst: u32, traffic: Traffic) -> ScenarioBuilder {
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.scenario.flows.push(FlowSpec {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            traffic,
            start: SimDuration::ZERO,
        });
        self
    }

    /// Like [`ScenarioBuilder::flow`] with a delayed start.
    pub fn flow_at(
        mut self,
        src: u32,
        dst: u32,
        traffic: Traffic,
        start: SimDuration,
    ) -> ScenarioBuilder {
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.scenario.flows.push(FlowSpec {
            id,
            src: NodeId(src),
            dst: NodeId(dst),
            traffic,
            start,
        });
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Panics
    ///
    /// Panics if a flow references a missing station, a flow loops onto
    /// its source, the warm-up is not shorter than the duration, or there
    /// are no stations.
    pub fn build(self) -> Scenario {
        let s = &self.scenario;
        assert!(!s.positions.is_empty(), "scenario has no stations");
        assert!(
            s.warmup < s.duration,
            "warmup {} must be shorter than duration {}",
            s.warmup,
            s.duration
        );
        for f in &s.flows {
            assert!(
                f.src.index() < s.positions.len() && f.dst.index() < s.positions.len(),
                "flow {} references a missing station",
                f.id
            );
            assert!(f.src != f.dst, "flow {} loops onto its source", f.id);
        }
        if let Some(m) = &s.mobility {
            assert!(!m.epoch.is_zero(), "mobility epoch must be positive");
        }
        self.scenario
    }

    /// Builds and runs in one step.
    pub fn run(self) -> RunReport {
        self.build().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let s = ScenarioBuilder::new(PhyRate::R2)
            .line(&[0.0, 10.0, 20.0])
            .flow(
                0,
                1,
                Traffic::SaturatedUdp {
                    payload_bytes: 512,
                    backlog: 5,
                },
            )
            .flow(1, 2, Traffic::BulkTcp { mss: 512 })
            .build();
        assert_eq!(s.positions.len(), 3);
        assert_eq!(s.flows[0].id, FlowId(0));
        assert_eq!(s.flows[1].id, FlowId(1));
        assert_eq!(s.flows[1].src, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "missing station")]
    fn flow_to_missing_station_panics() {
        let _ = ScenarioBuilder::new(PhyRate::R2)
            .line(&[0.0])
            .flow(0, 3, Traffic::BulkTcp { mss: 512 })
            .build();
    }

    #[test]
    #[should_panic(expected = "loops onto its source")]
    fn self_flow_panics() {
        let _ = ScenarioBuilder::new(PhyRate::R2)
            .line(&[0.0, 5.0])
            .flow(1, 1, Traffic::BulkTcp { mss: 512 })
            .build();
    }

    #[test]
    #[should_panic(expected = "no stations")]
    fn empty_scenario_panics() {
        let _ = ScenarioBuilder::new(PhyRate::R2).build();
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_longer_than_duration_panics() {
        let _ = ScenarioBuilder::new(PhyRate::R2)
            .line(&[0.0, 5.0])
            .duration(SimDuration::from_secs(1))
            .warmup(SimDuration::from_secs(2))
            .build();
    }
}
