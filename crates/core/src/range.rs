//! Transmission-range estimation from loss-vs-distance curves.
//!
//! The paper's Table 3 distills its Figure 3 sweeps into per-rate range
//! estimates. We do the same: sweep distance, record the packet loss
//! rate, and report where the curve crosses a threshold (0.5 by default —
//! the midpoint of the waterfall).

/// A measured loss-vs-distance curve.
#[derive(Debug, Clone, Default)]
pub struct LossCurve {
    points: Vec<(f64, f64)>,
}

impl LossCurve {
    /// Creates an empty curve.
    pub fn new() -> LossCurve {
        LossCurve { points: Vec::new() }
    }

    /// Appends a `(distance m, loss in 0..=1)` sample. Samples must be
    /// pushed in increasing distance order.
    ///
    /// # Panics
    ///
    /// Panics if `distance` does not increase or `loss` is outside `0..=1`.
    pub fn push(&mut self, distance: f64, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss {loss} outside [0,1]");
        if let Some(&(prev, _)) = self.points.last() {
            assert!(
                distance > prev,
                "distances must increase: {prev} then {distance}"
            );
        }
        self.points.push((distance, loss));
    }

    /// The samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Loss at the first sampled distance.
    pub fn first_loss(&self) -> Option<f64> {
        self.points.first().map(|&(_, l)| l)
    }

    /// Loss at the last sampled distance.
    pub fn last_loss(&self) -> Option<f64> {
        self.points.last().map(|&(_, l)| l)
    }
}

/// Estimates the distance at which the curve first crosses `threshold`,
/// interpolating linearly between the bracketing samples.
///
/// Returns `None` if the curve never reaches the threshold (station still
/// in range at the last probed distance) — callers report that as "range
/// beyond the sweep".
///
/// # Example
///
/// ```
/// use dot11_adhoc::{estimate_crossing, LossCurve};
/// let mut c = LossCurve::new();
/// c.push(20.0, 0.0);
/// c.push(30.0, 0.2);
/// c.push(40.0, 0.8);
/// let r = estimate_crossing(&c, 0.5).expect("crosses");
/// assert!((r - 35.0).abs() < 1e-9);
/// ```
pub fn estimate_crossing(curve: &LossCurve, threshold: f64) -> Option<f64> {
    let pts = curve.points();
    if pts.is_empty() {
        return None;
    }
    if pts[0].1 >= threshold {
        return Some(pts[0].0);
    }
    for w in pts.windows(2) {
        let (d0, l0) = w[0];
        let (d1, l1) = w[1];
        if l1 >= threshold {
            if (l1 - l0).abs() < 1e-12 {
                return Some(d1);
            }
            let t = (threshold - l0) / (l1 - l0);
            return Some(d0 + t * (d1 - d0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(samples: &[(f64, f64)]) -> LossCurve {
        let mut c = LossCurve::new();
        for &(d, l) in samples {
            c.push(d, l);
        }
        c
    }

    #[test]
    fn interpolates_between_brackets() {
        let c = curve(&[(10.0, 0.0), (20.0, 0.25), (30.0, 0.75), (40.0, 1.0)]);
        let r = estimate_crossing(&c, 0.5).expect("crosses");
        assert!((r - 25.0).abs() < 1e-9);
    }

    #[test]
    fn never_crossing_reports_none() {
        let c = curve(&[(10.0, 0.0), (50.0, 0.1)]);
        assert_eq!(estimate_crossing(&c, 0.5), None);
        assert_eq!(estimate_crossing(&LossCurve::new(), 0.5), None);
    }

    #[test]
    fn crossing_at_first_sample() {
        let c = curve(&[(10.0, 0.9), (20.0, 1.0)]);
        assert_eq!(estimate_crossing(&c, 0.5), Some(10.0));
    }

    #[test]
    fn flat_segment_at_threshold() {
        let c = curve(&[(10.0, 0.5), (20.0, 0.5)]);
        assert_eq!(estimate_crossing(&c, 0.5), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "distances must increase")]
    fn non_monotone_distances_panic() {
        let mut c = LossCurve::new();
        c.push(20.0, 0.1);
        c.push(10.0, 0.2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn loss_out_of_range_panics() {
        let mut c = LossCurve::new();
        c.push(20.0, 1.5);
    }
}
