//! Spatial station partition for the sharded executor.
//!
//! The sharded run mode ([`crate::World::run_sharded`]) fans the inside
//! of each signal event across worker threads; which worker handles a
//! receiver is a pure function of the receiver's **shard**. A
//! [`ShardMap`] assigns stations to shards by position — sorting by
//! `(x, y, id)` and cutting the order into contiguous, equal-sized
//! groups — so a shard's stations are spatially clustered. Clustering is
//! what makes the partition useful beyond load balancing: a
//! transmission's audible slice concentrates in the transmitter's own
//! and neighbouring shards, so per-worker delivery batches stay
//! contiguous in the per-station state arrays, and
//! [`Medium::frontier_links`] reports few cross-shard links on sparse
//! topologies (the quantity the conservative-lookahead argument in
//! ARCHITECTURE.md is stated in terms of).
//!
//! The assignment is a deterministic function of positions alone — never
//! of thread count or timing — which keeps every execution-order proof
//! independent of how many workers the run happens to use.

use dot11_phy::{Medium, NodeId};

/// A deterministic assignment of every station to one of `shards`
/// spatially contiguous groups.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    assignment: Vec<u32>,
}

impl ShardMap {
    /// Partitions the medium's stations into (at most) `shards` groups of
    /// near-equal size, contiguous in `(x, y, id)` order. `shards` is
    /// clamped to `1..=station_count`; an empty medium yields one empty
    /// shard.
    pub fn spatial(medium: &Medium, shards: usize) -> ShardMap {
        let n = medium.station_count();
        let shards = shards.clamp(1, n.max(1));
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            let pa = medium.position(NodeId(a));
            let pb = medium.position(NodeId(b));
            pa.x.total_cmp(&pb.x)
                .then(pa.y.total_cmp(&pb.y))
                .then(a.cmp(&b))
        });
        let mut assignment = vec![0u32; n];
        for (rank, &id) in order.iter().enumerate() {
            // rank * shards / n cuts the sorted order into contiguous
            // groups whose sizes differ by at most one.
            assignment[id as usize] = (rank * shards / n) as u32;
        }
        ShardMap { shards, assignment }
    }

    /// Number of shards in the partition.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard holding `node`.
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.assignment[node.index()]
    }

    /// The full per-station assignment, indexed by station id.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Consumes the map into its per-station assignment vector.
    pub fn into_assignment(self) -> Vec<u32> {
        self.assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimDuration, SimRng};
    use dot11_phy::{
        CullPolicy, DayProfile, LogDistance, Medium, MediumConfig, Position, Shadowing,
    };

    fn medium(positions: Vec<Position>) -> Medium {
        let day = DayProfile::still();
        Medium::new(
            positions,
            Shadowing::new(day.clone(), SimRng::from_seed(5)),
            MediumConfig {
                path_loss: LogDistance::anchored_at_free_space_1m(3.0).into(),
                day,
                propagation_delay: SimDuration::from_micros(1),
                cull: CullPolicy::Full,
            },
        )
    }

    #[test]
    fn chain_splits_into_contiguous_balanced_runs() {
        let m = medium(
            (0..16)
                .map(|i| Position::on_line(i as f64 * 10.0))
                .collect(),
        );
        let map = ShardMap::spatial(&m, 4);
        assert_eq!(map.shards(), 4);
        // A chain sorted by x: stations 0..4 → shard 0, 4..8 → 1, …
        for i in 0..16u32 {
            assert_eq!(map.shard_of(NodeId(i)), i / 4, "station {i}");
        }
        // Sizes are balanced even when shards don't divide n.
        let map5 = ShardMap::spatial(&m, 5);
        let mut sizes = [0usize; 5];
        for &s in map5.assignment() {
            sizes[s as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
    }

    #[test]
    fn shard_count_clamps_to_station_count() {
        let m = medium(vec![Position::on_line(0.0), Position::on_line(5.0)]);
        let map = ShardMap::spatial(&m, 64);
        assert_eq!(map.shards(), 2);
        assert_eq!(ShardMap::spatial(&m, 0).shards(), 1);
    }

    #[test]
    fn assignment_is_a_function_of_positions_not_station_order() {
        // Same geometry, ids permuted: each *position* must land in the
        // same shard regardless of which id sits there (ties broken by
        // id only among exactly coincident stations).
        let a = medium(vec![
            Position::on_line(0.0),
            Position::on_line(30.0),
            Position::on_line(10.0),
            Position::on_line(20.0),
        ]);
        let map = ShardMap::spatial(&a, 2);
        // Sorted by x: 0 (id0), 10 (id2), 20 (id3), 30 (id1).
        assert_eq!(map.assignment(), &[0, 1, 0, 1]);
    }
}
