//! Stable content hashing for run identities.
//!
//! The sweep engine caches finished runs under a key derived from
//! *everything that determines the result*: the scenario recipe, the seed,
//! and the run parameters. That key must be stable across processes,
//! platforms and Rust versions — `std::hash::Hasher` implementations give
//! no such guarantee — so this module pins its own algorithm:
//! **FNV-1a 64** over a canonical byte encoding.
//!
//! Canonical encoding rules (all little-endian):
//!
//! * integers are written as fixed-width little-endian bytes;
//! * floats are written as their IEEE-754 bit patterns (`to_bits`), so
//!   `-0.0` and `0.0` hash differently — callers should normalize if they
//!   consider them equal;
//! * strings/byte-slices are length-prefixed (`u64` length, then bytes),
//!   so `("ab", "c")` and `("a", "bc")` cannot collide.
//!
//! # Example
//!
//! ```
//! use dot11_adhoc::hash::StableHasher;
//!
//! let mut h = StableHasher::new();
//! h.write_str("four_station");
//! h.write_u64(105);
//! let a = h.finish();
//!
//! let mut h = StableHasher::new();
//! h.write_str("four_station");
//! h.write_u64(105);
//! assert_eq!(a, h.finish(), "same content, same key — in any process");
//! ```

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// A hasher whose output is pinned by this file alone (FNV-1a 64 over a
/// canonical encoding) — safe to persist in cache filenames and golden
/// tests.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes *without* a length prefix. Use the typed writers
    /// below unless you are framing the data yourself.
    pub fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a length-prefixed byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Absorbs a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs a `u8`.
    pub fn write_u8(&mut self, v: u8) {
        self.write_raw(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Absorbs an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a `bool` as a single byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// The 64-bit digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_the_offset_basis() {
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn known_vector_is_pinned() {
        // FNV-1a 64 of the raw bytes "a" — the published test vector.
        let mut h = StableHasher::new();
        h.write_raw(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn typed_writers_differ_from_each_other() {
        let mut a = StableHasher::new();
        a.write_u32(7);
        let mut b = StableHasher::new();
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish(), "width is part of the encoding");
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let mut a = StableHasher::new();
        a.write_f64(82.5);
        let mut b = StableHasher::new();
        b.write_f64(82.5);
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_f64(82.5000001);
        assert_ne!(a.finish(), c.finish());
    }
}
