//! Randomized-input tests for the event-queue and time invariants.
//!
//! Formerly proptest-based; the container build has no network access to
//! fetch crates, so cases are now generated from the crate's own `SimRng`.
//! The inputs are a fixed pseudo-random sample per test binary run —
//! deterministic, so failures reproduce exactly.

use desim::{EventQueue, SimDuration, SimRng, SimTime, Simulator};

/// Popping always yields events in non-decreasing time order, with FIFO
/// order among equal times, regardless of the push order.
#[test]
fn queue_pops_sorted_stable() {
    let mut rng = SimRng::from_seed(0xDE51_0001);
    for case in 0..64u32 {
        let len = rng.gen_range_u32(1, 200) as usize;
        let times: Vec<u64> = (0..len)
            .map(|_| rng.gen_range_u32(0, 1_000) as u64)
            .collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            assert_eq!(at, SimTime::from_micros(t));
            if let Some((lt, li)) = last {
                assert!(
                    t > lt || (t == lt && i > li),
                    "case {case}: order violated: ({lt},{li}) then ({t},{i})"
                );
            }
            last = Some((t, i));
        }
        assert!(q.is_empty());
    }
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn queue_cancellation_exact() {
    let mut rng = SimRng::from_seed(0xDE51_0002);
    for case in 0..64u32 {
        let len = rng.gen_range_u32(1, 100) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.gen_range_u32(0, 100) as u64).collect();
        let mask: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(SimTime::from_micros(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, h) in &handles {
            if mask[*i] {
                assert!(q.cancel(*h), "case {case}: first cancel succeeds");
                assert!(!q.cancel(*h), "case {case}: double cancel reports false");
            } else {
                kept.push(*i);
            }
        }
        assert_eq!(q.len(), kept.len(), "case {case}");
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        assert_eq!(popped, kept, "case {case}");
    }
}

/// The simulator clock is monotone over any schedule of relative delays.
#[test]
fn simulator_clock_monotone() {
    let mut rng = SimRng::from_seed(0xDE51_0003);
    for case in 0..64u32 {
        let len = rng.gen_range_u32(1, 100) as usize;
        let delays: Vec<u64> = (0..len)
            .map(|_| rng.gen_range_u32(0, 10_000) as u64)
            .collect();
        let mut sim = Simulator::new();
        for &d in &delays {
            sim.schedule_in(SimDuration::from_nanos(d), d);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = sim.pop() {
            assert!(t >= prev, "case {case}: clock went backwards");
            prev = t;
            count += 1;
        }
        assert_eq!(count, delays.len());
        assert_eq!(sim.events_dispatched(), delays.len() as u64);
    }
}

/// Time arithmetic: (t + d) - t == d and ordering is consistent.
#[test]
fn time_arithmetic_roundtrip() {
    let mut rng = SimRng::from_seed(0xDE51_0004);
    for _ in 0..1000 {
        let base = (rng.gen_f64() * 1e9) as u64;
        let delta = (rng.gen_f64() * 1e9) as u64;
        let t = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert!(t + d >= t);
    }
}

/// Duration float conversions round-trip within one nanosecond.
#[test]
fn duration_float_roundtrip() {
    let mut rng = SimRng::from_seed(0xDE51_0005);
    for _ in 0..1000 {
        let ns = (rng.gen_f64() * 1e12) as u64;
        let d = SimDuration::from_nanos(ns);
        let via_f64 = SimDuration::from_secs_f64(d.as_secs_f64());
        let err = via_f64.as_nanos().abs_diff(d.as_nanos());
        // f64 has 53 bits of mantissa; below ~2^53 ns the round trip is
        // exact, and our range stays well below that.
        assert!(err <= 1, "round trip error {err} ns");
    }
}

/// Queue depth high-water mark tracks the maximum live population.
#[test]
fn queue_high_water_tracks_peak() {
    let mut sim = Simulator::new();
    assert_eq!(sim.queue_high_water(), 0);
    for i in 0..10u64 {
        sim.schedule_in(SimDuration::from_micros(i), i);
    }
    assert_eq!(sim.queue_high_water(), 10);
    while sim.pop().is_some() {}
    // Draining does not lower the mark...
    assert_eq!(sim.queue_high_water(), 10);
    // ...and a smaller refill does not raise it.
    for i in 0..3u64 {
        sim.schedule_in(SimDuration::from_micros(i), i);
    }
    assert_eq!(sim.queue_high_water(), 10);
}
