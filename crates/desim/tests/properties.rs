//! Property-based tests for the event-queue and time invariants.

use desim::{EventQueue, SimDuration, SimTime, Simulator};
use proptest::prelude::*;

proptest! {
    /// Popping always yields events in non-decreasing time order, with FIFO
    /// order among equal times, regardless of the push order.
    #[test]
    fn queue_pops_sorted_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_micros(t));
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated: ({lt},{li}) then ({t},{i})");
            }
            last = Some((t, i));
        }
        prop_assert!(q.is_empty());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_exact(
        times in proptest::collection::vec(0u64..100, 1..100),
        mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(SimTime::from_micros(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, h) in &handles {
            if mask[*i % mask.len()] {
                prop_assert!(q.cancel(*h));
                prop_assert!(!q.cancel(*h));
            } else {
                kept.push(*i);
            }
        }
        prop_assert_eq!(q.len(), kept.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// The simulator clock is monotone over any schedule of relative delays.
    #[test]
    fn simulator_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Simulator::new();
        for &d in &delays {
            sim.schedule_in(SimDuration::from_nanos(d), d);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = sim.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
        prop_assert_eq!(sim.events_dispatched(), delays.len() as u64);
    }

    /// Time arithmetic: (t + d) - t == d and ordering is consistent.
    #[test]
    fn time_arithmetic_roundtrip(base in 0u64..1_000_000_000, delta in 0u64..1_000_000_000) {
        let t = SimTime::from_nanos(base);
        let d = SimDuration::from_nanos(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert!(t + d >= t);
    }

    /// Duration float conversions round-trip within one nanosecond.
    #[test]
    fn duration_float_roundtrip(ns in 0u64..1_000_000_000_000) {
        let d = SimDuration::from_nanos(ns);
        let via_f64 = SimDuration::from_secs_f64(d.as_secs_f64());
        let err = via_f64.as_nanos().abs_diff(d.as_nanos());
        // f64 has 53 bits of mantissa; below ~2^53 ns the round trip is
        // exact, and our range stays well below that.
        prop_assert!(err <= 1, "round trip error {err} ns");
    }
}
