//! The simulator: a clock plus the pending-event set.
//!
//! `Simulator` deliberately owns *no* model state. The world (nodes, medium,
//! flows) lives outside and drives the loop:
//!
//! ```text
//! while let Some((t, ev)) = sim.pop() {
//!     world.handle(&mut sim, ev);   // may schedule/cancel more events
//! }
//! ```
//!
//! This inversion avoids the borrow cycle of callback-owning schedulers and
//! keeps the dispatch explicit and easy to trace.

use crate::queue::{EventHandle, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulator: monotonic clock + cancellable event queue.
///
/// # Example
///
/// ```
/// use desim::{SimDuration, Simulator};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick(u32) }
///
/// let mut sim = Simulator::new();
/// sim.schedule_in(SimDuration::from_millis(1), Ev::Tick(1));
/// let mut fired = Vec::new();
/// while let Some((_, ev)) = sim.pop() {
///     fired.push(ev);
/// }
/// assert_eq!(fired, vec![Ev::Tick(1)]);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    popped: u64,
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            popped: 0,
        }
    }

    /// The current simulation time. Advances only inside [`Simulator::pop`].
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a model bug and silently reordering it would
    /// corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        let at = self.now + delay;
        self.queue.push(at, event)
    }

    /// Schedules `event` at the current instant (after all events already
    /// scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventHandle {
        self.queue.push(self.now, event)
    }

    /// Schedules `event` after `delay` in the **trailing class**: at its
    /// firing instant it pops after every ordinary event, and among
    /// trailing events the most recently scheduled pops first (see
    /// [`EventQueue::push_trailing`]). Used to coalesce per-tick timer
    /// chains into one event without perturbing same-instant ordering.
    pub fn schedule_in_trailing(&mut self, delay: SimDuration, event: E) -> EventHandle {
        let at = self.now + delay;
        self.queue.push_trailing(at, self.now, event)
    }

    /// Pre-sizes the pending-event set for at least `capacity` events
    /// (see [`EventQueue::reserve`]).
    pub fn reserve(&mut self, capacity: usize) {
        self.queue.reserve(capacity);
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Removes the earliest event, advancing the clock to its time.
    ///
    /// Returns `None` when no live events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue yielded a past event");
        self.now = time;
        self.popped += 1;
        Some((time, event))
    }

    /// The time of the next pending event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True if no live events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total number of events dispatched so far (a cheap progress/loop
    /// diagnostic for callers).
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }

    /// The queue-depth high-water mark: the largest number of live events
    /// ever pending at once over the simulator's lifetime.
    pub fn queue_high_water(&self) -> usize {
        self.queue.high_water()
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Simulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_to_event_times() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_micros(42), "x");
        assert_eq!(sim.now(), SimTime::ZERO);
        let (t, _) = sim.pop().expect("event pending");
        assert_eq!(t, SimTime::from_micros(42));
        assert_eq!(sim.now(), t);
        assert_eq!(sim.events_dispatched(), 1);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_micros(10), "first");
        sim.pop();
        sim.schedule_in(SimDuration::from_micros(5), "second");
        let (t, _) = sim.pop().expect("event pending");
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn schedule_now_runs_after_earlier_same_instant_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_micros(10), 1);
        sim.schedule_at(SimTime::from_micros(10), 2);
        let (_, first) = sim.pop().expect("event");
        assert_eq!(first, 1);
        sim.schedule_now(3);
        assert_eq!(sim.pop().map(|(_, e)| e), Some(2));
        assert_eq!(sim.pop().map(|(_, e)| e), Some(3));
    }

    #[test]
    fn trailing_events_fire_after_ordinary_same_instant_events() {
        let mut sim = Simulator::new();
        sim.schedule_in_trailing(SimDuration::from_micros(10), "trailing");
        sim.schedule_at(SimTime::from_micros(10), "ordinary");
        assert_eq!(sim.pop().map(|(_, e)| e), Some("ordinary"));
        let (t, e) = sim.pop().expect("trailing event");
        assert_eq!((t, e), (SimTime::from_micros(10), "trailing"));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_micros(10), ());
        sim.pop();
        sim.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulator::new();
        let h = sim.schedule_in(SimDuration::from_micros(1), "timeout");
        sim.schedule_in(SimDuration::from_micros(2), "work");
        assert!(sim.cancel(h));
        assert_eq!(sim.pop().map(|(_, e)| e), Some("work"));
        assert!(sim.is_idle());
        assert_eq!(sim.pending(), 0);
    }
}
